"""Fig. 3: the semantics of the prime operator, demonstrated end to end.

Regenerates the paper's Fig. 3(c) and 3(f): starting from an all-ones 5x5
array, ``a := 2*a@north`` (array semantics, anti-dependence, descending loop)
versus ``a := 2*a'@north`` (scan block, true dependence, ascending loop),
together with the loop structures the compiler derives for each.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import zpl
from repro.compiler import compile_scan, compile_statements
from repro.compiler.loopstruct import LoopStructure
from repro.experiments.common import heading
from repro.runtime import execute_vectorized
from repro.zpl.statements import Assign

DESCRIPTION = "Fig. 3: unprimed vs primed a := 2*a@north semantics"


@dataclass(frozen=True)
class Fig3Result:
    """Both result matrices and the derived loop structures."""

    n: int
    unprimed: np.ndarray
    primed: np.ndarray
    unprimed_loops: LoopStructure
    primed_loops: LoopStructure

    def report(self) -> str:
        def grid(m: np.ndarray) -> str:
            return "\n".join(
                "  " + " ".join(f"{v:4.0f}" for v in row) for row in m
            )

        return "\n".join(
            [
                heading("Fig. 3 — prime operator semantics (n=%d)" % self.n),
                "",
                "(a) [2..n,1..n] a := 2 * a@north    (array semantics)",
                f"    derived loop structure: {self.unprimed_loops!r}",
                "    result (paper Fig. 3(c)):",
                grid(self.unprimed),
                "",
                "(d) [2..n,1..n] a := 2 * a'@north   (scan block)",
                f"    derived loop structure: {self.primed_loops!r}",
                "    result (paper Fig. 3(f)):",
                grid(self.primed),
            ]
        )


def run(n: int = 5, quick: bool = False) -> Fig3Result:
    """Execute both programs from all-ones initial arrays."""
    region = zpl.Region.of((2, n), (1, n))

    a1 = zpl.ones(zpl.Region.square(1, n), name="a")
    unprimed_compiled = compile_statements(
        [Assign(a1, 2.0 * (a1 @ zpl.NORTH), region)]
    )
    execute_vectorized(unprimed_compiled)

    a2 = zpl.ones(zpl.Region.square(1, n), name="a")
    with zpl.covering(region):
        with zpl.scan(execute=False) as block:
            a2[...] = 2.0 * (a2.p @ zpl.NORTH)
    primed_compiled = compile_scan(block)
    execute_vectorized(primed_compiled)

    return Fig3Result(
        n=n,
        unprimed=a1.to_numpy(),
        primed=a2.to_numpy(),
        unprimed_loops=unprimed_compiled.loops,
        primed_loops=primed_compiled.loops,
    )


def expected_unprimed(n: int) -> np.ndarray:
    """The paper's Fig. 3(c): 1s in row 1, 2s below."""
    out = np.ones((n, n))
    out[1:, :] = 2.0
    return out


def expected_primed(n: int) -> np.ndarray:
    """The paper's Fig. 3(f): powers of two down the rows."""
    return np.array([[2.0 ** min(i, n - 1)] * n for i in range(n)])
