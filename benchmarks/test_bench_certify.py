"""Certifier latency: how much does ``REPRO_CERTIFY=1`` cost per execute?

The certifier runs *before* every dispatch when the pre-flight knob is on,
so its wall time is pure overhead on the critical path.  This bench times
the two halves separately — projecting the compiled plan into a
:class:`ScheduleModel` and discharging the three proof obligations over it
— at every pseudo-schedule on a representative rank-2 wavefront, and
gates the end-to-end proof under a generous ceiling: certification must
stay far below the cost of the run it certifies.

Timings land in ``BENCH_certify.json`` next to the other artifacts.
"""

import os

import numpy as np
import pytest

from repro import zpl
from repro.analyze.certify import (
    PSEUDO_SCHEDULES,
    build_schedule_model,
    certify_model,
    schedule_kwargs,
)
from repro.compiler import compile_scan

#: Chunked-dimension length (override with ``REPRO_BENCH_CERTIFY_N``).
N = int(os.environ.get("REPRO_BENCH_CERTIFY_N", "512"))
WIDTH = 16
PROCS = 4
BLOCK = max(16, N // 32)
#: Ceiling on one full build+certify pass at any schedule.  The pre-flight
#: must be cheap relative to the multi-process run it guards: the pipe
#: protocols prove over the rank-x-block tile grid, while taskgraph walks
#: the full tile DAG, so the ceiling is set by the taskgraph pass.
MAX_PROOF_SECONDS = 2.0


def _wavefront_block(n, width):
    base = zpl.Region.of((1, n), (1, width))
    a = zpl.ZArray(base, name="a", fluff=2)
    rng = np.random.default_rng(11)
    a._data[...] = rng.uniform(0.5, 1.5, size=a._data.shape)
    region = zpl.Region.of((3, n), (3, width))
    # (0,1) and (1,1) dependences: fan-out 2 per producer, so the
    # "multicast" pseudo-schedule exercises the staging/credit obligations.
    with zpl.covering(region):
        with zpl.scan(execute=False) as block:
            a[...] = 0.3 + 0.4 * (a.p @ (0, -1)) + 0.2 * (a.p @ (-1, -1))
    return compile_scan(block)


@pytest.mark.parametrize("pseudo", PSEUDO_SCHEDULES)
def test_certify_latency(bench, pseudo):
    compiled = _wavefront_block(N, WIDTH)
    kwargs = schedule_kwargs(pseudo)

    def proof():
        model = build_schedule_model(
            compiled, grid=PROCS, block=BLOCK, **kwargs
        )
        return model, certify_model(model)

    model, diagnostics = bench(proof)
    assert diagnostics == [], (
        f"clean plan failed certification at {pseudo}: "
        + "; ".join(f"{d.code}: {d.message}" for d in diagnostics)
    )
    assert model.n_blocks >= 1
    stats = getattr(bench, "stats", None)
    if stats is not None:  # absent under --benchmark-disable
        assert stats.stats.min < MAX_PROOF_SECONDS, (
            f"certify pre-flight at {pseudo} took "
            f"{stats.stats.min:.3f}s (ceiling {MAX_PROOF_SECONDS}s) on a "
            f"{N}x{WIDTH} plan — the pre-flight must stay cheap relative "
            f"to the run it guards"
        )


def test_certify_model_only(bench):
    """The proof half alone: obligations over an already-built model."""
    compiled = _wavefront_block(N, WIDTH)
    model = build_schedule_model(
        compiled, grid=PROCS, block=BLOCK, **schedule_kwargs("multicast")
    )
    diagnostics = bench(certify_model, model)
    assert diagnostics == []
