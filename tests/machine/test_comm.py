"""Tests for the simulated message-passing layer (blocking + nonblocking)."""

import numpy as np
import pytest

from repro.errors import CommunicationError
from repro.machine import Machine, MachineParams

PARAMS = MachineParams(name="net", alpha=10.0, beta=2.0)


def run_machine(n_procs, *bodies):
    m = Machine(PARAMS, n_procs)
    for rank, body in enumerate(bodies):
        m.spawn(body, rank)
    return m, m.run()


class TestBlocking:
    def test_recv_charges_alpha_beta(self):
        times = []

        def receiver(ep):
            msg = yield from ep.recv(src=1)
            times.append((ep.sim.now, msg.size))

        def sender(ep):
            ep.send(0, size=5)
            return
            yield  # pragma: no cover

        _, result = run_machine(2, receiver, sender)
        assert times == [(10.0 + 2.0 * 5, 5)]
        assert result.comm_time == 20.0

    def test_payload_roundtrip(self):
        payload = np.arange(4.0)
        got = []

        def receiver(ep):
            msg = yield from ep.recv(src=1, tag=7)
            got.append(msg.payload)

        def sender(ep):
            ep.send(0, payload=payload, tag=7)
            return
            yield  # pragma: no cover

        run_machine(2, receiver, sender)
        np.testing.assert_array_equal(got[0], payload)

    def test_size_inferred_from_array(self):
        def receiver(ep):
            msg = yield from ep.recv(src=1)
            assert msg.size == 6

        def sender(ep):
            ep.send(0, payload=np.zeros((2, 3)))
            return
            yield  # pragma: no cover

        run_machine(2, receiver, sender)

    def test_self_send_rejected(self):
        m = Machine(PARAMS, 2)
        with pytest.raises(CommunicationError):
            m.endpoint(0).send(0, size=1)

    def test_size_required_without_array(self):
        m = Machine(PARAMS, 2)
        with pytest.raises(CommunicationError):
            m.endpoint(0).send(1, payload="not an array")

    def test_tags_demultiplex(self):
        order = []

        def receiver(ep):
            second = yield from ep.recv(src=1, tag=2)
            first = yield from ep.recv(src=1, tag=1)
            order.extend([second.tag, first.tag])

        def sender(ep):
            ep.send(0, size=1, tag=1)
            ep.send(0, size=1, tag=2)
            return
            yield  # pragma: no cover

        run_machine(2, receiver, sender)
        assert order == [2, 1]

    def test_send_overhead_charged_to_sender(self):
        m = Machine(PARAMS, 2, send_overhead=3.0)
        done = []

        def receiver(ep):
            yield from ep.recv(src=1)

        def sender(ep):
            yield from ep.send(0, size=1)
            done.append(ep.sim.now)

        m.spawn(receiver, 0)
        m.spawn(sender, 1)
        m.run()
        assert done == [3.0]
        assert m.endpoint(1).stats.comm_time == 3.0

    def test_wire_latency_delays_delivery(self):
        m = Machine(PARAMS, 2, wire_latency=7.0)
        arrival = []

        def receiver(ep):
            yield from ep.recv(src=1)
            arrival.append(ep.sim.now)

        def sender(ep):
            ep.send(0, size=0)
            return
            yield  # pragma: no cover

        m.spawn(receiver, 0)
        m.spawn(sender, 1)
        m.run()
        assert arrival == [7.0 + 10.0]


class TestNonblocking:
    def test_overlap_hides_wait(self):
        # Post irecv, compute 50, then wait: the message (sent at t=5)
        # arrived during compute, so only the alpha+beta cost remains.
        finish = []

        def receiver(ep):
            request = ep.irecv(src=1)
            yield from ep.compute(50)
            assert request.ready
            msg = yield from request.wait()
            finish.append((ep.sim.now, msg.size))

        def sender(ep):
            yield from ep.compute(5)
            ep.isend(0, size=20)

        _, result = run_machine(2, receiver, sender)
        assert finish == [(50.0 + PARAMS.message_cost(20), 20)]

    def test_ready_false_before_arrival(self):
        seen = []

        def receiver(ep):
            request = ep.irecv(src=1)
            seen.append(request.ready)
            msg = yield from request.wait()
            seen.append(request.ready)

        def sender(ep):
            yield from ep.compute(30)
            ep.isend(0, size=1)

        run_machine(2, receiver, sender)
        assert seen == [False, True]

    def test_requests_fifo_with_blocking_recv(self):
        got = []

        def receiver(ep):
            req = ep.irecv(src=1, tag=0)
            msg2 = yield from ep.recv(src=1, tag=0)
            msg1 = yield from req.wait()
            got.extend([msg1.size, msg2.size])

        def sender(ep):
            ep.send(0, size=1, tag=0)
            ep.send(0, size=2, tag=0)
            return
            yield  # pragma: no cover

        run_machine(2, receiver, sender)
        # The posted request claimed the first message.
        assert got == [1, 2]

    def test_stats_counted_once(self):
        def receiver(ep):
            req = ep.irecv(src=1)
            msg = yield from req.wait()

        def sender(ep):
            ep.isend(0, size=4)
            return
            yield  # pragma: no cover

        m, result = run_machine(2, receiver, sender)
        assert m.endpoint(0).stats.messages_received == 1
        assert m.endpoint(1).stats.messages_sent == 1
        assert result.total_messages == 1
