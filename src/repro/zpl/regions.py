"""Regions: dense rectangular index sets, the heart of ZPL (paper Section 2.1).

A region factors the indices participating in a computation out of the array
references.  ``Region.of((2, n - 2), (2, n - 1))`` is the library's spelling of
the ZPL region ``[2..n-2, 2..n-1]``; bounds are *inclusive* on both ends, as in
ZPL.  Regions support the algebra needed by the compiler and runtimes:

* ``shift(direction)`` — translate the whole index set (the ``@`` operator
  applies this to the covering region to find the operand indices);
* ``expand``/``border`` — grow the region, or take the one-deep border strip
  on a side (ZPL's ``of`` regions, used to initialise boundary values);
* ``intersect``/``contains``/``bounding`` — set-style queries;
* ``to_local(base)`` — convert to numpy slices relative to a storage origin.

Empty regions are representable (any dimension with ``hi < lo``) and behave
as the empty index set.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import RegionError
from repro.util.validation import check_int
from repro.zpl.directions import Direction, as_direction


class Region:
    """An immutable dense rectangular index set.

    Parameters
    ----------
    ranges:
        One ``(lo, hi)`` inclusive pair per dimension.
    name:
        Optional symbolic name (ZPL programs name their regions).
    """

    __slots__ = ("_ranges", "_name")

    def __init__(self, ranges: Sequence[tuple[int, int]], name: str | None = None):
        if not ranges:
            raise RegionError("a region must have at least one dimension")
        normalized: list[tuple[int, int]] = []
        for k, pair in enumerate(ranges):
            if not isinstance(pair, (tuple, list)) or len(pair) != 2:
                raise RegionError(
                    f"dimension {k}: expected a (lo, hi) pair, got {pair!r}"
                )
            lo = check_int(pair[0], f"lo[{k}]")
            hi = check_int(pair[1], f"hi[{k}]")
            normalized.append((lo, hi))
        self._ranges = tuple(normalized)
        self._name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *ranges: tuple[int, int], name: str | None = None) -> "Region":
        """Build a region from ``(lo, hi)`` pairs: ``Region.of((1, n), (1, n))``."""
        return cls(ranges, name=name)

    @classmethod
    def square(cls, lo: int, hi: int, rank: int = 2, name: str | None = None) -> "Region":
        """A rank-``rank`` region with the same inclusive range in each dim."""
        return cls(((lo, hi),) * rank, name=name)

    @classmethod
    def from_shape(cls, shape: Sequence[int], base: int = 0) -> "Region":
        """A region of the given shape starting at index ``base`` in each dim."""
        return cls(tuple((base, base + int(s) - 1) for s in shape))

    def named(self, name: str) -> "Region":
        """Return the same index set carrying a symbolic name."""
        return Region(self._ranges, name=name)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def ranges(self) -> tuple[tuple[int, int], ...]:
        """The inclusive ``(lo, hi)`` pair per dimension."""
        return self._ranges

    @property
    def name(self) -> str | None:
        """The symbolic name, if any."""
        return self._name

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self._ranges)

    @property
    def shape(self) -> tuple[int, ...]:
        """Extent per dimension (0 for empty dimensions)."""
        return tuple(max(0, hi - lo + 1) for lo, hi in self._ranges)

    @property
    def size(self) -> int:
        """Total number of indices in the region."""
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    @property
    def lo(self) -> tuple[int, ...]:
        """Lower corner."""
        return tuple(lo for lo, _ in self._ranges)

    @property
    def hi(self) -> tuple[int, ...]:
        """Upper corner."""
        return tuple(hi for _, hi in self._ranges)

    def is_empty(self) -> bool:
        """True when the index set is empty."""
        return any(hi < lo for lo, hi in self._ranges)

    def extent(self, dim: int) -> int:
        """Extent along one dimension."""
        lo, hi = self._ranges[dim]
        return max(0, hi - lo + 1)

    def range(self, dim: int) -> tuple[int, int]:
        """The inclusive ``(lo, hi)`` of one dimension."""
        return self._ranges[dim]

    def contains(self, index: Sequence[int]) -> bool:
        """True when the index tuple lies inside the region."""
        if len(index) != self.rank:
            return False
        return all(lo <= i <= hi for i, (lo, hi) in zip(index, self._ranges))

    def covers(self, other: "Region") -> bool:
        """True when every index of ``other`` lies inside ``self``."""
        if other.rank != self.rank:
            return False
        if other.is_empty():
            return True
        return all(
            slo <= olo and ohi <= shi
            for (slo, shi), (olo, ohi) in zip(self._ranges, other._ranges)
        )

    # ------------------------------------------------------------------
    # Region algebra
    # ------------------------------------------------------------------
    def shift(self, direction: Direction | tuple[int, ...]) -> "Region":
        """Translate the region by a direction (the ``@`` operator's effect)."""
        d = as_direction(direction, rank=self.rank)
        return Region(
            tuple((lo + off, hi + off) for (lo, hi), off in zip(self._ranges, d))
        )

    def expand(self, amounts: Sequence[tuple[int, int]]) -> "Region":
        """Grow by ``(before, after)`` per dimension (negative shrinks)."""
        if len(amounts) != self.rank:
            raise RegionError(
                f"expand amounts have rank {len(amounts)}, region has {self.rank}"
            )
        return Region(
            tuple(
                (lo - before, hi + after)
                for (lo, hi), (before, after) in zip(self._ranges, amounts)
            )
        )

    def border(self, direction: Direction | tuple[int, ...]) -> "Region":
        """The border strip just outside the region on the side ``direction``.

        This is ZPL's ``[d of R]``: for ``north`` it is the row immediately
        above the region, spanning the region's full width.  The strip depth
        equals ``|direction[k]|`` in each nonzero dimension.
        """
        d = as_direction(direction, rank=self.rank)
        if d.is_zero():
            raise RegionError("border direction may not be the zero vector")
        ranges = []
        for (lo, hi), off in zip(self._ranges, d):
            if off < 0:
                ranges.append((lo + off, lo - 1))
            elif off > 0:
                ranges.append((hi + 1, hi + off))
            else:
                ranges.append((lo, hi))
        return Region(tuple(ranges))

    def intersect(self, other: "Region") -> "Region":
        """Intersection of two same-rank regions (possibly empty)."""
        if other.rank != self.rank:
            raise RegionError(
                f"cannot intersect rank-{self.rank} with rank-{other.rank} region"
            )
        return Region(
            tuple(
                (max(alo, blo), min(ahi, bhi))
                for (alo, ahi), (blo, bhi) in zip(self._ranges, other._ranges)
            )
        )

    def bounding(self, other: "Region") -> "Region":
        """Smallest region containing both operands."""
        if other.rank != self.rank:
            raise RegionError(
                f"cannot bound rank-{self.rank} with rank-{other.rank} region"
            )
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Region(
            tuple(
                (min(alo, blo), max(ahi, bhi))
                for (alo, ahi), (blo, bhi) in zip(self._ranges, other._ranges)
            )
        )

    def slab(self, dim: int, lo: int, hi: int) -> "Region":
        """Restrict dimension ``dim`` to the inclusive range ``lo..hi``."""
        if not 0 <= dim < self.rank:
            raise RegionError(f"dimension {dim} out of range for rank {self.rank}")
        ranges = list(self._ranges)
        ranges[dim] = (check_int(lo, "lo"), check_int(hi, "hi"))
        return Region(tuple(ranges))

    def split(self, dim: int, pieces: int) -> list["Region"]:
        """Split into ``pieces`` contiguous same-rank slabs along ``dim``.

        Block sizes follow the standard balanced rule: the first
        ``extent % pieces`` slabs get one extra index.  Empty slabs are
        produced when ``pieces`` exceeds the extent, preserving the count.
        """
        if pieces < 1:
            raise RegionError(f"pieces must be >= 1, got {pieces}")
        lo, hi = self._ranges[dim]
        extent = max(0, hi - lo + 1)
        base, extra = divmod(extent, pieces)
        slabs = []
        cursor = lo
        for k in range(pieces):
            length = base + (1 if k < extra else 0)
            slabs.append(self.slab(dim, cursor, cursor + length - 1))
            cursor += length
        return slabs

    # ------------------------------------------------------------------
    # Conversion & iteration
    # ------------------------------------------------------------------
    def to_local(self, base: Sequence[int]) -> tuple[slice, ...]:
        """Numpy slices for this region relative to a storage origin ``base``."""
        if len(base) != self.rank:
            raise RegionError(
                f"base has rank {len(base)}, region has rank {self.rank}"
            )
        return tuple(
            slice(lo - b, hi - b + 1) for (lo, hi), b in zip(self._ranges, base)
        )

    def indices(self, dim: int, reverse: bool = False) -> range:
        """The index values of one dimension, optionally descending."""
        lo, hi = self._ranges[dim]
        if hi < lo:
            return range(0)
        return range(hi, lo - 1, -1) if reverse else range(lo, hi + 1)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        """Iterate all indices in row-major order (small regions/tests only)."""
        if self.is_empty():
            return iter(())

        def gen() -> Iterator[tuple[int, ...]]:
            idx = list(self.lo)
            hi = self.hi
            lo = self.lo
            while True:
                yield tuple(idx)
                for k in range(self.rank - 1, -1, -1):
                    idx[k] += 1
                    if idx[k] <= hi[k]:
                        break
                    idx[k] = lo[k]
                else:
                    return

        return gen()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Region):
            return self._ranges == other._ranges
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._ranges)

    def __repr__(self) -> str:
        body = ",".join(f"{lo}..{hi}" for lo, hi in self._ranges)
        label = f" {self._name!r}" if self._name else ""
        return f"[{body}]{label}"
