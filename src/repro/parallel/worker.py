"""The SPMD worker: one OS process per processor-grid cell.

Each worker unpickles its own copy of the compiled block (preserving array
identity within the copy), rebinds every array onto the parent's shared
segments, and then runs the classic pipelined loop: receive the token for
block ``k``, execute the block's local portion with the *same*
:func:`~repro.runtime.vectorized.execute_vectorized` the sequential engine
uses, send the token downstream.

Hoisted parallel operators were evaluated once by the parent before the
segments were filled, so the worker strips ``hoisted`` from its copy — the
temporaries' values are already in shared memory, and re-evaluating them
mid-wave would race against neighbours' stores.
"""

from __future__ import annotations

import pickle
import time
import traceback
from dataclasses import dataclass, replace
from multiprocessing.connection import Connection

from repro.parallel.channels import recv_token, send_token
from repro.parallel.sharedmem import ArraySpec, AttachedArrays
from repro.runtime.vectorized import execute_vectorized
from repro.zpl.regions import Region


@dataclass
class WorkerTask:
    """Everything one worker needs, shipped through the Process arguments."""

    rank: int
    compiled_blob: bytes
    specs: list[ArraySpec]
    #: This worker's pipeline blocks, already localised and in wave order.
    chunks: tuple[Region, ...]
    recv: Connection | None
    send: Connection | None
    timeout: float


def run_worker(task: WorkerTask, barrier, results) -> None:
    """Process entry point (top-level so every start method can import it)."""
    attached = None
    try:
        compiled = pickle.loads(task.compiled_blob)
        attached = AttachedArrays(compiled, task.specs)
        runnable = replace(compiled, hoisted=())
        barrier.wait(timeout=task.timeout)
        start = time.perf_counter()
        for k, chunk in enumerate(task.chunks):
            if task.recv is not None:
                recv_token(task.recv, k, task.timeout)
            if not chunk.is_empty():
                execute_vectorized(runnable, within=chunk)
            if task.send is not None:
                send_token(task.send, k)
        elapsed = time.perf_counter() - start
        results.put(("ok", task.rank, elapsed))
    except BaseException:
        results.put(("error", task.rank, traceback.format_exc()))
    finally:
        if attached is not None:
            attached.detach()
