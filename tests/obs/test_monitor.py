"""Online model monitor: streaming α/β fit and drift detection."""

from __future__ import annotations

import pytest

from repro.obs.live.flight import FlightRecorder
from repro.obs.live.monitor import ModelMonitor, StreamingFit


class TestStreamingFit:
    def test_recovers_line_exactly(self):
        fit = StreamingFit(decay=1.0)
        alpha, beta = 3e-4, 2e-6
        for x in (10, 50, 100, 400, 1000):
            fit.observe(x, alpha + beta * x)
        assert fit.alpha == pytest.approx(alpha, rel=1e-9)
        assert fit.beta == pytest.approx(beta, rel=1e-9)

    def test_decay_tracks_regime_change(self):
        fit = StreamingFit(decay=0.5)
        for x in (10, 100, 1000):
            fit.observe(x, 1e-4 + 1e-6 * x)
        # New machine: beta grows 10x.  The decayed fit must follow.
        for _ in range(20):
            for x in (10, 100, 1000):
                fit.observe(x, 1e-4 + 1e-5 * x)
        assert fit.beta == pytest.approx(1e-5, rel=0.05)

    def test_clamping_matches_autotune(self):
        # Negative slope clamps to zero, alpha falls back to the mean.
        fit = StreamingFit(decay=1.0)
        fit.observe(10, 5.0)
        fit.observe(100, 1.0)
        assert fit.beta == 0.0
        assert fit.alpha == pytest.approx(3.0)
        # Degenerate x-variance: beta 0, alpha the weighted mean of y.
        fit = StreamingFit()
        fit.observe(64, 2.0)
        fit.observe(64, 4.0)
        assert fit.beta == 0.0
        assert fit.alpha > 0.0

    def test_empty_fit_is_zero(self):
        fit = StreamingFit()
        assert (fit.alpha, fit.beta) == (0.0, 0.0)

    def test_bad_decay_rejected(self):
        with pytest.raises(ValueError):
            StreamingFit(decay=0.0)
        with pytest.raises(ValueError):
            StreamingFit(decay=1.5)


class TestModelMonitor:
    def _monitor(self, **kw):
        kw.setdefault("flight", FlightRecorder(capacity=32, enabled=True))
        return ModelMonitor(**kw)

    def _steady(self, mon, jobs=5, unit=1e-6, elements=1e6):
        for _ in range(jobs):
            mon.observe_job(busy=unit * elements, elements=elements,
                            wait=0.01, tokens=10, boundary_elements=64)

    def test_baseline_freezes_after_min_samples(self):
        mon = self._monitor(min_samples=5)
        self._steady(mon, jobs=4)
        assert mon.baseline_unit is None
        self._steady(mon, jobs=1)
        assert mon.baseline_unit == pytest.approx(1e-6, rel=1e-6)
        assert not mon.drift

    def test_drift_flips_within_one_observation(self):
        """A sustained 3x compute-cost scaling must flip the flag on the
        very next flush — the acceptance criterion for the 5(b) sensor."""
        mon = self._monitor()
        self._steady(mon)
        assert not mon.drift
        drift = mon.observe_job(busy=3e-6 * 1e6, elements=1e6)
        assert drift and mon.drift
        assert mon.drift_events == 1

    def test_speedup_drift_detected_too(self):
        mon = self._monitor()
        self._steady(mon)
        for _ in range(3):  # EWMA needs two cheap jobs to cross 1/1.5
            mon.observe_job(busy=1e-7 * 1e6, elements=1e6)
        assert mon.drift

    def test_drift_clears_when_cost_returns(self):
        mon = self._monitor()
        self._steady(mon)
        mon.observe_job(busy=4e-6 * 1e6, elements=1e6)
        assert mon.drift
        for _ in range(8):
            mon.observe_job(busy=1e-6 * 1e6, elements=1e6)
        assert not mon.drift
        assert mon.drift_events == 2  # one flip each way

    def test_drift_event_lands_in_flight_recorder(self):
        flight = FlightRecorder(capacity=32, enabled=True)
        mon = self._monitor(flight=flight)
        self._steady(mon)
        mon.observe_job(busy=5e-6 * 1e6, elements=1e6)
        names = [e["name"] for e in flight.dump()["events"]]
        assert "model_drift" in names
        event = next(
            e for e in flight.dump()["events"] if e["name"] == "model_drift"
        )
        assert event["fields"]["drift"] is True
        assert event["fields"]["ratio"] > 1.5

    def test_seeded_baseline_skips_warmup(self):
        mon = self._monitor(min_samples=1000)
        mon.seed(1e-6)
        assert mon.baseline_unit == 1e-6
        mon.observe_job(busy=4e-6 * 1e6, elements=1e6)
        assert mon.drift

    def test_fit_feeds_from_job_waits(self):
        mon = self._monitor()
        for size in (32, 64, 128, 256):
            mon.observe_job(
                busy=1.0, elements=1e6, wait=10 * (1e-4 + 1e-6 * size),
                tokens=10, boundary_elements=size,
            )
        snap = mon.snapshot()
        assert snap["alpha_seconds"] == pytest.approx(1e-4, rel=0.05)
        assert snap["beta_seconds_per_element"] == pytest.approx(1e-6, rel=0.05)
        assert snap["fit_samples"] == 4
        # Units view: seconds divided by the live unit cost.
        assert snap["alpha"] == pytest.approx(
            snap["alpha_seconds"] / snap["unit_seconds"], rel=1e-9
        )

    def test_degenerate_jobs_ignored(self):
        mon = self._monitor()
        assert mon.observe_job(busy=0.0, elements=100) is False
        assert mon.observe_job(busy=1.0, elements=0) is False
        assert mon.samples == 0

    def test_snapshot_before_any_sample(self):
        snap = self._monitor().snapshot()
        assert snap["samples"] == 0
        assert snap["ratio"] == 1.0
        assert snap["drift"] is False

    def test_reset(self):
        mon = self._monitor()
        self._steady(mon)
        mon.observe_job(busy=5e-6 * 1e6, elements=1e6)
        mon.reset()
        assert mon.samples == 0 and not mon.drift
        assert mon.baseline_unit is None

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            ModelMonitor(threshold=1.0)
