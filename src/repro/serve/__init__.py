"""repro.serve — an async batch-serving front end for wavefront programs.

The paper's pipelining story, turned outward: where
:mod:`repro.parallel` pipelines *one* wavefront across processors, this
subsystem pipelines *many requests* through one compiled plan.  An
asyncio HTTP/JSON server accepts alignment scoring requests
(``POST /v1/align``) and generic compiled-scan requests
(``POST /v1/zpl``); requests that share a coalescing key — same shape,
same scoring parameters, same program — and arrive within a short window
are fused into **one** batched kernel dispatch (a rank-3 stacked scan
for alignment), so the per-dispatch overhead the paper's α+β model
prices is paid once per batch instead of once per request.

Layers (each importable and testable on its own):

* :mod:`repro.serve.protocol` — request schema, validation, typed errors;
* :mod:`repro.serve.scheduler` — FIFO/SJF batch ordering, Model-2 costs;
* :mod:`repro.serve.batching` — the coalescing window + dispatcher;
* :mod:`repro.serve.metrics` — counters, percentiles, ``/metrics``;
* :mod:`repro.serve.server` — the asyncio HTTP shell + compute backend;
* :mod:`repro.serve.client` — a stdlib client and load generators.

``python -m repro.serve`` runs a server; ``python -m repro.serve smoke``
runs the self-checking smoke used by CI.  See ``docs/serving.md``.
"""

from repro.serve.batching import Batcher, BatchResult
from repro.serve.client import (
    Sample,
    ServeClient,
    run_closed_loop,
    run_open_loop,
    summarize,
)
from repro.serve.metrics import ServeMetrics, percentile
from repro.serve.protocol import (
    AlignRequest,
    BackendBroken,
    BadRequest,
    PayloadTooLarge,
    QueueFull,
    RequestTimeout,
    ServeError,
    ShuttingDown,
    ZplRequest,
    parse_align,
    parse_request,
    parse_zpl,
)
from repro.serve.scheduler import (
    FIFOPolicy,
    SJFPolicy,
    estimate_cost,
    make_policy,
)
from repro.serve.server import ComputeBackend, ServeApp, ServeConfig

__all__ = [
    "AlignRequest",
    "BackendBroken",
    "BadRequest",
    "Batcher",
    "BatchResult",
    "ComputeBackend",
    "FIFOPolicy",
    "PayloadTooLarge",
    "QueueFull",
    "RequestTimeout",
    "SJFPolicy",
    "Sample",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeMetrics",
    "ShuttingDown",
    "ZplRequest",
    "estimate_cost",
    "make_policy",
    "parse_align",
    "parse_request",
    "parse_zpl",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
    "summarize",
]
