"""``schedule="taskgraph"``: DAG derivation, stealing execution, sanitizing.

Three layers, mirroring the feature:

* **DAG unit tests** — :func:`~repro.compiler.taskdag.derive_taskgraph` on
  real compiled blocks, no processes: traversal-order acyclicity, edge
  counts, home-rank assignment, and dead-tile pruning soundness on a
  banded (masked) program.
* **Execution tests** — the fork-per-run executor and the persistent pool
  must leave every array bit-identical to ``execute_vectorized``, including
  the rank-1 chain the pipelined schedule refuses, and with pruning active.
* **Sanitizer interop** — a clean sanitized run stays bit-identical; the
  injected ``early-fire`` protocol fault is caught deterministically.
"""

import os

import numpy as np
import pytest

from repro import zpl
from repro.analyze.sanitizer import parse_inject
from repro.compiler import compile_scan
from repro.compiler.taskdag import derive_taskgraph
from repro.errors import DistributionError, MachineError, SanitizerError
from repro.machine.schedules import plan_wavefront
from repro.parallel import WorkerPool, execute
from repro.parallel.executor import _as_grid, _build_distribution
from repro.runtime import execute_vectorized, run_and_capture
from tests.conftest import record_tomcatv_block

BAND = 3


def _compiled_tomcatv(n=24):
    block, arrays = record_tomcatv_block(n)
    return compile_scan(block), arrays


def _banded_program(n=24, band=BAND):
    """A masked wavefront recurrence: live only within ``|i - j| <= band``."""
    base = zpl.Region.square(1, n)
    a = zpl.ZArray(base, name="a", fluff=2)
    a._data[...] = 0.5
    mask = zpl.ZArray(base, name="m", fluff=2)
    mask._data[...] = 0.0
    mask.load(
        np.fromfunction(
            lambda i, j: (np.abs(i - j) <= band).astype(float), (n, n)
        )
    )
    region = zpl.Region.of((2, n), (1, n))
    with zpl.covering(region), zpl.masked(mask):
        with zpl.scan(execute=False) as block:
            a[...] = 0.2 + 0.45 * (a.p @ (-1, 0)) + 0.3 * (a.p @ (-1, -1))
    return compile_scan(block), [a, mask]


def _derive(compiled, n_ranks=2, oversub=3, block_size=4, **kwargs):
    plan = plan_wavefront(compiled)
    grid = _as_grid(n_ranks)
    dist = _build_distribution(plan, grid)
    locals_by_rank = [dist.local_region(rank) for rank in grid]
    return derive_taskgraph(
        compiled, plan, locals_by_rank, oversub, block_size, **kwargs
    )


def _assert_matches_vectorized(compiled, arrays, **kwargs):
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    runs = []
    parallel = run_and_capture(
        lambda c: runs.append(execute(c, **kwargs)), compiled, arrays
    )
    for array, want, got in zip(arrays, oracle, parallel):
        np.testing.assert_array_equal(
            got, want, err_msg=f"array {array.name} diverged under {kwargs}"
        )
    return runs[0]


# ---------------------------------------------------------------------------
# DAG derivation (no processes).
# ---------------------------------------------------------------------------
def test_taskgraph_shape_edges_and_acyclicity():
    compiled, _ = _compiled_tomcatv()
    graph = _derive(compiled)
    assert graph.n_live == graph.n_wave * graph.n_chunk  # nothing masked
    assert graph.n_pruned == 0
    assert graph.n_edges == sum(len(p) for p in graph.preds)
    assert graph.n_edges == sum(len(s) for s in graph.succs)
    assert graph.roots  # something must be fireable at t=0
    assert all(0 <= home < 2 for home in graph.homes)
    # Tiles are stored in traversal order and every dependence respects it:
    # the stealing scheduler's acyclicity rests exactly on this.
    for tile, preds in enumerate(graph.preds):
        assert all(p < tile for p in preds)
    # Every non-root is reachable: pred lists are mirrored by succ lists.
    for tile, preds in enumerate(graph.preds):
        for p in preds:
            assert tile in graph.succs[p]


def test_taskgraph_prunes_fully_masked_tiles():
    compiled, _ = _compiled_tomcatv()
    assert _derive(compiled).n_pruned == 0  # unmasked: pruning never fires

    banded, _arrays = _banded_program()
    graph = _derive(banded)
    full = _derive(banded, prune=False)
    assert graph.n_pruned > 0
    assert graph.n_live + graph.n_pruned == full.n_live == (
        graph.n_wave * graph.n_chunk
    )
    # Exactly the fully-masked tiles were dropped — no live tile is dead,
    # no pruned tile had work.
    mask = _arrays[1]
    live_tiles = set(graph.tiles)
    for tile in full.tiles:
        alive = bool(np.any(mask.read(tile) != 0))
        assert (tile in live_tiles) == alive


# ---------------------------------------------------------------------------
# Execution: fork-per-run executor and the persistent pool.
# ---------------------------------------------------------------------------
def test_executor_two_procs_identical():
    compiled, arrays = _compiled_tomcatv()
    run = _assert_matches_vectorized(
        compiled, arrays, grid=2, schedule="taskgraph", block=4
    )
    assert run.schedule == "taskgraph"
    assert run.n_procs == 2
    report = run.taskgraph
    assert report is not None
    assert run.n_chunks == report.n_tasks
    assert report.n_pruned == 0
    assert sum(report.tasks_by_rank) == report.n_tasks
    assert report.steals >= 0


def test_executor_prunes_and_stays_identical():
    compiled, arrays = _banded_program()
    run = _assert_matches_vectorized(
        compiled, arrays, grid=2, schedule="taskgraph", block=4
    )
    assert run.taskgraph.n_pruned > 0
    # Pruned tiles are skipped, not deferred: the executed count is the
    # live count.
    assert sum(run.taskgraph.tasks_by_rank) == run.taskgraph.n_tasks


def test_chunkless_chain_runs_where_pipelined_cannot():
    # Both-sign UDV components along dim 1 leave no chunkable dimension:
    # the pipelined schedule refuses outright, the task graph degenerates
    # to a wave-only chain (chunk list ``[None]``) and still runs.
    n = 24
    base = zpl.Region.square(1, n)
    a = zpl.ZArray(base, name="a", fluff=2)
    a._data[...] = 0.5
    with zpl.covering(zpl.Region.of((2, n), (2, n - 1))):
        with zpl.scan(execute=False) as block:
            a[...] = 0.1 + 0.45 * (a.p @ (-1, 1)) + 0.3 * (a.p @ (-1, -1))
    compiled = compile_scan(block)
    assert plan_wavefront(compiled).chunk_dim is None
    with pytest.raises(DistributionError):
        execute(compiled, grid=2, schedule="pipelined")
    run = _assert_matches_vectorized(
        compiled, [a], grid=2, schedule="taskgraph", block=4
    )
    assert run.taskgraph.n_tasks > 1


def test_pool_reuses_plans_and_reports():
    compiled, arrays = _compiled_tomcatv()
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    pool = WorkerPool(2)
    try:
        for rep in range(2):  # second run rides the shipped blob + plans
            runs = []
            got = run_and_capture(
                lambda c: runs.append(
                    pool.execute(c, schedule="taskgraph", block=4)
                ),
                compiled,
                arrays,
            )
            for array, want, have in zip(arrays, oracle, got):
                np.testing.assert_array_equal(
                    have, want, err_msg=f"rep {rep}: array {array.name}"
                )
            assert runs[0].schedule == "taskgraph"
            assert runs[0].taskgraph is not None
            assert runs[0].n_chunks == runs[0].taskgraph.n_tasks
        assert pool.stats["blobs_shipped"] == 2  # once per rank, not per run
    finally:
        pool.close()


def test_schedule_env_knob(monkeypatch):
    compiled, arrays = _compiled_tomcatv(16)
    monkeypatch.setenv("REPRO_SCHEDULE", "taskgraph")
    run = _assert_matches_vectorized(compiled, arrays, grid=2, block=4)
    assert run.schedule == "taskgraph"
    monkeypatch.setenv("REPRO_SCHEDULE", "wavefront-but-wrong")
    with pytest.raises(MachineError, match="REPRO_SCHEDULE"):
        execute(compiled, grid=2)


def test_oversub_env_knob(monkeypatch):
    compiled, arrays = _compiled_tomcatv(16)
    monkeypatch.setenv("REPRO_TASKGRAPH_OVERSUB", "1")
    run = _assert_matches_vectorized(
        compiled, arrays, grid=2, schedule="taskgraph"
    )
    assert run.taskgraph.n_tasks > 0
    monkeypatch.setenv("REPRO_TASKGRAPH_OVERSUB", "three")
    with pytest.raises(MachineError, match="REPRO_TASKGRAPH_OVERSUB"):
        execute(compiled, grid=2, schedule="taskgraph")


# ---------------------------------------------------------------------------
# Sanitizer interop.
# ---------------------------------------------------------------------------
def test_parse_inject_accepts_early_fire():
    assert parse_inject("early-fire:1:7") == ("early-fire", 1, 7)
    assert parse_inject("early-release:0:3") == ("early-release", 0, 3)
    with pytest.raises(SanitizerError):
        parse_inject("late-fire:0:0")


def test_sanitized_taskgraph_clean_run(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.delenv("REPRO_SANITIZE_INJECT", raising=False)
    compiled, arrays = _compiled_tomcatv()
    run = _assert_matches_vectorized(
        compiled, arrays, grid=2, schedule="taskgraph", block=4
    )
    assert run.schedule == "taskgraph"


def test_sanitizer_catches_injected_early_fire(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-fire:1:20")
    compiled, arrays = _compiled_tomcatv()
    with pytest.raises(SanitizerError, match="taskgraph protocol violation"):
        execute(compiled, grid=2, schedule="taskgraph", block=4)
