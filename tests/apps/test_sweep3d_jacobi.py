"""Tests for the SWEEP3D-style transport sweep and the Jacobi example."""

import numpy as np
import pytest

from repro import zpl
from repro.apps import jacobi, sweep3d
from repro.machine import plan_wavefront
from repro.runtime import execute_loopnest, execute_vectorized


class TestOctants:
    def test_eight_octants(self):
        assert len(sweep3d.OCTANTS) == 8
        assert len(set(sweep3d.OCTANTS)) == 8

    def test_octant_directions(self):
        dirs = sweep3d.octant_directions((1, 1, 1))
        assert tuple(tuple(d) for d in dirs) == ((-1, 0, 0), (0, -1, 0), (0, 0, -1))
        dirs = sweep3d.octant_directions((-1, 1, -1))
        assert tuple(tuple(d) for d in dirs) == ((1, 0, 0), (0, -1, 0), (0, 0, 1))

    def test_all_octants_compile_legal(self):
        state = sweep3d.build(6)
        for octant in sweep3d.OCTANTS:
            compiled = sweep3d.compile_octant(state, octant)
            assert compiled.loops.rank == 3
            # Every octant sweep pipelines: at least one wavefront dim.
            assert plan_wavefront(compiled).wavefront_dim in (0, 1, 2)

    def test_octant_signs_match_directions(self):
        state = sweep3d.build(6)
        compiled = sweep3d.compile_octant(state, (1, -1, 1))
        # +1 sweep ascends, -1 sweep descends.
        assert compiled.loops.signs == (1, -1, 1)


class TestSweepValues:
    def test_recurrence_oracle_ppp(self):
        # For the (+,+,+) octant, phi satisfies a forward recurrence we can
        # replay directly in numpy.
        n = 6
        state = sweep3d.build(n, seed=9)
        state.phi.fill(0.0)
        execute_vectorized(sweep3d.compile_octant(state, (1, 1, 1)))
        src = state.src.to_numpy()
        sigma = state.sigma.to_numpy()
        wi, wj, wk = state.weights
        phi = np.zeros((n + 2, n + 2, n + 2))  # pad to handle boundaries
        for i in range(2, n):
            for j in range(2, n):
                for k in range(2, n):
                    phi[i, j, k] = (
                        src[i - 1, j - 1, k - 1]
                        + wi * phi[i - 1, j, k]
                        + wj * phi[i, j - 1, k]
                        + wk * phi[i, j, k - 1]
                    ) / (sigma[i - 1, j - 1, k - 1] + wi + wj + wk)
        got = state.phi.read(state.interior)
        want = phi[2:n, 2:n, 2:n]
        np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_engines_agree(self):
        state1 = sweep3d.build(6, seed=2)
        state2 = sweep3d.build(6, seed=2)
        octant = (-1, 1, -1)
        execute_vectorized(sweep3d.compile_octant(state1, octant))
        execute_loopnest(sweep3d.compile_octant(state2, octant))
        np.testing.assert_allclose(
            state1.phi.to_numpy(), state2.phi.to_numpy(), rtol=1e-13
        )

    def test_source_iteration_accumulates(self):
        state = sweep3d.build(6)
        total = sweep3d.source_iteration(state)
        assert total > 0
        assert np.all(state.flux.read(state.interior) >= 0)

    def test_octant_symmetry(self):
        # With a point source at the exact interior centre and uniform
        # sigma, the eight octant sweeps mirror one another: the summed
        # flux is centrally symmetric.
        n = 7
        state = sweep3d.build(n)
        state.sigma.fill(1.0)
        state.src.fill(0.0)
        state.src.put((4, 4, 4), 1.0)  # centre of interior [2..6]^3
        sweep3d.source_iteration(state)
        flux = state.flux.read(state.interior)
        np.testing.assert_allclose(flux, flux[::-1, ::-1, ::-1], rtol=1e-10)

    def test_profile(self):
        prog = sweep3d.profile(10)
        assert prog.wavefront_fraction() == pytest.approx(1.0 / 1.2, rel=0.01)


class TestJacobi:
    def test_converges(self):
        state = jacobi.build(12)
        iters = jacobi.solve(state, tol=1e-5)
        assert iters < 10_000
        assert state.history[-1] < 1e-5

    def test_monotone_decrease(self):
        state = jacobi.build(12)
        jacobi.solve(state, tol=1e-4)
        deltas = state.history
        assert deltas[-1] < deltas[0]

    def test_solution_bounds(self):
        # Discrete maximum principle: interior values between boundary values.
        state = jacobi.build(10)
        jacobi.solve(state, tol=1e-6)
        interior = state.a.read(state.interior)
        assert np.all(interior >= 0.0)
        assert np.all(interior <= 1.0)

    def test_hot_edge_dominates_nearby(self):
        state = jacobi.build(10)
        jacobi.solve(state, tol=1e-6)
        a = state.a.to_numpy()
        assert a[1, 4] > a[8, 4]  # nearer the hot edge is hotter
