"""Machine-readable benchmark artifacts (``BENCH_*.json``).

Benchmarks write one JSON file per suite so the performance trajectory of
the repository can be tracked across commits by tooling instead of by
reading pytest-benchmark's console tables.  The schema is deliberately
small::

    {
      "schema": "repro-bench/2",
      "schema_version": 2,
      "name": "parallel",
      "written_at": "2026-08-06T12:00:00+00:00",
      "host": {...},            # who measured: python, platform, cpus
      "meta": {...},            # free-form context (sizes, params)
      "results": [...]          # list of measurement records
    }

Version 2 adds ``schema_version`` plus the ``host`` block (python
version/implementation, platform, machine, cpu count) so trajectories
from different machines are comparable; :func:`read_bench` still accepts
version-1 artifacts, whose host fields lived merged into ``meta``.

Files land in ``$REPRO_BENCH_DIR`` when set, else the current directory —
benchmark runs start from the repository root, so artifacts appear beside
``README.md`` by default.
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = "repro-bench/2"
SCHEMA_VERSION = 2

#: Schemas :func:`read_bench` accepts (older artifacts stay loadable).
COMPATIBLE_SCHEMAS = ("repro-bench/1", SCHEMA)

#: Environment override for the artifact directory.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def bench_dir(directory: str | Path | None = None) -> Path:
    """Resolve the artifact directory (arg > env > cwd)."""
    if directory is not None:
        return Path(directory)
    return Path(os.environ.get(BENCH_DIR_ENV, "."))


def host_meta() -> dict:
    """Context every artifact should carry: where was this measured."""
    return {
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "release": platform.release(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def write_bench(
    name: str,
    results: list[dict],
    meta: dict | None = None,
    directory: str | Path | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` atomically; returns the final path."""
    payload = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "written_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": host_meta(),
        "meta": dict(meta or {}),
        "results": results,
    }
    out_dir = bench_dir(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    target = out_dir / f"BENCH_{name}.json"
    tmp = target.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(target)
    return target


def read_bench(name: str, directory: str | Path | None = None) -> dict:
    """Load a previously written artifact (raises on schema mismatch)."""
    path = bench_dir(directory) / f"BENCH_{name}.json"
    payload = json.loads(path.read_text())
    if payload.get("schema") not in COMPATIBLE_SCHEMAS:
        raise ValueError(
            f"{path} has schema {payload.get('schema')!r}, "
            f"want one of {COMPATIBLE_SCHEMAS}"
        )
    return payload
