"""Measured speedup curves: the real backend against its own prediction.

The paper's Fig. 7 plots measured speedup against processors; the simulator
reproduces the *predicted* curve.  This module closes the loop: it runs the
Tomcatv forward-elimination wavefront on real processes for a sweep of
processor counts, runs the virtual-clock simulator at the *measured* machine
parameters for the same configurations, and reports both side by side —
the validation data Model1/Model2 never had in this repository before.

All measured times are minima over repeats (the standard defence against
scheduler noise); every parallel run is verified element-identical to the
sequential vectorised engine before its time is accepted.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro.apps import tomcatv
from repro.compiler.lowering import CompiledScan
from repro.errors import MachineError
from repro.machine.schedules import pipelined_wavefront, plan_wavefront
from repro.parallel.autotune import (
    CommParams,
    effective_params,
    measure_block_overhead,
    measure_comm,
    measure_compute_cost,
    measure_pool_dispatch,
    normalized_params,
    optimal_block_size,
)
from repro.parallel.executor import execute
from repro.parallel.sharedmem import collect_arrays
from repro.runtime.interp import ArraySnapshot
from repro.runtime.vectorized import execute_vectorized
from repro.util.timing import WallTimer


def oversubscription(procs: tuple[int, ...] | int) -> dict:
    """Host-vs-request facts for the bench artifacts.

    On a 1-CPU host a "2-processor speedup" time-slices one core, so the
    measured curve must not be read against Equation (1)'s predictions.
    Returns ``{"cpu_count": ..., "max_procs": ..., "oversubscribed": ...}``
    and emits a :class:`RuntimeWarning` when the host is oversubscribed —
    benchmarks stamp the dict into their artifacts so downstream comparisons
    can filter.
    """
    max_procs = max(procs) if isinstance(procs, tuple) else int(procs)
    cpu_count = os.cpu_count() or 1
    oversubscribed = cpu_count < max_procs
    if oversubscribed:
        warnings.warn(
            f"host has {cpu_count} CPU(s) but the benchmark asks for "
            f"{max_procs} worker process(es); measured speedups are "
            f"time-sliced and must not be compared against Eq. (1) "
            f"predictions",
            RuntimeWarning,
            stacklevel=2,
        )
    return {
        "cpu_count": cpu_count,
        "max_procs": max_procs,
        "oversubscribed": oversubscribed,
    }


def tomcatv_forward(n: int, seed: int = 7) -> CompiledScan:
    """The paper's benchmark kernel: Tomcatv forward elimination at size n.

    Builds a real Tomcatv instance, runs the (parallel) coefficients phase so
    the solve sees physical inputs, and compiles the Fig. 2(b) scan block.
    """
    state = tomcatv.build(n, seed=seed)
    tomcatv.coefficients_phase(state)
    tomcatv.prepare_solve(state)
    return tomcatv.compile_forward(state)


def _timed_serial(compiled: CompiledScan, snap: ArraySnapshot, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        snap.restore()
        timer = WallTimer()
        with timer:
            execute_vectorized(compiled)
        best = min(best, timer.elapsed)
    return best


def speedup_curve(
    n: int = 97,
    procs: tuple[int, ...] = (1, 2),
    block: int | None = None,
    repeats: int = 3,
    schedule: str = "pipelined",
    start_method: str | None = None,
    comm: CommParams | None = None,
    verify: bool = True,
    collect_traces: bool | None = None,
    use_pool: bool = False,
) -> dict:
    """Measured-vs-predicted times for the Tomcatv wavefront.

    Returns a JSON-ready payload: the measured host constants, the serial
    baseline, and one record per processor count with the real wall-clock
    time and the simulator's prediction at the same (measured) machine
    parameters and block size.

    ``collect_traces`` (default: follow ``REPRO_TRACE``) adds one traced
    run per processor count — serialised :mod:`repro.obs` traces under
    ``payload["traces"]``, keyed by processor count, each carrying the
    measured machine model so residual reports work offline.  Traced runs
    are *extra* runs: the timed minima above stay untraced.

    ``use_pool`` runs the sweep through a persistent
    :class:`~repro.parallel.pool.WorkerPool` per processor count — fork,
    pickle and segment creation paid once per ``p`` instead of once per
    repeat, so the timed minima measure the pipeline, not process startup.

    The ``machine`` block reports three dispatch costs: the kernel engine's
    (``dispatch_seconds_per_block``, what the default schedule pays), the
    tree-walking interpreter's (``..._interp``, the pre-kernel cost kept for
    comparability with older artifacts), and the pooled cost (``..._pooled``,
    one token plus one warm dispatch — what Eq. (1) sees under the pool).
    The payload also carries :func:`oversubscription` facts; oversubscribed
    hosts get a :class:`RuntimeWarning` and a marked artifact.
    """
    from repro.obs.trace import Tracer, tracing_enabled

    collect = tracing_enabled() if collect_traces is None else collect_traces
    host = oversubscription(procs)
    compiled = tomcatv_forward(n)
    plan = plan_wavefront(compiled)
    arrays = collect_arrays(compiled)
    compiled.prepare()
    snap = ArraySnapshot(arrays)

    serial_seconds = _timed_serial(compiled, snap, repeats)
    reference = None
    if verify:
        snap.restore()
        execute_vectorized(compiled)
        reference = [a._data.copy() for a in arrays]
        snap.restore()

    if comm is None:
        comm = measure_comm(start_method=start_method)
    compute_seconds = measure_compute_cost(compiled)
    dispatch_seconds = measure_block_overhead(compiled)
    dispatch_interp = measure_block_overhead(compiled, engine="interp")
    snap.restore()
    dispatch_pooled = measure_pool_dispatch(compiled)
    snap.restore()
    params = normalized_params(comm, compute_seconds)

    results = []
    traces: dict[str, dict] = {}
    for p in procs:
        # Equation (1) and the predictions see the *effective* α: real pipe
        # latency plus this p's share of the per-block dispatch overhead —
        # the pooled cost when the pool runs the schedule.
        per_block = dispatch_pooled if use_pool else dispatch_seconds
        effective = effective_params(comm, compute_seconds, per_block, p)
        b = block if block is not None else optimal_block_size(plan, effective, p)
        pool = None
        if use_pool:
            from repro.parallel.pool import WorkerPool

            pool = WorkerPool(p, start_method=start_method)
        measured = float("inf")
        for _ in range(repeats):
            snap.restore()
            run = execute(
                compiled,
                grid=p,
                schedule=schedule,
                block=b,
                start_method=start_method,
                pool=pool,
            )
            measured = min(measured, run.wall_time)
        if reference is not None:
            mismatched = [
                a.name
                for a, ref in zip(arrays, reference)
                if not np.array_equal(a._data, ref)
            ]
            if mismatched:
                raise MachineError(
                    f"parallel backend diverged from execute_vectorized at "
                    f"p={p} on arrays {mismatched}"
                )
        if p >= 2 and schedule == "pipelined":
            sim = pipelined_wavefront(
                compiled, effective, n_procs=p, block_size=b, compute_values=False
            )
            predicted = sim.total_time * compute_seconds
        elif p >= 2:
            from repro.machine.schedules import naive_wavefront

            sim = naive_wavefront(compiled, effective, n_procs=p, compute_values=False)
            predicted = sim.total_time * compute_seconds
        else:
            predicted = compiled.region.size * compute_seconds
        results.append(
            {
                "procs": p,
                "block_size": b,
                "schedule": schedule,
                "pool": use_pool,
                "measured_seconds": measured,
                "predicted_seconds": predicted,
                "alpha_effective": effective.alpha,
                "measured_speedup": serial_seconds / measured,
                "predicted_speedup": (compiled.region.size * compute_seconds)
                / predicted,
                "verified_identical": reference is not None,
            }
        )
        if collect:
            snap.restore()
            tracer = Tracer()
            traced = execute(
                compiled,
                grid=p,
                schedule=schedule,
                block=b,
                start_method=start_method,
                tracer=tracer,
                pool=pool,
            )
            trace = traced.trace
            trace.meta["benchmark"] = "tomcatv-forward"
            trace.meta["model"] = {
                "alpha": effective.alpha,
                "beta": effective.beta,
                "m": max(1, plan.boundary_rows),
                "unit_seconds": compute_seconds,
            }
            traces[str(p)] = trace.to_dict()
        if pool is not None:
            pool.close()
    snap.restore()

    payload_traces = {"traces": traces} if collect else {}
    return {
        **payload_traces,
        "benchmark": "tomcatv-forward",
        "n": n,
        "region_size": compiled.region.size,
        "serial_seconds": serial_seconds,
        "host": host,
        "oversubscribed": host["oversubscribed"],
        "machine": {
            "alpha_seconds": comm.alpha_seconds,
            "beta_seconds": comm.beta_seconds,
            "dispatch_seconds_per_block": dispatch_seconds,
            "dispatch_seconds_per_block_interp": dispatch_interp,
            "dispatch_seconds_per_block_pooled": dispatch_pooled,
            "compute_seconds_per_element": compute_seconds,
            "alpha_normalized": params.alpha,
            "beta_normalized": params.beta,
            "comm_samples": [list(s) for s in comm.samples],
        },
        "results": results,
    }
