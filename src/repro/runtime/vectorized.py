"""Vectorised sequential engine: the production uniprocessor runtime.

The derived loop structure partitions the dimensions into *looped* dimensions
(serial and pipelined — those carrying dependences) and *parallel* dimensions
(no true dependence component).  This engine runs a Python loop only over the
looped dimensions, in loop order with the derived traversal signs, and
evaluates each statement over the full parallel extent with numpy — the idiom
the HPC guides call "vectorise the inner loops, keep the carried loop outside".

For the common wavefront case (e.g. Tomcatv's WSV ``(-, 0)``) this means one
Python iteration per row and numpy kernels across the row, which is both fast
and exactly the shape a compiler would emit for the pipelined inner blocks.

Per-slab correctness argument: statements run in lexical order; each statement
fully evaluates its right-hand side over the slab before storing (array
semantics within the slab).  Any flow of *new* values along a dimension would
make that dimension non-parallel (it would carry a true dependence), so
vectorising the parallel dimensions can never read a value too early; and
anti-dependences within the slab are respected because evaluation precedes
assignment.

By default the per-iteration interpretation is skipped entirely: the block is
lowered once into ahead-of-time statement kernels (:mod:`repro.runtime.kernels`)
with pre-resolved slice tuples and a compile-time aliasing decision, and the
loop below only runs as the fallback/escape-hatch engine (``engine="interp"``
or ``REPRO_KERNELS=0``).  Both paths are bit-identical by construction and by
the property tests.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.compiler.lowering import CompiledScan
from repro.compiler.wsv import DimClass
from repro.runtime.kernels import (
    resolve_engine,
    statement_needs_copy,
    try_execute_kernels,
)
from repro.zpl.arrays import ZArray
from repro.zpl.regions import Region


def execute_vectorized(
    compiled: CompiledScan,
    within: Region | None = None,
    *,
    engine: str | None = None,
    tracer=None,
) -> None:
    """Run the compiled group, vectorising the parallel dimensions.

    ``within`` restricts execution to a sub-region of the compiled region —
    the distributed executor uses this to run one processor's portion (or one
    pipeline block) with identical code.

    ``engine`` selects the implementation: ``"kernel"`` (the default, also
    via ``REPRO_ENGINE``) executes ahead-of-time compiled statement kernels,
    auto-selecting the hyperplane-skewed plan family for multi-dependence
    wavefronts; ``"flat"`` keeps the kernels but never skews; ``"interp"``
    walks the expression trees per slab (the original engine).  ``tracer``
    (a :class:`repro.obs.Tracer`) records kernel-compile spans and
    plan-cache counters when given.
    """
    mode = resolve_engine(engine)
    if mode != "interp" and try_execute_kernels(
        compiled, within, tracer=tracer, engine=mode
    ):
        return
    compiled.prepare()
    region = compiled.region if within is None else compiled.region.intersect(within)
    if region.is_empty():
        return
    loops = compiled.loops
    looped_dims = [
        dim for dim in loops.order if loops.classes[dim] is not DimClass.PARALLEL
    ]
    looped_ranges = [loops.indices(region, dim) for dim in looped_dims]
    statements = compiled.statements
    contracted_ids = {id(a) for a in compiled.contracted}
    # The copy-or-not aliasing question is loop-invariant (the same arrays
    # flow through every slab), so decide it once per call, not per slab.
    copy_flags = tuple(
        statement_needs_copy(stmt, contracted_ids) for stmt in statements
    )
    buffers: dict[int, np.ndarray] = {}

    def reader(array: ZArray, shifted: Region, primed: bool) -> np.ndarray:
        if id(array) in contracted_ids and id(array) in buffers:
            # Contracted arrays are only read unprimed at zero shift, so the
            # read slab is exactly the current iteration's buffer.
            return buffers[id(array)]
        return array.read(shifted)

    for ordered in itertools.product(*looped_ranges):
        slab = region
        for dim, value in zip(looped_dims, ordered):
            slab = slab.slab(dim, value, value)
        buffers.clear()
        for stmt, needs_copy in zip(statements, copy_flags):
            values = stmt.expr.evaluate(slab, reader)
            if id(stmt.target) in contracted_ids:
                buffers[id(stmt.target)] = np.broadcast_to(
                    np.asarray(values, dtype=float), slab.shape
                )
                continue
            if needs_copy and isinstance(values, np.ndarray):
                values = values.copy()
            if stmt.mask is not None:
                keep = stmt.mask.read(slab) != 0
                values = np.where(keep, values, stmt.target.read(slab))
            stmt.target.write(slab, values)
