"""Golden snapshots of the rendered diagnostics.

These pin the user-facing text — header format, arrow line, gutter, caret
underlines, because/help chain — per code.  A deliberate renderer change
means updating the goldens; an accidental one fails loudly here.
"""

import textwrap

from repro.analyze.diagnostics import render_all
from repro.analyze.passes import lint_program
from repro.zpl import Region, ZArray
from repro.zpl.parser import parse_program


def _render(source, code):
    arrays = {
        name: ZArray(Region.square(1, 16), name=name, fill=0.5)
        for name in ("a", "b", "c")
    }
    program = parse_program(
        source, arrays, constants={"n": 16}, filename="t.zpl"
    )
    found = [d for d in lint_program(program) if d.code == code]
    assert found, f"expected {code} to fire"
    return render_all(found, source=source, filename="t.zpl")


def golden(text: str) -> str:
    return textwrap.dedent(text).strip("\n")


def test_golden_e001_undefined_prime():
    assert _render(
        "[2..n, 1..n] scan\n  a := b'@north;\nend;\n", "E001"
    ) == golden("""
        error[E001]: statement 0 primes 'b', but the scan block never defines it: primed arrays must be assigned in the block
          --> t.zpl:2:8
          |
        2 |   a := b'@north;
          |        ^^^^^^^^
          = because: primed reference b'@north in statement 0
          = because: the block defines only: a
          = help: drop the prime to read 'b''s old values, or assign 'b' inside the block
    """)


def test_golden_e002_overconstrained():
    assert _render(
        "[2..n-1, 1..n] scan\n  a := a'@north + a'@south;\nend;\n", "E002"
    ) == golden("""
        error[E002]: the directions on primed references over-constrain the scan block: no loop nest can respect every dependence
          --> t.zpl:2:8
          |
        2 |   a := a'@north + a'@south;
          |        ^^^^^^^^
          = because: true dependence (1, 0) on 'a' (S0 -> S0)
          = because: true dependence (-1, 0) on 'a' (S0 -> S0)
          = help: remove one of the conflicting primed shifts, or split the block so each part admits a traversal order
    """)


def test_golden_e006_unshifted_prime():
    assert _render(
        "[2..n, 1..n] scan\n  a := a';\nend;\n", "E006"
    ) == golden("""
        error[E006]: statement 0 primes 'a' without a shift: an unshifted primed reference would name a value of the current iteration
          --> t.zpl:2:8
          |
        2 |   a := a';
          |        ^^
          = because: primed reference a' has the zero offset
          = help: shift the reference (e.g. a'@north) so it names a previously computed value
    """)


def test_golden_w104_redundant_prime():
    assert _render(
        "[2..n, 1..n] scan\n  a := a'@north;\n  b := a'@north;\nend;\n",
        "W104",
    ) == golden("""
        warning[W104]: statement 1: redundant prime on 'a' — every write of 'a' is lexically earlier, so the unprimed reference names the same wavefront value
          --> t.zpl:3:8
          |
        3 |   b := a'@north;
          |        ^^^^^^^^
          = because: primed and unprimed reads of 'a' both extract a true dependence with vector (1, 0)
          = help: drop the prime
    """)


def test_golden_w106_dead_store_with_label():
    assert _render(
        "[1..n, 1..n] a := 1.0;\n"
        "[1..n, 1..n] a := 2.0;\n"
        "[1..n, 1..n] b := a;\n"
        "[1..n, 1..n] c := b;\n",
        "W106",
    ) == golden("""
        warning[W106]: dead store to 'a': a later statement overwrites all of [1..16,1..16] before anything reads it
          --> t.zpl:1:14
          |
        1 | [1..n, 1..n] a := 1.0;
          |              ^^^^^^^^^
        2 | [1..n, 1..n] a := 2.0;
          |              ^^^^^^^^^ overwritten here
          = because: the overwriting statement covers [1..16,1..16] unmasked
          = help: delete this statement
    """)
