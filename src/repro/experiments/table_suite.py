"""The conclusion's promised study: the wavefront suite and b* dynamism.

"We will also develop a benchmark suite of wavefront computations in order to
evaluate our design and implementation and investigate their properties, such
as dynamism of optimal block size."

For every kernel in :mod:`repro.apps.suite` and every machine preset, this
experiment reports the optimal block size chosen by the three selectors
(static Equation (1), two-probe profiled, dynamic ternary search) against the
exhaustive simulated optimum, plus the quality (time penalty) of each choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import suite
from repro.experiments.common import heading
from repro.machine.params import PRESETS, MachineParams
from repro.models.tuning import (
    make_simulated_probe,
    select_dynamic,
    select_profiled,
    select_static,
)
from repro.util.tables import Table

DESCRIPTION = "Suite study: dynamism and selection quality of the optimal block size"


@dataclass(frozen=True)
class SuiteRow:
    kernel: str
    machine: str
    exhaustive_b: int
    static_b: int
    profiled_b: int
    dynamic_b: int
    static_penalty: float
    profiled_penalty: float
    dynamic_penalty: float
    dynamic_probes: int


@dataclass(frozen=True)
class SuiteStudyResult:
    n: int
    p: int
    rows: tuple[SuiteRow, ...]

    def report(self) -> str:
        table = Table(
            f"Block-size selection across the wavefront suite (n={self.n}, p={self.p})",
            [
                "kernel", "machine", "best b", "static", "profiled", "dynamic",
                "static +%", "profiled +%", "dynamic +%", "probes",
            ],
            precision=2,
        )
        for r in self.rows:
            table.add_row(
                r.kernel, r.machine, r.exhaustive_b,
                r.static_b, r.profiled_b, r.dynamic_b,
                100 * (r.static_penalty - 1), 100 * (r.profiled_penalty - 1),
                100 * (r.dynamic_penalty - 1), r.dynamic_probes,
            )
        return (
            heading("Suite study — dynamism of the optimal block size")
            + "\n"
            + table.render()
            + "\n\nb* moves with the machine (alpha/beta) and with the kernel's "
            "boundary traffic; all three selectors stay within a few percent "
            "of the exhaustive optimum."
        )

    def worst_penalty(self, strategy: str) -> float:
        attr = f"{strategy}_penalty"
        return max(getattr(r, attr) for r in self.rows)


def run(n: int = 129, p: int = 8, quick: bool = False) -> SuiteStudyResult:
    """Run the study over every (kernel, machine) pair."""
    if quick:
        n = min(n, 65)
    rows = []
    machines: dict[str, MachineParams] = PRESETS
    for entry in suite.SUITE:
        compiled = entry.build(n)
        for key, params in machines.items():
            probe = make_simulated_probe(compiled, params, p)
            from repro.machine import plan_wavefront

            plan = plan_wavefront(compiled)
            cols = (
                compiled.region.extent(plan.chunk_dim)
                if plan.chunk_dim is not None
                else 1
            )
            sweep = {b: probe(b) for b in range(1, cols + 1)}
            best_b = min(sweep, key=sweep.get)
            best_t = sweep[best_b]
            static = select_static(compiled, params, p)
            profiled = select_profiled(
                compiled, params, p, probe=probe,
                probe_sizes=(2, min(16, cols)),
            )
            dynamic = select_dynamic(compiled, params, p, probe=probe)
            rows.append(
                SuiteRow(
                    kernel=entry.name,
                    machine=key,
                    exhaustive_b=best_b,
                    static_b=static.block_size,
                    profiled_b=profiled.block_size,
                    dynamic_b=dynamic.block_size,
                    static_penalty=sweep[min(static.block_size, cols)] / best_t,
                    profiled_penalty=sweep[min(profiled.block_size, cols)] / best_t,
                    dynamic_penalty=sweep[min(dynamic.block_size, cols)] / best_t,
                    dynamic_probes=dynamic.probes,
                )
            )
    return SuiteStudyResult(n=n, p=p, rows=tuple(rows))
