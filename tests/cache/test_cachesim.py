"""Tests for the cache simulators."""

import numpy as np
import pytest

from repro.errors import CacheConfigError
from repro.machine.params import CacheGeometry
from repro.cache.cachesim import (
    CacheResult,
    simulate,
    simulate_direct_mapped,
    simulate_lru,
)

DM = CacheGeometry(size_elems=64, line_elems=4, ways=1, miss_penalty=10.0, hit_time=0.5)
TWO_WAY = CacheGeometry(size_elems=64, line_elems=4, ways=2, miss_penalty=10.0)


class TestDirectMapped:
    def test_empty_trace(self):
        result = simulate_direct_mapped(np.array([], dtype=np.int64), DM)
        assert result.accesses == 0 and result.misses == 0

    def test_cold_miss_then_hits(self):
        # Same line: 1 miss + 3 hits.
        result = simulate_direct_mapped(np.array([0, 1, 2, 3]), DM)
        assert result.misses == 1
        assert result.hits == 3

    def test_sequential_sweep_miss_rate(self):
        # Sequential sweep: one miss per line.
        trace = np.arange(4096, dtype=np.int64)
        result = simulate_direct_mapped(trace, DM)
        assert result.misses == 4096 // DM.line_elems
        assert result.miss_rate == pytest.approx(0.25)

    def test_conflict_misses(self):
        # 16 sets * 4 elements: addresses 0 and 64 map to the same set,
        # different lines -> every access misses.
        trace = np.array([0, 64, 0, 64, 0, 64])
        result = simulate_direct_mapped(trace, DM)
        assert result.misses == 6

    def test_distinct_sets_no_conflict(self):
        trace = np.array([0, 4, 0, 4, 0, 4])  # different sets
        result = simulate_direct_mapped(trace, DM)
        assert result.misses == 2

    def test_ways_must_be_one(self):
        with pytest.raises(CacheConfigError):
            simulate_direct_mapped(np.array([0]), TWO_WAY)

    def test_negative_address_rejected(self):
        with pytest.raises(CacheConfigError):
            simulate_direct_mapped(np.array([-1]), DM)


class TestLRU:
    def test_two_way_absorbs_pairwise_conflict(self):
        # Two lines in the same set fit in a 2-way cache: only cold misses.
        trace = np.array([0, 64, 0, 64, 0, 64])
        result = simulate_lru(trace, TWO_WAY)
        assert result.misses == 2

    def test_three_way_conflict_thrashes_two_way(self):
        # Three lines, same set, LRU: every access misses.
        trace = np.array([0, 64, 128] * 4)
        result = simulate_lru(trace, TWO_WAY)
        assert result.misses == 12

    def test_lru_eviction_order(self):
        # Access A, B, then A again (A becomes MRU), then C (evicts B).
        trace = np.array([0, 64, 0, 128, 64])
        result = simulate_lru(trace, TWO_WAY)
        # misses: A, B, C, and B again (evicted) = 4; hit: second A.
        assert result.misses == 4

    def test_matches_direct_mapped_when_one_way(self):
        rng = np.random.default_rng(42)
        trace = rng.integers(0, 1024, size=5000)
        a = simulate_direct_mapped(trace, DM)
        b = simulate_lru(trace, DM)
        assert a.misses == b.misses

    def test_dispatch(self):
        trace = np.array([0, 64, 0])
        assert simulate(trace, DM).misses == 3
        assert simulate(trace, TWO_WAY).misses == 2


class TestResult:
    def test_time_model(self):
        result = CacheResult(accesses=100, misses=10)
        geometry = DM
        assert result.time(geometry, compute=50.0) == pytest.approx(
            50.0 + 100 * 0.5 + 10 * 10.0
        )

    def test_miss_rate_empty(self):
        assert CacheResult(0, 0).miss_rate == 0.0

    def test_repr(self):
        assert "rate=0.100" in repr(CacheResult(100, 10))
