"""Unit tests for direction vectors."""

import pytest

from repro import zpl
from repro.errors import DirectionError
from repro.zpl.directions import Direction, as_direction


class TestConstruction:
    def test_offsets_roundtrip(self):
        d = Direction((-1, 2, 0))
        assert d.offsets == (-1, 2, 0)
        assert d.rank == 3

    def test_name_is_optional(self):
        assert Direction((1,)).name is None
        assert Direction((1,), "down").name == "down"

    def test_empty_rejected(self):
        with pytest.raises(DirectionError):
            Direction(())

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            Direction((1.5, 0))

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            Direction((True, 0))


class TestCardinals:
    def test_paper_vectors(self):
        # Paper Section 2.1: north, south, west, east definitions.
        assert zpl.NORTH.offsets == (-1, 0)
        assert zpl.SOUTH.offsets == (1, 0)
        assert zpl.WEST.offsets == (0, -1)
        assert zpl.EAST.offsets == (0, 1)

    def test_cardinals_are_cardinal(self):
        for d in zpl.CARDINALS_2D + zpl.CARDINALS_3D:
            assert d.is_cardinal()

    def test_diagonals_are_not_cardinal(self):
        for d in zpl.DIAGONALS_2D:
            assert not d.is_cardinal()

    def test_opposites(self):
        assert -zpl.NORTH == zpl.SOUTH
        assert -zpl.WEST == zpl.EAST


class TestAlgebra:
    def test_addition(self):
        assert (zpl.NORTH + zpl.WEST) == zpl.NORTHWEST

    def test_addition_rank_mismatch(self):
        with pytest.raises(DirectionError):
            zpl.NORTH + zpl.ABOVE

    def test_zero_detection(self):
        assert Direction((0, 0)).is_zero()
        assert not zpl.NORTH.is_zero()
        assert (zpl.NORTH + zpl.SOUTH).is_zero()

    def test_equality_with_tuple(self):
        assert zpl.NORTH == (-1, 0)
        assert zpl.NORTH != (1, 0)

    def test_hashable(self):
        assert len({zpl.NORTH, Direction((-1, 0)), zpl.SOUTH}) == 2

    def test_iteration_and_indexing(self):
        assert list(zpl.NORTHEAST) == [-1, 1]
        assert zpl.NORTHEAST[1] == 1
        assert len(zpl.NORTHEAST) == 2


class TestCoercion:
    def test_as_direction_passthrough(self):
        assert as_direction(zpl.NORTH) is zpl.NORTH

    def test_as_direction_from_tuple(self):
        assert as_direction((0, -2)).offsets == (0, -2)

    def test_as_direction_from_list(self):
        assert as_direction([3, 0]).offsets == (3, 0)

    def test_rank_check(self):
        with pytest.raises(DirectionError):
            as_direction((1, 0), rank=3)

    def test_garbage_rejected(self):
        with pytest.raises(DirectionError):
            as_direction("north")

    def test_repr_uses_name(self):
        assert repr(zpl.NORTH) == "north"
        assert "(-1, 2)" in repr(Direction((-1, 2)))
