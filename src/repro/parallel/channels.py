"""Point-to-point synchronisation channels between pipeline workers.

Data lives in shared memory (:mod:`repro.parallel.sharedmem`); what flows
between workers is *ordering*.  Each adjacent pair along a pipeline chain is
connected by a one-directional :func:`multiprocessing.Pipe`, and a worker
publishes "my block ``k`` is computed" by sending the integer ``k`` downstream.
The receive therefore plays exactly the role of the paper's blocking receive:
the successor cannot start block ``k`` before its predecessor finished it,
which is the entire dependence structure of the pipelined schedule.

Every token crossing costs one real pipe round through the kernel — that is
the per-message α the autotuner measures, and why the measured machine still
obeys the α+β model even though no array data rides on the messages.
"""

from __future__ import annotations

from multiprocessing.connection import Connection
from typing import Mapping

from repro.errors import MachineError


def chain_links(
    ctx, chains: list[list[int]]
) -> Mapping[int, tuple[Connection | None, Connection | None]]:
    """Build the pipe fabric for a set of independent pipeline chains.

    ``chains`` lists processor ranks in wave order, one list per chain.
    Returns ``{rank: (recv_from_pred, send_to_succ)}`` with ``None`` at the
    chain ends.  ``ctx`` is the multiprocessing context the workers will be
    spawned from (pipes must come from the same context).
    """
    links: dict[int, list[Connection | None]] = {}
    for chain in chains:
        if not chain:
            raise MachineError("empty pipeline chain in chain layout")
        for rank in chain:
            if rank in links:
                raise MachineError(f"processor {rank} appears in two chains")
            links[rank] = [None, None]
        for upstream, downstream in zip(chain, chain[1:]):
            recv_end, send_end = ctx.Pipe(duplex=False)
            links[upstream][1] = send_end
            links[downstream][0] = recv_end
    return {rank: (pair[0], pair[1]) for rank, pair in links.items()}


def send_token(conn: Connection, k: int) -> None:
    """Publish completion of block ``k`` downstream."""
    conn.send(k)


def _peer_label(peer: int | None) -> str:
    return "predecessor" if peer is None else f"predecessor rank {peer}"


def recv_token(
    conn: Connection, k: int, timeout: float, peer: int | None = None
) -> None:
    """Block until the predecessor finishes block ``k``.

    A bounded wait keeps a crashed predecessor from hanging the whole
    pipeline; the executor turns the raised error into a clean teardown.
    """
    if not conn.poll(timeout):
        raise MachineError(
            f"timed out after {timeout:.2f}s waiting for pipeline block {k} "
            f"from {_peer_label(peer)}"
        )
    got = conn.recv()
    if got != k:
        raise MachineError(f"pipeline protocol error: expected block {k}, got {got}")


def send_clocked_token(conn: Connection, k: int, clocks: tuple[int, ...]) -> None:
    """Sanitized send: the token carries the sender's vector clock.

    Only the race sanitizer (:mod:`repro.analyze.sanitizer`) uses the
    clocked protocol; a run mixes clocked and plain tokens never.
    """
    conn.send((k, clocks))


def recv_clocked_token(
    conn: Connection, k: int, timeout: float, peer: int | None = None
) -> tuple[int, ...]:
    """Sanitized receive: return the clock that rode on token ``k``."""
    if not conn.poll(timeout):
        raise MachineError(
            f"timed out after {timeout:.2f}s waiting for pipeline block {k} "
            f"from {_peer_label(peer)}"
        )
    got = conn.recv()
    if not (isinstance(got, tuple) and len(got) == 2 and got[0] == k):
        raise MachineError(
            f"pipeline protocol error: expected clocked block {k}, got {got!r}"
        )
    return got[1]
