"""Distributed execution schedules for compiled scan blocks.

Three ways to run a wavefront on the simulated machine (paper Fig. 4 and
Section 4):

* :func:`naive_wavefront` — each processor waits for its entire boundary,
  computes its whole local block, then forwards (Fig. 4(a)).  No parallelism
  along the wavefront dimension.
* :func:`pipelined_wavefront` — each processor works in blocks of ``b``
  columns, forwarding each block's boundary as soon as it is computed
  (Fig. 4(b)).  The naive schedule is the special case ``b = full width``.
* :func:`transpose_wavefront` — the alternative the paper's Section 2.2
  discusses: redistribute the data so the wavefront dimension is local,
  compute with no pipelining, and redistribute back (two all-to-alls).

All schedules operate on a real :class:`~repro.compiler.lowering.CompiledScan`;
with ``compute_values=True`` the actual element values are produced (and are
bit-identical to the sequential engines — the simulation's event order
respects every dependence), while the virtual clock charges the α+β model.
``compute_values=False`` skips the numpy work for large timing sweeps.

Terminology: the *wavefront dimension* ``w`` is distributed across the
processors; the *chunk dimension* ``c`` is blocked into pipeline chunks of
width ``b``.  Boundary data of the block-written arrays flows with the wave;
halo data of arrays the block only reads is pre-exchanged before the pipeline
starts (their values are loop-invariant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

from repro.compiler.lowering import CompiledScan
from repro.compiler.wsv import DimClass
from repro.errors import DistributionError, MachineError
from repro.machine.comm import Endpoint
from repro.machine.distribution import BlockMap
from repro.machine.grid import ProcessorGrid
from repro.machine.params import MachineParams
from repro.machine.simulator import Machine, RunResult
from repro.runtime.vectorized import execute_vectorized
from repro.zpl.regions import Region

#: Tag used by the pre-pipeline halo exchange.
HALO_TAG = -1


@dataclass(frozen=True)
class WavefrontPlan:
    """Static facts a distributed schedule needs about a compiled block."""

    compiled: CompiledScan
    #: The distributed dimension the wavefront travels along.
    wavefront_dim: int
    #: The dimension blocked into pipeline chunks (None: nothing chunkable).
    chunk_dim: int | None
    #: Per boundary crossing: elements per unit of chunk width that must flow
    #: with the wave (sum over block-written arrays of their shift depths).
    boundary_rows: int
    #: Same, for arrays the block only reads (pre-exchanged halo).
    halo_rows: int

    @property
    def region(self) -> Region:
        return self.compiled.region


def _chunkable(compiled: CompiledScan, dim: int) -> bool:
    """A dimension is chunkable when every UDV component along it has one
    consistent sign (or zero): iterating chunks in that direction then
    respects all cross-chunk dependences."""
    signs = {
        (1 if d.vector[dim] > 0 else -1)
        for d in compiled.dependences
        if d.vector[dim] != 0
    }
    return len(signs) <= 1


def plan_wavefront(compiled: CompiledScan, wavefront_dim: int | None = None) -> WavefrontPlan:
    """Derive the distribution plan for a compiled scan block.

    ``wavefront_dim`` defaults to the compiler's first pipelined dimension.
    Raises :class:`DistributionError` when the block has no wavefront (use the
    fully parallel schedule) or the requested dimension carries no wavefront.
    """
    loops = compiled.loops
    if wavefront_dim is None:
        if not loops.wavefront_dims:
            raise DistributionError(
                "block has no pipelined dimension; use parallel_schedule"
            )
        wavefront_dim = loops.wavefront_dims[0]
    elif wavefront_dim not in loops.wavefront_dims:
        raise DistributionError(
            f"dimension {wavefront_dim} is not a wavefront dimension "
            f"(wavefront dims: {loops.wavefront_dims})"
        )

    chunk_dim = None
    for dim in loops.order[::-1]:  # prefer inner (parallel) dimensions
        if dim != wavefront_dim and _chunkable(compiled, dim):
            chunk_dim = dim
            break

    written = {id(a) for a in compiled.written_arrays()}
    boundary_rows = 0
    halo_rows = 0
    per_array_written: dict[int, int] = {}
    per_array_read: dict[int, int] = {}
    for stmt in compiled.statements:
        for ref in stmt.expr.refs():
            depth = abs(ref.offset[wavefront_dim])
            if depth == 0:
                continue
            key = id(ref.array)
            if key in written:
                per_array_written[key] = max(per_array_written.get(key, 0), depth)
            else:
                per_array_read[key] = max(per_array_read.get(key, 0), depth)
    boundary_rows = sum(per_array_written.values())
    halo_rows = sum(per_array_read.values())
    return WavefrontPlan(compiled, wavefront_dim, chunk_dim, boundary_rows, halo_rows)


@dataclass(frozen=True)
class DistributedOutcome:
    """Result of one distributed run: timing plus schedule facts."""

    run: RunResult
    plan: WavefrontPlan
    n_procs: int
    block_size: int | None
    n_chunks: int
    schedule: str

    @property
    def total_time(self) -> float:
        return self.run.total_time

    def __repr__(self) -> str:
        return (
            f"DistributedOutcome({self.schedule}, p={self.n_procs}, "
            f"b={self.block_size}, t={self.total_time:.1f})"
        )


def _chunk_regions(region: Region, dim: int, width: int, reverse: bool) -> list[Region]:
    """Split ``region`` along ``dim`` into blocks of at most ``width``."""
    lo, hi = region.range(dim)
    chunks = []
    cursor = lo
    while cursor <= hi:
        top = min(cursor + width - 1, hi)
        chunks.append(region.slab(dim, cursor, top))
        cursor = top + 1
    return chunks[::-1] if reverse else chunks


def taskgraph_intervals(
    plan: WavefrontPlan,
    locals_by_rank: Sequence[Region],
    oversub: int,
    block_size: int,
) -> tuple[list[tuple[int, int, int]], list[tuple[int, int] | None]]:
    """The two tiling axes of a task-graph decomposition.

    Returns ``(wave, chunk)``:

    * ``wave`` — ``(lo, hi, home_rank)`` intervals along the wavefront
      dimension, in traversal order.  Each rank's static local slab (the
      same :class:`~repro.machine.distribution.BlockMap` split the
      pipelined schedule uses, so locality matches) is over-decomposed
      into up to ``oversub`` sub-slabs: the slack the stealing scheduler
      rebalances when per-block costs are skewed.
    * ``chunk`` — ``(lo, hi)`` intervals along the chunk dimension in
      traversal order, with exactly the pipelined schedule's block
      boundaries (:func:`_chunk_regions` at ``block_size``), or ``[None]``
      when the block has no chunkable dimension (rank-1 chains taskgraph
      can still run, one tile per wave slab).
    """
    region = plan.region
    loops = plan.compiled.loops
    w, c = plan.wavefront_dim, plan.chunk_dim
    wave: list[tuple[int, int, int]] = []
    for rank, local in enumerate(locals_by_rank):
        if local.is_empty():
            continue
        for piece in local.split(w, max(1, min(oversub, local.extent(w)))):
            if not piece.is_empty():
                lo, hi = piece.range(w)
                wave.append((lo, hi, rank))
    wave.sort(key=lambda t: t[0], reverse=loops.signs[w] < 0)
    if c is None:
        return wave, [None]
    reverse = loops.signs[c] < 0
    chunk = [
        piece.range(c)
        for piece in _chunk_regions(region, c, max(1, block_size), reverse)
    ]
    return wave, chunk


def pipelined_wavefront(
    compiled: CompiledScan,
    params: MachineParams,
    n_procs: int,
    block_size: int,
    wavefront_dim: int | None = None,
    compute_values: bool = True,
    work_per_element: float = 1.0,
    send_overhead: float = 0.0,
    wire_latency: float = 0.0,
    trace_activity: bool = False,
    tracer=None,
) -> DistributedOutcome:
    """Run a scan block with pipelined communication (paper Section 4).

    The region is block distributed across ``n_procs`` along the wavefront
    dimension; each processor computes blocks of ``block_size`` along the
    chunk dimension, forwarding boundaries eagerly.
    """
    if n_procs < 1:
        raise MachineError(f"n_procs must be >= 1, got {n_procs}")
    if block_size < 1:
        raise MachineError(f"block_size must be >= 1, got {block_size}")
    plan = plan_wavefront(compiled, wavefront_dim)
    if plan.chunk_dim is None and n_procs > 1:
        raise DistributionError(
            "no chunkable dimension: this block cannot be pipelined"
        )
    return _run_wavefront(
        plan,
        params,
        n_procs,
        block_size,
        compute_values,
        work_per_element,
        send_overhead,
        wire_latency,
        schedule="pipelined",
        trace_activity=trace_activity,
        tracer=tracer,
    )


def naive_wavefront(
    compiled: CompiledScan,
    params: MachineParams,
    n_procs: int,
    wavefront_dim: int | None = None,
    compute_values: bool = True,
    work_per_element: float = 1.0,
    send_overhead: float = 0.0,
    wire_latency: float = 0.0,
    trace_activity: bool = False,
    tracer=None,
) -> DistributedOutcome:
    """Run a scan block with naive (whole-block) communication (Fig. 4(a))."""
    plan = plan_wavefront(compiled, wavefront_dim)
    full = 1 if plan.chunk_dim is None else plan.region.extent(plan.chunk_dim)
    return _run_wavefront(
        plan,
        params,
        n_procs,
        max(1, full),
        compute_values,
        work_per_element,
        send_overhead,
        wire_latency,
        schedule="naive",
        trace_activity=trace_activity,
        tracer=tracer,
    )


def _run_wavefront(
    plan: WavefrontPlan,
    params: MachineParams,
    n_procs: int,
    block_size: int,
    compute_values: bool,
    work_per_element: float,
    send_overhead: float,
    wire_latency: float,
    schedule: str,
    trace_activity: bool = False,
    tracer=None,
) -> DistributedOutcome:
    compiled = plan.compiled
    region = plan.region
    w = plan.wavefront_dim
    loops = compiled.loops
    grid = ProcessorGrid((n_procs,))
    dist = BlockMap(region, grid, tuple(0 if k == w else None for k in range(region.rank)))

    if plan.chunk_dim is None:
        chunks = [region]
    else:
        reverse = loops.signs[plan.chunk_dim] < 0
        chunks = _chunk_regions(region, plan.chunk_dim, block_size, reverse)

    # Processor chain order along the wave: ascending local regions for
    # ascending traversal, reversed otherwise.
    chain = list(range(n_procs))
    if loops.signs[w] < 0:
        chain.reverse()

    if compute_values:
        compiled.prepare()

    machine = Machine(
        params,
        n_procs,
        send_overhead=send_overhead,
        wire_latency=wire_latency,
        trace_activity=trace_activity,
        tracer=tracer,
    )

    def body(ep: Endpoint, position: int) -> Generator:
        proc = chain[position]
        local = dist.local_region(proc)
        pred = chain[position - 1] if position > 0 else None
        succ = chain[position + 1] if position + 1 < n_procs else None
        local_width = (
            local.extent(plan.chunk_dim) if plan.chunk_dim is not None else 1
        )
        # Pre-exchange the read-only halo (old values, off the critical path
        # of the wave: a single message before the pipeline starts).
        if succ is not None and plan.halo_rows > 0:
            ep.send(succ, size=max(1, plan.halo_rows * local_width), tag=HALO_TAG)
        if pred is not None and plan.halo_rows > 0:
            yield from ep.recv(pred, tag=HALO_TAG)
        for k, chunk in enumerate(chunks):
            local_chunk = local.intersect(chunk)
            chunk_width = (
                chunk.extent(plan.chunk_dim) if plan.chunk_dim is not None else 1
            )
            if pred is not None and plan.boundary_rows > 0:
                yield from ep.recv(pred, tag=k)
            if not local_chunk.is_empty():
                if compute_values:
                    execute_vectorized(compiled, within=local_chunk)
                yield from ep.compute(
                    local_chunk.size * work_per_element, label=k
                )
            if succ is not None and plan.boundary_rows > 0:
                ep.send(
                    succ,
                    size=max(1, plan.boundary_rows * chunk_width),
                    tag=k,
                )
        return

    for position in range(n_procs):
        rank = chain[position]
        machine.sim.process(body(machine.endpoint(rank), position), name=f"proc{rank}")

    run = machine.run()
    return DistributedOutcome(
        run=run,
        plan=plan,
        n_procs=n_procs,
        block_size=block_size,
        n_chunks=len(chunks),
        schedule=schedule,
    )


def parallel_schedule(
    compiled: CompiledScan,
    params: MachineParams,
    n_procs: int,
    dist_dim: int = 0,
    compute_values: bool = True,
    work_per_element: float = 1.0,
) -> DistributedOutcome:
    """Run a dependence-free (non-wavefront) block fully in parallel.

    Each processor exchanges whatever halo its shifted references need along
    the distributed dimension, then computes its local portion.  Used for the
    parallel phases of whole-program simulations (Fig. 7's baseline parts).
    """
    region = compiled.region
    loops = compiled.loops
    if loops.classes[dist_dim] is not DimClass.PARALLEL:
        raise DistributionError(
            f"dimension {dist_dim} carries a wavefront; use pipelined_wavefront"
        )
    grid = ProcessorGrid((n_procs,))
    dist = BlockMap(
        region, grid, tuple(0 if k == dist_dim else None for k in range(region.rank))
    )
    # Halo depth: the deepest shifted read along the distributed dimension,
    # summed over arrays (each array is a separate neighbour message).
    depth_up = 0
    depth_down = 0
    per_array: dict[int, list[int]] = {}
    for stmt in compiled.statements:
        for ref in stmt.expr.refs():
            off = ref.offset[dist_dim]
            if off == 0:
                continue
            rec = per_array.setdefault(id(ref.array), [0, 0])
            if off < 0:
                rec[0] = max(rec[0], -off)
            else:
                rec[1] = max(rec[1], off)
    depth_up = sum(rec[0] for rec in per_array.values())
    depth_down = sum(rec[1] for rec in per_array.values())

    if compute_values:
        compiled.prepare()
        execute_vectorized(compiled)  # parallel block: order-independent

    other = region.size // max(1, region.extent(dist_dim))

    machine = Machine(params, n_procs)

    def body(ep: Endpoint) -> Generator:
        proc = ep.rank
        local = dist.local_region(proc)
        up = grid.neighbor(proc, 0, -1)
        down = grid.neighbor(proc, 0, +1)
        if up is not None and depth_down > 0:
            ep.send(up, size=depth_down * other, tag=HALO_TAG)
        if down is not None and depth_up > 0:
            ep.send(down, size=depth_up * other, tag=HALO_TAG)
        if up is not None and depth_up > 0:
            yield from ep.recv(up, tag=HALO_TAG)
        if down is not None and depth_down > 0:
            yield from ep.recv(down, tag=HALO_TAG)
        yield from ep.compute(local.size * work_per_element)

    for rank in range(n_procs):
        machine.spawn(body, rank)
    run = machine.run()
    plan = WavefrontPlan(compiled, dist_dim, None, 0, max(depth_up, depth_down))
    return DistributedOutcome(run, plan, n_procs, None, 1, "parallel")


def transpose_wavefront(
    compiled: CompiledScan,
    params: MachineParams,
    n_procs: int,
    wavefront_dim: int | None = None,
    work_per_element: float = 1.0,
) -> DistributedOutcome:
    """The transpose alternative: redistribute, compute locally, restore.

    Models the Section 2.2 scenario: instead of pipelining a wavefront that
    crosses the distribution, transpose the data so the wavefront dimension
    becomes processor-local (two all-to-all phases around a fully parallel
    compute).  Timing only — transposition in shared storage is a no-op, so
    values are produced by one sequential execution.
    """
    plan = plan_wavefront(compiled, wavefront_dim)
    region = plan.region
    compiled.prepare()
    execute_vectorized(compiled)

    n_arrays = len(compiled.written_arrays()) + len(
        [a for a in compiled.read_arrays() if not compiled.is_contracted(a)]
    )
    piece = max(1, region.size // (n_procs * n_procs))

    machine = Machine(params, n_procs)

    def body(ep: Endpoint) -> Generator:
        others = [r for r in range(n_procs) if r != ep.rank]
        # Transpose out: exchange a piece with every other processor,
        # once per live array.
        for phase in (0, 1):
            for other in others:
                ep.send(other, size=piece * n_arrays, tag=phase)
            for other in others:
                yield from ep.recv(other, tag=phase)
            if phase == 0:
                yield from ep.compute(
                    (region.size / n_procs) * work_per_element
                )

    for rank in range(n_procs):
        machine.spawn(body, rank)
    run = machine.run()
    return DistributedOutcome(run, plan, n_procs, None, 1, "transpose")


def pipelined_wavefront_mesh(
    compiled: CompiledScan,
    params: MachineParams,
    mesh: tuple[int, int],
    block_size: int,
    wavefront_dim: int | None = None,
    compute_values: bool = True,
    work_per_element: float = 1.0,
    tracer=None,
) -> DistributedOutcome:
    """Pipelined execution on a 2-D processor mesh (the paper's Fig. 4 shape).

    ``mesh = (pw, pc)`` distributes the wavefront dimension across ``pw``
    processors and the chunk dimension across ``pc``.  Each column of the
    mesh runs an independent pipeline chain over its slice of the chunk
    dimension, so the per-chain boundary messages shrink by a factor of
    ``pc`` — the surface-to-volume effect that motivates 2-D distributions.

    Requires the chunk dimension to be completely parallel (no dependence
    component at all): a dependence along a distributed chunk dimension
    would couple the chains.
    """
    pw, pc = mesh
    if pw < 1 or pc < 1:
        raise MachineError(f"mesh extents must be >= 1, got {mesh}")
    if block_size < 1:
        raise MachineError(f"block_size must be >= 1, got {block_size}")
    plan = plan_wavefront(compiled, wavefront_dim)
    region = plan.region
    w = plan.wavefront_dim
    c = plan.chunk_dim
    if c is None:
        raise DistributionError("no chunkable dimension: cannot mesh-pipeline")
    if any(d.vector[c] != 0 for d in compiled.dependences):
        raise DistributionError(
            f"dimension {c} carries a dependence; a 2-D mesh would couple "
            f"the pipeline chains — use the 1-D pipelined schedule"
        )
    loops = compiled.loops

    grid = ProcessorGrid((pw, pc))
    dim_map: list[int | None] = [None] * region.rank
    dim_map[w] = 0
    dim_map[c] = 1
    dist = BlockMap(region, grid, tuple(dim_map))

    # Side halo: read-only arrays referenced with a shift along the chunk
    # dimension need one pre-exchange between mesh columns.
    written = {id(a) for a in compiled.written_arrays()}
    side_halo = 0
    per_array: dict[int, int] = {}
    for stmt in compiled.statements:
        for ref in stmt.expr.refs():
            off = abs(ref.offset[c])
            if off and id(ref.array) not in written:
                key = id(ref.array)
                per_array[key] = max(per_array.get(key, 0), off)
    side_halo = sum(per_array.values())

    if compute_values:
        compiled.prepare()

    machine = Machine(params, grid.size, tracer=tracer)

    def body(ep: Endpoint, proc: int) -> Generator:
        row, col = grid.coords(proc)
        local = dist.local_region(proc)
        # Chain neighbours along the wave (mesh dim 0), honouring direction.
        step = -1 if loops.signs[w] < 0 else 1
        pred = grid.neighbor(proc, 0, -step)
        succ = grid.neighbor(proc, 0, step)
        local_rows = local.extent(w)
        local_cols = local.extent(c)
        reverse = loops.signs[c] < 0
        chunks = (
            _chunk_regions(local, c, block_size, reverse)
            if not local.is_empty()
            else []
        )
        # Side halo between mesh columns (read-only data, off the wave path).
        if side_halo > 0 and local_rows > 0:
            for delta in (-1, 1):
                other = grid.neighbor(proc, 1, delta)
                if other is not None:
                    ep.send(other, size=max(1, side_halo * local_rows), tag=HALO_TAG - 1)
            for delta in (-1, 1):
                other = grid.neighbor(proc, 1, delta)
                if other is not None:
                    yield from ep.recv(other, tag=HALO_TAG - 1)
        # Wave halo within the chain.
        if plan.halo_rows > 0:
            if succ is not None:
                ep.send(succ, size=max(1, plan.halo_rows * max(1, local_cols)), tag=HALO_TAG)
            if pred is not None:
                yield from ep.recv(pred, tag=HALO_TAG)
        for k, chunk in enumerate(chunks):
            chunk_width = chunk.extent(c)
            if pred is not None and plan.boundary_rows > 0:
                yield from ep.recv(pred, tag=k)
            if not chunk.is_empty():
                if compute_values:
                    execute_vectorized(compiled, within=chunk)
                yield from ep.compute(chunk.size * work_per_element, label=k)
            if succ is not None and plan.boundary_rows > 0:
                ep.send(succ, size=max(1, plan.boundary_rows * chunk_width), tag=k)
        return

    # Order process start-up so value computation respects the wave: within
    # the DES, receives enforce ordering; chains are independent.
    for proc in grid:
        machine.sim.process(body(machine.endpoint(proc), proc), name=f"proc{proc}")

    run = machine.run()
    n_chunks = -(-dist.local_region(0).extent(c) // block_size) if pc else 1
    return DistributedOutcome(
        run=run,
        plan=plan,
        n_procs=grid.size,
        block_size=block_size,
        n_chunks=max(1, n_chunks),
        schedule=f"pipelined-mesh{mesh}",
    )
