"""Collective operations over simulated endpoints (binomial trees).

The paper's benchmarks interleave wavefronts with reductions (Tomcatv's
max-residual test, SIMPLE's Courant condition) and broadcasts of scalar
results.  These collectives price that communication with the same α+β
model: log2(p) rounds of point-to-point messages along binomial trees.

Each collective is a generator to ``yield from`` inside a processor body;
**every** processor of the communicator must call it (same tag), exactly as
in MPI.  Payloads are combined with a caller-supplied function so reductions
carry real values.

>>> def body(ep):
...     value = yield from allreduce(ep, P, my_value, op=max)
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import CommunicationError
from repro.machine.comm import Endpoint

#: Tag space reserved for collectives (offset per call via the user tag).
_COLLECTIVE_TAG = -100


def _check(ep: Endpoint, n_procs: int) -> None:
    if not 0 <= ep.rank < n_procs:
        raise CommunicationError(
            f"rank {ep.rank} outside communicator of size {n_procs}"
        )


def broadcast(
    ep: Endpoint,
    n_procs: int,
    value: Any = None,
    size: int = 1,
    root: int = 0,
    tag: int = 0,
) -> Generator:
    """Binomial-tree broadcast; returns the root's value on every rank."""
    _check(ep, n_procs)
    r = (ep.rank - root) % n_procs
    step = 1
    while step < n_procs:
        if r < step:
            if r + step < n_procs:
                dst = (root + r + step) % n_procs
                ep.send(dst, payload=value, size=size, tag=_COLLECTIVE_TAG - tag)
        elif r < 2 * step:
            src = (root + r - step) % n_procs
            message = yield from ep.recv(src, tag=_COLLECTIVE_TAG - tag)
            value = message.payload
        step *= 2
    return value


def reduce(
    ep: Endpoint,
    n_procs: int,
    value: Any,
    op: Callable[[Any, Any], Any],
    size: int = 1,
    root: int = 0,
    tag: int = 0,
) -> Generator:
    """Binomial-tree reduction; the combined value lands on ``root``.

    Non-root ranks return their partial result (like MPI, only the root's
    return value is meaningful).
    """
    _check(ep, n_procs)
    r = (ep.rank - root) % n_procs
    step = 1
    while step < n_procs:
        step *= 2
    step //= 2
    while step >= 1:
        if r < step:
            if r + step < n_procs:
                src = (root + r + step) % n_procs
                message = yield from ep.recv(src, tag=_COLLECTIVE_TAG - tag)
                value = op(value, message.payload)
        elif r < 2 * step:
            dst = (root + r - step) % n_procs
            ep.send(dst, payload=value, size=size, tag=_COLLECTIVE_TAG - tag)
            step = 0  # sent: this rank is done
            break
        step //= 2
    return value


def allreduce(
    ep: Endpoint,
    n_procs: int,
    value: Any,
    op: Callable[[Any, Any], Any],
    size: int = 1,
    tag: int = 0,
) -> Generator:
    """Reduce to rank 0, then broadcast: every rank returns the total."""
    partial = yield from reduce(ep, n_procs, value, op, size=size, root=0, tag=tag)
    total = yield from broadcast(
        ep, n_procs, partial if ep.rank == 0 else None, size=size, root=0,
        tag=tag + 1,
    )
    return total


def barrier(ep: Endpoint, n_procs: int, tag: int = 0) -> Generator:
    """Synchronise all ranks (an allreduce of a unit token)."""
    yield from allreduce(ep, n_procs, 0, op=lambda a, b: 0, size=1, tag=tag)
