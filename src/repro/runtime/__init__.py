"""Sequential execution engines for compiled scan blocks.

* :func:`execute_loopnest` — scalar element-at-a-time oracle (slow, obviously
  correct);
* :func:`execute_vectorized` — the production engine: Python loop over the
  dependence-carrying dimensions, numpy across the parallel ones;
* :func:`execute_interpreted` — pure array semantics for non-scan statements;
* :class:`ArraySnapshot` / :func:`run_and_capture` — differential-test helpers.
"""

from repro.runtime.loopnest import execute_loopnest
from repro.runtime.vectorized import execute_vectorized
from repro.runtime.interp import (
    execute_interpreted,
    ArraySnapshot,
    run_and_capture,
)

__all__ = [
    "execute_loopnest",
    "execute_vectorized",
    "execute_interpreted",
    "ArraySnapshot",
    "run_and_capture",
]
