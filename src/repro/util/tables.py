"""ASCII tables, series, and bar charts for the experiment reports.

The experiment harness regenerates the paper's figures as *printed series*
(block size vs speedup, processors vs speedup, per-benchmark bars).  These
helpers render them uniformly so ``EXPERIMENTS.md`` and terminal output agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """A simple ASCII table with a title, column headers and rows."""

    title: str
    headers: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    precision: int = 3

    def add_row(self, *values: Any) -> None:
        """Append one row; must match the header count."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Render the table as a fixed-width ASCII string."""
        cells = [[_fmt(v, self.precision) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


@dataclass
class Series:
    """A named (x, y) series, e.g. ``speedup`` as a function of block size."""

    name: str
    xlabel: str
    ylabel: str
    xs: list[Any] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: Any, y: float) -> None:
        """Append one point to the series."""
        self.xs.append(x)
        self.ys.append(float(y))

    def argmax(self) -> Any:
        """Return the x at which y is maximal (first on ties)."""
        if not self.ys:
            raise ValueError(f"series {self.name!r} is empty")
        best = max(range(len(self.ys)), key=lambda i: self.ys[i])
        return self.xs[best]

    def max(self) -> float:
        """Return the maximal y value."""
        if not self.ys:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.ys)

    def as_table(self, precision: int = 3) -> Table:
        """Render the series as a two-column table."""
        table = Table(self.name, [self.xlabel, self.ylabel], precision=precision)
        for x, y in zip(self.xs, self.ys):
            table.add_row(x, y)
        return table


def merge_series(title: str, series: Iterable[Series], precision: int = 3) -> Table:
    """Merge several series sharing the same x axis into one table.

    Raises ``ValueError`` if the x axes differ.
    """
    series = list(series)
    if not series:
        raise ValueError("no series to merge")
    xs = series[0].xs
    for s in series[1:]:
        if s.xs != xs:
            raise ValueError(f"series {s.name!r} has a different x axis")
    table = Table(
        title, [series[0].xlabel] + [s.name for s in series], precision=precision
    )
    for i, x in enumerate(xs):
        table.add_row(x, *(s.ys[i] for s in series))
    return table


def format_bar_chart(
    title: str,
    bars: Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "x",
) -> str:
    """Render labelled horizontal bars, scaled to the largest value.

    Used for the paper's bar-chart figures (Fig. 6 and Fig. 7).
    """
    if not bars:
        raise ValueError("no bars to render")
    peak = max(value for _, value in bars)
    scale = (width / peak) if peak > 0 else 0.0
    label_w = max(len(label) for label, _ in bars)
    lines = [title, "=" * max(len(title), label_w + width + 12)]
    for label, value in bars:
        filled = int(round(value * scale))
        lines.append(f"{label.ljust(label_w)} |{'#' * filled:<{width}}| {value:.2f}{unit}")
    return "\n".join(lines)
