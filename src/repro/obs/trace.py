"""The span/counter recorder shared by every execution engine.

One schema, three producers: the real multiprocess backend
(:mod:`repro.parallel`) records wall-clock spans, the discrete-event
simulator (:mod:`repro.machine`) records virtual-clock spans, and the
compiler (:func:`repro.compiler.lowering.compile_scan`) records pass
timings.  All of them speak through the same two nouns:

* a **span** — a named, categorised ``[start, end]`` interval on one
  logical processor (``proc=-1`` is the parent/driver), with free-form
  ``args`` (``block`` index, ``elements``, ...);
* a **counter** — a monotonically accumulated per-processor total
  (blocks executed, tokens exchanged, bytes moved).

The recorder comes in two flavours with an identical surface:
:class:`Tracer` (records) and :class:`NullTracer` (a guarded no-op, the
default).  Hot paths branch on ``tracer.enabled`` once, so a disabled
tracer costs one attribute read — the backend's <2% overhead budget.

Tracing is off unless the caller passes a :class:`Tracer` explicitly or
sets ``REPRO_TRACE=1`` in the environment (:func:`resolve_tracer`).

A finished recording is packaged as a :class:`Trace`: spans + counters +
metadata + the clock they were measured on (``"wall"`` in seconds,
``"virtual"`` in element-compute units).  Traces serialise to JSON
(:meth:`Trace.save`/:meth:`Trace.load`) so benchmarks can drop them next
to their ``BENCH_*.json`` artifacts and the CLI can analyse them later.

Cross-process note: workers record with :func:`time.perf_counter`, which
shares its epoch across processes on Linux (``CLOCK_MONOTONIC``); the
parent aligns everything to the earliest span at export time, so traces
are portable even where the epoch is per-process only approximately.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

SCHEMA = "repro-trace/1"

#: Environment switch: any value but ``""``/``"0"``/``"false"``/``"off"``
#: enables tracing for runs that were not handed an explicit tracer.
TRACE_ENV = "REPRO_TRACE"

#: The ``proc`` of driver-side spans (setup, compile passes, gather).
PARENT_PROC = -1


@dataclass(frozen=True)
class Span:
    """One named busy interval on one logical processor."""

    name: str
    cat: str  # "compute" | "comm" | "sync" | "setup" | "compile"
    start: float
    end: float
    proc: int
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


def tracing_enabled() -> bool:
    """True when ``REPRO_TRACE`` asks for tracing."""
    return os.environ.get(TRACE_ENV, "").strip().lower() not in (
        "", "0", "false", "off",
    )


class _SpanScope:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_proc", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, proc: int, args: dict):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._proc = proc
        self._args = args

    def __enter__(self) -> "_SpanScope":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer.add_span(
            self._name, self._cat, self._start, time.perf_counter(),
            self._proc, **self._args,
        )


class _NullScope:
    """The reusable no-op context manager of :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SCOPE = _NullScope()


class Tracer:
    """A recording span/counter buffer for one process.

    >>> tracer = Tracer()
    >>> with tracer.span("compute", cat="compute", proc=0, block=3):
    ...     pass
    >>> tracer.count("blocks_executed", proc=0)
    >>> len(tracer.spans), tracer.counters[(0, "blocks_executed")]
    (1, 1)
    """

    enabled = True

    def __init__(self, proc: int = PARENT_PROC):
        #: Default processor id for spans/counters that do not name one.
        self.proc = proc
        self.spans: list[Span] = []
        self.counters: dict[tuple[int, str], float] = {}

    def span(
        self, name: str, cat: str = "", proc: int | None = None, **args: Any
    ) -> _SpanScope:
        """A context manager timing its body with :func:`time.perf_counter`."""
        return _SpanScope(self, name, cat, self.proc if proc is None else proc, args)

    def add_span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        proc: int | None = None,
        **args: Any,
    ) -> None:
        """Record an already-measured interval (any clock)."""
        self.spans.append(
            Span(name, cat, start, end, self.proc if proc is None else proc, args)
        )

    def count(self, name: str, n: float = 1, proc: int | None = None) -> None:
        """Accumulate ``n`` into the per-processor counter ``name``."""
        key = (self.proc if proc is None else proc, name)
        self.counters[key] = self.counters.get(key, 0) + n

    # -- inter-process shipping --------------------------------------------
    def drain(self) -> dict:
        """Detach the buffered events as a plain, picklable payload."""
        payload = {
            "spans": [
                (s.name, s.cat, s.start, s.end, s.proc, s.args) for s in self.spans
            ],
            "counters": dict(self.counters),
        }
        self.spans = []
        self.counters = {}
        return payload

    def absorb(self, payload: dict | None) -> None:
        """Merge a :meth:`drain` payload (typically from another process)."""
        if not payload:
            return
        for name, cat, start, end, proc, args in payload.get("spans", ()):
            self.spans.append(Span(name, cat, start, end, proc, dict(args)))
        for key, value in payload.get("counters", {}).items():
            proc, name = key
            self.count(name, value, proc=proc)


class NullTracer:
    """The do-nothing tracer: identical surface, near-zero cost."""

    enabled = False
    proc = PARENT_PROC
    spans: tuple = ()
    counters: dict = {}

    def span(self, name: str, cat: str = "", proc: int | None = None, **args: Any):
        return _NULL_SCOPE

    def add_span(self, *a: Any, **k: Any) -> None:
        return None

    def count(self, *a: Any, **k: Any) -> None:
        return None

    def drain(self) -> None:
        return None

    def absorb(self, payload: dict | None) -> None:
        return None


#: The module-wide no-op instance every untraced run shares.
NULL_TRACER = NullTracer()


def resolve_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Tracer resolution used by every entry point: explicit > env > off."""
    if tracer is not None:
        return tracer
    return Tracer() if tracing_enabled() else NULL_TRACER


@dataclass
class Trace:
    """A finished recording: spans + counters + the clock they live on.

    ``clock`` is ``"wall"`` (seconds, real backend) or ``"virtual"``
    (element-compute units, simulator).  ``meta`` carries the run's
    geometry (schedule, grid, block size, rows/cols, boundary rows) and —
    when the producer knows them — the machine model under ``meta["model"]``
    (``alpha``/``beta`` in clock units, ``m``, ``unit_seconds``), which is
    what the residual analysis consumes.
    """

    clock: str
    meta: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    counters: dict[tuple[int, str], float] = field(default_factory=dict)

    @classmethod
    def from_tracer(
        cls, tracer: Tracer, clock: str, meta: dict | None = None
    ) -> "Trace":
        """Package a tracer's buffers (the tracer keeps its contents)."""
        return cls(
            clock=clock,
            meta=dict(meta or {}),
            spans=list(tracer.spans),
            counters=dict(tracer.counters),
        )

    # -- views --------------------------------------------------------------
    def procs(self) -> tuple[int, ...]:
        """Worker processor ids present (driver ``proc=-1`` excluded)."""
        return tuple(sorted({s.proc for s in self.spans if s.proc >= 0}))

    def worker_spans(self, *cats: str) -> Iterable[Span]:
        """Worker-side spans, optionally restricted to categories."""
        for s in self.spans:
            if s.proc >= 0 and (not cats or s.cat in cats):
                yield s

    @property
    def t0(self) -> float:
        spans = [s for s in self.spans if s.proc >= 0]
        if not spans:
            raise ValueError("trace has no worker spans")
        return min(s.start for s in spans)

    @property
    def t_end(self) -> float:
        spans = [s for s in self.spans if s.proc >= 0]
        if not spans:
            raise ValueError("trace has no worker spans")
        return max(s.end for s in spans)

    @property
    def wall(self) -> float:
        """The traced window: first worker span start to last span end."""
        return self.t_end - self.t0

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all processors."""
        return sum(v for (_, n), v in self.counters.items() if n == name)

    # -- (de)serialisation ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "clock": self.clock,
            "meta": self.meta,
            "spans": [
                {
                    "name": s.name,
                    "cat": s.cat,
                    "start": s.start,
                    "end": s.end,
                    "proc": s.proc,
                    "args": s.args,
                }
                for s in self.spans
            ],
            "counters": [
                {"proc": proc, "name": name, "value": value}
                for (proc, name), value in sorted(self.counters.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Trace":
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"trace has schema {payload.get('schema')!r}, want {SCHEMA}"
            )
        return cls(
            clock=payload["clock"],
            meta=dict(payload.get("meta", {})),
            spans=[
                Span(
                    e["name"], e["cat"], e["start"], e["end"], e["proc"],
                    dict(e.get("args", {})),
                )
                for e in payload.get("spans", ())
            ],
            counters={
                (c["proc"], c["name"]): c["value"]
                for c in payload.get("counters", ())
            },
        )

    def save(self, path: str | Path) -> Path:
        """Write the internal-schema JSON (``Trace.load`` round-trips it)."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        return cls.from_dict(json.loads(Path(path).read_text()))
