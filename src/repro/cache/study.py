"""The uniprocessor cache study: scan-block speedup from loop behaviour.

Ties layout, tracing and simulation together for Fig. 6: given the statements
of a wavefront fragment, measure the simulated execution time of

* the **unfused** shape (explicit loop + separate array statements, the
  Fig. 2(a) program a compiler may fail to optimise), and
* the **fused + interchanged** shape scan blocks guarantee,

on a machine's cache, and report the speedup of the latter over the former.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cache.cachesim import CacheResult, simulate
from repro.cache.layout import AddressSpace
from repro.cache.trace import best_locality_structure, fused_trace, per_statement_trace
from repro.compiler.lowering import CompiledScan
from repro.machine.params import MachineParams
from repro.zpl.statements import Assign


@dataclass(frozen=True)
class CacheStudyResult:
    """Times and counts for one fragment on one machine."""

    machine: MachineParams
    unfused: CacheResult
    fused: CacheResult
    work_elements: float

    @property
    def unfused_time(self) -> float:
        return self.unfused.time(self.machine.cache, self.work_elements)

    @property
    def fused_time(self) -> float:
        return self.fused.time(self.machine.cache, self.work_elements)

    @property
    def speedup(self) -> float:
        """Speedup of the scan-block (fused, interchanged) execution."""
        return self.unfused_time / self.fused_time

    def __repr__(self) -> str:
        return (
            f"CacheStudyResult({self.machine.name}: "
            f"{self.unfused.miss_rate:.3f} -> {self.fused.miss_rate:.3f} "
            f"miss rate, speedup {self.speedup:.2f}x)"
        )


def cache_study(
    compiled: CompiledScan,
    machine: MachineParams,
    outer_dim: int | None = None,
    extra_statements: Sequence[Assign] = (),
) -> CacheStudyResult:
    """Run the Fig. 6 comparison for one compiled fragment.

    ``outer_dim`` is the explicit loop dimension of the unfused program
    (default: the compiler's wavefront/outermost dimension).
    ``extra_statements`` lets callers trace contracted temporaries
    differently; normally empty.
    """
    statements = list(compiled.statements) + list(extra_statements)
    region = compiled.region
    if outer_dim is None:
        outer_dim = compiled.loops.order[0]
    descending = compiled.loops.signs[outer_dim] < 0

    # Both executions see the same memory layout.
    space = AddressSpace()
    for stmt in statements:
        space.place(stmt.target)
        for ref in stmt.expr.refs():
            space.place(ref.array)

    unfused = simulate(
        per_statement_trace(statements, region, outer_dim, space, descending),
        machine.cache,
    )
    loops = best_locality_structure(compiled)
    fused = simulate(
        fused_trace(statements, region, loops, space), machine.cache
    )
    # Both shapes do identical arithmetic: same element count.
    work = float(region.size * len(statements))
    return CacheStudyResult(machine, unfused, fused, work)
