"""Engine equivalence: scalar loop-nest oracle vs vectorised runtime."""

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan, compile_statements
from repro.runtime import (
    ArraySnapshot,
    execute_interpreted,
    execute_loopnest,
    execute_vectorized,
    run_and_capture,
)
from repro.zpl.statements import Assign
from tests.conftest import record_tomcatv_block


def assert_engines_agree(compiled, arrays):
    """Run the oracle and the vectorised engine from the same state."""
    oracle = run_and_capture(execute_loopnest, compiled, arrays)
    fast = run_and_capture(execute_vectorized, compiled, arrays)
    for o, f in zip(oracle, fast):
        np.testing.assert_allclose(f, o, rtol=1e-13, atol=1e-13)


class TestEquivalence:
    def test_tomcatv(self):
        block, arrays = record_tomcatv_block(12)
        assert_engines_agree(compile_scan(block), arrays)

    def test_two_direction_wavefront(self):
        n = 7
        f = zpl.zeros(zpl.Region.square(1, n), name="f")
        g = zpl.ones(zpl.Region.square(1, n), name="g")
        with zpl.covering(zpl.Region.square(1, n)):
            with zpl.scan(execute=False) as block:
                f[...] = zpl.maximum(f.p @ zpl.NORTH, f.p @ zpl.WEST) + g
        assert_engines_agree(compile_scan(block), [f, g])

    def test_mixed_primed_and_anti(self):
        # True dep along dim 0 (primed) plus anti dep along dim 1 (unprimed
        # self-shift): exercises slab evaluation against old values.
        n = 8
        rng = np.random.default_rng(7)
        a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
        R = zpl.Region.of((2, n), (1, n - 1))
        with zpl.covering(R):
            with zpl.scan(execute=False) as block:
                a[...] = (a.p @ zpl.NORTH) + 0.5 * (a @ zpl.EAST)
        assert_engines_agree(compile_scan(block), [a])

    def test_diagonal_prime(self):
        n = 6
        rng = np.random.default_rng(11)
        a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
        with zpl.covering(zpl.Region.of((2, n), (2, n))):
            with zpl.scan(execute=False) as block:
                a[...] = (a.p @ zpl.NORTHWEST) * 1.125 + 0.25
        assert_engines_agree(compile_scan(block), [a])

    def test_example3_structure_runs(self):
        # Paper Example 3: d1=(-1,0), d2=(1,1) — legal non-simple WSV.
        n = 7
        rng = np.random.default_rng(13)
        a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
        with zpl.covering(zpl.Region.of((2, n - 1), (2, n - 1))):
            with zpl.scan(execute=False) as block:
                a[...] = ((a.p @ (-1, 0)) + (a.p @ (1, 1))) / 2.0
        assert_engines_agree(compile_scan(block), [a])

    def test_3d_sweep_block(self):
        n = 5
        base = zpl.Region.square(1, n, rank=3)
        a = zpl.ones(base, name="a")
        with zpl.covering(zpl.Region.square(2, n, rank=3)):
            with zpl.scan(execute=False) as block:
                a[...] = (
                    (a.p @ zpl.ABOVE) + (a.p @ zpl.NORTH3) + (a.p @ zpl.WEST3)
                ) / 3.0
        assert_engines_agree(compile_scan(block), [a])

    def test_non_scan_group(self):
        n = 8
        rng = np.random.default_rng(17)
        a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
        R = zpl.Region.of((2, n - 1), (2, n - 1))
        compiled = compile_statements(
            [Assign(a, 2.0 * (a @ zpl.NORTH) + (a @ zpl.EAST), R)]
        )
        assert_engines_agree(compiled, [a])


class TestInterpreter:
    def test_matches_eager_statements(self):
        n = 6
        rng = np.random.default_rng(23)
        a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
        b = a.copy_like(name="b")
        R = zpl.Region.of((2, n - 1), (2, n - 1))
        stmt = Assign(b, (b @ zpl.NORTH) * 2.0, R)
        execute_interpreted([stmt])
        with zpl.covering(R):
            a[...] = (a @ zpl.NORTH) * 2.0
        np.testing.assert_array_equal(a.to_numpy(), b.to_numpy())

    def test_rejects_primed(self):
        from repro.errors import ExpressionError

        n = 4
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        stmt = Assign(a, a.p @ zpl.NORTH, zpl.Region.of((2, n), (1, n)))
        with pytest.raises(ExpressionError):
            execute_interpreted([stmt])

    def test_interpreted_differs_from_scan(self):
        # Fig. 3(a) vs Fig. 3(d): same text modulo prime, different results.
        n = 5
        R = zpl.Region.of((2, n), (1, n))
        a1 = zpl.ones(zpl.Region.square(1, n), name="a1")
        execute_interpreted([Assign(a1, 2.0 * (a1 @ zpl.NORTH), R)])
        a2 = zpl.ones(zpl.Region.square(1, n), name="a2")
        with zpl.covering(R), zpl.scan():
            a2[...] = 2.0 * (a2.p @ zpl.NORTH)
        assert float(a1[(n, 1)]) == 2.0
        assert float(a2[(n, 1)]) == 2.0 ** (n - 1)


class TestSnapshot:
    def test_restore(self):
        a = zpl.ones(zpl.Region.square(1, 4), name="a")
        snap = ArraySnapshot([a])
        a.fill(9.0)
        snap.restore()
        assert np.all(a.to_numpy() == 1.0)

    def test_capture_current_includes_fluff(self):
        a = zpl.ones(zpl.Region.square(1, 4), name="a")
        a.set_border(zpl.NORTH, 5.0)
        snap = ArraySnapshot([a])
        (data,) = snap.capture_current()
        assert data.shape == a.storage_region.shape
        assert data[0, 1] == 5.0

    def test_run_and_capture_restores(self):
        n = 5
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = 2.0 * (a.p @ zpl.NORTH)
        results = run_and_capture(execute_loopnest, compile_scan(block), [a])
        assert np.all(a.to_numpy() == 1.0)  # restored
        assert results[0].max() == 2.0 ** (n - 1)
