"""Fig. 5(a) bench: regenerate the model-vs-simulation block-size series.

The full paper-scale series (n=257, ~40 block sizes, p=8) regenerates in
well under a second because the simulator skips value computation; the
benchmark times one full regeneration and asserts the paper's headline
facts on the result it produced.
"""

from repro.experiments import fig5a_model_vs_sim


def test_fig5a_quick_series(bench):
    result = bench(fig5a_model_vs_sim.run, quick=True)
    assert result.model2_tracks_better()


def test_fig5a_paper_scale_series(bench):
    result = bench(fig5a_model_vs_sim.run)
    assert result.model1_best_b == 39
    assert result.model2_best_b == 23
    assert result.sim_at(23) > result.sim_at(39)


def test_fig5a_single_simulation_point(bench):
    # One pipelined run at the paper's optimum: the DES cost per point.
    from repro.apps import suite
    from repro.machine import CRAY_T3E, pipelined_wavefront

    compiled = suite.get("tomcatv-fragment").build(257)
    outcome = bench(
        pipelined_wavefront,
        compiled,
        CRAY_T3E,
        n_procs=8,
        block_size=23,
        compute_values=False,
    )
    assert outcome.total_time > 0
