"""Serve-trace rendering: request/batch spans become a latency table."""

import asyncio

import pytest

from repro.obs import Trace, Tracer, format_serve_report, is_serve_trace
from repro.obs.__main__ import main


def _synthetic_serve_trace() -> Trace:
    tracer = Tracer()
    tracer.add_span("serve_batch", "compute", 0.010, 0.018,
                    batch=1, items=2, kind="align")
    tracer.add_span("serve_request", "serve", 0.001, 0.019,
                    id=1, kind="nw", status=200, batch=2,
                    queue_ms=9.0, compute_ms=8.0)
    tracer.add_span("serve_request", "serve", 0.002, 0.019,
                    id=2, kind="sw", status=200, batch=2,
                    queue_ms=8.0, compute_ms=8.0)
    tracer.add_span("serve_request", "serve", 0.004, 0.005,
                    id=3, kind="nw", status=429, batch=0,
                    queue_ms=0.0, compute_ms=0.0)
    return Trace.from_tracer(tracer, clock="wall", meta={"backend": "serve"})


class TestDetection:
    def test_meta_marks_serve_traces(self):
        assert is_serve_trace(_synthetic_serve_trace())

    def test_request_spans_mark_serve_traces_without_meta(self):
        trace = _synthetic_serve_trace()
        trace.meta = {}
        assert is_serve_trace(trace)

    def test_pipeline_traces_are_not_serve_traces(self):
        tracer = Tracer()
        tracer.add_span("compute", "compute", 0.0, 1.0, proc=0, block=1)
        trace = Trace.from_tracer(tracer, clock="wall", meta={})
        assert not is_serve_trace(trace)


class TestReport:
    def test_table_rows_and_summaries(self):
        out = format_serve_report(_synthetic_serve_trace())
        assert "serve requests (3)" in out
        assert "queue ms" in out and "compute ms" in out
        assert "completed 2" in out
        assert "p50" in out and "p99" in out
        assert "1x 429" in out
        assert "batches 1: 2 requests fused" in out

    def test_cli_summarize_renders_serve_traces(self, tmp_path, capsys):
        path = _synthetic_serve_trace().save(tmp_path / "serve.json")
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve requests (3)" in out
        # The pipeline phase report (which needs worker spans) is not used.
        assert "phase coverage" not in out


class TestRealTrace:
    def test_report_from_a_live_server(self, tmp_path, capsys):
        from repro.serve import ServeApp, ServeConfig
        from repro.serve.client import ServeClient

        async def scenario():
            app = ServeApp(ServeConfig(port=0, tracer=Tracer()))
            await app.start()

            async def one():
                async with ServeClient("127.0.0.1", app.port) as client:
                    status, _, _ = await client.post(
                        "/v1/align",
                        {"kind": "nw", "a": "GATTACA", "b": "GCATGCU"},
                    )
                    assert status == 200

            try:
                await asyncio.gather(*(one() for _ in range(4)))
            finally:
                await app.stop()
            return app.trace()

        trace = asyncio.run(scenario())
        path = trace.save(tmp_path / "live.json")
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve requests (4)" in out
        assert "requests fused" in out
