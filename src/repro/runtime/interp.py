"""Reference array-semantics interpreter and differential-testing helpers.

The interpreter executes statement lists with pure array-language semantics —
every right-hand side fully evaluated before its assignment — which is the
meaning of ZPL *without* the paper's extension.  Scan blocks cannot be run
this way (the prime operator has no array-semantics meaning); attempting to
raises, which is itself one of the paper's points: Fig. 3(a) and Fig. 3(d)
are different programs.

The snapshot utilities let the test suite run the same program under several
engines from identical initial states and compare results bit-for-bit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.runtime.kernels import resolve_engine, statement_kernel
from repro.zpl.arrays import ZArray
from repro.zpl.program import eager_reader
from repro.zpl.statements import Assign


def execute_interpreted(
    statements: Sequence[Assign], *, engine: str | None = None
) -> None:
    """Run plain array statements one at a time, RHS before assignment.

    By default each unmasked statement runs through its ahead-of-time kernel
    (:func:`repro.runtime.kernels.statement_kernel` — cached per statement,
    one closure call instead of a tree walk); ``engine="interp"`` or
    ``REPRO_ENGINE=interp`` keeps the original tree-walking path.  Statements
    the kernel layer cannot express fall back statement-by-statement.
    """
    kernels = resolve_engine(engine) != "interp"
    for stmt in statements:
        if stmt.expr.has_prime():
            from repro.errors import ExpressionError

            raise ExpressionError(
                "the prime operator has no array-semantics meaning; compile "
                "the statements as a scan block instead"
            )
        if kernels and stmt.mask is None:
            runner = statement_kernel(stmt)
            if runner is not None:
                runner()
                continue
        values = stmt.expr.evaluate(stmt.region, eager_reader)
        if isinstance(values, np.ndarray) and np.shares_memory(
            values, stmt.target._data
        ):
            values = values.copy()
        stmt.target.write(stmt.region, values)


class ArraySnapshot:
    """Captured storage of a set of arrays, for differential testing.

    >>> snap = ArraySnapshot([a, b])
    >>> mutate(a, b)
    >>> snap.restore()          # back to the captured state
    >>> results = snap.capture_current()   # dict of current values
    """

    def __init__(self, arrays: Sequence[ZArray]):
        self._arrays = list(arrays)
        self._saved = [a._data.copy() for a in self._arrays]

    def restore(self) -> None:
        """Write the captured storage (fluff included) back into the arrays."""
        for array, saved in zip(self._arrays, self._saved):
            array._data[...] = saved

    def capture_current(self) -> list[np.ndarray]:
        """Copies of the arrays' current full storage."""
        return [a._data.copy() for a in self._arrays]


def run_and_capture(engine, compiled, arrays: Sequence[ZArray]) -> list[np.ndarray]:
    """Run ``engine(compiled)`` from the arrays' current state, capture results,
    then restore the original state.  Returns the captured storage copies."""
    snap = ArraySnapshot(arrays)
    engine(compiled)
    results = snap.capture_current()
    snap.restore()
    return results
