"""Block-size selection strategies (the paper's future work, implemented).

"Because the optimal block size is a function of non-static parameters such
as problem size and computation cost, we will develop dynamic techniques for
calculating it.  We will investigate the quality of block size selection
using only static and profile information."

Three selectors over the same interface:

* :func:`select_static` — Equation (1) with compile-time machine constants
  (the "static information" selector);
* :func:`select_profiled` — fit α and β from a handful of timed probe runs
  (profile information), then apply Equation (1) with the fitted constants;
* :func:`select_dynamic` — ternary search on the measured time curve itself
  (T(b) is unimodal: it is a sum of a decreasing hyperbola and an increasing
  linear term), probing the machine as it goes.

Each returns a :class:`TuningResult` recording the chosen block size and how
many (simulated) probe runs it spent — the cost/quality tradeoff the paper
proposed to study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.compiler.lowering import CompiledScan
from repro.errors import ModelError
from repro.machine.params import MachineParams
from repro.machine.schedules import pipelined_wavefront, plan_wavefront
from repro.models.pipeline_model import model2

#: A probe runs the schedule at block size b and returns its time.
Probe = Callable[[int], float]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one selection strategy."""

    strategy: str
    block_size: int
    probes: int
    probe_times: tuple[tuple[int, float], ...]

    def __repr__(self) -> str:
        return (
            f"TuningResult({self.strategy}: b={self.block_size}, "
            f"{self.probes} probes)"
        )


def make_simulated_probe(
    compiled: CompiledScan, params: MachineParams, n_procs: int
) -> Probe:
    """A probe that runs the pipelined schedule on the simulated machine."""

    def probe(b: int) -> float:
        return pipelined_wavefront(
            compiled, params, n_procs=n_procs, block_size=b, compute_values=False
        ).total_time

    return probe


def _geometry(compiled: CompiledScan) -> tuple[int, int, int]:
    plan = plan_wavefront(compiled)
    rows = compiled.region.extent(plan.wavefront_dim)
    cols = (
        compiled.region.extent(plan.chunk_dim)
        if plan.chunk_dim is not None
        else 1
    )
    return rows, cols, max(1, plan.boundary_rows)


def select_static(
    compiled: CompiledScan, params: MachineParams, n_procs: int
) -> TuningResult:
    """Equation (1) with the machine's published α and β.  Zero probes."""
    rows, cols, m = _geometry(compiled)
    b = model2(params, rows, n_procs, boundary_rows=m, cols=cols).optimal_block_size()
    return TuningResult("static", b, probes=0, probe_times=())


def select_profiled(
    compiled: CompiledScan,
    params: MachineParams,
    n_procs: int,
    probe: Probe | None = None,
    probe_sizes: tuple[int, int] = (2, 16),
) -> TuningResult:
    """Fit α, β from two probe runs, then apply Equation (1).

    With the blocking-receive cost model, ``T(b) - T_comp(b)`` is linear in
    the per-message cost ``α + βmb`` times the message count — two probes at
    different block sizes determine both constants.
    """
    rows, cols, m = _geometry(compiled)
    if probe is None:
        probe = make_simulated_probe(compiled, params, n_procs)
    b_lo, b_hi = probe_sizes
    if not 1 <= b_lo < b_hi <= cols:
        raise ModelError(f"probe sizes {probe_sizes} out of range 1..{cols}")
    base = model2(params, rows, n_procs, boundary_rows=m, cols=cols)
    times = []
    for b in (b_lo, b_hi):
        times.append((b, probe(b)))
    # Communication residual after subtracting the known compute term.
    # Chunk counts quantise (the DES sends ceil(cols/b) messages per hop),
    # so fit against the ceiling, not the model's smooth cols/b.
    residuals = [t - base.compute_time(b) for b, t in times]
    hops = [-(-cols // b) + n_procs - 2 for b, _ in times]
    msg_lo, msg_hi = residuals[0] / hops[0], residuals[1] / hops[1]
    # msg(b) = alpha + beta*m*b  =>  solve the 2x2 system.
    beta_m = (msg_hi - msg_lo) / (b_hi - b_lo)
    alpha = msg_lo - beta_m * b_lo
    alpha = max(alpha, 0.0)
    beta = max(beta_m / m, 0.0)
    fitted = MachineParams(name=f"{params.name} (profiled)", alpha=alpha, beta=beta)
    b = model2(fitted, rows, n_procs, boundary_rows=m, cols=cols).optimal_block_size()
    return TuningResult("profiled", b, probes=2, probe_times=tuple(times))


def select_dynamic(
    compiled: CompiledScan,
    params: MachineParams,
    n_procs: int,
    probe: Probe | None = None,
    b_max: int | None = None,
) -> TuningResult:
    """Ternary search on the measured (probed) time curve.

    Converges in O(log b_max) probes because T(b) is unimodal in b.
    """
    rows, cols, m = _geometry(compiled)
    if probe is None:
        probe = make_simulated_probe(compiled, params, n_procs)
    hi = min(b_max or cols, cols)
    lo = 1
    cache: dict[int, float] = {}

    def timed(b: int) -> float:
        if b not in cache:
            cache[b] = probe(b)
        return cache[b]

    while hi - lo > 3:
        third = (hi - lo) // 3
        m1, m2 = lo + third, hi - third
        if timed(m1) <= timed(m2):
            hi = m2
        else:
            lo = m1
    best = min(range(lo, hi + 1), key=timed)
    return TuningResult(
        "dynamic",
        best,
        probes=len(cache),
        probe_times=tuple(sorted(cache.items())),
    )
