"""Persistent worker pool: fork once, execute many.

The fork-per-run executor (:mod:`repro.parallel.executor`) pays process
startup, ``pickle.dumps``, shared-segment creation and ``gc.freeze`` on every
``execute()`` — that is the ~milliseconds-per-run overhead that inflated the
measured ``dispatch_seconds_per_block`` three orders of magnitude above the
per-token α.  The pool amortises all of it:

* **Workers fork once** at pool construction and then loop on a per-worker
  job pipe.  The barrier, the result queue, and the token-pipe fabric are
  all built once and reused; both wavefront directions get their own static
  fabric so ascending and descending blocks can share one pool.
* **Plans ship once.**  Each compiled block is fingerprinted
  (:func:`repro.runtime.kernels.plan_fingerprint`); the parent keeps a
  fingerprint-keyed :class:`_PlanEntry` (shared segments + pickled blob) and
  each worker keeps the unpickled plan and its shared-memory attachment in a
  per-process cache.  A repeat ``execute()`` sends only a small job record —
  no blob, no re-attach — and refreshes the existing segments with the
  arrays' current values.
* **Kernel plans persist.**  Because the worker's unpickled ``CompiledScan``
  object survives across jobs, the AOT kernel templates and region plans of
  :mod:`repro.runtime.kernels` stay warm too: after the first run a pipeline
  block costs one closure call per statement per slab.

Failure semantics: any failed run — including a worker process dying
mid-request — marks the pool *broken* and raises the typed
:class:`~repro.errors.PoolBrokenError` for the affected in-flight request
only; every later ``execute()`` refuses with the same type until the pool
is replaced.  ``execute()`` is additionally serialised behind an internal
lock, so concurrent submissions from threads (the serving layer's batches)
are safe: the fingerprint-keyed plan LRU and the shared-segment
``refresh``/``gather`` cycle never interleave.  :class:`PoolSupervisor`
packages the recovery story — serialize, detect broken, respawn — for
callers that must survive worker death (``repro.serve``).

``shared_pool()`` hands out one module-level pool per grid shape, closed
automatically at interpreter exit; explicit pools support ``with``.
"""

from __future__ import annotations

import atexit
import gc
import os
import pickle
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from multiprocessing.connection import Connection

from repro.compiler.lowering import CompiledScan
from repro.errors import (
    DistributionError,
    MachineError,
    PoolBrokenError,
    SanitizerError,
)
from repro.machine.grid import ProcessorGrid
from repro.machine.schedules import plan_wavefront
from repro.obs.live import (
    FLIGHT,
    LIVE,
    MONITOR,
    current_tags,
    format_flight_tail,
)
from repro.obs.trace import NULL_TRACER, Trace, Tracer, resolve_tracer
from repro.parallel.channels import chain_links
from repro.parallel.collectives import (
    MulticastChannel,
    MulticastFabric,
    MulticastSpec,
    boundary_layout,
    plan_groups,
    resolve_double_buffer,
    resolve_multicast,
)
from repro.parallel.executor import (
    SCHEDULES,
    ParallelRun,
    _as_grid,
    _build_distribution,
    _chains,
    _context,
    _worker_chunks,
    check_chain_legality,
    resolve_schedule,
)
from repro.parallel.sharedmem import (
    ArraySpec,
    AttachedArrays,
    BoundaryPool,
    SharedArrayPool,
    collect_arrays,
)
from repro.parallel.worker import (
    multicast_pipeline_loop,
    pipeline_loop,
    sanitized_multicast_loop,
    sanitized_pipeline_loop,
)
from repro.runtime.kernels import plan_fingerprint
from repro.zpl.regions import Region

#: Parent-side cap on cached plan entries (each pins shared segments).
PLAN_ENTRY_CAP = 8


@dataclass
class PoolJob:
    """One run's worth of instructions for one pooled worker."""

    seq: int
    fingerprint: str
    #: Pickled CompiledScan — ``None`` when this worker already has it cached.
    blob: bytes | None
    specs: list[ArraySpec] | None
    chunks: tuple[Region, ...]
    #: Which static token fabric to use (wavefront traversal direction).
    ascending: bool
    chunk_dim: int | None
    boundary_rows: int
    timeout: float
    trace: bool
    #: Request-context tags (serving request ids) stamped onto this job's
    #: spans and flight events — the worker half of end-to-end tracing.
    tags: dict | None = None
    #: Task-graph spec (:class:`repro.parallel.taskgraph.TaskgraphSpec`)
    #: when ``schedule="taskgraph"``: the worker joins the run's shared
    #: scheduler segment instead of the static token fabric (``chunks`` is
    #: empty, ``ascending`` unused).
    taskgraph: object | None = None
    #: Multicast spec (:class:`repro.parallel.collectives.MulticastSpec`)
    #: when the planner selected the epoch fabric: the worker joins the
    #: pool-lifetime epoch segment instead of the token pipes.
    mcast: MulticastSpec | None = None
    #: Sanitizer spec (:class:`repro.analyze.sanitizer.SanitizerSpec`) when
    #: the run shadow-executes (``REPRO_SANITIZE=1``): the worker attaches
    #: the run's stamp segment and swaps in the sanitized pipeline loop.
    #: Taskgraph runs sanitize through ``taskgraph`` instead.
    sanitize: object | None = None


@dataclass
class PoolBoot:
    """Everything a pooled worker receives once, at fork time."""

    rank: int
    links_fwd: tuple[Connection | None, Connection | None]
    links_bwd: tuple[Connection | None, Connection | None]
    jobs: Connection
    #: The pool-lifetime ``(graph_lock, deque_locks)`` for taskgraph jobs —
    #: locks share only by inheritance, so they ship at fork time, not in
    #: the job record.  One set serves every run: submissions serialise.
    tg_locks: object | None = None
    #: The epoch fabric's per-rank semaphores — like ``tg_locks``, these
    #: only share by inheritance, so they ship at fork time.
    mcast_sems: object | None = None
    #: Predecessor rank on each pipe fabric (timeout diagnostics only).
    pred_fwd: int | None = None
    pred_bwd: int | None = None


def run_pool_worker(boot: PoolBoot, barrier, results) -> None:
    """Process entry point: loop on the job pipe until told to close.

    Per-job protocol (everything rides the per-worker job pipe; results ride
    the shared queue, tagged with the job's sequence number):

    * ``("run", PoolJob)`` — bind the plan (from cache, or unpickle + attach
      on first sight), meet the barrier, run the pipeline loop, report.
      A worker that fails *setup* still meets the barrier — keeping all
      parties in lockstep — and then skips the run and reports the error.
    * ``("forget", fingerprint)`` — drop a cached plan (the parent evicted
      or replaced it; the old segments are about to be unlinked).
    * ``("close",)`` — detach everything and exit.
    """
    #: fingerprint -> (compiled, attachment, runnable-with-hoisted-stripped)
    cache: dict[str, tuple[CompiledScan, AttachedArrays, CompiledScan]] = {}
    #: segment name -> SharedMemory: multicast attachments live here so a
    #: repeat job re-uses the mapping instead of re-attaching.
    seg_cache: dict[str, object] = {}
    #: fingerprint -> per-plan segment names (boundary pools); closed on
    #: "forget" so an evicted plan's staging memory is actually reclaimed.
    plan_segs: dict[str, set[str]] = {}
    #: (fingerprint, spec) -> MulticastChannel: a channel outlives its job
    #: so its compiled staging geometry (view plans, copy pairs) amortises
    #: across repeat runs of the same plan.
    channels: dict[tuple, MulticastChannel] = {}
    # Freeze the inherited heap once: every job after this pays collector
    # time only for what the pipeline loop itself allocates.
    gc.freeze()
    try:
        while True:
            try:
                msg = boot.jobs.recv()
            except (EOFError, OSError):
                return  # parent went away; exit quietly
            kind = msg[0]
            if kind == "close":
                return
            if kind == "forget":
                entry = cache.pop(msg[1], None)
                if entry is not None:
                    entry[1].detach()
                for key in [k for k in channels if k[0] == msg[1]]:
                    channels.pop(key).detach()
                for name in plan_segs.pop(msg[1], ()):
                    seg = seg_cache.pop(name, None)
                    if seg is not None:
                        try:
                            seg.close()
                        except BufferError:
                            pass
                continue
            job: PoolJob = msg[1]
            tracer = Tracer(proc=boot.rank) if job.trace else NULL_TRACER
            FLIGHT.event(
                "pool_job", seq=job.seq,
                fingerprint=job.fingerprint[:12], chunks=len(job.chunks),
            )
            err = None
            runnable = None
            try:
                entry = cache.get(job.fingerprint)
                if entry is None:
                    if job.blob is None:
                        raise MachineError(
                            f"pool worker {boot.rank} has no cached plan "
                            f"{job.fingerprint[:12]} and was sent no blob"
                        )
                    t0 = time.perf_counter()
                    compiled = pickle.loads(job.blob)
                    attached = AttachedArrays(compiled, job.specs)
                    entry = (compiled, attached, replace(compiled, hoisted=()))
                    cache[job.fingerprint] = entry
                    if tracer.enabled:
                        tracer.add_span(
                            "plan_bind", "setup", t0, time.perf_counter()
                        )
                        tracer.count("pool_plan_misses")
                elif tracer.enabled:
                    tracer.count("pool_plan_hits")
                runnable = entry[2]
            except BaseException:
                err = traceback.format_exc()
            try:
                # Always meet the barrier, even after a setup failure:
                # breaking it would poison every later run for every worker.
                barrier.wait(timeout=job.timeout)
            except Exception:
                if err is None:
                    err = traceback.format_exc()
            elapsed = 0.0
            stats: dict = {}
            if err is None:
                try:
                    if job.taskgraph is not None:
                        from repro.parallel.taskgraph import taskgraph_loop

                        elapsed = taskgraph_loop(
                            runnable,
                            job.taskgraph,
                            boot.tg_locks,
                            boot.rank,
                            job.timeout,
                            tracer,
                            stats=stats,
                            tags=job.tags,
                        )
                    elif job.mcast is not None:
                        if job.mcast.boundary_seg is not None:
                            plan_segs.setdefault(job.fingerprint, set()).add(
                                job.mcast.boundary_seg
                            )
                        chan_key = (job.fingerprint, job.mcast)
                        channel = channels.get(chan_key)
                        if channel is None:
                            channel = MulticastChannel(
                                job.mcast,
                                boot.mcast_sems,
                                boot.rank,
                                arrays=collect_arrays(
                                    cache[job.fingerprint][0]
                                ),
                                attach_cache=seg_cache,
                            )
                            channels[chan_key] = channel
                        channel.drain()
                        channel.reset_stats()
                        if job.sanitize is not None:
                            from repro.analyze.sanitizer import SanitizerState

                            state = SanitizerState(job.sanitize, boot.rank)
                            try:
                                elapsed = sanitized_multicast_loop(
                                    runnable,
                                    job.chunks,
                                    channel,
                                    job.timeout,
                                    tracer,
                                    state,
                                    stats=stats,
                                )
                            finally:
                                state.detach()
                        else:
                            elapsed = multicast_pipeline_loop(
                                runnable,
                                job.chunks,
                                channel,
                                job.timeout,
                                tracer,
                                job.chunk_dim,
                                job.boundary_rows,
                                stats=stats,
                                tags=job.tags,
                            )
                    else:
                        recv, send = (
                            boot.links_fwd if job.ascending else boot.links_bwd
                        )
                        peer = (
                            boot.pred_fwd if job.ascending else boot.pred_bwd
                        )
                        if job.sanitize is not None:
                            from repro.analyze.sanitizer import SanitizerState

                            state = SanitizerState(job.sanitize, boot.rank)
                            try:
                                elapsed = sanitized_pipeline_loop(
                                    runnable,
                                    job.chunks,
                                    recv,
                                    send,
                                    job.timeout,
                                    tracer,
                                    state,
                                    stats=stats,
                                )
                            finally:
                                state.detach()
                        else:
                            elapsed = pipeline_loop(
                                runnable,
                                job.chunks,
                                recv,
                                send,
                                job.timeout,
                                tracer,
                                job.chunk_dim,
                                job.boundary_rows,
                                stats=stats,
                                tags=job.tags,
                                peer=peer,
                            )
                except BaseException:
                    err = traceback.format_exc()
            if err is not None:
                # Ship the worker's flight-recorder tail home with the
                # traceback: the post-mortem of what this process was doing
                # in the moments before it failed.
                results.put(
                    (
                        "error",
                        boot.rank,
                        {
                            "seq": job.seq,
                            "detail": err,
                            "flight": FLIGHT.dump(),
                        },
                    )
                )
            else:
                results.put(
                    (
                        "ok",
                        boot.rank,
                        {
                            "seq": job.seq,
                            "elapsed": elapsed,
                            "events": tracer.drain(),
                            # The always-on incremental metrics flush: rides
                            # the existing result channel, costs a handful of
                            # floats per job.
                            "stats": stats,
                        },
                    )
                )
    finally:
        for channel in channels.values():
            channel.detach()
        for _, attached, _ in cache.values():
            attached.detach()
        for seg in seg_cache.values():
            try:
                seg.close()
            except BufferError:
                pass


@dataclass
class _PlanEntry:
    """Parent-side cache record for one compiled block."""

    fingerprint: str
    compiled: CompiledScan
    shared: SharedArrayPool
    blob: bytes
    #: Ranks that have already received (and cached) the blob.
    shipped: set[int] = field(default_factory=set)
    #: Lazily-built multicast plumbing per (wave_dim, ascending, staging):
    #: ``key -> (MulticastSpec, BoundaryPool | None)``.  Boundary pools pin
    #: shared memory, so they are released with the entry.
    mcast: dict = field(default_factory=dict)


class WorkerPool:
    """A persistent set of pipeline workers bound to one processor grid.

    >>> pool = WorkerPool(2)
    >>> run = pool.execute(compiled)        # forks + ships the plan
    >>> run = pool.execute(compiled)        # reuses everything
    >>> pool.close()

    Supports ``with WorkerPool(...) as pool:``.  See
    :meth:`execute` for the run-time surface (mirrors
    :func:`repro.parallel.executor.execute` minus ``start_method``, fixed at
    construction).
    """

    def __init__(
        self,
        grid: ProcessorGrid | int | tuple[int, ...] | None = None,
        *,
        start_method: str | None = None,
        timeout: float = 120.0,
    ):
        self.grid = _as_grid(grid)
        self.timeout = timeout
        ctx = _context(start_method)
        self._barrier = ctx.Barrier(self.grid.size + 1)
        self._results = ctx.Queue()
        # Two static token fabrics: one per wavefront direction.  A job
        # selects the fabric matching its traversal sign, so one pool serves
        # forward and backward sweeps without rebuilding pipes.
        chains_fwd = _chains(self.grid, True)
        chains_bwd = _chains(self.grid, False)
        links_fwd = chain_links(ctx, chains_fwd)
        links_bwd = chain_links(ctx, chains_bwd)
        self._links = (links_fwd, links_bwd)  # keep parent copies alive
        self._chains_by_dir = {True: chains_fwd, False: chains_bwd}
        pred_fwd: dict[int, int] = {}
        pred_bwd: dict[int, int] = {}
        for chains, preds in ((chains_fwd, pred_fwd), (chains_bwd, pred_bwd)):
            for chain in chains:
                for upstream, downstream in zip(chain, chain[1:]):
                    preds[downstream] = upstream
        # The pool-lifetime epoch fabric: the segment and the per-rank
        # semaphores must exist before the fork (semaphores only inherit).
        self._mcast_fabric = MulticastFabric(ctx, self.grid.size)
        # One lock set for every taskgraph job this pool will ever run:
        # locks cannot ride a pipe, so they must exist before the fork.
        from repro.parallel.taskgraph import make_locks

        self._tg_locks = make_locks(ctx, self.grid.size)
        self._jobs: dict[int, Connection] = {}
        self._procs = []
        self._plans: dict[str, _PlanEntry] = {}
        self._seq = 0
        self._broken = False
        self._closed = False
        # One submission at a time: the plan LRU, the barrier and the shared
        # segments are single-run state.  Re-entrant so error paths that
        # re-enter helpers under the lock stay deadlock-free.
        self._submit_lock = threading.RLock()
        self.stats = {
            "executes": 0,
            "plan_hits": 0,
            "plan_misses": 0,
            "blobs_shipped": 0,
        }
        try:
            for rank in self.grid:
                recv_end, send_end = ctx.Pipe(duplex=False)
                self._jobs[rank] = send_end
                boot = PoolBoot(
                    rank=rank,
                    links_fwd=links_fwd[rank],
                    links_bwd=links_bwd[rank],
                    jobs=recv_end,
                    tg_locks=self._tg_locks,
                    mcast_sems=self._mcast_fabric.sems,
                    pred_fwd=pred_fwd.get(rank),
                    pred_bwd=pred_bwd.get(rank),
                )
                proc = ctx.Process(
                    target=run_pool_worker,
                    args=(boot, self._barrier, self._results),
                    name=f"repro-pool-{rank}",
                )
                # Daemonic: a leaked pool must never keep the interpreter
                # alive (shared_pool() also closes at exit).
                proc.daemon = True
                proc.start()
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        return self._broken

    def close(self, timeout: float = 5.0) -> None:
        """Shut the workers down and unlink every shared segment (idempotent).

        Safe to call any time — including on a broken pool, where workers may
        be stuck mid-pipeline: stragglers are terminated after ``timeout``.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._jobs.values():
            try:
                conn.send(("close",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        for conn in self._jobs.values():
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)
        for entry in self._plans.values():
            entry.shared.release()
            for _spec, bpool in entry.mcast.values():
                if bpool is not None:
                    bpool.release()
        self._plans.clear()
        self._mcast_fabric.release()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- plan cache ----------------------------------------------------------
    def _forget(self, entry: _PlanEntry) -> None:
        """Evict one plan: tell the workers first, then unlink its segments."""
        for rank in entry.shipped:
            try:
                self._jobs[rank].send(("forget", entry.fingerprint))
            except (OSError, BrokenPipeError, ValueError):
                pass
        entry.shared.release()
        for _spec, bpool in entry.mcast.values():
            if bpool is not None:
                bpool.release()
        entry.mcast.clear()
        self._plans.pop(entry.fingerprint, None)

    def _entry_for(self, compiled: CompiledScan, obs) -> _PlanEntry:
        """The cached plan entry for ``compiled``, building/refreshing it.

        Identity rules: a hit requires the *same* ``CompiledScan`` object —
        two structurally identical blocks over different arrays fingerprint
        differently, but a recompiled block over the same arrays would not,
        and its segments/blob must be rebuilt.  On a hit the shared segments
        are refreshed with the arrays' current values (``pool_reuse`` span).
        """
        fingerprint = plan_fingerprint(compiled)
        entry = self._plans.get(fingerprint)
        if entry is not None and entry.compiled is not compiled:
            self._forget(entry)
            entry = None
        if entry is not None:
            self.stats["plan_hits"] += 1
            if obs.enabled:
                obs.count("pool_plan_hits")
            with obs.span("pool_reuse", "setup", fingerprint=fingerprint[:12]):
                entry.shared.refresh()
            return entry
        self.stats["plan_misses"] += 1
        if obs.enabled:
            obs.count("pool_plan_misses")
        with obs.span("share", "setup", fingerprint=fingerprint[:12]):
            shared = SharedArrayPool(compiled)
            blob = pickle.dumps(compiled)
        entry = _PlanEntry(fingerprint, compiled, shared, blob)
        self._plans[fingerprint] = entry
        while len(self._plans) > PLAN_ENTRY_CAP:
            oldest = next(iter(self._plans))
            if oldest == fingerprint:
                break
            self._forget(self._plans[oldest])
        return entry

    # -- execution -----------------------------------------------------------
    def execute(
        self,
        compiled: CompiledScan,
        *,
        schedule: str | None = None,
        block: int | None = None,
        wavefront_dim: int | None = None,
        timeout: float | None = None,
        tracer=None,
        multicast: bool | str | None = None,
        double_buffer: bool | None = None,
        sanitize: bool | None = None,
    ) -> ParallelRun:
        """Run a compiled scan block on the pooled workers.

        Same semantics and return type as
        :func:`repro.parallel.executor.execute`; the difference is purely in
        what is amortised.  The block's arrays are updated in place.
        ``sanitize`` (default: ``REPRO_SANITIZE``) shadow-executes the run
        with vector clocks; the stamp segment is per-run, so sanitizing one
        request costs nothing for the next.

        Thread-safe: submissions serialise behind an internal lock, so
        concurrent batches (same fingerprint or not) never interleave the
        plan cache, the segment refresh or the result queue.  A run that
        fails — or a worker found dead — raises the typed
        :class:`~repro.errors.PoolBrokenError` and flags the pool broken.
        """
        with self._submit_lock:
            return self._execute(
                compiled,
                schedule=schedule,
                block=block,
                wavefront_dim=wavefront_dim,
                timeout=timeout,
                tracer=tracer,
                multicast=multicast,
                double_buffer=double_buffer,
                sanitize=sanitize,
            )

    def _ensure_workers_alive(self) -> None:
        """Fail fast when a worker process died (kill -9, OOM, segfault)."""
        dead = [
            rank
            for rank, proc in zip(self.grid, self._procs)
            if not proc.is_alive()
        ]
        if dead:
            self._broken = True
            raise PoolBrokenError(
                f"pool worker(s) {dead} died; the pool is broken — "
                "respawn it (see PoolSupervisor) before the next request"
            )

    def _execute(
        self,
        compiled: CompiledScan,
        *,
        schedule: str | None,
        block: int | None,
        wavefront_dim: int | None,
        timeout: float | None,
        tracer,
        multicast: bool | str | None = None,
        double_buffer: bool | None = None,
        sanitize: bool | None = None,
    ) -> ParallelRun:
        if self._closed:
            raise MachineError("worker pool is closed")
        if self._broken:
            raise PoolBrokenError(
                "worker pool is broken (a previous run failed); "
                "close() it and build a new pool"
            )
        self._ensure_workers_alive()
        schedule = resolve_schedule(schedule)
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        timeout = self.timeout if timeout is None else timeout
        grid = self.grid
        obs = resolve_tracer(tracer)
        setup_start = time.perf_counter()

        plan = plan_wavefront(compiled, wavefront_dim)
        if plan.chunk_dim is None and grid.dims[0] > 1 and schedule == "pipelined":
            raise DistributionError(
                "no chunkable dimension: this block cannot be pipelined"
            )
        if schedule == "taskgraph" and grid.rank != 1:
            raise MachineError(
                "schedule=\"taskgraph\" runs on rank-1 grids: the scheduler "
                "itself spreads work along the chunk dimension"
            )
        dist = _build_distribution(plan, grid)
        loops = compiled.loops
        ascending = loops.signs[plan.wavefront_dim] >= 0
        reverse_chunks = (
            plan.chunk_dim is not None and loops.signs[plan.chunk_dim] < 0
        )
        locals_by_rank = {rank: dist.local_region(rank) for rank in grid}

        # Fabric selection before block sizing — the autotuner's cost model
        # depends on whether a release is one pipe round or one epoch stamp.
        fabric = "pipes"
        groups = None
        mcast_mode = resolve_multicast(multicast)
        if (
            schedule == "pipelined"
            and mcast_mode != "off"
            and plan.chunk_dim is not None
        ):
            groups = plan_groups(
                compiled,
                plan,
                self._chains_by_dir[ascending],
                locals_by_rank,
                grid.size,
            )
            if groups is not None and (
                mcast_mode == "on" or groups.max_fanout >= 2
            ):
                fabric = "multicast"
            else:
                groups = None

        oversub = None
        if schedule == "naive":
            block_size = None
        elif block is not None:
            if block < 1:
                raise MachineError(f"block size must be >= 1, got {block}")
            block_size = block
            if schedule == "taskgraph":
                from repro.parallel.taskgraph import resolve_oversub

                oversub = resolve_oversub()
        elif schedule == "taskgraph":
            from repro.parallel.autotune import taskgraph_tiling

            oversub, block_size = taskgraph_tiling(
                compiled, grid.dims[0], plan=plan
            )
        else:
            from repro.parallel.autotune import tuned_block_size

            block_size = tuned_block_size(
                compiled,
                grid.dims[0],
                plan=plan,
                fabric=fabric,
                fanout=groups.max_fanout if groups is not None else 1,
            )

        if os.environ.get("REPRO_CERTIFY", "") not in ("", "0"):
            from repro.analyze.certify import certify_execution

            # Certify exactly what is about to run on the pooled workers.
            if schedule == "taskgraph":
                certify_execution(
                    compiled,
                    schedule="taskgraph",
                    grid=grid,
                    block=block_size,
                    wavefront_dim=wavefront_dim,
                    oversub=oversub,
                )
            else:
                certify_execution(
                    compiled,
                    schedule=schedule,
                    grid=grid,
                    block=block_size,
                    wavefront_dim=wavefront_dim,
                    multicast=(fabric == "multicast"),
                    double_buffer=double_buffer,
                )

        chunks_by_rank: dict[int, tuple[Region, ...]] = {}
        n_chunks = 1
        if schedule in ("pipelined", "naive"):
            for rank in grid:
                local = locals_by_rank[rank]
                width = (
                    local.extent(plan.chunk_dim)
                    if plan.chunk_dim is not None
                    else 1
                )
                per_block = width if block_size is None else block_size
                chunks_by_rank[rank] = _worker_chunks(
                    plan, local, max(1, per_block), reverse_chunks
                )
                n_chunks = max(n_chunks, len(chunks_by_rank[rank]))
            # Pre-dispatch: raising mid-dispatch would abandon jobs already
            # sent and break the pool.
            check_chain_legality(compiled, plan, grid.dims[0], n_chunks)

        with obs.span("prepare", "setup"):
            compiled.prepare()  # hoisted temps must be current before refresh
        entry = self._entry_for(compiled, obs)

        mcast_spec = None
        if fabric == "multicast":
            staging = resolve_double_buffer(double_buffer)
            key = (plan.wavefront_dim, ascending, staging)
            spec_entry = entry.mcast.get(key)
            if spec_entry is None:
                layout = boundary_layout(compiled, plan) if staging else None
                bpool = (
                    BoundaryPool(grid.size, layout.slot_elems)
                    if layout is not None
                    else None
                )
                rows_by_rank = tuple(
                    None
                    if locals_by_rank[rank].is_empty()
                    else locals_by_rank[rank].range(plan.wavefront_dim)
                    for rank in grid
                )
                spec_entry = (
                    MulticastSpec(
                        epoch_seg=self._mcast_fabric.name,
                        n_ranks=grid.size,
                        groups=groups,
                        wave_dim=plan.wavefront_dim,
                        wave_ascending=ascending,
                        rows_by_rank=rows_by_rank,
                        boundary_seg=bpool.name if bpool is not None else None,
                        layout=layout if bpool is not None else None,
                        chunk_dim=plan.chunk_dim,
                    ),
                    bpool,
                )
                entry.mcast[key] = spec_entry
            mcast_spec = spec_entry[0]
            # Zero the epochs/credits from the previous run; safe because
            # submissions serialise and every worker is idle here.
            self._mcast_fabric.reset()

        graph = None
        state = None
        tg_spec = None
        if schedule == "taskgraph":
            from repro.compiler.taskdag import derive_taskgraph
            from repro.parallel.taskgraph import TaskgraphState

            with obs.span("taskdag", "setup"):
                graph = derive_taskgraph(
                    compiled,
                    plan,
                    [dist.local_region(rank) for rank in grid],
                    oversub,
                    block_size,
                )
            # Per-run scheduler segment: pending counts, deques, stamps.
            # Sanitizing rides the scheduler stamps, not a shadow segment.
            inject = None
            if sanitize:
                from repro.analyze.sanitizer import INJECT_ENV, parse_inject

                inject = parse_inject(os.environ.get(INJECT_ENV))
                if inject is not None and inject[0] != "early-fire":
                    inject = None  # other kinds target the pipe/epoch loops
            state = TaskgraphState(graph, grid.size, inject=inject)
            tg_spec = state.spec(graph, grid.size, sanitize)

        shadow = None
        if sanitize and tg_spec is None:
            from repro.analyze.sanitizer import (
                INJECT_ENV,
                ShadowPool,
                parse_inject,
            )

            # Per-run stamp plane, released in the finally below: one
            # sanitized request can never leak stamps into the next.
            shadow = ShadowPool(
                plan,
                grid,
                chunks_by_rank,
                inject=parse_inject(os.environ.get(INJECT_ENV)),
                # Multicast clocks ride the epochs: one immutable clock row
                # per (rank, block) in the shadow segment.
                epoch_clocks=n_chunks if mcast_spec is not None else 0,
            )

        self.stats["executes"] += 1
        self._seq += 1
        seq = self._seq
        # The serving layer's request ids arrive via the active request
        # context; stamping them onto the dispatch span and the jobs is what
        # links serve_request → dispatch → per-block worker spans.
        tags = current_tags()
        with obs.span("dispatch", "setup", **tags):
            for rank in grid:
                if tg_spec is None:
                    chunks = chunks_by_rank[rank]
                else:
                    chunks = ()
                    n_chunks = graph.n_live
                first_time = rank not in entry.shipped
                if first_time:
                    self.stats["blobs_shipped"] += 1
                job = PoolJob(
                    seq=seq,
                    fingerprint=entry.fingerprint,
                    blob=entry.blob if first_time else None,
                    specs=entry.shared.specs if first_time else None,
                    chunks=chunks,
                    ascending=ascending,
                    chunk_dim=plan.chunk_dim,
                    boundary_rows=plan.boundary_rows,
                    timeout=timeout,
                    trace=obs.enabled,
                    tags=tags or None,
                    taskgraph=tg_spec,
                    mcast=mcast_spec,
                    sanitize=shadow.spec if shadow is not None else None,
                )
                self._jobs[rank].send(("run", job))
                entry.shipped.add(rank)

        try:
            try:
                with obs.span("barrier", "sync"):
                    self._barrier.wait(timeout=timeout)
            except Exception as exc:
                self._broken = True
                detail = self._first_error(seq)
                raise PoolBrokenError(
                    f"pool workers failed to start: {exc}{detail}"
                ) from exc
            setup_time = time.perf_counter() - setup_start

            outcomes: dict[int, float] = {}
            run_stats: dict[int, dict] = {}
            deadline = time.monotonic() + timeout
            while len(outcomes) < grid.size:
                # Short poll slices instead of one long get(): a worker
                # killed mid-run is noticed within a slice, not after the
                # full timeout.
                try:
                    status, rank, payload = self._results.get(timeout=0.25)
                except Exception:
                    self._ensure_workers_alive()
                    if time.monotonic() > deadline:
                        self._broken = True
                        raise PoolBrokenError(
                            f"lost contact with "
                            f"{grid.size - len(outcomes)} pool "
                            f"worker(s) after {timeout:.0f}s"
                        ) from None
                    continue
                if payload.get("seq") != seq:
                    continue  # stale report from an earlier failed run
                if status != "ok":
                    self._broken = True
                    detail = payload["detail"]
                    if "SanitizerError" in detail:
                        # The race report, not the pool plumbing, is the
                        # story; the pool still breaks (workers may hold
                        # half-drained channels).
                        raise SanitizerError(
                            f"worker {rank} detected a wavefront race:\n"
                            f"{detail}"
                        )
                    flight_dump = payload.get("flight")
                    if flight_dump and flight_dump.get("events"):
                        detail += (
                            "\nworker flight recorder (last events before "
                            "failure):\n" + format_flight_tail(flight_dump)
                        )
                    raise PoolBrokenError(f"worker {rank} failed:\n{detail}")
                outcomes[rank] = payload["elapsed"]
                obs.absorb(payload["events"])
                run_stats[rank] = payload.get("stats") or {}
            with obs.span("gather", "setup"):
                entry.shared.gather()
            if shadow is not None:
                # Clock accounting over the result channel: every rank must
                # have advanced its own clock through all its blocks.  A
                # short count means completions went missing — a protocol
                # hole the per-block checks cannot see from the other side.
                for rank in grid:
                    clocks = run_stats.get(rank, {}).get("clocks")
                    expected = len(chunks_by_rank.get(rank, ()))
                    if clocks is None or clocks[rank] != expected:
                        got = "none" if clocks is None else clocks[rank]
                        raise SanitizerError(
                            f"sanitizer clock accounting failed: worker "
                            f"{rank} retired {got} of {expected} blocks"
                        )
        finally:
            if state is not None:
                state.release()
            if shadow is not None:
                shadow.release()

        report = None
        if graph is not None:
            from repro.parallel.taskgraph import report_from_stats

            report = report_from_stats(graph, run_stats)

        worker_times = tuple(outcomes[rank] for rank in grid)
        self._observe_run(
            plan, block_size, max(worker_times), seq, tags, run_stats
        )
        trace = None
        if obs.enabled:
            region = plan.region
            trace = Trace.from_tracer(
                obs,
                clock="wall",
                meta={
                    "backend": "parallel",
                    "pool": True,
                    "schedule": schedule,
                    "grid": list(grid.dims),
                    "n_procs": grid.size,
                    "pipeline_procs": grid.dims[0],
                    "block_size": block_size,
                    "n_chunks": n_chunks,
                    "rows": region.extent(plan.wavefront_dim),
                    "cols": (
                        region.extent(plan.chunk_dim)
                        if plan.chunk_dim is not None
                        else 1
                    ),
                    "boundary_rows": plan.boundary_rows,
                    "halo_rows": plan.halo_rows,
                    "wavefront_dim": plan.wavefront_dim,
                    "chunk_dim": plan.chunk_dim,
                    "wall_time": max(worker_times),
                    "setup_time": setup_time,
                    "fabric": fabric,
                    "fanout": (
                        groups.max_fanout if groups is not None else 1
                    ),
                    "sanitize": bool(sanitize),
                },
            )
            if report is not None:
                trace.meta.update(
                    oversub=oversub,
                    n_tasks=report.n_tasks,
                    n_pruned=report.n_pruned,
                    n_edges=report.n_edges,
                    steals=report.steals,
                )
        return ParallelRun(
            schedule=schedule,
            grid_dims=grid.dims,
            block_size=block_size,
            n_chunks=n_chunks,
            wall_time=max(worker_times),
            worker_times=worker_times,
            setup_time=setup_time,
            plan=plan,
            trace=trace,
            taskgraph=report,
            fabric=fabric,
        )

    def _observe_run(
        self,
        plan,
        block_size: int | None,
        wall: float,
        seq: int,
        tags: dict,
        run_stats: dict[int, dict],
    ) -> None:
        """Fold one run's worker flushes into the live telemetry.

        Per-rank counters land in the :data:`~repro.obs.live.metrics.LIVE`
        registry (what ``/metrics`` and ``obs top`` read), the aggregate
        steady-state profile feeds the online model monitor, and the run
        leaves one bounded event in the flight recorder.
        """
        busy = wait = elements = tokens = blocks = 0.0
        for rank, st in run_stats.items():
            if not st:
                continue
            label = str(rank)
            LIVE.counter(
                "repro_pool_worker_busy_seconds", rank=label
            ).inc(st.get("busy", 0.0))
            LIVE.counter(
                "repro_pool_worker_wait_seconds", rank=label
            ).inc(st.get("wait", 0.0))
            LIVE.counter(
                "repro_pool_worker_blocks_total", rank=label
            ).inc(st.get("blocks", 0))
            LIVE.counter(
                "repro_pool_worker_elements_total", rank=label
            ).inc(st.get("elements", 0))
            LIVE.counter(
                "repro_pool_worker_tokens_total", rank=label
            ).inc(st.get("tokens", 0))
            if "steals" in st:
                # Taskgraph-only series: keep pipelined rows unpolluted.
                LIVE.counter(
                    "repro_pool_worker_steals_total", rank=label
                ).inc(st.get("steals", 0))
                LIVE.gauge(
                    "repro_pool_worker_ready_depth", rank=label
                ).set(st.get("ready_peak", 0))
            if "mcast_releases" in st:
                # Multicast-fabric series: one release = one epoch stamp
                # serving the whole fan-out; flips count staged boundary
                # buffers, the gauge accumulates compute/copy overlap.
                LIVE.counter(
                    "repro_multicast_releases_total", rank=label
                ).inc(st.get("mcast_releases", 0))
                LIVE.counter(
                    "repro_boundary_buffer_flips_total", rank=label
                ).inc(st.get("buffer_flips", 0))
                LIVE.gauge(
                    "repro_multicast_overlap_seconds", rank=label
                ).inc(st.get("overlap_seconds", 0.0))
            busy += st.get("busy", 0.0)
            wait += st.get("wait", 0.0)
            elements += st.get("elements", 0)
            tokens += st.get("tokens", 0)
            blocks += st.get("blocks", 0)
        LIVE.counter("repro_pool_executes_total").inc()
        LIVE.histogram("repro_pool_execute_seconds").observe(wall)
        if elements > 0:
            # One token carries boundary_rows rows of one block width: the
            # live analogue of autotune's (message size, latency) sample.
            width = block_size if block_size else (
                elements / blocks if blocks else 1.0
            )
            MONITOR.observe_job(
                busy=busy,
                elements=elements,
                wait=wait,
                tokens=tokens,
                boundary_elements=max(1, plan.boundary_rows) * width,
            )
        FLIGHT.span(
            "pool_execute",
            time.perf_counter() - wall,
            time.perf_counter(),
            seq=seq,
            wall=wall,
            **tags,
        )

    def _first_error(self, seq: int) -> str:
        """Best-effort: pull this run's first worker error off the queue."""
        try:
            while True:
                status, rank, payload = self._results.get(timeout=1.0)
                if status == "error" and payload.get("seq") == seq:
                    return f"\nworker {rank}:\n{payload['detail']}"
        except Exception:
            return ""


class PoolSupervisor:
    """Thread-safe pool façade: serialize submissions, respawn broken pools.

    The serving layer's submission path.  ``submit()`` runs a compiled block
    on the supervised pool; when the pool is (or becomes) broken — a worker
    died, a run failed — only the in-flight submission observes the
    :class:`~repro.errors.PoolBrokenError`, and the supervisor replaces the
    pool before the next submission.  One dead worker therefore costs
    exactly the requests that were riding it, never every later caller.

    >>> sup = PoolSupervisor(2)
    >>> sup.submit(compiled, block=4)      # builds the pool lazily
    >>> sup.close()
    """

    def __init__(
        self,
        grid: ProcessorGrid | int | tuple[int, ...] | None = None,
        *,
        start_method: str | None = None,
        timeout: float = 120.0,
    ):
        self.grid = _as_grid(grid)
        self._start_method = start_method
        self._timeout = timeout
        self._pool: WorkerPool | None = None
        self._lock = threading.Lock()
        self._closed = False
        #: Pools built to replace a broken/closed predecessor.
        self.respawns = 0

    @property
    def pool(self) -> WorkerPool | None:
        """The current pool (``None`` before the first submission)."""
        return self._pool

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None or self._pool.closed or self._pool.broken:
            if self._pool is not None:
                self._pool.close()
                self.respawns += 1
            self._pool = WorkerPool(
                self.grid,
                start_method=self._start_method,
                timeout=self._timeout,
            )
        return self._pool

    def submit(self, compiled: CompiledScan, **kwargs) -> ParallelRun:
        """Run ``compiled`` on the supervised pool (lazily (re)built)."""
        with self._lock:
            if self._closed:
                raise MachineError("pool supervisor is closed")
            return self._ensure_pool().execute(compiled, **kwargs)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._pool is not None:
                self._pool.close()
                self._pool = None

    def __enter__(self) -> "PoolSupervisor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


#: Module-level pools, one per (grid dims, start method) — see shared_pool().
_SHARED: dict[tuple, WorkerPool] = {}


def shared_pool(
    grid: ProcessorGrid | int | tuple[int, ...] | None = None,
    *,
    start_method: str | None = None,
    timeout: float = 120.0,
) -> WorkerPool:
    """A process-wide pool for the given grid shape, built on first use.

    Closed or broken pools are transparently replaced; every pool handed out
    here is closed at interpreter exit.  Callers that want deterministic
    teardown should build their own :class:`WorkerPool` and ``close()`` it.
    """
    g = _as_grid(grid)
    key = (g.dims, start_method)
    pool = _SHARED.get(key)
    if pool is not None and not (pool.closed or pool.broken):
        return pool
    if pool is not None:
        pool.close()
    pool = WorkerPool(g, start_method=start_method, timeout=timeout)
    _SHARED[key] = pool
    return pool


def close_pools() -> None:
    """Close every :func:`shared_pool` pool (idempotent)."""
    for pool in list(_SHARED.values()):
        pool.close()
    _SHARED.clear()


atexit.register(close_pools)
