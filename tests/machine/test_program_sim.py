"""Tests for the whole-program simulator, incl. the composition cross-check."""

import pytest

from repro.apps import simple, tomcatv
from repro.errors import MachineError
from repro.machine import CRAY_T3E, MachineParams
from repro.machine.program import WavefrontSpec, optimal_spec, simulate_program
from repro.models.amdahl import PhaseKind, ProgramProfile

PARAMS = MachineParams(name="prog", alpha=50.0, beta=2.0)


def tomcatv_setup(n, p, params=PARAMS, pipelined=True):
    prof = tomcatv.profile(n)
    rows, cols = n - 3, n - 2
    specs = {}
    for ph in prof.phases:
        if ph.kind is not PhaseKind.WAVEFRONT:
            continue
        m = 3 if ph.name == "forward-solve" else 2
        if pipelined:
            specs[ph.name] = optimal_spec(ph, params, p, rows, cols, m)
        else:
            specs[ph.name] = WavefrontSpec(rows, cols, m, None)
    return prof, specs


class TestBasics:
    def test_runs_and_times_positive(self):
        prof, specs = tomcatv_setup(65, 4)
        result = simulate_program(prof, PARAMS, 4, specs)
        assert result.total_time > 0
        assert result.pipelined

    def test_single_processor_time_is_serial_work(self):
        prof, specs = tomcatv_setup(65, 1)
        result = simulate_program(prof, PARAMS, 1, specs)
        assert result.total_time == pytest.approx(prof.total_work(), rel=0.02)

    def test_missing_spec_rejected(self):
        prof, _ = tomcatv_setup(65, 4)
        with pytest.raises(MachineError, match="WavefrontSpec"):
            simulate_program(prof, PARAMS, 4, {})

    def test_bad_procs_rejected(self):
        prof, specs = tomcatv_setup(65, 4)
        with pytest.raises(MachineError):
            simulate_program(prof, PARAMS, 0, specs)

    def test_repeats_scale_time(self):
        base = ProgramProfile("r")
        base.add("work", PhaseKind.PARALLEL, 1000.0, repeats=1)
        twice = ProgramProfile("r2")
        twice.add("work", PhaseKind.PARALLEL, 1000.0, repeats=2)
        t1 = simulate_program(base, PARAMS, 4, {}, halo_elements=10).total_time
        t2 = simulate_program(twice, PARAMS, 4, {}, halo_elements=10).total_time
        assert t2 == pytest.approx(2 * t1)


class TestPipeliningPayoff:
    def test_pipelined_beats_naive(self):
        prof, piped = tomcatv_setup(129, 8, CRAY_T3E, pipelined=True)
        _, naive = tomcatv_setup(129, 8, CRAY_T3E, pipelined=False)
        t_pipe = simulate_program(prof, CRAY_T3E, 8, piped).total_time
        t_naive = simulate_program(prof, CRAY_T3E, 8, naive).total_time
        assert t_pipe < t_naive

    def test_simple_gains_less_than_tomcatv(self):
        p = 8
        n = 129

        def speedup(profile, rows, cols, m_by_phase, params):
            piped, naive = {}, {}
            for ph in profile.phases:
                if ph.kind is not PhaseKind.WAVEFRONT:
                    continue
                m = m_by_phase[ph.name]
                piped[ph.name] = optimal_spec(ph, params, p, rows, cols, m)
                naive[ph.name] = WavefrontSpec(rows, cols, m, None)
            t_naive = simulate_program(profile, params, p, naive).total_time
            t_pipe = simulate_program(profile, params, p, piped).total_time
            return t_naive / t_pipe

        tom = speedup(
            tomcatv.profile(n), n - 3, n - 2,
            {"forward-solve": 3, "backward-solve": 2}, CRAY_T3E,
        )
        sim = speedup(
            simple.profile(n), n - 2, n - 2,
            {"conduction-ns": 2, "conduction-we": 2}, CRAY_T3E,
        )
        assert tom > sim > 1.0


class TestCompositionCrossCheck:
    def test_direct_simulation_matches_composition(self):
        # The Fig. 7 composition and the direct whole-program simulation
        # must agree closely: the direct run only adds collective/skew
        # costs, which are small against the phase work.
        from repro.machine.schedules import naive_wavefront  # noqa: F401
        from repro.models.pipeline_model import model2

        n, p = 257, 8
        prof, specs = tomcatv_setup(n, p, CRAY_T3E, pipelined=True)
        direct = simulate_program(prof, CRAY_T3E, p, specs).total_time

        composed = 0.0
        rows, cols = n - 3, n - 2
        halo = 2 * CRAY_T3E.message_cost(
            max(1, int((prof.total_work() / len(prof.phases)) ** 0.5))
        )
        for ph in prof.phases:
            if ph.kind is PhaseKind.PARALLEL:
                composed += ph.total_work / p + halo
            elif ph.kind is PhaseKind.SERIAL:
                composed += ph.total_work
            else:
                spec = specs[ph.name]
                w = ph.work / (rows * cols)
                import dataclasses

                scaled = dataclasses.replace(
                    CRAY_T3E, alpha=CRAY_T3E.alpha / w, beta=CRAY_T3E.beta / w
                )
                model = model2(
                    scaled, rows, p, boundary_rows=spec.boundary_rows, cols=cols
                )
                composed += model.predicted_time(spec.block_size) * w
        assert direct == pytest.approx(composed, rel=0.08)
