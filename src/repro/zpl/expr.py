"""Expression trees for the array language, including ``@`` and the prime operator.

Array statements are built by operator overloading on :class:`repro.zpl.arrays.ZArray`
and on these nodes.  The notation mirrors the paper:

================================  =========================================
Paper (ZPL)                       This library
================================  =========================================
``b@north``                       ``b @ north``  (or ``b.at(north)``)
``d'@north`` (prime operator)     ``d.p @ north``  (or ``d.primed.at(north)``)
``(b@north + b@south) / 4.0``     ``(b @ north + b @ south) / 4.0``
``+<< a`` (full sum reduction)    ``zsum(a)``
================================  =========================================

An expression is a tree of :class:`Node` objects.  Nodes never touch array
storage themselves; evaluation is parameterised by a *reader* callable so that
the sequential interpreter, the vectorised runtime, the scalar loop-nest
oracle and the distributed executor can all reuse one tree.

Readers
-------
``reader(array, region, primed) -> numpy.ndarray``
    Return the values of ``array`` over ``region`` (already shifted).  The
    ``primed`` flag is informational: once the compiler has fixed a legal loop
    structure, primed and unprimed references are both plain storage reads.
``reader_at(array, index, primed) -> scalar``
    Point-wise variant used by the scalar loop-nest executor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from repro.errors import ExpressionError
from repro.zpl.directions import Direction, as_direction
from repro.zpl.regions import Region

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.zpl.arrays import ZArray

#: Region reader signature (see module docstring).
Reader = Callable[["ZArray", Region, bool], np.ndarray]
#: Point reader signature.
ReaderAt = Callable[["ZArray", tuple[int, ...], bool], float]

_BINOPS: dict[str, Callable] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "**": np.power,
    "max": np.maximum,
    "min": np.minimum,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}

_UNOPS: dict[str, Callable] = {
    "-": np.negative,
    "abs": np.abs,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "floor": np.floor,
    "ceil": np.ceil,
}

_REDUCTIONS: dict[str, Callable] = {
    "+": np.sum,
    "*": np.prod,
    "max": np.max,
    "min": np.min,
}


def as_node(value: object) -> "Node":
    """Coerce scalars and arrays into expression nodes."""
    from repro.zpl.arrays import ZArray

    if isinstance(value, Node):
        return value
    if isinstance(value, (int, float, np.integer, np.floating, bool, np.bool_)):
        return Const(float(value))
    if isinstance(value, ZArray):
        return Ref(value)
    raise ExpressionError(f"cannot use {value!r} in an array expression")


class Node:
    """Base expression node with operator overloading.

    Every node carries an optional ``span`` slot: the textual front end
    (:mod:`repro.zpl.parser`) records where the node came from so the
    diagnostics engine can point at real source.  Nodes built through the
    embedded DSL leave the slot unset; read it with
    :func:`repro.zpl.span.span_of` (or ``getattr(node, "span", None)``).
    """

    __slots__ = ("span",)

    # -- structural queries -------------------------------------------------
    def children(self) -> tuple["Node", ...]:
        """Immediate sub-expressions."""
        return ()

    def refs(self) -> Iterator["Ref"]:
        """All array references in the tree (depth-first)."""
        if isinstance(self, Ref):
            yield self
        for child in self.children():
            yield from child.refs()

    def parallel_ops(self) -> Iterator["ParallelOp"]:
        """All parallel-operator nodes (reductions, floods) in the tree."""
        if isinstance(self, ParallelOp):
            yield self
        for child in self.children():
            yield from child.parallel_ops()

    def has_prime(self) -> bool:
        """True when any reference in the tree is primed."""
        return any(r.primed for r in self.refs())

    @property
    def rank(self) -> int | None:
        """Common rank of all array references, or None for pure scalars."""
        ranks = {r.array.rank for r in self.refs()}
        if not ranks:
            return None
        if len(ranks) > 1:
            raise ExpressionError(f"mixed-rank expression: ranks {sorted(ranks)}")
        return ranks.pop()

    def substitute(self, mapping: dict["Node", "Node"]) -> "Node":
        """Return a copy with nodes replaced per identity ``mapping``."""
        hit = next((new for old, new in mapping.items() if old is self), None)
        if hit is not None:
            return hit
        return self._rebuild(tuple(c.substitute(mapping) for c in self.children()))

    def _rebuild(self, children: tuple["Node", ...]) -> "Node":
        if children:
            raise ExpressionError(f"{type(self).__name__} takes no children")
        return self

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, region: Region, reader: Reader) -> np.ndarray | float:
        """Evaluate over ``region`` with whole-array (numpy) semantics."""
        raise NotImplementedError

    def evaluate_at(self, index: tuple[int, ...], reader_at: ReaderAt) -> float:
        """Evaluate at a single region index (scalar oracle)."""
        raise NotImplementedError

    # -- operator overloading --------------------------------------------
    def __add__(self, other: object) -> "Node":
        return BinOp("+", self, as_node(other))

    def __radd__(self, other: object) -> "Node":
        return BinOp("+", as_node(other), self)

    def __sub__(self, other: object) -> "Node":
        return BinOp("-", self, as_node(other))

    def __rsub__(self, other: object) -> "Node":
        return BinOp("-", as_node(other), self)

    def __mul__(self, other: object) -> "Node":
        return BinOp("*", self, as_node(other))

    def __rmul__(self, other: object) -> "Node":
        return BinOp("*", as_node(other), self)

    def __truediv__(self, other: object) -> "Node":
        return BinOp("/", self, as_node(other))

    def __rtruediv__(self, other: object) -> "Node":
        return BinOp("/", as_node(other), self)

    def __pow__(self, other: object) -> "Node":
        return BinOp("**", self, as_node(other))

    def __neg__(self) -> "Node":
        return UnOp("-", self)

    # Comparisons build elementwise boolean expressions (for ``where``).
    # ``==``/``!=`` stay Python identity so nodes remain hashable; use
    # ``BinOp("==", ...)`` explicitly for elementwise equality.
    def __lt__(self, other: object) -> "Node":
        return BinOp("<", self, as_node(other))

    def __le__(self, other: object) -> "Node":
        return BinOp("<=", self, as_node(other))

    def __gt__(self, other: object) -> "Node":
        return BinOp(">", self, as_node(other))

    def __ge__(self, other: object) -> "Node":
        return BinOp(">=", self, as_node(other))

    def __matmul__(self, direction: object) -> "Node":
        raise ExpressionError(
            "@ (shift) applies to array references, not arbitrary expressions"
        )


class Const(Node):
    """A scalar constant promoted over the covering region."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def evaluate(self, region: Region, reader: Reader) -> float:
        return self.value

    def evaluate_at(self, index: tuple[int, ...], reader_at: ReaderAt) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"{self.value:g}"


class Ref(Node):
    """A (possibly shifted, possibly primed) reference to a parallel array.

    ``offset`` is the accumulated shift direction; the zero offset denotes an
    unshifted reference.  ``primed`` marks the paper's prime operator: the
    reference names values written by *previous iterations* of the loop nest
    that implements the enclosing scan block.
    """

    __slots__ = ("array", "offset", "primed")

    def __init__(
        self,
        array: "ZArray",
        offset: Direction | tuple[int, ...] | None = None,
        primed: bool = False,
    ):
        self.array = array
        if offset is None:
            offset = Direction((0,) * array.rank)
        self.offset = as_direction(offset, rank=array.rank)
        self.primed = bool(primed)

    # -- shifting and priming ---------------------------------------------
    def __matmul__(self, direction: object) -> "Ref":
        d = as_direction(direction, rank=self.array.rank)
        # Preserve the direction's symbolic name for the common single shift.
        combined = d if self.offset.is_zero() else self.offset + d
        return self._derived(Ref(self.array, combined, self.primed))

    def at(self, direction: object) -> "Ref":
        """Alias for the ``@`` operator."""
        return self @ direction

    @property
    def p(self) -> "Ref":
        """Apply the prime operator to this reference."""
        if self.primed:
            raise ExpressionError("reference is already primed")
        return self._derived(Ref(self.array, self.offset, primed=True))

    def _derived(self, ref: "Ref") -> "Ref":
        """Propagate the source span (if any) onto a shifted/primed copy."""
        span = getattr(self, "span", None)
        if span is not None:
            ref.span = span
        return ref

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, region: Region, reader: Reader) -> np.ndarray:
        return reader(self.array, region.shift(self.offset), self.primed)

    def evaluate_at(self, index: tuple[int, ...], reader_at: ReaderAt) -> float:
        shifted = tuple(i + o for i, o in zip(index, self.offset))
        return reader_at(self.array, shifted, self.primed)

    def __repr__(self) -> str:
        text = self.array.name or "<array>"
        if self.primed:
            text += "'"
        if not self.offset.is_zero():
            text += f"@{self.offset!r}"
        return text


class BinOp(Node):
    """An elementwise binary operation."""

    __slots__ = ("op", "left", "right", "_fn")

    def __init__(self, op: str, left: Node, right: Node):
        if op not in _BINOPS:
            raise ExpressionError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self._fn = _BINOPS[op]

    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)

    def _rebuild(self, children: tuple[Node, ...]) -> "Node":
        return BinOp(self.op, children[0], children[1])

    def evaluate(self, region: Region, reader: Reader) -> np.ndarray | float:
        return self._fn(
            self.left.evaluate(region, reader), self.right.evaluate(region, reader)
        )

    def evaluate_at(self, index: tuple[int, ...], reader_at: ReaderAt) -> float:
        return float(
            self._fn(
                self.left.evaluate_at(index, reader_at),
                self.right.evaluate_at(index, reader_at),
            )
        )

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnOp(Node):
    """An elementwise unary operation or math function."""

    __slots__ = ("op", "operand", "_fn")

    def __init__(self, op: str, operand: Node):
        if op not in _UNOPS:
            raise ExpressionError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand
        self._fn = _UNOPS[op]

    def children(self) -> tuple[Node, ...]:
        return (self.operand,)

    def _rebuild(self, children: tuple[Node, ...]) -> "Node":
        return UnOp(self.op, children[0])

    def evaluate(self, region: Region, reader: Reader) -> np.ndarray | float:
        return self._fn(self.operand.evaluate(region, reader))

    def evaluate_at(self, index: tuple[int, ...], reader_at: ReaderAt) -> float:
        return float(self._fn(self.operand.evaluate_at(index, reader_at)))

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


class Where(Node):
    """Elementwise selection: ``where(cond, a, b)``."""

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond: Node, if_true: Node, if_false: Node):
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    def children(self) -> tuple[Node, ...]:
        return (self.cond, self.if_true, self.if_false)

    def _rebuild(self, children: tuple[Node, ...]) -> "Node":
        return Where(children[0], children[1], children[2])

    def evaluate(self, region: Region, reader: Reader) -> np.ndarray | float:
        return np.where(
            self.cond.evaluate(region, reader),
            self.if_true.evaluate(region, reader),
            self.if_false.evaluate(region, reader),
        )

    def evaluate_at(self, index: tuple[int, ...], reader_at: ReaderAt) -> float:
        if self.cond.evaluate_at(index, reader_at):
            return self.if_true.evaluate_at(index, reader_at)
        return self.if_false.evaluate_at(index, reader_at)

    def __repr__(self) -> str:
        return f"where({self.cond!r}, {self.if_true!r}, {self.if_false!r})"


class ParallelOp(Node):
    """Base class for ZPL's non-shift parallel operators.

    Per the paper's legality condition (v) these may not have primed operands,
    and the compiler pulls them out of scan blocks into temporary arrays
    (Section 3.2).
    """

    __slots__ = ()


class ReduceExpr(ParallelOp):
    """A reduction over the covering region.

    With ``dims=None`` the reduction is *full* (a broadcast scalar, ZPL's
    ``op<< expr``); with ``dims`` given, it is a partial reduction along those
    dimensions, replicated back over the region so the result is region-shaped.
    """

    __slots__ = ("op", "operand", "dims", "_fn")

    def __init__(self, op: str, operand: Node, dims: tuple[int, ...] | None = None):
        if op not in _REDUCTIONS:
            raise ExpressionError(f"unknown reduction operator {op!r}")
        self.op = op
        self.operand = operand
        self.dims = tuple(dims) if dims is not None else None
        self._fn = _REDUCTIONS[op]

    def children(self) -> tuple[Node, ...]:
        return (self.operand,)

    def _rebuild(self, children: tuple[Node, ...]) -> "Node":
        return ReduceExpr(self.op, children[0], self.dims)

    def evaluate(self, region: Region, reader: Reader) -> np.ndarray | float:
        values = self.operand.evaluate(region, reader)
        values = np.broadcast_to(np.asarray(values, dtype=float), region.shape)
        if self.dims is None:
            return float(self._fn(values))
        partial = self._fn(values, axis=self.dims, keepdims=True)
        return np.broadcast_to(partial, region.shape).copy()

    def evaluate_at(self, index: tuple[int, ...], reader_at: ReaderAt) -> float:
        raise ExpressionError(
            "reductions cannot be evaluated point-wise; the compiler hoists "
            "them out of scan blocks first"
        )

    def __repr__(self) -> str:
        dims = "" if self.dims is None else f" dims={self.dims}"
        return f"({self.op}<<{dims} {self.operand!r})"


class FloodExpr(ParallelOp):
    """ZPL's flood (broadcast) operator: replicate along given dimensions.

    The source values are taken from the low edge of the covering region in
    each flooded dimension and replicated across that dimension.
    """

    __slots__ = ("operand", "dims")

    def __init__(self, operand: Node, dims: tuple[int, ...]):
        if not dims:
            raise ExpressionError("flood needs at least one dimension")
        self.operand = operand
        self.dims = tuple(dims)

    def children(self) -> tuple[Node, ...]:
        return (self.operand,)

    def _rebuild(self, children: tuple[Node, ...]) -> "Node":
        return FloodExpr(children[0], self.dims)

    def evaluate(self, region: Region, reader: Reader) -> np.ndarray:
        values = self.operand.evaluate(region, reader)
        values = np.broadcast_to(np.asarray(values, dtype=float), region.shape)
        selector: list[slice] = [slice(None)] * region.rank
        for dim in self.dims:
            selector[dim] = slice(0, 1)
        return np.broadcast_to(values[tuple(selector)], region.shape).copy()

    def evaluate_at(self, index: tuple[int, ...], reader_at: ReaderAt) -> float:
        raise ExpressionError(
            "floods cannot be evaluated point-wise; the compiler hoists them "
            "out of scan blocks first"
        )

    def __repr__(self) -> str:
        return f"(flood dims={self.dims} {self.operand!r})"


# ---------------------------------------------------------------------------
# Function-style builders (the library's "zmath")
# ---------------------------------------------------------------------------
def _unary(op: str) -> Callable[[object], Node]:
    def build(operand: object) -> Node:
        return UnOp(op, as_node(operand))

    build.__name__ = op
    build.__doc__ = f"Elementwise ``{op}`` of an array expression."
    return build


sqrt = _unary("sqrt")
exp = _unary("exp")
log = _unary("log")
sin = _unary("sin")
cos = _unary("cos")
absolute = _unary("abs")
floor = _unary("floor")
ceil = _unary("ceil")


def maximum(left: object, right: object) -> Node:
    """Elementwise maximum of two expressions."""
    return BinOp("max", as_node(left), as_node(right))


def minimum(left: object, right: object) -> Node:
    """Elementwise minimum of two expressions."""
    return BinOp("min", as_node(left), as_node(right))


def where(cond: object, if_true: object, if_false: object) -> Node:
    """Elementwise selection."""
    return Where(as_node(cond), as_node(if_true), as_node(if_false))


def zsum(operand: object, dims: Sequence[int] | None = None) -> Node:
    """Sum reduction (full, or partial along ``dims``)."""
    return ReduceExpr("+", as_node(operand), tuple(dims) if dims else None)


def zmax(operand: object, dims: Sequence[int] | None = None) -> Node:
    """Max reduction (full, or partial along ``dims``)."""
    return ReduceExpr("max", as_node(operand), tuple(dims) if dims else None)


def zmin(operand: object, dims: Sequence[int] | None = None) -> Node:
    """Min reduction (full, or partial along ``dims``)."""
    return ReduceExpr("min", as_node(operand), tuple(dims) if dims else None)


def flood(operand: object, dims: Sequence[int]) -> Node:
    """Flood (broadcast) along ``dims``."""
    return FloodExpr(as_node(operand), tuple(dims))


class PrefixScanExpr(ParallelOp):
    """ZPL's parallel-prefix operator (``op|| expr``) along one dimension.

    Produces the running reduction (inclusive by default) of the operand
    along ``dim`` over the covering region.  Like all parallel operators it
    is hoisted out of scan blocks (legality condition (v) applies to it).
    """

    __slots__ = ("op", "operand", "dim", "exclusive")

    _SCANS = {"+": np.cumsum, "*": np.cumprod,
              "max": np.maximum.accumulate, "min": np.minimum.accumulate}
    _IDENTITY = {"+": 0.0, "*": 1.0, "max": -np.inf, "min": np.inf}

    def __init__(self, op: str, operand: Node, dim: int, exclusive: bool = False):
        if op not in self._SCANS:
            raise ExpressionError(f"unknown prefix-scan operator {op!r}")
        self.op = op
        self.operand = operand
        self.dim = int(dim)
        self.exclusive = bool(exclusive)

    def children(self) -> tuple[Node, ...]:
        return (self.operand,)

    def _rebuild(self, children: tuple[Node, ...]) -> "Node":
        return PrefixScanExpr(self.op, children[0], self.dim, self.exclusive)

    def evaluate(self, region: Region, reader: Reader) -> np.ndarray:
        values = self.operand.evaluate(region, reader)
        values = np.broadcast_to(np.asarray(values, dtype=float), region.shape)
        if not 0 <= self.dim < region.rank:
            raise ExpressionError(
                f"prefix-scan dim {self.dim} out of range for rank {region.rank}"
            )
        result = self._SCANS[self.op](values, axis=self.dim)
        if self.exclusive:
            shifted = np.empty_like(result)
            lead = [slice(None)] * region.rank
            rest = [slice(None)] * region.rank
            lead[self.dim] = slice(0, 1)
            rest[self.dim] = slice(0, -1)
            target = [slice(None)] * region.rank
            target[self.dim] = slice(1, None)
            shifted[tuple(lead)] = self._IDENTITY[self.op]
            shifted[tuple(target)] = result[tuple(rest)]
            return shifted
        return np.array(result)

    def evaluate_at(self, index: tuple[int, ...], reader_at: ReaderAt) -> float:
        raise ExpressionError(
            "prefix scans cannot be evaluated point-wise; the compiler hoists "
            "them out of scan blocks first"
        )

    def __repr__(self) -> str:
        marker = "||'" if self.exclusive else "||"
        return f"({self.op}{marker}[{self.dim}] {self.operand!r})"


class WrapShiftExpr(ParallelOp):
    """Circular shift within the covering region (ZPL's ``wrap@``).

    Indices that a plain ``@`` would take from outside the region wrap
    around to the opposite edge instead — periodic boundary conditions
    without explicit border initialisation.  Classified as a parallel
    operator: its value depends on the whole covering region, so inside a
    scan block it is hoisted to a temporary evaluated at block entry
    (legality condition (v) applies — no primed or block-written operand).
    """

    __slots__ = ("ref", "direction")

    def __init__(self, ref: "Ref", direction):
        if not isinstance(ref, Ref):
            raise ExpressionError("wrap applies to an array reference")
        if ref.primed:
            raise ExpressionError("wrap references may not be primed")
        if not ref.offset.is_zero():
            raise ExpressionError("apply wrap to the unshifted reference")
        self.ref = ref
        self.direction = as_direction(direction, rank=ref.array.rank)

    def children(self) -> tuple[Node, ...]:
        return (self.ref,)

    def _rebuild(self, children: tuple[Node, ...]) -> "Node":
        return WrapShiftExpr(children[0], self.direction)  # type: ignore[arg-type]

    def evaluate(self, region: Region, reader: Reader) -> np.ndarray:
        values = np.asarray(reader(self.ref.array, region, False), dtype=float)
        return np.roll(values, shift=tuple(-c for c in self.direction),
                       axis=tuple(range(region.rank)))

    def evaluate_at(self, index: tuple[int, ...], reader_at: ReaderAt) -> float:
        raise ExpressionError(
            "wrap references are evaluated region-wise; the compiler hoists "
            "them out of scan blocks first"
        )

    def __repr__(self) -> str:
        return f"{self.ref!r} wrap@{self.direction!r}"


def prefix_scan(
    operand: object, op: str = "+", dim: int = 0, exclusive: bool = False
) -> Node:
    """Parallel prefix (``op||``) along ``dim``."""
    return PrefixScanExpr(op, as_node(operand), dim, exclusive)


def wrap(array: object, direction) -> Node:
    """Circular shift (``wrap@direction``) of an array over the region."""
    node = as_node(array)
    if not isinstance(node, Ref):
        raise ExpressionError("wrap applies to an array, not an expression")
    return WrapShiftExpr(node, direction)


class IndexExpr(Node):
    """ZPL's ``IndexD`` built-ins: the value of the D-th index at each point.

    ``index(0)`` evaluates, at region point ``(i, j, ...)``, to ``i`` —
    useful for coordinate-dependent initialisation and masks.  Point-local,
    so it is legal inside scan blocks without hoisting.
    """

    __slots__ = ("dim",)

    def __init__(self, dim: int):
        if dim < 0:
            raise ExpressionError(f"index dimension must be >= 0, got {dim}")
        self.dim = int(dim)

    def evaluate(self, region: Region, reader: Reader) -> np.ndarray:
        if self.dim >= region.rank:
            raise ExpressionError(
                f"index dimension {self.dim} out of range for rank {region.rank}"
            )
        lo, hi = region.range(self.dim)
        coords = np.arange(lo, hi + 1, dtype=float)
        shape = [1] * region.rank
        shape[self.dim] = coords.size
        return np.broadcast_to(coords.reshape(shape), region.shape).copy()

    def evaluate_at(self, index: tuple[int, ...], reader_at: ReaderAt) -> float:
        if self.dim >= len(index):
            raise ExpressionError(
                f"index dimension {self.dim} out of range for rank {len(index)}"
            )
        return float(index[self.dim])

    def __repr__(self) -> str:
        return f"Index{self.dim + 1}"


def index(dim: int) -> Node:
    """The D-th region index as an expression (ZPL's ``IndexD``)."""
    return IndexExpr(dim)
