#!/usr/bin/env python
"""Dynamic-programming wavefronts: sequence alignment as a scan block.

The paper's introduction names dynamic programming codes as a major class
of wavefront computations.  The Needleman-Wunsch recurrence depends on the
north, west and northwest neighbours — a classic two-direction wavefront —
and is written here as a single scan block over a precomputed substitution
score array, with ordinary Python doing the traceback.

Run:  python examples/sequence_alignment.py
"""

from repro.apps.alignment import (
    needleman_wunsch,
    nw_score_oracle,
    smith_waterman_score,
)

pairs = [
    ("GATTACA", "GCATGCU"),
    ("ACCGTTTACGT", "ACGTACGT"),
    ("WAVEFRONT", "WAVEFORM"),
]

print("Needleman-Wunsch global alignment (scan-block wavefront):")
for a, b in pairs:
    result = needleman_wunsch(a, b)
    oracle = nw_score_oracle(a, b)
    print(f"\n  {a} vs {b}  (score {result.score:.0f}, oracle {oracle:.0f})")
    print(f"    {result.aligned_a}")
    print(f"    {result.aligned_b}")

print("\nSmith-Waterman local alignment scores:")
for a, b in pairs:
    print(f"  {a:>12s} vs {b:<12s}: {smith_waterman_score(a, b):.0f}")
