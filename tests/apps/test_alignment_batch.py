"""The batch alignment API: one compiled plan per shape, many pairs.

:func:`repro.apps.alignment.batch_tables` stacks same-shape pairs on a
parallel leading dimension and fills every DP table with **one** kernel
dispatch per anti-diagonal; :func:`~repro.apps.alignment.score_many`
groups arbitrary pairs by shape on top of it.  The single-pair entry
points delegate here, so these tests also pin the serving layer's
correctness anchor.
"""

import threading

import numpy as np
import pytest

from repro.apps.alignment import (
    batch_tables,
    needleman_wunsch,
    nw_score_oracle,
    score_many,
    smith_waterman_score,
)
from repro.runtime import KERNEL_STATS


def _random_pairs(rng, count, la, lb):
    alphabet = np.array(list("ACGT"))
    return [
        ("".join(rng.choice(alphabet, la)), "".join(rng.choice(alphabet, lb)))
        for _ in range(count)
    ]


class TestBatchTables:
    def test_tables_match_oracle_scores(self):
        rng = np.random.default_rng(7)
        pairs = _random_pairs(rng, 5, 9, 7)
        tables = batch_tables(pairs, match=2.0, mismatch=-1.0, gap=1.0)
        assert tables.shape == (5, 10, 8)
        for table, (a, b) in zip(tables, pairs):
            assert table[len(a), len(b)] == pytest.approx(
                nw_score_oracle(a, b, 2.0, -1.0, 1.0)
            )

    def test_mixed_shapes_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            batch_tables([("ACGT", "ACG"), ("ACGTT", "ACG")])

    def test_empty_pair_rejected(self):
        with pytest.raises(ValueError):
            batch_tables([("", "ACG")])

    def test_waves_beyond_plan_capacity(self):
        # More pairs than one plan holds: processed in capacity-sized
        # waves on the same cached plan, every score still exact.
        rng = np.random.default_rng(11)
        pairs = _random_pairs(rng, 40, 6, 6)
        tables = batch_tables(pairs)
        for table, (a, b) in zip(tables, pairs):
            assert table[6, 6] == pytest.approx(
                nw_score_oracle(a, b, 2.0, -1.0, 1.0)
            )

    def test_batch_dispatch_counted(self):
        KERNEL_STATS.reset()
        batch_tables([("ACGTAC", "TACGTA")] * 4)
        assert KERNEL_STATS.batch_dispatches >= 1
        assert KERNEL_STATS.batch_items >= KERNEL_STATS.batch_dispatches


class TestScoreMany:
    def test_mixed_shapes_group_by_key(self):
        rng = np.random.default_rng(3)
        pairs = (
            _random_pairs(rng, 3, 8, 8)
            + _random_pairs(rng, 2, 5, 12)
            + _random_pairs(rng, 3, 8, 8)
        )
        scores = score_many(pairs)
        assert scores == pytest.approx(
            [nw_score_oracle(a, b, 2.0, -1.0, 1.0) for a, b in pairs]
        )

    def test_local_mode_matches_single_pair_entry_point(self):
        pairs = [("GGTTGACTA", "TGTTACGG"), ("ACGTACGTA", "TTACGGAA")]
        scores = score_many(pairs, local=True)
        for (a, b), score in zip(pairs, scores):
            assert score == pytest.approx(smith_waterman_score(a, b))
            assert score >= 0.0

    def test_single_pair_functions_delegate(self):
        a, b = "GATTACA", "GCATGCU"
        result = needleman_wunsch(a, b)
        assert result.score == pytest.approx(score_many([(a, b)])[0])

    def test_concurrent_same_shape_scoring(self):
        # The serving layer calls from a worker thread while tests (or a
        # second server) may score on another: the per-plan lock must keep
        # concurrent waves of the same shape exact.
        rng = np.random.default_rng(5)
        pairs = _random_pairs(rng, 6, 7, 7)
        want = [nw_score_oracle(a, b, 2.0, -1.0, 1.0) for a, b in pairs]
        errors = []

        def worker():
            try:
                for _ in range(5):
                    assert score_many(pairs) == pytest.approx(want)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
