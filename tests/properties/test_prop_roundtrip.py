"""Property: pretty-printing then re-parsing preserves program semantics."""

import numpy as np
from hypothesis import given, settings

from repro.compiler import compile_scan
from repro.runtime import execute_vectorized, run_and_capture
from repro.zpl.parser import parse_scan_block
from repro.zpl.pretty import format_scan_block
from tests.properties.test_prop_scan_equivalence import scan_programs


@given(scan_programs())
@settings(max_examples=40, deadline=None)
def test_format_parse_roundtrip(program):
    block, arrays, _, _ = program
    compiled = compile_scan(block)

    text = format_scan_block(block)
    env = {a.name: a for a in arrays}
    reparsed = parse_scan_block(text, env)
    recompiled = compile_scan(reparsed)

    # Identical analysis results...
    assert recompiled.wsv == compiled.wsv
    assert recompiled.loops == compiled.loops
    assert len(recompiled.statements) == len(compiled.statements)

    # ...and identical execution, from identical initial state.
    before = run_and_capture(execute_vectorized, compiled, arrays)
    after = run_and_capture(execute_vectorized, recompiled, arrays)
    for a, b in zip(before, after):
        np.testing.assert_allclose(b, a, rtol=1e-12, atol=1e-12)


@given(scan_programs())
@settings(max_examples=25, deadline=None)
def test_format_is_stable(program):
    # Formatting is a pure function of the block: same text every time,
    # and formatting the reparsed block gives the same text again.
    block, arrays, _, _ = program
    text = format_scan_block(block)
    assert format_scan_block(block) == text
    env = {a.name: a for a in arrays}
    reparsed = parse_scan_block(text, env)
    assert format_scan_block(reparsed) == text
