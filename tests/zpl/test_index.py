"""Tests for Index expressions (ZPL's IndexD built-ins)."""

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan
from repro.errors import ExpressionError
from repro.runtime import execute_loopnest, execute_vectorized, run_and_capture


class TestIndexEvaluation:
    def test_region_coordinates(self):
        a = zpl.zeros(zpl.Region.of((3, 5), (10, 12)), name="a")
        with zpl.covering(a.region):
            a[...] = zpl.index(0) * 100.0 + zpl.index(1)
        assert float(a[(3, 10)]) == 310.0
        assert float(a[(5, 12)]) == 512.0

    def test_respects_covering_region(self):
        a = zpl.zeros(zpl.Region.square(1, 5), name="a")
        with zpl.covering(zpl.Region.of((2, 3), (2, 3))):
            a[...] = zpl.index(0)
        assert float(a[(2, 2)]) == 2.0
        assert float(a[(1, 1)]) == 0.0  # outside covering region

    def test_rank3(self):
        a = zpl.zeros(zpl.Region.square(1, 3, rank=3), name="a")
        with zpl.covering(a.region):
            a[...] = zpl.index(2)
        assert float(a[(1, 1, 3)]) == 3.0

    def test_bad_dim(self):
        a = zpl.zeros(zpl.Region.square(1, 3), name="a")
        with pytest.raises(ExpressionError):
            with zpl.covering(a.region):
                a[...] = zpl.index(5)
        with pytest.raises(ExpressionError):
            zpl.index(-1)

    def test_repr_one_based(self):
        assert repr(zpl.index(0)) == "Index1"


class TestIndexInScanBlocks:
    def test_point_local_in_wavefront(self):
        # Index is point-local: usable inside scan blocks without hoisting.
        n = 6
        a = zpl.zeros(zpl.Region.square(1, n), name="a")
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = (a.p @ zpl.NORTH) + zpl.index(0)
        compiled = compile_scan(block)
        assert compiled.hoisted == ()
        oracle = run_and_capture(execute_loopnest, compiled, [a])
        fast = run_and_capture(execute_vectorized, compiled, [a])
        np.testing.assert_allclose(fast[0], oracle[0])
        execute_vectorized(compiled)
        # Column sums of row indices: a[i] = 2 + 3 + ... + i.
        assert float(a[(4, 1)]) == 2.0 + 3.0 + 4.0

    def test_triangular_mask_pattern(self):
        # where(index(0) >= index(1), ...) carves a lower triangle.
        n = 5
        a = zpl.zeros(zpl.Region.square(1, n), name="a")
        with zpl.covering(a.region):
            a[...] = zpl.where(zpl.index(0) >= zpl.index(1), 1.0, 0.0)
        values = a.to_numpy()
        np.testing.assert_array_equal(values, np.tril(np.ones((n, n))))
