"""Online model monitor: streaming α/β re-fit and drift detection.

The sensor half of ROADMAP item 5(b).  :mod:`repro.parallel.autotune`
measures the host once, up front: α is the intercept and β the slope of a
least-squares line over (message size, one-way seconds) samples, and the
per-element compute cost is the unit everything is normalised by.  This
module runs *the same fit* continuously, over the live steady-state
samples the pool workers flush after every job:

* each job contributes an instantaneous **unit cost** (busy seconds per
  element), tracked as an EWMA;
* each job's token waits contribute one (boundary elements per token,
  wait seconds per token) sample to an exponentially-decayed least
  squares — the streaming form of ``measure_comm``'s fit, with the same
  intercept/slope/clamping conventions.

A **baseline** unit cost is frozen once ``min_samples`` jobs have been
seen (or seeded explicitly from an autotune result).  When the EWMA
departs from the baseline by more than ``threshold``× in either
direction, the monitor flips its drift flag and records a ``model_drift``
event in the flight recorder — the signal that Eq. (1)'s block size was
tuned for a machine that no longer exists and a re-plan is warranted.
The EWMA decay (default 0.5) is chosen so a sustained 3× cost change
flips the flag within a single flush interval.
"""

from __future__ import annotations

import threading

from repro.obs.live.flight import FLIGHT, FlightRecorder


class StreamingFit:
    """Exponentially-decayed least squares for ``y = alpha + beta * x``.

    The online counterpart of the batch fit in
    :func:`repro.parallel.autotune.measure_comm`: identical estimator
    (β = cov/var, α = mean residual) and identical clamping (both
    non-negative; a degenerate x-variance collapses to β = 0 with α the
    weighted mean of y).
    """

    __slots__ = ("decay", "sw", "sx", "sy", "sxx", "sxy", "n")

    def __init__(self, decay: float = 0.97):
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        self.sw = 0.0
        self.sx = 0.0
        self.sy = 0.0
        self.sxx = 0.0
        self.sxy = 0.0
        self.n = 0

    def observe(self, x: float, y: float, weight: float = 1.0) -> None:
        d = self.decay
        self.sw = self.sw * d + weight
        self.sx = self.sx * d + weight * x
        self.sy = self.sy * d + weight * y
        self.sxx = self.sxx * d + weight * x * x
        self.sxy = self.sxy * d + weight * x * y
        self.n += 1

    def _solve(self) -> tuple[float, float]:
        if self.sw <= 0.0:
            return 0.0, 0.0
        mean_x = self.sx / self.sw
        mean_y = self.sy / self.sw
        var = self.sxx / self.sw - mean_x * mean_x
        if var <= 1e-18:
            return max(0.0, mean_y), 0.0
        cov = self.sxy / self.sw - mean_x * mean_y
        beta = max(0.0, cov / var)
        alpha = max(0.0, mean_y - beta * mean_x)
        return alpha, beta

    @property
    def alpha(self) -> float:
        return self._solve()[0]

    @property
    def beta(self) -> float:
        return self._solve()[1]


class ModelMonitor:
    """Continuously compare live job profiles with the tuned model.

    ``observe_job`` is the flush hook: the pool parent calls it once per
    completed job with the aggregate steady-state numbers its workers
    shipped back.  ``snapshot`` is the readout ``/metrics`` renders.
    """

    def __init__(
        self,
        threshold: float = 1.5,
        min_samples: int = 5,
        unit_decay: float = 0.5,
        fit_decay: float = 0.97,
        flight: FlightRecorder | None = None,
    ):
        if threshold <= 1.0:
            raise ValueError(f"threshold must be > 1, got {threshold}")
        self.threshold = threshold
        self.min_samples = min_samples
        self.unit_decay = unit_decay
        self.fit = StreamingFit(fit_decay)
        self.unit_seconds = 0.0
        self.baseline_unit: float | None = None
        self.samples = 0
        self.drift = False
        self.drift_events = 0
        self._flight = FLIGHT if flight is None else flight
        self._lock = threading.Lock()

    def seed(self, unit_seconds: float) -> None:
        """Freeze the baseline from an external tuning (e.g. autotune)."""
        with self._lock:
            if unit_seconds > 0:
                self.baseline_unit = unit_seconds
                if self.unit_seconds == 0.0:
                    self.unit_seconds = unit_seconds

    def observe_job(
        self,
        busy: float,
        elements: float,
        wait: float = 0.0,
        tokens: float = 0,
        boundary_elements: float = 0.0,
    ) -> bool:
        """Fold one completed job in; returns the current drift flag.

        ``busy``/``elements`` refresh the unit-cost EWMA; ``wait`` over
        ``tokens`` messages of ``boundary_elements`` each feeds the α/β
        fit (per-token wait is the live analogue of autotune's one-way
        ping-pong latency at that payload size).
        """
        if elements <= 0 or busy <= 0:
            return self.drift
        unit = busy / elements
        with self._lock:
            if self.samples == 0:
                self.unit_seconds = unit
            else:
                d = self.unit_decay
                self.unit_seconds = d * self.unit_seconds + (1.0 - d) * unit
            if tokens > 0 and wait >= 0.0:
                self.fit.observe(boundary_elements, wait / tokens)
            self.samples += 1
            if self.baseline_unit is None:
                if self.samples >= self.min_samples:
                    self.baseline_unit = self.unit_seconds
                return self.drift
            ratio = self.unit_seconds / self.baseline_unit
            drifted = ratio > self.threshold or ratio < 1.0 / self.threshold
            if drifted != self.drift:
                self.drift = drifted
                self.drift_events += 1
                self._flight.event(
                    "model_drift",
                    drift=drifted,
                    ratio=round(ratio, 4),
                    unit_seconds=self.unit_seconds,
                    baseline_unit_seconds=self.baseline_unit,
                    samples=self.samples,
                )
            return self.drift

    def snapshot(self) -> dict:
        """JSON-ready state: live α/β (seconds and units), drift status."""
        with self._lock:
            alpha_s, beta_s = self.fit._solve()
            unit = self.unit_seconds
            baseline = self.baseline_unit
            return {
                "alpha_seconds": alpha_s,
                "beta_seconds_per_element": beta_s,
                # Element-compute units — directly comparable with
                # MachineParams / the CRAY_T3E-style presets.
                "alpha": (alpha_s / unit) if unit > 0 else 0.0,
                "beta": (beta_s / unit) if unit > 0 else 0.0,
                "unit_seconds": unit,
                "baseline_unit_seconds": 0.0 if baseline is None else baseline,
                "ratio": (unit / baseline) if baseline else 1.0,
                "drift": self.drift,
                "drift_events": self.drift_events,
                "samples": self.samples,
                "fit_samples": self.fit.n,
            }

    def reset(self) -> None:
        with self._lock:
            self.fit = StreamingFit(self.fit.decay)
            self.unit_seconds = 0.0
            self.baseline_unit = None
            self.samples = 0
            self.drift = False
            self.drift_events = 0


#: The per-process monitor the pool feeds and ``/metrics`` reads.
MONITOR = ModelMonitor()
