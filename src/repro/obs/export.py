"""Exporters: Chrome trace-event JSON (Perfetto / ``chrome://tracing``).

The Chrome trace-event format wants microsecond timestamps in complete
(``"ph": "X"``) events plus ``"C"`` counter samples; processors map onto
threads of one synthetic process so Perfetto draws the familiar one-row-
per-processor pipeline picture.  Wall-clock traces are rebased to the
earliest span (epoch differences between OS processes cancel out);
virtual-clock traces use one "microsecond" per element-compute unit, so
the numbers Perfetto shows *are* the paper's model units.

Serve traces additionally get **flow events** (``"s"``/``"t"``/``"f"``):
for every ``serve_request`` span whose request id reappears on downstream
spans (``serve_batch``, pool ``dispatch``, per-block worker ``compute`` —
the ``rids`` tag written by request-context propagation), one flow arrow
chain links them, so Perfetto renders the causal path of a request across
the server and the worker processes instead of disconnected tracks.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import PARENT_PROC, Trace

#: Wall-clock seconds → Chrome microseconds.
_US = 1e6


def _scale(trace: Trace) -> float:
    return _US if trace.clock == "wall" else 1.0


def to_chrome(trace: Trace) -> dict:
    """Convert a :class:`Trace` into a Chrome trace-event JSON object."""
    try:
        t0 = trace.t0
    except ValueError:
        t0 = min((s.start for s in trace.spans), default=0.0)
    t0 = min(t0, min((s.start for s in trace.spans), default=t0))
    scale = _scale(trace)

    events: list[dict] = []
    procs = sorted({s.proc for s in trace.spans})
    for proc in procs:
        label = "driver" if proc == PARENT_PROC else f"P{proc}"
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": proc - PARENT_PROC,  # driver=0, workers from 1
                "args": {"name": label},
            }
        )
    events.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": trace.meta.get("backend", "repro")},
        }
    )
    for s in trace.spans:
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.cat or "span",
                "ts": (s.start - t0) * scale,
                "dur": s.duration * scale,
                "pid": 0,
                "tid": s.proc - PARENT_PROC,
                "args": dict(s.args),
            }
        )
    # Counters: the recorder keeps totals, so emit one closing sample per
    # processor placed at the end of that processor's timeline.
    proc_end = {
        proc: max(
            (s.end for s in trace.spans if s.proc == proc), default=t0
        )
        for proc in procs
    }
    for (proc, name), value in sorted(trace.counters.items()):
        events.append(
            {
                "ph": "C",
                "name": name,
                "ts": (proc_end.get(proc, t0) - t0) * scale,
                "pid": 0,
                "tid": proc - PARENT_PROC,
                "args": {f"P{proc}": value},
            }
        )
    events.extend(_flow_events(trace, t0, scale))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro-obs",
            "clock": trace.clock,
            **{k: v for k, v in trace.meta.items() if not isinstance(v, dict)},
        },
    }


def _flow_events(trace: Trace, t0: float, scale: float) -> list[dict]:
    """Flow arrows linking each request's spans across processes.

    Chrome binds a flow step to the slice whose start matches the step's
    ``ts`` on that thread, so every step is emitted at its span's start:
    ``"s"`` on the ``serve_request`` slice, ``"t"`` on each intermediate
    slice carrying the same request id, and a binding-enclosed ``"f"``
    on the last one.
    """
    requests = [
        s for s in trace.spans
        if s.name == "serve_request" and "id" in s.args
    ]
    if not requests:
        return []
    events: list[dict] = []
    for req in requests:
        rid = req.args["id"]
        chain = [req]
        for s in trace.spans:
            if s is req:
                continue
            rids = s.args.get("rids")
            if rids and rid in rids:
                chain.append(s)
        if len(chain) < 2:
            continue  # the id never left the serve loop; nothing to link
        chain.sort(key=lambda s: (s.start, s.end))
        last = len(chain) - 1
        for i, s in enumerate(chain):
            event = {
                "ph": "s" if i == 0 else ("f" if i == last else "t"),
                "cat": "flow",
                "name": "request",
                "id": rid,
                "ts": (s.start - t0) * scale,
                "pid": 0,
                "tid": s.proc - PARENT_PROC,
            }
            if i == last:
                event["bp"] = "e"
            events.append(event)
    return events


def write_chrome(trace: Trace, path: str | Path) -> Path:
    """Write Chrome trace-event JSON; open the file in Perfetto to view."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome(trace), indent=1) + "\n")
    return path
