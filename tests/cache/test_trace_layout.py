"""Tests for memory layout and trace generation."""

import numpy as np
import pytest

from repro import zpl
from repro.cache.layout import AddressSpace
from repro.cache.trace import (
    best_locality_structure,
    fused_trace,
    per_statement_trace,
    statement_slots,
)
from repro.compiler import compile_scan, compile_statements
from repro.errors import CacheConfigError
from repro.zpl.statements import Assign
from tests.conftest import record_tomcatv_block


class TestAddressSpace:
    def test_column_major_strides(self):
        a = zpl.ones(zpl.Region.of((1, 4), (1, 6)), name="a", fluff=0)
        space = AddressSpace(pad=0)
        placement = space.place(a)
        assert placement.strides == (1, 4)  # dim 0 contiguous

    def test_address_of_index(self):
        a = zpl.ones(zpl.Region.of((1, 4), (1, 6)), name="a", fluff=0)
        placement = AddressSpace(pad=0).place(a)
        assert placement.address((1, 1)) == 0
        assert placement.address((2, 1)) == 1  # next row: contiguous
        assert placement.address((1, 2)) == 4  # next column: stride 4

    def test_fluff_included_in_layout(self):
        a = zpl.ones(zpl.Region.of((1, 4), (1, 6)), name="a", fluff=1)
        placement = AddressSpace(pad=0).place(a)
        assert placement.strides == (1, 6)  # storage is 6 x 8
        assert placement.address((0, 0)) == 0  # storage corner

    def test_distinct_bases(self):
        a = zpl.ones(zpl.Region.square(1, 4), fluff=0)
        b = zpl.ones(zpl.Region.square(1, 4), fluff=0)
        space = AddressSpace(pad=3)
        pa, pb = space.place(a), space.place(b)
        assert pb.base == pa.base + 16 + 3
        assert space.footprint == 2 * (16 + 3)

    def test_place_idempotent(self):
        a = zpl.ones(zpl.Region.square(1, 4), fluff=0)
        space = AddressSpace()
        assert space.place(a) is space.place(a)

    def test_unplaced_lookup_rejected(self):
        a = zpl.ones(zpl.Region.square(1, 4), name="a")
        with pytest.raises(CacheConfigError):
            AddressSpace().placement(a)


def simple_statement(n=6):
    a = zpl.ones(zpl.Region.square(1, n), name="a", fluff=1)
    b = zpl.ones(zpl.Region.square(1, n), name="b", fluff=1)
    R = zpl.Region.square(2, n - 1)
    return Assign(a, (b @ zpl.NORTH) + 1.0, R), a, b, R


class TestSlots:
    def test_reads_then_write(self):
        stmt, a, b, _ = simple_statement()
        slots = statement_slots(stmt)
        assert len(slots) == 2
        assert slots[0][0] is b and slots[0][1] == (-1, 0)
        assert slots[1][0] is a and slots[1][1] == (0, 0)


class TestTraces:
    def test_fused_trace_length(self):
        stmt, a, b, R = simple_statement()
        compiled = compile_statements([stmt])
        space = AddressSpace()
        trace = fused_trace(compiled.statements, R, compiled.loops, space)
        assert trace.size == R.size * 2  # one read + one write per point

    def test_trace_addresses_match_layout(self):
        stmt, a, b, R = simple_statement()
        compiled = compile_statements([stmt])
        space = AddressSpace()
        trace = fused_trace(compiled.statements, R, compiled.loops, space)
        pb, pa = space.placement(b), space.placement(a)
        # First iteration point under the derived structure.
        loops = compiled.loops
        first = [0, 0]
        for dim in loops.order:
            first[dim] = R.range(dim)[1] if loops.signs[dim] < 0 else R.range(dim)[0]
        assert trace[0] == pb.address((first[0] - 1, first[1]))
        assert trace[1] == pa.address(tuple(first))

    def test_iteration_order_is_execution_order(self):
        # Ascending row-major structure: write addresses of consecutive
        # iterations differ by the row stride (dim 1 inner => stride 6+2).
        stmt, a, b, R = simple_statement()
        compiled = compile_statements([stmt])
        space = AddressSpace()
        trace = fused_trace(compiled.statements, R, compiled.loops, space)
        writes = trace[1::2]
        pa = space.placement(a)
        # dim 1 is innermost: consecutive writes move along columns.
        assert writes[1] - writes[0] == pa.strides[1]

    def test_per_statement_trace_shape(self):
        stmt, a, b, R = simple_statement()
        stmt2 = Assign(b, stmt.target + 2.0, R)
        space = AddressSpace()
        trace = per_statement_trace([stmt, stmt2], R, 0, space)
        assert trace.size == R.size * 4
        # Per outer row: statement 0's full sweep precedes statement 1's.
        pa = space.placement(a)
        row_len = R.extent(1)
        first_row = trace[: 4 * row_len]
        # First 2*row_len entries belong to statement 0 (reads b, writes a).
        assert first_row[1] == pa.address((2, 2))
        assert first_row[3] == pa.address((2, 3))

    def test_descending_outer(self):
        stmt, a, b, R = simple_statement()
        space = AddressSpace()
        down = per_statement_trace([stmt], R, 0, space, descending=True)
        up = per_statement_trace([stmt], R, 0, space, descending=False)
        assert down.size == up.size
        assert down[1] != up[1]

    def test_empty_statements_rejected(self):
        _, _, _, R = simple_statement()
        with pytest.raises(CacheConfigError):
            fused_trace([], R, None, AddressSpace())


class TestLocalityStructure:
    def test_tomcatv_interchange(self):
        # The wavefront constrains dim 0 to ascend, but locality puts dim 0
        # (contiguous, column-major) innermost: order (1, 0).
        block, _ = record_tomcatv_block(10)
        compiled = compile_scan(block)
        loops = best_locality_structure(compiled)
        assert loops.order == (1, 0)
        assert loops.signs[0] == 1  # still ascending: dependence respected

    def test_unconstrained_prefers_dim0_inner(self):
        stmt, a, b, R = simple_statement()
        compiled = compile_statements([stmt])
        loops = best_locality_structure(compiled)
        assert loops.order[-1] == 0

    def test_locality_structure_still_legal(self):
        from repro.compiler.udv import constraint_vectors

        block, _ = record_tomcatv_block(8)
        compiled = compile_scan(block)
        loops = best_locality_structure(compiled)
        for v in constraint_vectors(compiled.dependences):
            assert loops.respects(v)


class TestStudy:
    def test_tomcatv_fig6_shape(self):
        from repro.cache import cache_study
        from repro.machine.params import CRAY_T3E, SGI_POWERCHALLENGE

        block, _ = record_tomcatv_block(129)
        compiled = compile_scan(block)
        t3e = cache_study(compiled, CRAY_T3E)
        pc = cache_study(compiled, SGI_POWERCHALLENGE)
        # Scan blocks win on both machines; the T3E (expensive misses)
        # gains far more — the paper's Fig. 6 contrast.
        assert t3e.speedup > 3.0
        assert pc.speedup > 1.3
        assert t3e.speedup > pc.speedup
        # And the win comes from the miss rate, not the arithmetic.
        assert t3e.fused.miss_rate < t3e.unfused.miss_rate / 3

    def test_study_work_accounting(self):
        from repro.cache import cache_study
        from repro.machine.params import CRAY_T3E

        block, _ = record_tomcatv_block(16)
        compiled = compile_scan(block)
        result = cache_study(compiled, CRAY_T3E)
        assert result.work_elements == compiled.region.size * 4
        assert result.unfused.accesses == result.fused.accesses
