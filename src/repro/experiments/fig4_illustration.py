"""Fig. 4: data movement and parallelism, naive vs pipelined — from the DES.

The paper's Fig. 4 is a hand-drawn illustration: with naive communication
(a), each processor waits for its entire boundary, so the computation is a
staircase of idle time; with pipelining (b), later processors start after a
single block and overlap with their predecessors.

This experiment produces the same picture from the actual discrete-event
execution: ASCII Gantt timelines of every processor for both schedules, plus
the utilisation numbers (the quantitative content of the figure — processors
3 and 4 of the paper's 2x2 example wait for n^2/4 elements naive but only
n^2/16 pipelined).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import suite
from repro.experiments.common import heading
from repro.machine.gantt import render_gantt
from repro.machine.params import MachineParams
from repro.machine.schedules import naive_wavefront, pipelined_wavefront
from repro.machine.simulator import RunResult

DESCRIPTION = "Fig. 4: naive vs pipelined wavefront timelines (ASCII Gantt)"

#: A mildly communication-priced machine keeps the picture legible.
ILLUSTRATION_MACHINE = MachineParams(name="illustration", alpha=60.0, beta=1.0)


@dataclass(frozen=True)
class Fig4Result:
    n: int
    p: int
    block_size: int
    naive_run: RunResult
    pipelined_run: RunResult

    @property
    def pipelining_speedup(self) -> float:
        return self.naive_run.total_time / self.pipelined_run.total_time

    def report(self) -> str:
        return "\n".join(
            [
                heading(f"Fig. 4 — wavefront schedules on the simulated machine "
                        f"(n={self.n}, p={self.p}, b={self.block_size})"),
                "",
                render_gantt(self.naive_run,
                             title="(a) naive: whole-block communication"),
                "",
                render_gantt(self.pipelined_run,
                             title=f"(b) pipelined: blocks of {self.block_size}"),
                "",
                f"speedup due to pipelining: {self.pipelining_speedup:.2f}x; "
                f"utilisation {self.naive_run.utilization:.0%} -> "
                f"{self.pipelined_run.utilization:.0%}",
            ]
        )


def run(
    n: int = 65,
    p: int = 4,
    block_size: int = 16,
    params: MachineParams = ILLUSTRATION_MACHINE,
    quick: bool = False,
) -> Fig4Result:
    """Run both schedules with activity tracing and keep the timelines."""
    compiled = suite.get("single-stream").build(n)
    naive = naive_wavefront(
        compiled, params, n_procs=p, compute_values=False, trace_activity=True
    )
    piped = pipelined_wavefront(
        compiled, params, n_procs=p, block_size=block_size,
        compute_values=False, trace_activity=True,
    )
    return Fig4Result(
        n=n, p=p, block_size=block_size,
        naive_run=naive.run, pipelined_run=piped.run,
    )
