"""Ahead-of-time statement kernels: compile the plan once, run slabs cheap.

:func:`~repro.runtime.vectorized.execute_vectorized` is an interpreter: every
carried iteration re-walks the expression tree, re-builds shifted
:class:`~repro.zpl.regions.Region` objects, re-derives numpy slices through
``ZArray._slices`` and re-runs the ``np.shares_memory`` aliasing check.  All
of that is loop-invariant — the same arrays, shifts and slab geometry flow
through every iteration — so this module hoists it to *compile time*:

* a :class:`KernelTemplate` is derived once per :class:`CompiledScan`
  (cached by object identity, evicted with the plan) and holds everything
  that does not depend on the executed region;
* ``template.instantiate(region)`` specialises each statement into a
  closed-over callable with **pre-resolved numpy slice tuples**: parallel
  dimensions become fixed slices, looped dimensions become one integer add
  per access.  Storage coverage is validated once, the
  ``values.copy()``-or-not aliasing question is decided once
  (:func:`statement_needs_copy`), and mask/contraction plumbing is wired
  up front;
* instantiated :class:`KernelPlan` objects are cached per region inside the
  template (the autotuner, the benchmarks and the pipelined workers execute
  the same handful of block regions thousands of times) and validated
  against the arrays' current storage bindings, so rebinding storage — as
  :class:`~repro.parallel.sharedmem.AttachedArrays` does — transparently
  recompiles while in-place restores (:class:`~repro.runtime.interp.ArraySnapshot`)
  keep hitting the cache.

Multi-dependence wavefronts get a second plan family: when two or more
looped dimensions are non-parallel (Needleman-Wunsch, Smith-Waterman,
multi-direction recurrences) the flat plans above degenerate into an
O(n·m) point loop, so the template additionally derives a hyperplane
schedule (:mod:`repro.compiler.skew`) and, when one is legal, instantiates
a :class:`SkewedPlan`: per covering region it precomputes the
gather/scatter index tables of every hyperplane (anti-diagonal for
τ = (1, 1)) and executes one fused numpy kernel per hyperplane per
statement — O(n+m) interpreter iterations instead of O(n·m), with masks
and contraction routed through the same tables.

The engine selection contract is shared by every consumer: ``"kernel"``
(the default) runs plans from here, auto-selecting the skewed family when
legal; ``"flat"`` keeps the kernel plans but never skews; ``"interp"`` is
the escape hatch back to the tree-walking engines.  ``REPRO_ENGINE``
flips the default (``REPRO_KERNELS`` is its deprecated alias, warned
once), ``REPRO_SKEW=0`` disables skewing globally.  Blocks the kernel
layer cannot express (stray parallel operators) fall back silently —
behaviour is identical either way, only the constant factor changes.

:func:`plan_fingerprint` names a lowered plan by *structure* (region, loop
nest, statement trees with arrays numbered in first-occurrence order) so
that equal work is recognised across process boundaries: a pickled copy of
a plan fingerprints identically to its original, which is what lets the
persistent worker pool (:mod:`repro.parallel.pool`) key its per-worker plan
caches without shipping object identity.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
import weakref
from itertools import product
from typing import Callable, Sequence

import numpy as np

from repro.compiler.lowering import CompiledScan
from repro.compiler.skew import derive_skew
from repro.compiler.wsv import DimClass
from repro.errors import ArrayError, MachineError
from repro.obs.live.context import current_tags
from repro.obs.live.flight import FLIGHT
from repro.obs.trace import NULL_TRACER
from repro.zpl.arrays import ZArray
from repro.zpl.expr import BinOp, Const, IndexExpr, Node, Ref, UnOp, Where
from repro.zpl.regions import Region
from repro.zpl.statements import Assign

#: The one engine knob: ``kernel`` (default; skewed plans auto-selected),
#: ``flat`` (kernel plans, no skewing) or ``interp`` (tree-walking engines).
ENGINE_ENV = "REPRO_ENGINE"

#: Deprecated alias of :data:`ENGINE_ENV` (pre-skew spelling); honoured with
#: a one-time :class:`DeprecationWarning` when ``REPRO_ENGINE`` is unset.
LEGACY_ENGINE_ENV = "REPRO_KERNELS"

#: Hyperplane-skewing kill switch: ``0``/``false``/``off`` turn every
#: ``kernel`` selection (explicit or default) into ``flat``.
SKEW_ENV = "REPRO_SKEW"

#: The engine names every ``engine=`` parameter accepts.
ENGINES = ("kernel", "flat", "interp")

_OFF_VALUES = ("0", "false", "off", "no", "interp")

#: Instantiated plans kept per template (regions are small keys; the workers
#: cycle through a bounded set of block regions).
PLAN_CACHE_CAP = 64

_legacy_env_warned = False


def _env_engine() -> str | None:
    """The engine named by the environment, or ``None`` when unset."""
    global _legacy_env_warned
    value = os.environ.get(ENGINE_ENV)
    if value is None:
        value = os.environ.get(LEGACY_ENGINE_ENV)
        if value is None:
            return None
        if not _legacy_env_warned:
            _legacy_env_warned = True
            warnings.warn(
                f"{LEGACY_ENGINE_ENV} is deprecated; set "
                f"{ENGINE_ENV}={{kernel,flat,interp}} instead",
                DeprecationWarning,
                stacklevel=3,
            )
    value = value.strip().lower()
    if value in _OFF_VALUES:
        return "interp"
    if value in ENGINES:
        return value
    return "kernel"


def skew_enabled() -> bool:
    """True unless ``REPRO_SKEW`` turns hyperplane skewing off."""
    return os.environ.get(SKEW_ENV, "").strip().lower() not in _OFF_VALUES[:4]


def default_engine() -> str:
    """The engine used when no explicit ``engine=`` is given (env-driven)."""
    engine = _env_engine()
    if engine is None:
        engine = "kernel"
    if engine == "kernel" and not skew_enabled():
        return "flat"
    return engine


def resolve_engine(engine: str | None) -> str:
    """Engine resolution used by every entry point: explicit > env > kernel.

    ``"kernel"`` means *best available* — it downgrades to ``"flat"`` when
    ``REPRO_SKEW`` disables skewing, so the kill switch works even against
    explicit ``engine="kernel"`` callers; ``"flat"`` and ``"interp"`` are
    always honoured verbatim.
    """
    if engine is None:
        return default_engine()
    if engine not in ENGINES:
        raise MachineError(f"unknown engine {engine!r}; pick from {ENGINES}")
    if engine == "kernel" and not skew_enabled():
        return "flat"
    return engine


class KernelStats:
    """Process-wide cache counters (mirrored into tracers when tracing)."""

    __slots__ = (
        "template_builds",
        "plan_builds",
        "plan_hits",
        "plan_invalidations",
        "fallbacks",
        "skew_plan_builds",
        "skew_plan_hits",
        "hyperplanes",
        "batch_dispatches",
        "batch_items",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.template_builds = 0
        self.plan_builds = 0
        self.plan_hits = 0
        self.plan_invalidations = 0
        self.fallbacks = 0
        self.skew_plan_builds = 0
        self.skew_plan_hits = 0
        self.hyperplanes = 0
        self.batch_dispatches = 0
        self.batch_items = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


#: Module-wide counters: tests and benchmarks read (and reset) these.
KERNEL_STATS = KernelStats()


# ---------------------------------------------------------------------------
# Compile-time aliasing analysis
# ---------------------------------------------------------------------------
def statement_needs_copy(stmt: Assign, contracted_ids: frozenset[int] | set[int]) -> bool:
    """Decide the ``values.copy()`` question once per plan, not once per slab.

    Only a *root-level* :class:`Ref` can evaluate to a view of array storage —
    every other node allocates a fresh array (ufuncs, ``np.where``, reduction
    copies).  A masked store never needs the copy either: the ``np.where``
    blend allocates before anything is written.  Contracted sources are
    flagged conservatively — their per-iteration buffer is a broadcast view
    of whatever the defining statement evaluated, which may alias anything.
    """
    expr = stmt.expr
    if not isinstance(expr, Ref):
        return False
    if stmt.mask is not None:
        return False
    if id(expr.array) in contracted_ids:
        return True
    return bool(np.shares_memory(expr.array._data, stmt.target._data))


def _supported_expr(node: Node, rank: int) -> bool:
    """True when the kernel builder can express ``node`` (no parallel ops)."""
    if isinstance(node, (Const, Ref)):
        return True
    if isinstance(node, IndexExpr):
        return node.dim < rank
    if isinstance(node, (BinOp, UnOp, Where)):
        return all(_supported_expr(c, rank) for c in node.children())
    return False


# ---------------------------------------------------------------------------
# Access compilation: pre-resolved numpy slice tuples
# ---------------------------------------------------------------------------
def _make_selector(entries: list) -> Callable[[tuple], tuple]:
    """``idx -> slice tuple`` from per-dimension entries.

    Each entry is either a fixed :class:`slice` (parallel dimension) or a
    ``(position, constant)`` pair meaning ``slice(v, v + 1)`` with
    ``v = idx[position] + constant`` (looped dimension).  The common rank-2
    single-looped-dimension shapes get dedicated closures so the hot path is
    one integer add and one tuple build.
    """
    variable = [
        (k, e[0], e[1]) for k, e in enumerate(entries) if not isinstance(e, slice)
    ]
    if not variable:
        fixed = tuple(entries)
        return lambda idx, fixed=fixed: fixed
    if len(variable) == 1 and len(entries) == 2:
        k, p, c = variable[0]
        if k == 0:
            s1 = entries[1]
            def selector(idx, p=p, c=c, s1=s1):
                v = idx[p] + c
                return (slice(v, v + 1), s1)
        else:
            s0 = entries[0]
            def selector(idx, p=p, c=c, s0=s0):
                v = idx[p] + c
                return (s0, slice(v, v + 1))
        return selector
    if len(variable) == 1 and len(entries) == 1:
        _, p, c = variable[0]
        def selector(idx, p=p, c=c):
            v = idx[p] + c
            return (slice(v, v + 1),)
        return selector
    template = tuple(e if isinstance(e, slice) else None for e in entries)
    var = tuple(variable)
    def selector(idx, template=template, var=var):
        out = list(template)
        for k, p, c in var:
            v = idx[p] + c
            out[k] = slice(v, v + 1)
        return tuple(out)
    return selector


class _PlanBuilder:
    """Builds the per-statement closures of one :class:`KernelPlan`."""

    def __init__(
        self,
        region: Region,
        pos: dict[int, int],
        slab_shape: tuple[int, ...],
        contracted_ids: frozenset[int],
    ):
        self.region = region
        self.pos = pos
        self.slab_shape = slab_shape
        self.contracted_ids = contracted_ids
        self.buffers: dict[int, np.ndarray] = {}
        self.binding: list[tuple[ZArray, np.ndarray]] = []

    def _bind(self, array: ZArray) -> np.ndarray:
        if not any(a is array for a, _ in self.binding):
            self.binding.append((array, array._data))
        return array._data

    def _entries(self, array: ZArray, offset: Sequence[int]) -> list:
        offset = tuple(offset)
        shifted = self.region.shift(offset)
        if not array._storage_region.covers(shifted):
            raise ArrayError(
                f"region {shifted!r} is outside the storage of {array!r} "
                f"(storage {array._storage_region!r}); declare more fluff or "
                f"initialise the border first"
            )
        base = array._storage_region.lo
        entries: list = []
        for d in range(self.region.rank):
            off = offset[d]
            p = self.pos.get(d)
            if p is not None:
                entries.append((p, off - base[d]))
            else:
                lo, hi = self.region.range(d)
                entries.append(slice(lo + off - base[d], hi + off - base[d] + 1))
        return entries

    def _read(self, array: ZArray, offset: Sequence[int]) -> Callable:
        data = self._bind(array)
        selector = _make_selector(self._entries(array, offset))
        return lambda idx, data=data, selector=selector: data[selector(idx)]

    # -- expression compilation --------------------------------------------
    def expr(self, node: Node) -> Callable:
        if isinstance(node, Const):
            value = node.value
            return lambda idx, value=value: value
        if isinstance(node, Ref):
            return self._ref(node)
        if isinstance(node, BinOp):
            fn = node._fn
            left = self.expr(node.left)
            right = self.expr(node.right)
            return lambda idx, fn=fn, left=left, right=right: fn(
                left(idx), right(idx)
            )
        if isinstance(node, UnOp):
            fn = node._fn
            operand = self.expr(node.operand)
            return lambda idx, fn=fn, operand=operand: fn(operand(idx))
        if isinstance(node, Where):
            cond = self.expr(node.cond)
            if_true = self.expr(node.if_true)
            if_false = self.expr(node.if_false)
            return lambda idx, c=cond, t=if_true, f=if_false: np.where(
                c(idx), t(idx), f(idx)
            )
        if isinstance(node, IndexExpr):
            return self._index(node)
        raise MachineError(
            f"kernel builder cannot express {type(node).__name__} nodes"
        )

    def _ref(self, node: Ref) -> Callable:
        aid = id(node.array)
        read = self._read(node.array, node.offset)
        if aid in self.contracted_ids:
            buffers = self.buffers
            def read_contracted(idx, buffers=buffers, aid=aid, read=read):
                buf = buffers.get(aid)
                return buf if buf is not None else read(idx)
            return read_contracted
        return read

    def _index(self, node: IndexExpr) -> Callable:
        p = self.pos.get(node.dim)
        if p is not None:
            return lambda idx, p=p: float(idx[p])
        lo, hi = self.region.range(node.dim)
        coords = np.arange(lo, hi + 1, dtype=float)
        shape = [1] * self.region.rank
        shape[node.dim] = coords.size
        values = np.broadcast_to(coords.reshape(shape), self.slab_shape).copy()
        return lambda idx, values=values: values

    # -- statement compilation ---------------------------------------------
    def statement(self, stmt: Assign) -> Callable:
        expr_fn = self.expr(stmt.expr)
        zero = (0,) * self.region.rank
        tid = id(stmt.target)
        if tid in self.contracted_ids:
            buffers = self.buffers
            shape = self.slab_shape
            def run_contracted(idx, expr_fn=expr_fn, buffers=buffers, tid=tid,
                               shape=shape):
                buffers[tid] = np.broadcast_to(
                    np.asarray(expr_fn(idx), dtype=float), shape
                )
            return run_contracted
        tdata = self._bind(stmt.target)
        tsel = _make_selector(self._entries(stmt.target, zero))
        if stmt.mask is not None:
            mread = self._read(stmt.mask, zero)
            def run_masked(idx, expr_fn=expr_fn, mread=mread, tdata=tdata,
                           tsel=tsel):
                values = expr_fn(idx)
                keep = mread(idx) != 0
                sel = tsel(idx)
                tdata[sel] = np.where(keep, values, tdata[sel])
            return run_masked
        if statement_needs_copy(stmt, self.contracted_ids):
            def run_copy(idx, expr_fn=expr_fn, tdata=tdata, tsel=tsel):
                values = expr_fn(idx)
                if isinstance(values, np.ndarray):
                    values = values.copy()
                tdata[tsel(idx)] = values
            return run_copy
        def run(idx, expr_fn=expr_fn, tdata=tdata, tsel=tsel):
            tdata[tsel(idx)] = expr_fn(idx)
        return run


class KernelPlan:
    """One region's compiled statement kernels, plus the bindings they froze."""

    __slots__ = ("looped_ranges", "stmt_fns", "buffers", "binding")

    def __init__(
        self,
        looped_ranges: tuple[range, ...],
        stmt_fns: tuple[Callable, ...],
        buffers: dict[int, np.ndarray],
        binding: tuple[tuple[ZArray, np.ndarray], ...],
    ):
        self.looped_ranges = looped_ranges
        self.stmt_fns = stmt_fns
        self.buffers = buffers
        self.binding = binding

    def valid(self) -> bool:
        """True while every closed-over storage buffer is still the array's.

        In-place restores keep plans valid; rebinding ``_data`` (shared-memory
        attachment, manual replacement) invalidates, forcing a rebuild.
        """
        return all(array._data is data for array, data in self.binding)

    def run(self) -> None:
        buffers = self.buffers
        stmt_fns = self.stmt_fns
        for idx in product(*self.looped_ranges):
            buffers.clear()
            for fn in stmt_fns:
                fn(idx)


# ---------------------------------------------------------------------------
# Hyperplane-skewed plans (multi-dependence wavefronts)
# ---------------------------------------------------------------------------
def hyperplane_tables(
    region: Region, loops, skew
) -> tuple[tuple[tuple[np.ndarray, ...], ...], np.ndarray]:
    """Partition a region's looped subspace into hyperplanes of equal τ·i.

    Returns ``(planes, times)``: ``planes[p]`` is one tuple of coordinate
    arrays — entry ``k`` holds the ``skew.dims[k]`` coordinate of every
    iteration point on plane ``p`` — and ``times[p]`` is the plane's τ·i
    value, strictly increasing.  Built fully vectorised: one meshgrid, one
    stable argsort on the time key, one split at the time boundaries; the
    per-plane arrays are views of the sorted buffers, so total index-table
    storage is ``rank × n_points`` integers regardless of plane count.
    """
    axes = [
        np.asarray(loops.indices(region, d), dtype=np.intp) for d in skew.dims
    ]
    mesh = np.meshgrid(*axes, indexing="ij")
    coords = [m.ravel() for m in mesh]
    t = sum(tau * c for tau, c in zip(skew.tau, coords))
    order = np.argsort(t, kind="stable")
    t_sorted = t[order]
    sorted_coords = [c[order] for c in coords]
    bounds = np.flatnonzero(np.diff(t_sorted)) + 1
    starts = np.concatenate(([0], bounds))
    stops = np.concatenate((bounds, [t_sorted.size]))
    planes = tuple(
        tuple(c[a:b] for c in sorted_coords)
        for a, b in zip(starts, stops)
    )
    return planes, t_sorted[starts]


class _SkewedPlanBuilder:
    """Builds the per-statement plane closures of one :class:`SkewedPlan`.

    Mirrors :class:`_PlanBuilder` with the iteration index replaced by a
    *plane number*: each access gathers (or scatters) every point of the
    plane at once through a fancy-index tuple — the shared per-plane
    coordinate tables plus one constant offset add per looped dimension,
    then fixed slices over the parallel dimensions.  Execution works on a
    transposed **view** of each array's storage (looped dimensions first, in
    skew order), which keeps the advanced indices adjacent and leading so
    the gathered value has shape ``(plane_len, *parallel_extents)`` and the
    scatter writes straight through to base storage.
    """

    def __init__(
        self,
        region: Region,
        skew,
        loops,
        contracted_ids: frozenset[int],
    ):
        self.region = region
        self.skew = skew
        self.dims = skew.dims
        self.par_dims = tuple(
            d for d in range(region.rank) if d not in skew.dims
        )
        self.perm = self.dims + self.par_dims
        self.par_shape = tuple(region.extent(d) for d in self.par_dims)
        self.contracted_ids = contracted_ids
        self.planes, _ = hyperplane_tables(region, loops, skew)
        self.plane_sizes = tuple(p[0].size for p in self.planes)
        self.buffers: dict[int, np.ndarray] = {}
        self.binding: list[tuple[ZArray, np.ndarray]] = []

    def _bind(self, array: ZArray) -> np.ndarray:
        if not any(a is array for a, _ in self.binding):
            self.binding.append((array, array._data))
        return array._data

    def _tables(self, array: ZArray, offset: Sequence[int]):
        """``(view, looped_consts, par_slices)`` for one shifted access."""
        offset = tuple(offset)
        shifted = self.region.shift(offset)
        if not array._storage_region.covers(shifted):
            raise ArrayError(
                f"region {shifted!r} is outside the storage of {array!r} "
                f"(storage {array._storage_region!r}); declare more fluff or "
                f"initialise the border first"
            )
        base = array._storage_region.lo
        view = self._bind(array).transpose(self.perm)
        consts = tuple(offset[d] - base[d] for d in self.dims)
        par_sel = tuple(
            slice(
                self.region.range(d)[0] + offset[d] - base[d],
                self.region.range(d)[1] + offset[d] - base[d] + 1,
            )
            for d in self.par_dims
        )
        return view, consts, par_sel

    def _selector(self, consts: tuple[int, ...], par_sel: tuple):
        """``plane -> fancy-index tuple``: table views plus constant adds."""
        planes = self.planes
        if not any(consts):
            return lambda p, planes=planes, s=par_sel: planes[p] + s
        def select(p, planes=planes, consts=consts, s=par_sel):
            return tuple(
                c + off if off else c for c, off in zip(planes[p], consts)
            ) + s
        return select

    def _read(self, array: ZArray, offset: Sequence[int]) -> Callable:
        view, consts, par_sel = self._tables(array, offset)
        select = self._selector(consts, par_sel)
        return lambda p, view=view, select=select: view[select(p)]

    # -- expression compilation --------------------------------------------
    def expr(self, node: Node) -> Callable:
        if isinstance(node, Const):
            value = node.value
            return lambda p, value=value: value
        if isinstance(node, Ref):
            return self._ref(node)
        if isinstance(node, BinOp):
            fn = node._fn
            left = self.expr(node.left)
            right = self.expr(node.right)
            return lambda p, fn=fn, left=left, right=right: fn(
                left(p), right(p)
            )
        if isinstance(node, UnOp):
            fn = node._fn
            operand = self.expr(node.operand)
            return lambda p, fn=fn, operand=operand: fn(operand(p))
        if isinstance(node, Where):
            cond = self.expr(node.cond)
            if_true = self.expr(node.if_true)
            if_false = self.expr(node.if_false)
            return lambda p, c=cond, t=if_true, f=if_false: np.where(
                c(p), t(p), f(p)
            )
        if isinstance(node, IndexExpr):
            return self._index(node)
        raise MachineError(
            f"kernel builder cannot express {type(node).__name__} nodes"
        )

    def _ref(self, node: Ref) -> Callable:
        aid = id(node.array)
        read = self._read(node.array, node.offset)
        if aid in self.contracted_ids:
            buffers = self.buffers
            def read_contracted(p, buffers=buffers, aid=aid, read=read):
                buf = buffers.get(aid)
                return buf if buf is not None else read(p)
            return read_contracted
        return read

    def _index(self, node: IndexExpr) -> Callable:
        tail = (1,) * len(self.par_dims)
        if node.dim in self.dims:
            k = self.dims.index(node.dim)
            planes = self.planes
            def looped_index(p, planes=planes, k=k, tail=tail):
                return planes[p][k].astype(float).reshape((-1,) + tail)
            return looped_index
        q = self.par_dims.index(node.dim)
        lo, hi = self.region.range(node.dim)
        shape = [1] * (1 + len(self.par_dims))
        shape[1 + q] = hi - lo + 1
        values = np.arange(lo, hi + 1, dtype=float).reshape(shape)
        return lambda p, values=values: values

    # -- statement compilation ---------------------------------------------
    def statement(self, stmt: Assign) -> Callable:
        expr_fn = self.expr(stmt.expr)
        zero = (0,) * self.region.rank
        tid = id(stmt.target)
        if tid in self.contracted_ids:
            buffers = self.buffers
            sizes = self.plane_sizes
            par_shape = self.par_shape
            def run_contracted(p, expr_fn=expr_fn, buffers=buffers, tid=tid,
                               sizes=sizes, par_shape=par_shape):
                buffers[tid] = np.broadcast_to(
                    np.asarray(expr_fn(p), dtype=float),
                    (sizes[p],) + par_shape,
                )
            return run_contracted
        view, consts, par_sel = self._tables(stmt.target, zero)
        select = self._selector(consts, par_sel)
        if stmt.mask is not None:
            mread = self._read(stmt.mask, zero)
            def run_masked(p, expr_fn=expr_fn, mread=mread, view=view,
                           select=select):
                values = expr_fn(p)
                keep = mread(p) != 0
                sel = select(p)
                view[sel] = np.where(keep, values, view[sel])
            return run_masked
        if statement_needs_copy(stmt, self.contracted_ids):
            # A fancy-index gather already copies, so only the contracted-
            # source case (broadcast view over the defining statement's
            # value) can still alias the target — keep the defensive copy.
            def run_copy(p, expr_fn=expr_fn, view=view, select=select):
                values = expr_fn(p)
                if isinstance(values, np.ndarray):
                    values = np.ascontiguousarray(values)
                view[select(p)] = values
            return run_copy
        def run(p, expr_fn=expr_fn, view=view, select=select):
            view[select(p)] = expr_fn(p)
        return run


class SkewedPlan:
    """One region's hyperplane schedule: fused kernels plane by plane."""

    __slots__ = ("n_planes", "stmt_fns", "buffers", "binding")

    def __init__(
        self,
        n_planes: int,
        stmt_fns: tuple[Callable, ...],
        buffers: dict[int, np.ndarray],
        binding: tuple[tuple[ZArray, np.ndarray], ...],
    ):
        self.n_planes = n_planes
        self.stmt_fns = stmt_fns
        self.buffers = buffers
        self.binding = binding

    def valid(self) -> bool:
        """Same storage-binding contract as :meth:`KernelPlan.valid`."""
        return all(array._data is data for array, data in self.binding)

    def run(self) -> None:
        buffers = self.buffers
        stmt_fns = self.stmt_fns
        for p in range(self.n_planes):
            buffers.clear()
            for fn in stmt_fns:
                fn(p)


class KernelTemplate:
    """Per-``CompiledScan`` compile-time state plus the region-plan cache."""

    __slots__ = ("_source", "statements", "loops", "region", "contracted_ids",
                 "supported", "skew", "plans")

    def __init__(self, compiled: CompiledScan):
        self._source = weakref.ref(compiled)
        self.statements = compiled.statements
        self.loops = compiled.loops
        self.region = compiled.region
        self.contracted_ids = frozenset(id(a) for a in compiled.contracted)
        rank = compiled.region.rank
        self.supported = all(
            _supported_expr(stmt.expr, rank) for stmt in self.statements
        )
        #: Legal hyperplane schedule, or None (one looped dim, no legal τ,
        #: or unsupported expressions).  Derived once per template.
        self.skew = derive_skew(compiled) if self.supported else None
        #: (region.ranges, skewed) -> plan, insertion-ordered (LRU eviction).
        self.plans: dict[tuple, KernelPlan | SkewedPlan] = {}

    def instantiate(
        self, region: Region, tracer=NULL_TRACER, skewed: bool = False
    ) -> KernelPlan | SkewedPlan:
        key = (region.ranges, skewed)
        plan = self.plans.get(key)
        if plan is not None:
            if plan.valid():
                KERNEL_STATS.plan_hits += 1
                if skewed:
                    KERNEL_STATS.skew_plan_hits += 1
                if tracer.enabled:
                    tracer.count("kernel_plan_hits")
                    if skewed:
                        tracer.count("skew_plan_hits")
                self.plans.pop(key)
                self.plans[key] = plan  # LRU touch
                return plan
            KERNEL_STATS.plan_invalidations += 1
            if tracer.enabled:
                tracer.count("kernel_plan_invalidations")
            del self.plans[key]
        KERNEL_STATS.plan_builds += 1
        if skewed:
            KERNEL_STATS.skew_plan_builds += 1
        if tracer.enabled:
            tracer.count("kernel_plan_misses")
            with tracer.span("kernel_compile", "compile", region=repr(region),
                             skewed=skewed):
                plan = self._build(region, skewed)
        else:
            plan = self._build(region, skewed)
        self.plans[key] = plan
        while len(self.plans) > PLAN_CACHE_CAP:
            del self.plans[next(iter(self.plans))]
        return plan

    def _build(self, region: Region, skewed: bool = False):
        loops = self.loops
        if skewed:
            builder = _SkewedPlanBuilder(
                region, self.skew, loops, self.contracted_ids
            )
            stmt_fns = tuple(
                builder.statement(stmt) for stmt in self.statements
            )
            return SkewedPlan(
                len(builder.planes), stmt_fns, builder.buffers,
                tuple(builder.binding),
            )
        looped_dims = [
            d for d in loops.order if loops.classes[d] is not DimClass.PARALLEL
        ]
        pos = {d: k for k, d in enumerate(looped_dims)}
        looped_ranges = tuple(loops.indices(region, d) for d in looped_dims)
        slab_shape = tuple(
            1 if d in pos else region.extent(d) for d in range(region.rank)
        )
        builder = _PlanBuilder(region, pos, slab_shape, self.contracted_ids)
        stmt_fns = tuple(builder.statement(stmt) for stmt in self.statements)
        return KernelPlan(
            looped_ranges, stmt_fns, builder.buffers, tuple(builder.binding)
        )


#: id(CompiledScan) -> template; entries evicted when the plan is collected.
_TEMPLATES: dict[int, KernelTemplate] = {}


def template_for(compiled: CompiledScan) -> KernelTemplate:
    """The (cached) kernel template of a compiled plan."""
    key = id(compiled)
    cached = _TEMPLATES.get(key)
    if cached is not None and cached._source() is compiled:
        return cached
    template = KernelTemplate(compiled)
    KERNEL_STATS.template_builds += 1
    _TEMPLATES[key] = template
    weakref.finalize(compiled, _TEMPLATES.pop, key, None)
    return template


def try_execute_kernels(
    compiled: CompiledScan,
    within: Region | None = None,
    tracer=None,
    engine: str | None = None,
) -> bool:
    """Run ``compiled`` through its AOT kernels; False when unsupported.

    Semantically identical to the interpreted
    :func:`~repro.runtime.vectorized.execute_vectorized` path — same
    traversal order (hyperplane sweeps respect it via the legality rule),
    same mask blending, same contraction buffering — minus the per-iteration
    interpretation.  ``engine`` picks the plan family: ``"kernel"`` (the
    default) auto-selects the skewed plan whenever the template derived a
    legal hyperplane schedule, ``"flat"`` forces the point-loop plans.  A
    ``False`` return means the caller must fall back to the tree-walking
    engine (the block contains nodes the builder does not express, or the
    resolved engine is ``"interp"``); nothing has been executed in that
    case.
    """
    obs = tracer if tracer is not None else NULL_TRACER
    mode = engine if engine in ("kernel", "flat") else resolve_engine(engine)
    if mode == "interp":
        return False
    template = template_for(compiled)
    if not template.supported:
        KERNEL_STATS.fallbacks += 1
        if obs.enabled:
            obs.count("kernel_fallbacks")
        return False
    use_skew = mode == "kernel" and template.skew is not None
    compiled.prepare()
    region = compiled.region if within is None else compiled.region.intersect(within)
    if region.is_empty():
        return True
    plan = template.instantiate(region, obs, skewed=use_skew)
    plan.run()
    if use_skew:
        KERNEL_STATS.hyperplanes += plan.n_planes
        if obs.enabled:
            obs.count("hyperplanes", plan.n_planes)
    return True


class PlanRunner:
    """Amortised repeated dispatch of one compiled plan (the serving hot path).

    A server (or any batch driver) that executes the *same* plan thousands of
    times pays engine resolution, template lookup and support probing on
    every :func:`try_execute_kernels` call.  ``PlanRunner`` hoists all of it
    to construction: ``run(items=k)`` executes the cached region plan —
    re-instantiating only when storage was rebound — and accounts the
    dispatch as one *batched* kernel dispatch covering ``items`` logical
    requests (``KERNEL_STATS.batch_dispatches`` / ``batch_items``).

    Blocks the kernel layer cannot express (or an explicit
    ``engine="interp"``) fall back to the tree-walking engine per run, so
    the runner is safe to use unconditionally.
    """

    __slots__ = ("compiled", "engine", "_template", "_use_kernels")

    def __init__(self, compiled: CompiledScan, engine: str | None = None):
        self.compiled = compiled
        self.engine = resolve_engine(engine)
        self._template = (
            template_for(compiled) if self.engine != "interp" else None
        )
        self._use_kernels = (
            self._template is not None and self._template.supported
        )

    @property
    def kind(self) -> str:
        """The plan family ``run`` executes: ``skewed``/``flat``/``interp``."""
        if not self._use_kernels:
            return "interp"
        if self.engine == "kernel" and self._template.skew is not None:
            return "skewed"
        return "flat"

    def run(self, items: int = 1, tracer=None) -> None:
        """Execute the plan once, covering ``items`` coalesced requests.

        When the always-on flight recorder is enabled, every dispatch
        leaves one ring event tagged with the active request context — the
        in-process serving path's half of end-to-end request tracing.
        """
        obs = tracer if tracer is not None else NULL_TRACER
        KERNEL_STATS.batch_dispatches += 1
        KERNEL_STATS.batch_items += items
        if obs.enabled:
            obs.count("batch_dispatches")
            obs.count("batch_items", items)
        flight = FLIGHT if FLIGHT.enabled else None
        t0 = time.perf_counter() if flight is not None else 0.0
        try:
            self._run(items, tracer, obs)
        finally:
            if flight is not None:
                flight.span(
                    "kernel_dispatch", t0, time.perf_counter(),
                    items=items, kind=self.kind, **current_tags(),
                )

    def _run(self, items: int, tracer, obs) -> None:
        if not self._use_kernels:
            from repro.runtime.vectorized import execute_vectorized

            execute_vectorized(self.compiled, tracer=tracer, engine="interp")
            return
        self.compiled.prepare()
        use_skew = self.engine == "kernel" and self._template.skew is not None
        region = self.compiled.region
        if region.is_empty():
            return
        plan = self._template.instantiate(region, obs, skewed=use_skew)
        plan.run()
        if use_skew:
            KERNEL_STATS.hyperplanes += plan.n_planes


def plan_kind(compiled: CompiledScan, engine: str | None = None) -> str:
    """The plan family ``compiled`` would execute under: skewed/flat/interp.

    Pure query — no plan is instantiated (the template is, which is cheap
    and cached).  The parallel workers use this to tag ``compute`` spans and
    the autotuner to key its per-kind cost memo.
    """
    mode = resolve_engine(engine)
    if mode == "interp":
        return "interp"
    template = template_for(compiled)
    if not template.supported:
        return "interp"
    if mode == "kernel" and template.skew is not None:
        return "skewed"
    return "flat"


# ---------------------------------------------------------------------------
# Single-statement kernels (the interp fast path)
# ---------------------------------------------------------------------------
#: id(Assign) -> (weakref to stmt, KernelPlan-backed runner) for eager
#: array-semantics statements.
_STMT_KERNELS: dict[int, tuple] = {}


def statement_kernel(stmt: Assign) -> Callable[[], None] | None:
    """An AOT kernel for one eager (array-semantics) statement, or ``None``.

    Pure array semantics means no looped dimensions: the whole region is one
    slab, so the kernel is a single closure call.  Statements the builder
    cannot express (parallel operators, primes) return ``None`` and the
    caller keeps its tree-walking path.  Cached by statement identity,
    invalidated when the target or operand storage is rebound.
    """
    key = id(stmt)
    cached = _STMT_KERNELS.get(key)
    if cached is not None:
        ref, plan, runner = cached
        if ref() is stmt and plan.valid():
            KERNEL_STATS.plan_hits += 1
            return runner
        del _STMT_KERNELS[key]
    if stmt.expr.has_prime() or not _supported_expr(stmt.expr, stmt.region.rank):
        return None
    builder = _PlanBuilder(
        stmt.region, {}, stmt.region.shape, frozenset()
    )
    fn = builder.statement(stmt)
    plan = KernelPlan((), (fn,), builder.buffers, tuple(builder.binding))
    def runner(fn=fn):
        fn(())
    KERNEL_STATS.plan_builds += 1
    _STMT_KERNELS[key] = (weakref.ref(stmt), plan, runner)
    weakref.finalize(stmt, _STMT_KERNELS.pop, key, None)
    return runner


# ---------------------------------------------------------------------------
# Plan fingerprints (structural identity across process boundaries)
# ---------------------------------------------------------------------------
def plan_fingerprint(compiled: CompiledScan) -> str:
    """A digest of the lowered plan's *structure*, stable across pickling.

    Arrays are numbered in first-occurrence order over the statements (the
    same deterministic walk :func:`repro.parallel.sharedmem.collect_arrays`
    uses for its spec list, minus the hoisted temporaries), so a pickled
    copy — or the workers' ``hoisted=()`` replica — fingerprints identically
    to the original while any structural change (region, loop nest, shifts,
    masks, contraction, storage shapes) changes the digest.
    """
    arrays: list[ZArray] = []
    index: dict[int, int] = {}

    def aidx(array: ZArray) -> int:
        k = index.get(id(array))
        if k is None:
            k = len(arrays)
            arrays.append(array)
            index[id(array)] = k
        return k

    def sig(node: Node) -> str:
        if isinstance(node, Const):
            return f"c{node.value!r}"
        if isinstance(node, Ref):
            prime = "p" if node.primed else ""
            return f"r{aidx(node.array)}@{tuple(node.offset)}{prime}"
        if isinstance(node, BinOp):
            return f"b{node.op}({sig(node.left)},{sig(node.right)})"
        if isinstance(node, UnOp):
            return f"u{node.op}({sig(node.operand)})"
        if isinstance(node, Where):
            return (
                f"w({sig(node.cond)},{sig(node.if_true)},{sig(node.if_false)})"
            )
        if isinstance(node, IndexExpr):
            return f"i{node.dim}"
        children = ",".join(sig(c) for c in node.children())
        return f"x{type(node).__name__}({children})"

    loops = compiled.loops
    parts = [
        f"R{compiled.region.ranges}",
        f"L{loops.order}|{loops.signs}|{tuple(c.value for c in loops.classes)}",
    ]
    for stmt in compiled.statements:
        mask = "-" if stmt.mask is None else str(aidx(stmt.mask))
        parts.append(
            f"S{aidx(stmt.target)}|{mask}|{stmt.region.ranges}|{sig(stmt.expr)}"
        )
    parts.append(f"C{tuple(sorted(aidx(a) for a in compiled.contracted))}")
    parts.append(
        f"A{tuple((a.name, tuple(a._data.shape), a.dtype.str) for a in arrays)}"
    )
    return hashlib.sha1("\n".join(parts).encode()).hexdigest()
