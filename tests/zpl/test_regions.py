"""Unit tests for regions and the region algebra."""

import pytest

from repro import zpl
from repro.errors import RegionError
from repro.zpl.regions import Region


class TestConstruction:
    def test_of(self):
        r = Region.of((2, 5), (1, 4))
        assert r.ranges == ((2, 5), (1, 4))
        assert r.rank == 2

    def test_square(self):
        r = Region.square(1, 8)
        assert r.ranges == ((1, 8), (1, 8))

    def test_square_rank3(self):
        assert Region.square(0, 3, rank=3).rank == 3

    def test_from_shape(self):
        r = Region.from_shape((4, 5), base=1)
        assert r.ranges == ((1, 4), (1, 5))

    def test_empty_ranges_rejected(self):
        with pytest.raises(RegionError):
            Region(())

    def test_bad_pair_rejected(self):
        with pytest.raises(RegionError):
            Region(((1, 2, 3),))

    def test_named(self):
        r = Region.of((1, 3), name="R")
        assert r.name == "R"
        assert r.named("S").name == "S"
        assert r.named("S") == r  # name does not affect equality


class TestQueries:
    def test_shape_and_size(self):
        r = Region.of((2, 5), (1, 4))
        assert r.shape == (4, 4)
        assert r.size == 16

    def test_inclusive_bounds(self):
        # ZPL ranges are inclusive: [2..5] has 4 indices.
        assert Region.of((2, 5)).extent(0) == 4

    def test_empty(self):
        r = Region.of((5, 2), (1, 4))
        assert r.is_empty()
        assert r.size == 0
        assert r.shape == (0, 4)

    def test_contains(self):
        r = Region.of((2, 5), (1, 4))
        assert r.contains((2, 1))
        assert r.contains((5, 4))
        assert not r.contains((6, 4))
        assert not r.contains((2,))

    def test_covers(self):
        big = Region.square(1, 8)
        small = Region.of((2, 5), (3, 3))
        assert big.covers(small)
        assert not small.covers(big)
        assert big.covers(Region.of((5, 2), (1, 1)))  # empty covered by all

    def test_lo_hi(self):
        r = Region.of((2, 5), (1, 4))
        assert r.lo == (2, 1)
        assert r.hi == (5, 4)


class TestAlgebra:
    def test_shift(self):
        r = Region.of((2, 5), (1, 4)).shift(zpl.NORTH)
        assert r.ranges == ((1, 4), (1, 4))

    def test_shift_preserves_shape(self):
        r = Region.of((2, 5), (1, 4))
        assert r.shift((3, -2)).shape == r.shape

    def test_expand(self):
        r = Region.of((2, 5), (1, 4)).expand(((1, 1), (0, 2)))
        assert r.ranges == ((1, 6), (1, 6))

    def test_border_north(self):
        # ZPL's [north of R]: the row immediately above, full width.
        r = Region.of((2, 5), (1, 4)).border(zpl.NORTH)
        assert r.ranges == ((1, 1), (1, 4))

    def test_border_south_depth2(self):
        r = Region.of((2, 5), (1, 4)).border((2, 0))
        assert r.ranges == ((6, 7), (1, 4))

    def test_border_zero_rejected(self):
        with pytest.raises(RegionError):
            Region.of((1, 3), (1, 3)).border((0, 0))

    def test_intersect(self):
        a = Region.of((1, 5), (1, 5))
        b = Region.of((3, 8), (0, 2))
        assert a.intersect(b).ranges == ((3, 5), (1, 2))

    def test_intersect_disjoint_is_empty(self):
        a = Region.of((1, 2), (1, 2))
        b = Region.of((5, 6), (1, 2))
        assert a.intersect(b).is_empty()

    def test_bounding(self):
        a = Region.of((1, 2), (4, 5))
        b = Region.of((5, 6), (1, 2))
        assert a.bounding(b).ranges == ((1, 6), (1, 5))

    def test_slab(self):
        r = Region.of((2, 5), (1, 4)).slab(0, 3, 3)
        assert r.ranges == ((3, 3), (1, 4))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(RegionError):
            Region.of((1, 2)).intersect(Region.of((1, 2), (1, 2)))


class TestSplit:
    def test_balanced(self):
        slabs = Region.of((1, 10), (1, 4)).split(0, 3)
        assert [s.range(0) for s in slabs] == [(1, 4), (5, 7), (8, 10)]

    def test_covering_and_disjoint(self):
        r = Region.of((1, 17), (1, 3))
        slabs = r.split(0, 5)
        assert sum(s.size for s in slabs) == r.size
        for a, b in zip(slabs, slabs[1:]):
            assert a.range(0)[1] + 1 == b.range(0)[0]

    def test_more_pieces_than_elements(self):
        slabs = Region.of((1, 2), (1, 1)).split(0, 4)
        assert len(slabs) == 4
        assert sum(s.size for s in slabs) == 2
        assert sum(1 for s in slabs if s.is_empty()) == 2

    def test_bad_pieces(self):
        with pytest.raises(RegionError):
            Region.of((1, 4)).split(0, 0)


class TestConversionIteration:
    def test_to_local(self):
        r = Region.of((2, 5), (1, 4))
        assert r.to_local((0, 0)) == (slice(2, 6), slice(1, 5))
        assert r.to_local((2, 1)) == (slice(0, 4), slice(0, 4))

    def test_to_local_rank_mismatch(self):
        with pytest.raises(RegionError):
            Region.of((1, 2)).to_local((0, 0))

    def test_indices(self):
        r = Region.of((2, 4))
        assert list(r.indices(0)) == [2, 3, 4]
        assert list(r.indices(0, reverse=True)) == [4, 3, 2]

    def test_indices_empty(self):
        assert list(Region.of((4, 2)).indices(0)) == []

    def test_iteration_row_major(self):
        r = Region.of((1, 2), (1, 2))
        assert list(r) == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_iteration_empty(self):
        assert list(Region.of((2, 1), (1, 2))) == []

    def test_iteration_count_matches_size(self):
        r = Region.of((0, 3), (2, 4), (1, 1))
        assert len(list(r)) == r.size

    def test_hash_and_eq(self):
        assert Region.of((1, 2)) == Region.of((1, 2))
        assert len({Region.of((1, 2)), Region.of((1, 2)), Region.of((1, 3))}) == 2
