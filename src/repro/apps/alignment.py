"""Sequence alignment: the dynamic-programming wavefronts of the paper's intro.

"Wavefront computations frequently appear in scientific applications,
including solvers and dynamic programming codes" — this module is the
dynamic-programming representative: Needleman-Wunsch global alignment and
Smith-Waterman local alignment.  The DP recurrence

    H[i,j] = max(H[i-1,j-1] + s(a_i, b_j), H[i-1,j] - gap, H[i,j-1] - gap)

depends on north, west and northwest neighbours: a classic two-direction
wavefront, written as a single scan block over a precomputed substitution
score array.  Traceback is ordinary sequential code.

Both dimensions of the DP carry dependences, so this workload is exactly
what the hyperplane-skewed kernel plans (:mod:`repro.runtime.kernels`) were
built for: the default ``engine="kernel"`` sweeps anti-diagonals with one
fused numpy kernel each (O(n+m) dispatches) instead of interpreting O(n·m)
points.  The ``engine`` parameters below accept either an engine *name*
(``"kernel"``/``"flat"``/``"interp"``) or any callable with the
:func:`~repro.runtime.vectorized.execute_vectorized` signature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import zpl
from repro.compiler import compile_scan
from repro.compiler.lowering import CompiledScan
from repro.runtime import execute_vectorized
from repro.zpl import NORTH, NORTHWEST, WEST, Region, ZArray


@dataclass(frozen=True)
class AlignmentResult:
    """Score and aligned strings (gaps as ``-``)."""

    score: float
    aligned_a: str
    aligned_b: str


def _as_engine(engine):
    """Normalise ``engine``: a name selects :func:`execute_vectorized`."""
    if callable(engine):
        return engine
    return lambda compiled, name=engine: execute_vectorized(
        compiled, engine=name
    )


def _substitution_scores(
    a: str, b: str, match: float, mismatch: float
) -> np.ndarray:
    arr_a = np.frombuffer(a.encode("ascii"), dtype=np.uint8)[:, None]
    arr_b = np.frombuffer(b.encode("ascii"), dtype=np.uint8)[None, :]
    return np.where(arr_a == arr_b, match, mismatch).astype(float)


def build_score_block(
    a: str,
    b: str,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = 1.0,
    local: bool = False,
) -> tuple[CompiledScan, ZArray]:
    """Record and compile the DP scan block; returns (compiled, H matrix).

    The H matrix is declared over ``[0..len(a), 0..len(b)]``; row/column 0
    hold the standard boundary (gap penalties for global, zero for local).
    """
    if not a or not b:
        raise ValueError("sequences must be non-empty")
    la, lb = len(a), len(b)
    h_region = Region.of((0, la), (0, lb))
    h = zpl.ZArray(h_region, name="H")
    scores = zpl.ZArray(h_region, name="S")
    scores.write(Region.of((1, la), (1, lb)), _substitution_scores(a, b, match, mismatch))
    if local:
        h.fill(0.0)
    else:
        h.fill(0.0)
        h.write(Region.of((0, la), (0, 0)), -gap * np.arange(la + 1.0)[:, None])
        h.write(Region.of((0, 0), (0, lb)), -gap * np.arange(lb + 1.0)[None, :])

    inner = Region.of((1, la), (1, lb))
    with zpl.covering(inner):
        with zpl.scan(name="alignment", execute=False) as block:
            best = zpl.maximum(
                (h.p @ NORTHWEST) + scores,
                zpl.maximum((h.p @ NORTH) - gap, (h.p @ WEST) - gap),
            )
            h[...] = zpl.maximum(best, 0.0) if local else best
    return compile_scan(block), h


def _traceback_global(
    h: np.ndarray, a: str, b: str, scores: np.ndarray, gap: float
) -> tuple[str, str]:
    i, j = len(a), len(b)
    out_a: list[str] = []
    out_b: list[str] = []
    while i > 0 or j > 0:
        if i > 0 and j > 0 and np.isclose(h[i, j], h[i - 1, j - 1] + scores[i - 1, j - 1]):
            out_a.append(a[i - 1])
            out_b.append(b[j - 1])
            i, j = i - 1, j - 1
        elif i > 0 and np.isclose(h[i, j], h[i - 1, j] - gap):
            out_a.append(a[i - 1])
            out_b.append("-")
            i -= 1
        else:
            out_a.append("-")
            out_b.append(b[j - 1])
            j -= 1
    return "".join(reversed(out_a)), "".join(reversed(out_b))


def needleman_wunsch(
    a: str,
    b: str,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = 1.0,
    engine=execute_vectorized,
) -> AlignmentResult:
    """Global alignment via the scan-block DP wavefront."""
    compiled, h = build_score_block(a, b, match, mismatch, gap, local=False)
    _as_engine(engine)(compiled)
    table = h.to_numpy()
    scores = _substitution_scores(a, b, match, mismatch)
    aligned_a, aligned_b = _traceback_global(table, a, b, scores, gap)
    return AlignmentResult(float(table[len(a), len(b)]), aligned_a, aligned_b)


def smith_waterman_score(
    a: str,
    b: str,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = 1.0,
    engine=execute_vectorized,
) -> float:
    """Local alignment score (max over the clamped DP table)."""
    compiled, h = build_score_block(a, b, match, mismatch, gap, local=True)
    _as_engine(engine)(compiled)
    return float(h.to_numpy().max())


def nw_score_oracle(
    a: str, b: str, match: float = 2.0, mismatch: float = -1.0, gap: float = 1.0
) -> float:
    """Plain-python Needleman-Wunsch score for differential testing."""
    la, lb = len(a), len(b)
    h = [[0.0] * (lb + 1) for _ in range(la + 1)]
    for i in range(1, la + 1):
        h[i][0] = -gap * i
    for j in range(1, lb + 1):
        h[0][j] = -gap * j
    for i in range(1, la + 1):
        for j in range(1, lb + 1):
            s = match if a[i - 1] == b[j - 1] else mismatch
            h[i][j] = max(h[i - 1][j - 1] + s, h[i - 1][j] - gap, h[i][j - 1] - gap)
    return h[la][lb]
