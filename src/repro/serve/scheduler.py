"""Batch scheduling policies: which coalesced batch dispatches next.

The batcher keeps one pending list per coalescing key.  When more than
one key is *ready* (its window elapsed or it hit ``batch_max``), a
:class:`Policy` picks the dispatch order:

* :class:`FIFOPolicy` — oldest first-arrival wins.  Fair, no starvation,
  the default.
* :class:`SJFPolicy` — shortest predicted job first.  Minimises mean
  latency under mixed shapes at the price of possible starvation of
  large batches; ties (and equal costs) fall back to arrival order, so
  a stream of small jobs still cannot overtake an *equal-cost* earlier
  one.

Costs come from :func:`estimate_cost`.  On a worker pool (``p >= 2``)
it asks the paper's Model 2 (:func:`repro.models.pipeline_model.model2`)
for the predicted pipelined time at the model's optimal block size —
the same α+β machine model the rest of the repository calibrates and
validates.  In-process (``p == 1``) there is no pipeline to model and
the cost degenerates to the DP volume: ``items x rows x cols`` element
updates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.params import MachineParams
from repro.models.pipeline_model import ModelError, model2


@dataclass(frozen=True)
class Candidate:
    """One ready batch as the policy sees it."""

    key: tuple
    items: int
    arrival: float  # monotonic first-arrival of the batch's oldest request
    cost: float  # predicted seconds (pool) or element updates (in-process)


def _key_geometry(key: tuple, items: int) -> tuple[int, int]:
    """(rows, cols) of the stacked dispatch a key would produce."""
    if key[0] == "align":
        _, _local, la, lb = key[:4]
        return la, lb * items
    # zpl keys carry ("zpl", digest, ((name, lo, hi), ...)); use the
    # largest declared array as the proxy for the scan geometry.
    rows = cols = 1
    for _name, lo, hi in key[2]:
        extents = [h - l + 1 for l, h in zip(lo, hi)]
        r = extents[-2] if len(extents) >= 2 else 1
        c = extents[-1]
        if r * c > rows * cols:
            rows, cols = r, c
    return rows, cols * items


def estimate_cost(
    key: tuple,
    items: int,
    params: MachineParams | None = None,
    p: int = 1,
) -> float:
    """Predicted cost of dispatching ``items`` coalesced requests of ``key``.

    With a machine model and ``p >= 2`` processors this is Model 2's
    predicted pipelined time at its own optimal block size; otherwise it
    is the raw element-update count (monotone in the same quantities, so
    SJF ordering is preserved).
    """
    rows, cols = _key_geometry(key, items)
    if params is not None and p >= 2:
        try:
            model = model2(params, n=rows, p=p, cols=cols)
            return model.predicted_time(model.optimal_block_size())
        except ModelError:
            pass  # degenerate geometry: fall through to the volume proxy
    return float(rows) * float(cols)


class Policy:
    """The seam: order ready batches; smallest sort key dispatches first."""

    name = "base"

    def sort_key(self, candidate: Candidate) -> tuple:
        raise NotImplementedError

    def select(self, candidates: list[Candidate]) -> Candidate:
        return min(candidates, key=self.sort_key)


class FIFOPolicy(Policy):
    name = "fifo"

    def sort_key(self, candidate: Candidate) -> tuple:
        return (candidate.arrival,)


class SJFPolicy(Policy):
    name = "sjf"

    def sort_key(self, candidate: Candidate) -> tuple:
        return (candidate.cost, candidate.arrival)


POLICIES = {cls.name: cls for cls in (FIFOPolicy, SJFPolicy)}


def make_policy(name: str) -> Policy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
