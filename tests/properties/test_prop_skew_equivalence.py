"""Property: the skewed plan family is bit-identical to every other engine.

Random legal scan blocks whose wavefront carries **two or three** dependent
dimensions — the multi-dependence shapes the hyperplane-skewed plans were
built for — must produce *bit-identical* storage under ``engine="kernel"``
(skewed whenever a legal τ exists), ``engine="flat"`` (point-loop kernels)
and ``engine="interp"`` (tree walker), and agree with the scalar loop-nest
oracle to float tolerance.  The strategy draws per-dimension traversal
signs, so descending (negative-stride) wavefronts — where τ components go
negative — are exercised alongside the canonical ascending anti-diagonal,
plus masks, contraction and index expressions.  Blocks whose anti
dependences admit no legal τ simply fall back to flat inside the kernel
engine; the property holds either way.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import zpl
from repro.compiler import compile_scan, contract, contractible
from repro.runtime import execute_loopnest, execute_vectorized, run_and_capture


def _scaled(direction, signs):
    return tuple(c * s for c, s in zip(direction, signs))


#: Primed-direction bases per rank, before per-dimension sign scaling.
#: ``forced`` guarantees every drawn block carries all dims (multi-dependence
#: wavefront); ``extra`` adds optional spice.
DIR_BASES = {
    2: {
        "forced": ((-1, -1),),
        "extra": ((-1, 0), (0, -1), (-2, -1), (-1, -2), (-2, 0), (0, -2)),
    },
    3: {
        "forced": ((-1, -1, 0), (0, -1, -1)),
        "extra": ((-1, 0, 0), (0, -1, 0), (0, 0, -1), (-1, -1, -1)),
    },
}
#: Read-only reference offset bases per rank (sign-scaled like the primes).
RO_BASES = {
    2: ((-1, 0), (1, 0), (0, -1), (0, 1), (1, 1), (0, 0)),
    3: ((-1, 0, 0), (0, 1, 0), (0, 0, -1), (1, 1, 0), (0, 0, 0)),
}


@st.composite
def skew_programs(draw):
    """A random multi-dependence wavefront block plus its arrays."""
    rank = draw(st.sampled_from((2, 2, 3)))  # rank-2 weighted: the hot shape
    n = draw(st.integers(6, 9)) if rank == 2 else draw(st.integers(5, 7))
    signs = tuple(draw(st.sampled_from((1, -1))) for _ in range(rank))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    base = zpl.Region.of(*(((1, n),) * rank))
    region = zpl.Region.of(*(((3, n - 1),) * rank))
    feature = draw(st.sampled_from(("plain", "mask", "contract", "index")))

    n_targets = draw(st.integers(1, 2))
    targets = []
    for k in range(n_targets):
        arr = zpl.ZArray(base, name=f"t{k}", fluff=2)
        arr._data[...] = rng.uniform(0.5, 1.5, size=arr._data.shape)
        targets.append(arr)
    readonly = zpl.ZArray(base, name="ro", fluff=2)
    readonly._data[...] = rng.uniform(0.5, 1.5, size=readonly._data.shape)
    arrays = targets + [readonly]

    temp = None
    if feature == "contract":
        temp = zpl.ZArray(base, name="tmp", fluff=2)
        temp._data[...] = rng.uniform(0.5, 1.5, size=temp._data.shape)
        arrays.append(temp)
    mask = None
    if feature == "mask":
        mask = zpl.ZArray(base, name="m", fluff=2)
        mask._data[...] = 0.0
        mask.load((rng.uniform(size=base.shape) < 0.6).astype(float))
        arrays.append(mask)

    forced = [_scaled(d, signs) for d in DIR_BASES[rank]["forced"]]
    extra = [_scaled(d, signs) for d in DIR_BASES[rank]["extra"]]
    ro_dirs = [_scaled(d, signs) for d in RO_BASES[rank]]

    def one_expr(k, force_wavefront):
        expr = zpl.as_node(draw(st.floats(0.05, 0.5)))
        if force_wavefront:
            # The dims-covering primed reads that make this a true
            # multi-dependence wavefront.
            for direction in forced:
                coeff = draw(st.floats(0.1, 0.4))
                other = targets[draw(st.integers(0, n_targets - 1))]
                expr = expr + coeff * (other.p @ direction)
        for _ in range(draw(st.integers(0, 2))):
            kind = draw(st.sampled_from(("primed", "readonly", "self", "temp")))
            coeff = draw(st.floats(0.1, 0.3))
            if kind == "primed":
                other = targets[draw(st.integers(0, n_targets - 1))]
                direction = draw(st.sampled_from(forced + extra))
                expr = expr + coeff * (other.p @ direction)
            elif kind == "readonly":
                direction = draw(st.sampled_from(ro_dirs))
                expr = expr + coeff * (readonly @ direction)
            elif kind == "temp" and temp is not None:
                expr = expr + coeff * temp.ref
            else:
                expr = expr + coeff * targets[k].ref
        if feature == "index":
            dim = draw(st.integers(0, rank - 1))
            expr = expr + 0.01 * zpl.index(dim)
        return expr

    contexts = [zpl.covering(region)]
    if mask is not None:
        contexts.append(zpl.masked(mask))
    with contexts[0]:
        if mask is not None:
            contexts[1].__enter__()
        try:
            with zpl.scan(execute=False) as block:
                if temp is not None:
                    temp[...] = one_expr(0, force_wavefront=True)
                for k in range(n_targets):
                    targets[k][...] = one_expr(k, force_wavefront=(k == 0))
        finally:
            if mask is not None:
                contexts[1].__exit__(None, None, None)

    compiled = compile_scan(block)
    if temp is not None and contractible(compiled, temp):
        compiled = contract(compiled, [temp])
    return compiled, arrays


@given(skew_programs())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_skewed_engine_matches_flat_interp_and_oracle(program):
    compiled, arrays = program

    oracle = run_and_capture(execute_loopnest, compiled, arrays)
    results = {
        engine: run_and_capture(
            lambda c, e=engine: execute_vectorized(c, engine=e),
            compiled,
            arrays,
        )
        for engine in ("kernel", "flat", "interp")
    }

    contracted_ids = {id(a) for a in compiled.contracted}
    for k, array in enumerate(arrays):
        # all three slab engines share slab semantics: bit-identical,
        # contracted storage included (none of them touches it).
        np.testing.assert_array_equal(
            results["kernel"][k], results["flat"][k],
            err_msg=f"array {array.name}: skewed != flat",
        )
        np.testing.assert_array_equal(
            results["kernel"][k], results["interp"][k],
            err_msg=f"array {array.name}: skewed != interp",
        )
        if id(array) not in contracted_ids:
            np.testing.assert_allclose(
                results["kernel"][k], oracle[k], rtol=1e-12, atol=1e-12,
                err_msg=f"array {array.name}: slab engines != oracle",
            )
