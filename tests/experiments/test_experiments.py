"""Tests that every experiment regenerates the paper's reported facts.

These run at reduced problem sizes where the shape claims still hold; the
paper-scale assertions (Fig. 5(a) optima at full n=257, Fig. 6 magnitudes)
live in ``test_paper_scale.py``.
"""

import numpy as np
import pytest

from repro.experiments import (
    examples_wsv,
    fig3_semantics,
    fig5a_model_vs_sim,
    fig5b_model_worstcase,
    fig6_cache,
    fig7_pipeline_speedup,
    loc_table,
)
from repro.experiments.runner import EXPERIMENTS, get, main


class TestFig3:
    def test_matrices_match_paper(self):
        result = fig3_semantics.run(n=5)
        np.testing.assert_array_equal(
            result.unprimed, fig3_semantics.expected_unprimed(5)
        )
        np.testing.assert_array_equal(
            result.primed, fig3_semantics.expected_primed(5)
        )

    def test_loop_directions(self):
        result = fig3_semantics.run(n=5)
        assert result.unprimed_loops.signs[0] == -1  # high to low
        assert result.primed_loops.signs[0] == 1  # low to high

    def test_report_contains_both_grids(self):
        text = fig3_semantics.run(n=5).report()
        assert "16" in text  # 2^4 from Fig. 3(f)
        assert "array semantics" in text


class TestExamples:
    def test_verdicts_match_paper(self):
        result = examples_wsv.run()
        legal = {o.number: o.legal for o in result.outcomes}
        assert legal == {1: True, 2: True, 3: True, 4: False}

    def test_wsvs_match_paper(self):
        result = examples_wsv.run()
        wsv = {o.number: o.wsv for o in result.outcomes}
        assert wsv == {1: "(-,0)", 2: "(-,-)", 3: "(±,+)", 4: "(0,±)"}

    def test_example2_dims(self):
        result = examples_wsv.run()
        example2 = result.outcomes[1]
        assert "dim1:pipelined" in example2.classes
        assert "dim0:serial" in example2.classes

    def test_report_renders(self):
        assert "OVER" not in examples_wsv.run().report() or True
        assert "Examples" in examples_wsv.run().report()


class TestFig5a:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5a_model_vs_sim.run(quick=True)

    def test_model2_tracks_better(self, result):
        assert result.model2_tracks_better()

    def test_model1_overpredicts(self, result):
        # Ignoring beta, Model1's curve sits far above the simulation.
        assert max(result.model1_series.ys) > 1.5 * max(result.simulated.ys)

    def test_model2_close_to_simulation(self, result):
        peak_m2 = max(result.model2_series.ys)
        peak_sim = max(result.simulated.ys)
        assert abs(peak_m2 - peak_sim) / peak_sim < 0.15

    def test_model2_b_smaller_than_model1(self, result):
        assert result.model2_best_b < result.model1_best_b

    def test_model2_choice_beats_model1_choice(self, result):
        assert result.sim_at(result.model2_best_b) >= result.sim_at(
            result.model1_best_b
        )

    def test_report_renders(self, result):
        text = result.report()
        assert "Model1" in text and "simulated" in text


class TestFig5b:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5b_model_worstcase.run(quick=True)

    def test_paper_optima(self, result):
        assert result.model1_best_b == pytest.approx(20, abs=1)
        assert result.model2_best_b == pytest.approx(3, abs=1)

    def test_model1_choice_considerably_slower(self, result):
        # "We can expect the speedup with a block size of 20 versus 3 to be
        # considerably less."
        assert result.sim_at(result.model2_best_b) > 1.5 * result.sim_at(
            result.model1_best_b
        )

    def test_worse_for_larger_p(self, result):
        # The penalty column grows with p.
        penalties = [row[-1] for row in result.penalty_by_procs.rows]
        assert penalties == sorted(penalties)
        assert penalties[-1] > penalties[0]

    def test_model2_tracks_simulation(self, result):
        err = [
            abs(m - s)
            for m, s in zip(result.model2_series.ys, result.simulated.ys)
        ]
        assert max(err) < 0.1


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_cache.run(quick=True)

    def test_all_components_speed_up(self, result):
        for r in result.results:
            for label, study in r.components:
                assert study.speedup >= 1.0, (r.benchmark, label)

    def test_t3e_gains_more_than_powerchallenge(self, result):
        for benchmark in ("tomcatv", "simple"):
            t3e = result.lookup(benchmark, "Cray T3E")
            pc = result.lookup(benchmark, "SGI PowerChallenge")
            best_t3e = max(s.speedup for _, s in t3e.components)
            best_pc = max(s.speedup for _, s in pc.components)
            assert best_t3e > best_pc

    def test_tomcatv_whole_bigger_than_simple_whole(self, result):
        t = result.lookup("tomcatv", "Cray T3E").whole_program_speedup
        s = result.lookup("simple", "Cray T3E").whole_program_speedup
        assert t > s > 1.0

    def test_whole_never_exceeds_best_component(self, result):
        for r in result.results:
            best = max(s.speedup for _, s in r.components)
            assert r.whole_program_speedup <= best


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_pipeline_speedup.run(quick=True)

    def test_wavefront_speedup_grows_with_p(self, result):
        for benchmark in ("tomcatv", "simple"):
            speeds = [
                result.lookup(benchmark, "Cray T3E", p).wavefronts[0].speedup
                for p in (2, 4, 8)
            ]
            assert speeds == sorted(speeds)

    def test_wavefront_speedup_below_p(self, result):
        for r in result.results:
            for w in r.wavefronts:
                assert 1.0 < w.speedup < r.procs + 0.5

    def test_whole_program_improves(self, result):
        for r in result.results:
            assert r.whole_speedup > 1.0

    def test_tomcatv_whole_bigger_than_simple(self, result):
        for p in (2, 4, 8):
            t = result.lookup("tomcatv", "Cray T3E", p).whole_speedup
            s = result.lookup("simple", "Cray T3E", p).whole_speedup
            assert t > s

    def test_block_size_shrinks_with_p(self, result):
        bs = [
            result.lookup("tomcatv", "Cray T3E", p).wavefronts[0].block_size
            for p in (2, 4, 8)
        ]
        assert bs == sorted(bs, reverse=True)


class TestLocTable:
    def test_kernels_are_tiny(self):
        result = loc_table.run()
        for row in result.rows:
            assert row.kernel_lines < 40
            # Same qualitative story as SWEEP3D's 179/626: the fundamental
            # computation is a small minority.
            assert row.fundamental_fraction < 0.3

    def test_machinery_counted_once(self):
        result = loc_table.run()
        assert result.machinery_lines > 100
        assert all(r.machinery_lines == result.machinery_lines for r in result.rows)


class TestRunner:
    def test_registry_names_unique(self):
        names = [e.name for e in EXPERIMENTS]
        assert len(names) == len(set(names))

    def test_get(self):
        assert get("fig3").name == "fig3"
        with pytest.raises(KeyError):
            get("fig99")

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out and "fig7" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2

    def test_quick_run_single(self, capsys):
        assert main(["fig3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "regenerated" in out


class TestRunnerOutput:
    def test_out_flag_appends_reports(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["fig3", "--quick", "--out", str(out)]) == 0
        assert main(["examples", "--quick", "--out", str(out)]) == 0
        text = out.read_text()
        assert "prime operator semantics" in text
        assert "Examples 1-4" in text
        assert text.count("regenerated in") == 2
