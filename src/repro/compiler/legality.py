"""The statically checked legality conditions of scan blocks (Section 2.2).

The paper lists five checks; they map onto this module as follows.

(i)   Primed arrays in a scan block must also be defined in the block
      (:class:`PrimedOperandError`).
(ii)  The directions on primed references may not over-constrain the
      wavefront — checked constructively by the loop-structure search
      (:class:`OverconstrainedScanError` from
      :func:`repro.compiler.loopstruct.derive_loop_structure`).
(iii) All statements in a scan block must have the same rank
      (:class:`RankMismatchError`).
(iv)  All statements must be covered by the same region
      (:class:`RegionMismatchError`).
(v)   Parallel operators' operands (other than shift) may not be primed
      (:class:`PrimedOperandError`) — essential because the compiler pulls
      those operators out of the scan block.

Two additional checks follow from the implementation strategy and are
documented here rather than in the paper: a primed reference must carry a
nonzero shift (an unshifted prime would name a value written *later in the
same iteration*), and a hoisted parallel operator may not read an array the
block writes (hoisting would then change its value).
"""

from __future__ import annotations

from repro.errors import (
    LegalityError,
    PrimedOperandError,
    RankMismatchError,
    RegionMismatchError,
)
from repro.zpl.scan import ScanBlock


def check_scan_block(block: ScanBlock) -> None:
    """Run every static legality check except over-constraint (see (ii))."""
    if len(block) == 0:
        raise LegalityError("scan block contains no statements")

    first = block.statements[0]
    for j, stmt in enumerate(block.statements):
        if stmt.rank != first.rank:  # condition (iii)
            raise RankMismatchError(
                f"statement {j} has rank {stmt.rank}, statement 0 has rank "
                f"{first.rank}: all statements in a scan block must be "
                f"implemented by a loop nest of the same depth"
            )
        if stmt.region != first.region:  # condition (iv)
            raise RegionMismatchError(
                f"statement {j} is covered by {stmt.region!r}, statement 0 by "
                f"{first.region!r}: all statements in a scan block must be "
                f"covered by the same region"
            )

    written = {id(a) for a in block.written_arrays()}
    for j, stmt in enumerate(block.statements):
        if stmt.mask is not None and id(stmt.mask) in written:
            raise LegalityError(
                f"statement {j}: mask {stmt.mask.name!r} is written by the "
                f"scan block; masks must be loop-invariant"
            )
        for ref in stmt.expr.refs():
            if not ref.primed:
                continue
            name = ref.array.name or "<array>"
            if id(ref.array) not in written:  # condition (i)
                raise PrimedOperandError(
                    f"statement {j} primes {name!r}, but the scan block never "
                    f"defines it: primed arrays must be assigned in the block"
                )
            if ref.offset.is_zero():
                raise PrimedOperandError(
                    f"statement {j} primes {name!r} without a shift: an "
                    f"unshifted primed reference would name a value of the "
                    f"current iteration"
                )
        for op in stmt.expr.parallel_ops():  # condition (v)
            for ref in op.refs():
                if ref.primed:
                    raise PrimedOperandError(
                        f"statement {j}: parallel operator {op!r} has a primed "
                        f"operand; only the shift operator may be primed"
                    )
                if id(ref.array) in written:
                    raise PrimedOperandError(
                        f"statement {j}: parallel operator {op!r} reads "
                        f"{ref.array.name!r}, which the scan block writes; it "
                        f"cannot be hoisted out of the block"
                    )
