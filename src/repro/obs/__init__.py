"""Unified tracing & metrics across the simulator and the real backend.

``repro.obs`` is the one event schema every engine speaks:

* :mod:`repro.obs.trace`   — the span/counter recorder (:class:`Tracer`),
  its guarded no-op twin (off by default; ``REPRO_TRACE=1`` enables), and
  the serialisable :class:`Trace` container;
* :mod:`repro.obs.export`  — Chrome trace-event JSON for Perfetto;
* :mod:`repro.obs.phases`  — pipeline fill/steady/drain analytics and the
  per-block measured-vs-Eq.(1) residual tables;
* :mod:`repro.obs.capture` — one-call traced runs of suite kernels on
  either backend (imported lazily: it pulls in the executors);
* :mod:`repro.obs.live`    — the *always-on* tier: bounded flight
  recorder, streaming metrics registry, request-context propagation with
  critical-path extraction, the online α/β drift monitor, and Prometheus
  text exposition (no ``REPRO_TRACE`` needed; ``REPRO_FLIGHT=0`` opts out);
* ``python -m repro.obs``  — ``summarize`` / ``export`` / ``residuals`` /
  ``top`` (live dashboard of a running ``repro.serve`` instance).

Producers: :func:`repro.parallel.execute` (wall clock, per-worker spans
flushed over the result channel), the :mod:`repro.machine` schedules
(virtual clock, identical schema), and :func:`repro.compiler.compile_scan`
(compile-pass spans).  All accept a ``tracer=`` argument.
"""

from repro.obs.export import to_chrome, write_chrome
from repro.obs.phases import (
    PhaseReport,
    ResidualRow,
    WorkerStat,
    analyze_phases,
    format_phase_report,
    format_residuals,
    format_serve_report,
    is_serve_trace,
    residual_table,
)
from repro.obs.trace import (
    NULL_TRACER,
    PARENT_PROC,
    TRACE_ENV,
    NullTracer,
    Span,
    Trace,
    Tracer,
    resolve_tracer,
    tracing_enabled,
)

__all__ = [
    "NULL_TRACER",
    "PARENT_PROC",
    "TRACE_ENV",
    "NullTracer",
    "PhaseReport",
    "ResidualRow",
    "Span",
    "Trace",
    "Tracer",
    "WorkerStat",
    "analyze_phases",
    "format_phase_report",
    "format_residuals",
    "format_serve_report",
    "is_serve_trace",
    "residual_table",
    "resolve_tracer",
    "to_chrome",
    "tracing_enabled",
    "write_chrome",
]
