"""Scalar loop-nest executor: the semantic oracle.

Executes a :class:`~repro.compiler.lowering.CompiledScan` element by element,
exactly as the loop nests of the paper's Fig. 3(b)/(e): nested loops over the
region's dimensions in the derived order and traversal direction, running the
body statements in lexical order at each iteration point.

Once the loop structure is legal, primed and unprimed references are both
plain storage reads — the traversal order alone guarantees that a primed
reference observes values from previous iterations and an unprimed reference
observes old values (anti-dependences) or freshly written ones (forward flow).

This executor is deliberately simple and slow; it exists as the ground truth
the vectorised runtime and every distributed schedule are checked against.
"""

from __future__ import annotations

import itertools

from repro.compiler.lowering import CompiledScan
from repro.zpl.arrays import ZArray


def _reader_at(array: ZArray, index: tuple[int, ...], primed: bool) -> float:
    return array.get(index)


def execute_loopnest(compiled: CompiledScan) -> None:
    """Run the compiled group with scalar nested loops (mutates the targets)."""
    compiled.prepare()
    region = compiled.region
    loops = compiled.loops
    rank = compiled.rank
    ordered_ranges = [loops.indices(region, dim) for dim in loops.order]
    statements = compiled.statements
    index = [0] * rank
    for ordered in itertools.product(*ordered_ranges):
        for position, dim in enumerate(loops.order):
            index[dim] = ordered[position]
        point = tuple(index)
        for stmt in statements:
            if stmt.mask is not None and stmt.mask.get(point) == 0:
                continue
            stmt.target.put(point, stmt.expr.evaluate_at(point, _reader_at))
