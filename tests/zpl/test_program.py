"""Tests for region scoping, eager statements and scan recording."""

import numpy as np
import pytest

from repro import zpl
from repro.errors import ExpressionError, RegionError


class TestCovering:
    def test_ambient_region(self):
        R = zpl.Region.square(1, 3)
        assert zpl.current_region() is None
        with zpl.covering(R):
            assert zpl.current_region() == R
        assert zpl.current_region() is None

    def test_nesting(self):
        R1, R2 = zpl.Region.square(1, 3), zpl.Region.square(1, 2)
        with zpl.covering(R1):
            with zpl.covering(R2):
                assert zpl.current_region() == R2
            assert zpl.current_region() == R1

    def test_non_region_rejected(self):
        with pytest.raises(RegionError):
            with zpl.covering((1, 3)):  # type: ignore[arg-type]
                pass

    def test_statement_without_region_rejected(self):
        a = zpl.ones(zpl.Region.square(1, 3))
        with pytest.raises(RegionError, match="covering region"):
            a[...] = a + 1.0


class TestEagerSemantics:
    def test_jacobi_stencil(self):
        # Paper Section 2.1's four-point stencil.
        n = 5
        b = zpl.ones(zpl.Region.square(1, n), name="b")
        a = zpl.zeros(zpl.Region.square(1, n), name="a")
        inner = zpl.Region.square(2, n - 1)
        with zpl.covering(inner):
            a[...] = (b @ zpl.NORTH + b @ zpl.SOUTH + b @ zpl.WEST + b @ zpl.EAST) / 4.0
        assert float(a[(3, 3)]) == 1.0
        assert float(a[(1, 1)]) == 0.0  # outside covering region untouched

    def test_rhs_before_assignment(self):
        # Paper Fig. 3(a-c): unprimed self-reference uses OLD values only.
        n = 5
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            a[...] = 2.0 * (a @ zpl.NORTH)
        expected = np.ones((n, n))
        expected[1:, :] = 2.0
        np.testing.assert_array_equal(a.to_numpy(), expected)

    def test_explicit_region_overrides_ambient(self):
        a = zpl.zeros(zpl.Region.square(1, 4))
        row2 = zpl.Region.of((2, 2), (1, 4))
        with zpl.covering(zpl.Region.square(1, 4)):
            a[row2] = 5.0
        assert float(a[(2, 1)]) == 5.0
        assert float(a[(1, 1)]) == 0.0

    def test_scalar_assignment(self):
        a = zpl.zeros(zpl.Region.square(1, 3))
        a[a.region] = 2.5
        assert np.all(a.to_numpy() == 2.5)

    def test_reduction_statement(self):
        a = zpl.from_numpy(np.arange(4.0).reshape(2, 2), base=1)
        total = zpl.zeros(a.region)
        total[a.region] = zpl.zsum(a)
        assert np.all(total.to_numpy() == 6.0)

    def test_prime_outside_scan_rejected(self):
        a = zpl.ones(zpl.Region.square(1, 3))
        with zpl.covering(zpl.Region.of((2, 3), (1, 3))):
            with pytest.raises(ExpressionError, match="scan block"):
                a[...] = a.p @ zpl.NORTH


class TestScanRecording:
    def test_statements_recorded_not_executed(self):
        n = 4
        a = zpl.ones(zpl.Region.square(1, n))
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = 2.0 * (a.p @ zpl.NORTH)
        assert len(block) == 1
        assert np.all(a.to_numpy() == 1.0)  # nothing ran

    def test_execute_on_exit(self):
        n = 4
        a = zpl.ones(zpl.Region.square(1, n))
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.scan():
                a[...] = 2.0 * (a.p @ zpl.NORTH)
        assert float(a[(4, 1)]) == 8.0

    def test_nested_scan_rejected(self):
        with pytest.raises(ExpressionError, match="nested"):
            with zpl.scan(execute=False):
                with zpl.scan(execute=False):
                    pass

    def test_exception_inside_scan_clears_recorder(self):
        a = zpl.ones(zpl.Region.square(1, 3))
        with pytest.raises(ValueError):
            with zpl.scan(execute=False):
                raise ValueError("boom")
        # Recorder must be cleared: eager statements work again.
        with zpl.covering(a.region):
            a[...] = a + 1.0
        assert float(a[(1, 1)]) == 2.0

    def test_custom_engine(self):
        calls = []
        n = 4
        a = zpl.ones(zpl.Region.square(1, n))
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.scan(engine=lambda compiled: calls.append(compiled)):
                a[...] = 2.0 * (a.p @ zpl.NORTH)
        assert len(calls) == 1
        assert np.all(a.to_numpy() == 1.0)  # custom engine did nothing

    def test_set_default_engine(self):
        calls = []
        zpl.set_default_engine(lambda compiled: calls.append(compiled))
        try:
            n = 3
            a = zpl.ones(zpl.Region.square(1, n))
            with zpl.covering(zpl.Region.of((2, n), (1, n))):
                with zpl.scan():
                    a[...] = a.p @ zpl.NORTH
            assert len(calls) == 1
        finally:
            zpl.set_default_engine(None)

    def test_scan_block_region_property(self):
        n = 4
        a = zpl.ones(zpl.Region.square(1, n))
        R = zpl.Region.of((2, n), (1, n))
        with zpl.covering(R):
            with zpl.scan(execute=False) as block:
                a[...] = a.p @ zpl.NORTH
        assert block.region == R
        assert block.rank == 2
        assert block.written_arrays() == (a,)
        assert block.writes(a)
        assert block.primed_directions() == (zpl.NORTH,)
