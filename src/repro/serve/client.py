"""A stdlib asyncio HTTP/1.1 client and the load generators the bench uses.

:class:`ServeClient` speaks exactly the dialect :mod:`repro.serve.server`
emits — JSON bodies, ``Content-Length`` framing, keep-alive — over one
persistent connection, reconnecting transparently if the server closed it.

Two measurement harnesses sit on top:

* :func:`run_open_loop` — requests fire on a fixed schedule (``qps``)
  regardless of completions; the honest way to measure latency under a
  given *offered* load, and the shape of the bench's stepped-QPS curve.
* :func:`run_closed_loop` — ``clients`` concurrent callers issue
  back-to-back requests for ``duration`` seconds; the honest way to
  measure *sustained throughput* at saturation, and the harness behind
  the batching-speedup gate in ``benchmarks/test_bench_serve.py``.

Both return a list of :class:`Sample` (status, end-to-end latency) which
:func:`summarize` folds into the p50/p99/throughput/rejection-rate record
the bench writes to ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

from repro.serve.metrics import percentile


@dataclass(frozen=True)
class Sample:
    """One request as the load generator saw it."""

    status: int
    latency: float  # seconds, send-to-parsed-response
    body: dict | None = None


class ServeClient:
    """One keep-alive connection to a serve endpoint."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def request(
        self, method: str, path: str, payload: object = None
    ) -> tuple[int, dict, dict]:
        """Issue one request; returns ``(status, headers, body)``."""
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Content-Type: application/json\r\n\r\n"
        ).encode()
        for attempt in (0, 1):  # one transparent reconnect on a stale socket
            if self._writer is None:
                await self._connect()
            try:
                self._writer.write(head + body)
                await self._writer.drain()
                return await self._read_response()
            except (
                ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError,
            ):
                await self.close()
                if attempt:
                    raise
        raise ConnectionError("unreachable")

    async def _read_response(self) -> tuple[int, dict, dict]:
        status_line = await self._reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        parsed = json.loads(raw) if raw else {}
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, parsed

    async def post(self, path: str, payload: object) -> tuple[int, dict, dict]:
        return await self.request("POST", path, payload)

    async def get(self, path: str) -> tuple[int, dict, dict]:
        return await self.request("GET", path)

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()


async def _timed_post(client: ServeClient, path: str, payload: dict) -> Sample:
    start = time.perf_counter()
    status, _headers, body = await client.post(path, payload)
    return Sample(status, time.perf_counter() - start, body)


async def run_open_loop(
    host: str,
    port: int,
    make_payload,
    *,
    qps: float,
    duration: float,
    path: str = "/v1/align",
) -> list[Sample]:
    """Fire ``qps`` requests/second for ``duration`` seconds, open loop.

    Each request rides its own connection task, so a slow response never
    delays the next send — the offered load stays fixed, as an outside
    client population would.
    """
    interval = 1.0 / qps
    total = max(int(duration * qps), 1)
    samples: list[Sample] = []

    async def one(i: int) -> None:
        async with ServeClient(host, port) as client:
            samples.append(await _timed_post(client, path, make_payload(i)))

    start = time.perf_counter()
    tasks = []
    for i in range(total):
        due = start + i * interval
        delay = due - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(i)))
    await asyncio.gather(*tasks)
    return samples


async def run_closed_loop(
    host: str,
    port: int,
    make_payload,
    *,
    clients: int,
    duration: float,
    path: str = "/v1/align",
) -> tuple[list[Sample], float]:
    """``clients`` callers issue back-to-back requests for ``duration`` s.

    Returns the samples and the measured wall time — sustained throughput
    is ``completed / wall``.
    """
    samples: list[Sample] = []
    deadline = time.perf_counter() + duration

    async def caller(i: int) -> None:
        async with ServeClient(host, port) as client:
            n = 0
            while time.perf_counter() < deadline:
                samples.append(await _timed_post(client, path, make_payload(i, n)))
                n += 1

    start = time.perf_counter()
    await asyncio.gather(*(caller(i) for i in range(clients)))
    wall = time.perf_counter() - start
    return samples, wall


def summarize(samples: list[Sample], wall: float) -> dict:
    """Fold samples into the record shape ``BENCH_serve.json`` stores."""
    ok = [s.latency for s in samples if s.status == 200]
    rejected = sum(1 for s in samples if s.status == 429)
    return {
        "offered": len(samples),
        "completed": len(ok),
        "rejected": rejected,
        "rejection_rate": rejected / len(samples) if samples else 0.0,
        "throughput_rps": len(ok) / wall if wall > 0 else 0.0,
        "p50_ms": percentile(ok, 50) * 1e3,
        "p99_ms": percentile(ok, 99) * 1e3,
        "mean_ms": (sum(ok) / len(ok) * 1e3) if ok else 0.0,
    }
