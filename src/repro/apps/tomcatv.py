"""Tomcatv: the SPECfp92 mesh-generation benchmark (paper Figs. 1, 2, 5-7).

Tomcatv generates a 2-D curvilinear mesh by relaxation.  Each iteration has
the phase structure the paper's experiments exploit:

1. **coefficients** (parallel): finite-difference stencils of the mesh
   coordinates produce the tridiagonal coefficients ``aa``/``dd`` and the
   residuals ``rx``/``ry``;
2. **residual reduction**: the maximum residual (convergence test);
3. **forward elimination** (wavefront, north → south): *exactly* the paper's
   Fig. 2(b) scan block — the fragment every experiment in the paper uses;
4. **back substitution** (wavefront, south → north): the mirror-image scan
   block completing the Thomas tridiagonal solve along each column;
5. **mesh update** (parallel).

The two wavefront phases are the benchmark's "two components" in Figs. 6
and 7.  The physics is a faithful structural reproduction (diagonally
dominant tridiagonal systems from mesh stencils), not a line-for-line port
of the Fortran; every recurrence is validated against plain-numpy oracles
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import zpl
from repro.compiler import compile_scan
from repro.compiler.lowering import CompiledScan
from repro.models.amdahl import PhaseKind, ProgramProfile
from repro.runtime import execute_vectorized
from repro.zpl import EAST, NORTH, SOUTH, WEST, Region, ZArray


@dataclass
class TomcatvState:
    """All arrays of one Tomcatv instance (declared over ``[1..n, 1..n]``)."""

    n: int
    x: ZArray
    y: ZArray
    rx: ZArray
    ry: ZArray
    aa: ZArray
    dd: ZArray
    d: ZArray
    r: ZArray
    #: Relaxation factor applied to the solved corrections.
    relax: float = 0.5
    residuals: list[float] = field(default_factory=list)

    @property
    def interior(self) -> Region:
        """The region the solves cover: the paper's ``[2..n-2, 2..n-1]``."""
        return Region.of((2, self.n - 2), (2, self.n - 1))

    @property
    def full(self) -> Region:
        return Region.square(1, self.n)

    def arrays(self) -> tuple[ZArray, ...]:
        return (self.x, self.y, self.rx, self.ry, self.aa, self.dd, self.d, self.r)


def build(n: int, distortion: float = 0.15, seed: int | None = None) -> TomcatvState:
    """A Tomcatv instance over an ``n x n`` mesh.

    The initial mesh is a unit grid distorted by smooth sinusoids (plus
    optional noise) so the relaxation has real work to do.
    """
    if n < 6:
        raise ValueError(f"Tomcatv needs n >= 6, got {n}")
    base = Region.square(1, n)
    i = np.arange(1, n + 1, dtype=float)[:, None]
    j = np.arange(1, n + 1, dtype=float)[None, :]
    wobble_x = distortion * np.sin(np.pi * i / n) * np.sin(2 * np.pi * j / n)
    wobble_y = distortion * np.sin(2 * np.pi * i / n) * np.sin(np.pi * j / n)
    if seed is not None:
        rng = np.random.default_rng(seed)
        wobble_x = wobble_x + 0.02 * rng.standard_normal((n, n))
        wobble_y = wobble_y + 0.02 * rng.standard_normal((n, n))
    x = zpl.ZArray(base, name="x")
    y = zpl.ZArray(base, name="y")
    x.load(j / n + wobble_x)
    y.load(i / n + wobble_y)
    state = TomcatvState(
        n=n,
        x=x,
        y=y,
        rx=zpl.zeros(base, name="rx"),
        ry=zpl.zeros(base, name="ry"),
        aa=zpl.zeros(base, name="aa"),
        dd=zpl.ones(base, name="dd"),
        d=zpl.ones(base, name="d"),
        r=zpl.zeros(base, name="r"),
    )
    return state


# ---------------------------------------------------------------------------
# Phases
# ---------------------------------------------------------------------------
def coefficients_phase(state: TomcatvState) -> None:
    """Parallel phase: stencil coefficients and residuals (ordinary array
    statements; no wavefront)."""
    x, y, rx, ry, aa, dd = state.x, state.y, state.rx, state.ry, state.aa, state.dd
    with zpl.covering(state.interior):
        # Metric terms from central differences of the mesh coordinates.
        # xx/yy live only inside this phase, so reuse r/d as scratch would
        # obscure the code: use expression nesting instead.
        aa[...] = -(1.0 + 0.25 * ((x @ EAST - x @ WEST) ** 2.0
                                  + (y @ EAST - y @ WEST) ** 2.0))
        dd[...] = 4.0 + 0.25 * ((x @ SOUTH - x @ NORTH) ** 2.0
                                + (y @ SOUTH - y @ NORTH) ** 2.0) - 2.0 * aa
        rx[...] = (x @ NORTH + x @ SOUTH + x @ WEST + x @ EAST) - 4.0 * x
        ry[...] = (y @ NORTH + y @ SOUTH + y @ WEST + y @ EAST) - 4.0 * y


def residual_phase(state: TomcatvState) -> float:
    """Reduction phase: the maximum absolute residual over the interior."""
    rx = np.abs(state.rx.read(state.interior)).max()
    ry = np.abs(state.ry.read(state.interior)).max()
    value = float(max(rx, ry))
    state.residuals.append(value)
    return value


def record_forward_block(state: TomcatvState) -> zpl.ScanBlock:
    """The paper's Fig. 2(b) scan block: forward elimination, north->south."""
    aa, d, dd, rx, ry, r = state.aa, state.d, state.dd, state.rx, state.ry, state.r
    with zpl.covering(state.interior):
        with zpl.scan(name="tomcatv-forward", execute=False) as block:
            r[...] = aa * (d.p @ NORTH)
            d[...] = 1.0 / (dd - (aa @ NORTH) * r)
            rx[...] = rx - (rx.p @ NORTH) * r
            ry[...] = ry - (ry.p @ NORTH) * r
    return block


def record_backward_block(state: TomcatvState) -> zpl.ScanBlock:
    """Back substitution: the mirror wavefront, south -> north."""
    aa, d, rx, ry = state.aa, state.d, state.rx, state.ry
    with zpl.covering(state.interior):
        with zpl.scan(name="tomcatv-backward", execute=False) as block:
            rx[...] = (rx - aa * (rx.p @ SOUTH)) * d
            ry[...] = (ry - aa * (ry.p @ SOUTH)) * d
    return block


def compile_forward(state: TomcatvState) -> CompiledScan:
    """Compiled forward-elimination wavefront."""
    return compile_scan(record_forward_block(state))


def compile_backward(state: TomcatvState) -> CompiledScan:
    """Compiled back-substitution wavefront."""
    return compile_scan(record_backward_block(state))


def prepare_solve(state: TomcatvState) -> None:
    """Boundary conditions for the tridiagonal solves.

    The row above the interior (`d`, `rx`, `ry` at row 1) acts as the
    zero'th recurrence term; the row below (row n-1) closes back
    substitution.
    """
    width = Region.of((1, 1), (2, state.n - 1))
    state.d.write(width, 0.0)
    state.rx.write(width, 0.0)
    state.ry.write(width, 0.0)
    below = Region.of((state.n - 1, state.n - 1), (2, state.n - 1))
    state.rx.write(below, 0.0)
    state.ry.write(below, 0.0)


def update_phase(state: TomcatvState) -> None:
    """Parallel phase: relax the mesh toward the solved corrections."""
    x, y, rx, ry = state.x, state.y, state.rx, state.ry
    with zpl.covering(state.interior):
        x[...] = x + state.relax * rx
        y[...] = y + state.relax * ry


def step(state: TomcatvState, engine=execute_vectorized) -> float:
    """One full Tomcatv iteration; returns the pre-solve max residual."""
    coefficients_phase(state)
    residual = residual_phase(state)
    prepare_solve(state)
    engine(compile_forward(state))
    engine(compile_backward(state))
    update_phase(state)
    return residual


def run(state: TomcatvState, iterations: int, engine=execute_vectorized) -> list[float]:
    """Run ``iterations`` steps; returns the residual history."""
    return [step(state, engine) for _ in range(iterations)]


# ---------------------------------------------------------------------------
# Oracles (plain numpy; used by the tests)
# ---------------------------------------------------------------------------
def thomas_columns(
    aa: np.ndarray, dd: np.ndarray, rhs: np.ndarray, sub: np.ndarray
) -> np.ndarray:
    """Solve, per column j, the tridiagonal system matching the scan blocks.

    Row recurrences (i indexes rows, 0-based over the interior):
        forward:  d_i = 1/(dd_i - aa_i * sub_{i-1} * d_{i-1}),
                  r_i = aa_i * d_{i-1},
                  rhs_i <- rhs_i - rhs_{i-1} * r_i
        backward: u_i = (rhs_i - aa_i * u_{i+1}) * d_i

    where ``sub`` is the ``aa @ NORTH`` coefficient row (the sub-diagonal
    partner).  Returns the solution ``u``.
    """
    rows, cols = rhs.shape
    d = np.zeros((rows, cols))
    out = np.array(rhs, dtype=float)
    d_prev = np.zeros(cols)
    rhs_prev = np.zeros(cols)
    for i in range(rows):
        r = aa[i] * d_prev
        d[i] = 1.0 / (dd[i] - aa[i] * sub[i] * d_prev)
        out[i] = out[i] - rhs_prev * r
        d_prev = d[i]
        rhs_prev = out[i]
    u = np.zeros((rows, cols))
    u_next = np.zeros(cols)
    for i in range(rows - 1, -1, -1):
        u[i] = (out[i] - aa[i] * u_next) * d[i]
        u_next = u[i]
    return u


# ---------------------------------------------------------------------------
# Program profile (for whole-program composition in Figs. 6/7)
# ---------------------------------------------------------------------------
def profile(n: int, iterations: int = 1) -> ProgramProfile:
    """Phase structure of one Tomcatv run, in element-compute units.

    Work weights reflect the relative arithmetic of each phase: the heavy
    stencil phases are parallel, and the two wavefront solves are roughly a
    quarter of the arithmetic.  Because the unfused wavefronts run many
    times slower than the stencils on a cached machine, this work share
    corresponds to the *large fraction of execution time* the paper
    attributes to Tomcatv's wavefronts (~75% of the baseline runtime on the
    T3E), and yields its reported ~3x whole-program uniprocessor speedup.
    """
    interior = (n - 3) * (n - 2)
    prog = ProgramProfile(f"tomcatv(n={n})")
    prog.add("coefficients", PhaseKind.PARALLEL, 8.0 * interior, iterations)
    prog.add("residual", PhaseKind.SERIAL, 0.2 * interior, iterations)
    prog.add("forward-solve", PhaseKind.WAVEFRONT, 2.0 * interior, iterations)
    prog.add("backward-solve", PhaseKind.WAVEFRONT, 1.2 * interior, iterations)
    prog.add("update", PhaseKind.PARALLEL, 0.5 * interior, iterations)
    return prog
