"""Static schedule certifier: sync-coverage and deadlock-freedom proofs.

The parallel schedules are *derived* from the dependence vectors, which makes
their correctness statically checkable: before a single worker forks we can
prove that the sync protocol a schedule would execute — pipe tokens
(:mod:`repro.parallel.channels`), taskgraph pending-count decrements
(:mod:`repro.parallel.taskgraph`), or multicast epoch stamps
(:mod:`repro.parallel.collectives`) — honours every block-level dependence
edge the compiler projects (:mod:`repro.compiler.taskdag`).

:func:`build_schedule_model` reconstructs, without executing anything, the
exact geometry the executor would run: the same distribution, the same chunk
regions, the same fabric selection, the same staging layout.  The result is a
:class:`ScheduleModel` — plain frozen data — over which :func:`certify_model`
proves three properties:

* **Coverage** (``E101``): every projected dependence edge between tiles is
  covered by a happens-before path of the protocol (program order within a
  rank composed with the protocol's sync edges).  An uncovered edge means a
  block could read cells its source block has not yet written.
* **Deadlock freedom** (``E102``): the protocol's wait-for graph — tokens,
  pending counts, epoch waits, and (with double buffering) the slot-credit
  backpressure edges of the staging protocol — is acyclic, and every
  taskgraph tile's pending count is satisfiable.  Cycles are rendered
  rustc-style, one ``because:`` line per hop.
* **Staging safety** (``E103``): no double-buffer boundary slot can be
  overwritten while a consumer may still read it (the slot count must cover
  the credit lag), slot areas do not overlap, and no area overruns the slot.

Soundness is demonstrated by the mutation harness (:data:`MUTATIONS`): each
named mutation corrupts a model the way a scheduler bug would — dropping a
token edge, shrinking a pending count, forcing a single buffer slot — and the
certifier must flag every mutant with the expected code.  The dynamic
sanitizer (:mod:`repro.analyze.sanitizer`) trips on the same corruptions at
run time; the harness ties the two proofs together.

Set ``REPRO_CERTIFY=1`` to run :func:`certify_execution` automatically before
every :func:`repro.parallel.executor.execute` (fork and pool paths alike);
certification failures raise :class:`~repro.errors.CertifyError` before any
worker starts.  The CLI front end is ``python -m repro.analyze certify``.
"""

from __future__ import annotations

import os
from collections import Counter, deque
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.analyze.diagnostics import Because, Diagnostic, Severity, render_all
from repro.errors import CertifyError, DistributionError, MachineError
from repro.machine.schedules import plan_wavefront
from repro.zpl.regions import Region

#: Environment knob: ``1`` runs :func:`certify_execution` before every
#: ``execute()`` (fork-per-run and pool paths both honour it).
CERTIFY_ENV = "REPRO_CERTIFY"

#: Pseudo-schedules the CLI exposes: the three executor schedules plus
#: ``multicast`` (the pipelined schedule with the epoch fabric forced on).
PSEUDO_SCHEDULES = ("naive", "pipelined", "multicast", "taskgraph")


def certify_enabled() -> bool:
    """True when ``REPRO_CERTIFY`` asks for the pre-flight check."""
    return os.environ.get(CERTIFY_ENV, "") not in ("", "0")


def schedule_kwargs(pseudo: str) -> dict:
    """Map a pseudo-schedule name to :func:`build_schedule_model` kwargs.

    ``pipelined`` forces pipes so the CLI certifies both fabrics distinctly;
    ``multicast`` is the pipelined schedule with the fabric forced on.
    """
    if pseudo not in PSEUDO_SCHEDULES:
        raise MachineError(
            f"unknown schedule {pseudo!r}; pick from {PSEUDO_SCHEDULES}"
        )
    if pseudo == "multicast":
        return {"schedule": "pipelined", "multicast": True}
    if pseudo == "pipelined":
        return {"schedule": "pipelined", "multicast": False}
    return {"schedule": pseudo}


# ---------------------------------------------------------------------------
# The model: plain data describing exactly what the executor would run
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DepEdge:
    """One projected block-level dependence edge: tile ``src`` must complete
    before tile ``dst`` starts, demanded by UDV ``vector`` on ``array``."""

    src: int
    dst: int
    vector: tuple[int, ...]
    array: str
    kind: str


@dataclass(frozen=True)
class SlotArea:
    """One staged array's halo area inside a double-buffer slot."""

    array_index: int
    depth: int
    offset: int
    elems: int


@dataclass(frozen=True)
class ScheduleModel:
    """Everything the certifier needs to know about one planned run.

    Tiles are numbered globally; ``owners[t]``/``local_index[t]`` give the
    rank that executes tile ``t`` and its position in that rank's program
    order (the pipeline block index ``k``, or the enqueue order for
    taskgraph homes).  The sync protocol appears as whichever of
    ``token_edges`` (pipes), ``producers`` (multicast epochs), or
    ``graph_edges``/``pending`` (taskgraph) the fabric uses.
    """

    schedule: str
    #: ``"pipes"``, ``"multicast"``, or ``"graph"`` (taskgraph scheduler).
    fabric: str
    n_ranks: int
    #: Max pipeline blocks on any rank (taskgraph: the live tile count).
    n_blocks: int
    tiles: tuple[Region, ...]
    owners: tuple[int, ...]
    local_index: tuple[int, ...]
    dep_edges: tuple[DepEdge, ...]
    #: Pipes: ``(upstream, downstream)`` rank pairs carrying block tokens.
    token_edges: tuple[tuple[int, int], ...] = ()
    #: Multicast: per rank, the ranks whose epoch stamps it waits on.
    producers: tuple[tuple[int, ...], ...] = ()
    #: Taskgraph: ``(pred_tile, succ_tile)`` decrement edges.
    graph_edges: tuple[tuple[int, int], ...] = ()
    #: Taskgraph: per tile, the pending count it fires at zero of.
    pending: tuple[int, ...] = ()
    #: Double-buffered boundary staging active (multicast only).
    staging: bool = False
    #: Staging slots per producer (block ``k`` writes slot ``k % n_slots``).
    n_slots: int = 0
    #: Blocks a producer may run ahead of its slowest consumer's absorbs
    #: before ``wait_credit`` parks it (the protocol uses the slot count).
    credit_lag: int = 0
    #: Slot capacity in elements.
    slot_elems: int = 0
    slot_areas: tuple[SlotArea, ...] = ()
    block_size: int | None = None
    grid_dims: tuple[int, ...] = ()

    @property
    def n_tasks(self) -> int:
        return len(self.tiles)

    def __repr__(self) -> str:
        return (
            f"ScheduleModel({self.schedule}/{self.fabric}, "
            f"grid={self.grid_dims}, {self.n_tasks} tiles, "
            f"{len(self.dep_edges)} dep edges)"
        )


def _default_block(plan, n_stages: int) -> int:
    """Static block-size heuristic when the caller gives none.

    The autotuner's cost model needs timing constants; the certifier only
    needs *a* legal chunking, so it uses the classical half-the-columns-per
    -stage starting point.  Hook callers (``REPRO_CERTIFY=1``) always pass
    the actually-tuned block explicitly.
    """
    if plan.chunk_dim is None:
        return 1
    extent = plan.region.extent(plan.chunk_dim)
    return max(1, extent // max(1, 2 * n_stages))


def _dep_edges(compiled, tiles, region) -> tuple[DepEdge, ...]:
    from repro.compiler.taskdag import tile_dependences

    out = []
    seen = set()
    for src, dst, dep in tile_dependences(compiled, tiles, region):
        key = (src, dst, dep.vector, dep.array, dep.kind.value)
        if key in seen:
            continue
        seen.add(key)
        out.append(
            DepEdge(
                src=src,
                dst=dst,
                vector=dep.vector,
                array=dep.array,
                kind=dep.kind.value,
            )
        )
    return tuple(out)


def build_schedule_model(
    compiled,
    *,
    schedule: str | None = None,
    grid=None,
    block: int | None = None,
    wavefront_dim: int | None = None,
    multicast=None,
    double_buffer: bool | None = None,
    oversub: int | None = None,
) -> ScheduleModel:
    """Reconstruct the schedule the executor would run, as plain data.

    Mirrors :func:`repro.parallel.executor.execute` exactly — same
    distribution, chunking, fabric selection, and legality refusals
    (:func:`~repro.parallel.executor.check_chain_legality` raises
    :class:`~repro.errors.DistributionError` here precisely when the
    executor itself would refuse to run, so the certifier never reports
    errors on configurations the planner refuses natively).  ``block`` and
    ``oversub`` default to static heuristics; hook callers pass the tuned
    values so the certified geometry is the executed geometry.
    """
    from repro.parallel.collectives import (
        boundary_layout,
        plan_groups,
        resolve_double_buffer,
        resolve_multicast,
    )
    from repro.parallel.executor import (
        _as_grid,
        _build_distribution,
        _chains,
        _worker_chunks,
        check_chain_legality,
        resolve_schedule,
    )
    from repro.parallel.sharedmem import BoundaryPool

    schedule = resolve_schedule(schedule)
    grid = _as_grid(grid)
    plan = plan_wavefront(compiled, wavefront_dim)
    region = plan.region

    if schedule == "taskgraph":
        from repro.compiler.taskdag import derive_taskgraph
        from repro.parallel.taskgraph import resolve_oversub

        if grid.rank != 1:
            raise MachineError(
                "schedule=\"taskgraph\" runs on rank-1 grids: the scheduler "
                "itself spreads work along the chunk dimension"
            )
        dist = _build_distribution(plan, grid)
        if oversub is None:
            oversub = resolve_oversub()
        block_size = (
            block if block is not None else _default_block(plan, grid.dims[0])
        )
        if block_size < 1:
            raise MachineError(f"block size must be >= 1, got {block_size}")
        graph = derive_taskgraph(
            compiled,
            plan,
            [dist.local_region(rank) for rank in grid],
            oversub,
            block_size,
        )
        local_index: list[int] = []
        counts: dict[int, int] = {}
        for home in graph.homes:
            local_index.append(counts.get(home, 0))
            counts[home] = local_index[-1] + 1
        graph_edges = tuple(
            (pred, succ)
            for succ, preds in enumerate(graph.preds)
            for pred in preds
        )
        return ScheduleModel(
            schedule="taskgraph",
            fabric="graph",
            n_ranks=grid.size,
            n_blocks=graph.n_live,
            tiles=graph.tiles,
            owners=graph.homes,
            local_index=tuple(local_index),
            dep_edges=_dep_edges(compiled, graph.tiles, region),
            graph_edges=graph_edges,
            pending=tuple(len(p) for p in graph.preds),
            block_size=block_size,
            grid_dims=grid.dims,
        )

    if plan.chunk_dim is None and grid.dims[0] > 1 and schedule == "pipelined":
        raise DistributionError(
            "no chunkable dimension: this block cannot be pipelined"
        )
    dist = _build_distribution(plan, grid)
    loops = compiled.loops
    ascending = loops.signs[plan.wavefront_dim] >= 0
    reverse_chunks = (
        plan.chunk_dim is not None and loops.signs[plan.chunk_dim] < 0
    )
    locals_by_rank = {rank: dist.local_region(rank) for rank in grid}
    chains = _chains(grid, ascending)

    # Fabric selection mirrors the executor (no sanitize gate: the fabric
    # now sanitizes too, and the certifier must model what actually runs).
    fabric = "pipes"
    groups = None
    mcast_mode = resolve_multicast(multicast)
    if (
        schedule == "pipelined"
        and mcast_mode != "off"
        and plan.chunk_dim is not None
    ):
        groups = plan_groups(compiled, plan, chains, locals_by_rank, grid.size)
        if groups is not None and (
            mcast_mode == "on" or groups.max_fanout >= 2
        ):
            fabric = "multicast"
        else:
            groups = None

    if schedule == "naive":
        block_size = None
    elif block is not None:
        if block < 1:
            raise MachineError(f"block size must be >= 1, got {block}")
        block_size = block
    else:
        block_size = _default_block(plan, grid.dims[0])

    tiles: list[Region] = []
    owners: list[int] = []
    local_index: list[int] = []
    n_blocks = 1
    for rank in grid:
        local = locals_by_rank[rank]
        width = (
            local.extent(plan.chunk_dim) if plan.chunk_dim is not None else 1
        )
        per_block = width if block_size is None else block_size
        chunks = _worker_chunks(plan, local, max(1, per_block), reverse_chunks)
        n_blocks = max(n_blocks, len(chunks))
        for k, chunk in enumerate(chunks):
            tiles.append(chunk)
            owners.append(rank)
            local_index.append(k)
    check_chain_legality(compiled, plan, grid.dims[0], n_blocks)

    token_edges: tuple[tuple[int, int], ...] = ()
    producers: tuple[tuple[int, ...], ...] = ()
    staging = False
    n_slots = credit_lag = slot_elems = 0
    slot_areas: tuple[SlotArea, ...] = ()
    if fabric == "multicast":
        producers = groups.producers
        if resolve_double_buffer(double_buffer):
            layout = boundary_layout(compiled, plan)
            if layout is not None:
                staging = True
                n_slots = BoundaryPool.N_SLOTS
                # The channel's wait_credit parks a producer once it is a
                # full slot rotation ahead of its slowest consumer: the
                # credit lag *is* the slot count in the implementation;
                # the model keeps them separate so mutations can break one.
                credit_lag = BoundaryPool.N_SLOTS
                slot_elems = layout.slot_elems
                bounds = layout.offsets + (layout.slot_elems,)
                slot_areas = tuple(
                    SlotArea(
                        array_index=idx,
                        depth=depth,
                        offset=off,
                        elems=bounds[i + 1] - off,
                    )
                    for i, ((idx, depth), off) in enumerate(
                        zip(layout.arrays, layout.offsets)
                    )
                )
    else:
        edges = []
        for chain in chains:
            for upstream, downstream in zip(chain, chain[1:]):
                edges.append((upstream, downstream))
        token_edges = tuple(edges)

    return ScheduleModel(
        schedule=schedule,
        fabric=fabric,
        n_ranks=grid.size,
        n_blocks=n_blocks,
        tiles=tuple(tiles),
        owners=tuple(owners),
        local_index=tuple(local_index),
        dep_edges=_dep_edges(compiled, tuple(tiles), region),
        token_edges=token_edges,
        producers=producers,
        staging=staging,
        n_slots=n_slots,
        credit_lag=credit_lag,
        slot_elems=slot_elems,
        slot_areas=slot_areas,
        block_size=block_size,
        grid_dims=grid.dims,
    )


# ---------------------------------------------------------------------------
# The proofs
# ---------------------------------------------------------------------------

def _find_cycle(adjacency: dict) -> list | None:
    """One cycle of a directed graph, as ``[n0, ..., nm]`` with the closing
    edge ``nm -> n0``, or ``None`` when the graph is acyclic."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict = {}
    for root in list(adjacency):
        if color.get(root, WHITE) != WHITE:
            continue
        stack = [(root, iter(adjacency.get(root, ())))]
        color[root] = GRAY
        while stack:
            node, edges = stack[-1]
            succ = next(edges, None)
            if succ is None:
                color[node] = BLACK
                stack.pop()
                continue
            if color.get(succ, WHITE) == GRAY:
                path = []
                for frame_node, _ in reversed(stack):
                    path.append(frame_node)
                    if frame_node == succ:
                        break
                path.reverse()
                return path
            if color.get(succ, WHITE) == WHITE:
                color[succ] = GRAY
                stack.append((succ, iter(adjacency.get(succ, ()))))
    return None


def _task_map(model: ScheduleModel) -> dict[tuple[int, int], int]:
    return {
        (rank, k): t
        for t, (rank, k) in enumerate(zip(model.owners, model.local_index))
    }


def _hb_edges(model: ScheduleModel) -> tuple[dict[int, list[int]], dict]:
    """The task-level happens-before graph: adjacency + edge labels.

    Program order within each rank composed with the protocol's sync edges
    (token per block for pipes, epoch stamp per block for multicast,
    pending-decrement edges for taskgraph — excluding edges into tiles
    whose pending count is smaller than their in-degree, because such a
    tile fires before those decrements arrive and they synchronise
    nothing).
    """
    adjacency: dict[int, list[int]] = {t: [] for t in range(model.n_tasks)}
    labels: dict[tuple[int, int], str] = {}

    def add(a: int, b: int, label: str) -> None:
        adjacency[a].append(b)
        labels.setdefault((a, b), label)

    if model.schedule == "taskgraph":
        indegree = Counter(dst for _src, dst in model.graph_edges)
        for src, dst in model.graph_edges:
            if model.pending[dst] < indegree[dst]:
                continue  # fires early: this decrement synchronises nothing
            add(src, dst, f"pending-count decrement tile {src} -> {dst}")
        return adjacency, labels

    at = _task_map(model)
    blocks = Counter(model.owners)
    by_rank: dict[int, list[tuple[int, int]]] = {}
    for t, (rank, k) in enumerate(zip(model.owners, model.local_index)):
        by_rank.setdefault(rank, []).append((k, t))
    for rank, seq in by_rank.items():
        seq.sort()
        for (_, a), (_, b) in zip(seq, seq[1:]):
            add(a, b, f"program order on rank {rank}")
    for upstream, downstream in model.token_edges:
        for k in range(min(blocks.get(upstream, 0), blocks.get(downstream, 0))):
            add(
                at[(upstream, k)],
                at[(downstream, k)],
                f"block-{k} pipe token rank {upstream} -> rank {downstream}",
            )
    for rank, preds in enumerate(model.producers):
        for producer in preds:
            for k in range(min(blocks.get(producer, 0), blocks.get(rank, 0))):
                add(
                    at[(producer, k)],
                    at[(rank, k)],
                    f"block-{k} epoch stamp rank {producer} -> rank {rank}",
                )
    return adjacency, labels


def _describe_task(model: ScheduleModel, t: int) -> str:
    if model.schedule == "taskgraph":
        return f"tile {t} (home rank {model.owners[t]})"
    return f"rank {model.owners[t]} block {model.local_index[t]}"


def _protocol_name(model: ScheduleModel) -> str:
    return {
        "pipes": "pipe-token",
        "multicast": "epoch-stamp",
        "graph": "pending-count",
    }[model.fabric]


def _deadlock_diagnostics(model: ScheduleModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    adjacency, labels = _hb_edges(model)
    cycle = _find_cycle(adjacency)
    if cycle is not None:
        hops = list(zip(cycle, cycle[1:] + cycle[:1]))
        because = tuple(
            Because(
                "token",
                f"{_describe_task(model, b)} waits for "
                f"{_describe_task(model, a)} ({labels.get((a, b), 'sync edge')})",
            )
            for a, b in hops
        )
        out.append(
            Diagnostic(
                code="E102",
                message=(
                    f"potential deadlock: {len(cycle)} task(s) of the "
                    f"{_protocol_name(model)} protocol wait on each other "
                    f"in a cycle"
                ),
                because=because,
                hint=(
                    "the wait-for graph must stay acyclic: sync edges may "
                    "only point forward in traversal order"
                ),
                data={
                    "cycle": [int(t) for t in cycle],
                    "fabric": model.fabric,
                },
            )
        )
    if model.schedule == "taskgraph":
        indegree = Counter(dst for _src, dst in model.graph_edges)
        for t in range(model.n_tasks):
            if model.pending[t] > indegree[t]:
                out.append(
                    Diagnostic(
                        code="E102",
                        message=(
                            f"potential deadlock: tile {t} waits for "
                            f"{model.pending[t]} completion(s) but only "
                            f"{indegree[t]} predecessor edge(s) can ever "
                            f"decrement it — it never fires"
                        ),
                        because=(
                            Because(
                                "model",
                                f"pending[{t}] = {model.pending[t]} exceeds "
                                f"the in-degree {indegree[t]}",
                            ),
                        ),
                        hint=(
                            "each tile's pending count must equal the number "
                            "of live predecessor edges"
                        ),
                        data={"tile": t, "pending": model.pending[t]},
                    )
                )
    staged = _staging_cycle(model)
    if staged is not None:
        out.append(staged)
    return out


def _staging_cycle(model: ScheduleModel) -> Diagnostic | None:
    """Deadlock check over the double-buffer staging protocol's event graph.

    Events are ``(rank, block, phase)`` with phases WAIT (epoch waits +
    boundary absorbs), STAGE (slot-credit gate + halo copy), PUB (epoch
    stamp).  Credit backpressure adds ``WAIT(consumer, k - lag) ->
    STAGE(producer, k)``: a producer may not reuse a slot until every
    consumer has absorbed ``lag`` blocks behind it.  A cycle means a
    producer parks on a credit its consumer can only grant after the very
    publish the producer is parked before.  The block horizon ``lag + 3``
    suffices: the protocol is block-periodic, so any cycle shows up within
    one credit rotation of the start.
    """
    if not (model.fabric == "multicast" and model.staging):
        return None
    horizon = min(model.n_blocks, model.credit_lag + 3)
    if horizon <= 0 or not any(model.producers):
        return None
    consumers: list[list[int]] = [[] for _ in range(model.n_ranks)]
    for rank, preds in enumerate(model.producers):
        for producer in preds:
            consumers[producer].append(rank)
    WAIT, STAGE, PUB = "WAIT", "STAGE", "PUB"
    adjacency: dict[tuple, list[tuple]] = {}

    def add(a: tuple, b: tuple) -> None:
        adjacency.setdefault(a, []).append(b)

    for rank in range(model.n_ranks):
        for k in range(horizon):
            add((rank, k, WAIT), (rank, k, STAGE))
            add((rank, k, STAGE), (rank, k, PUB))
            if k + 1 < horizon:
                add((rank, k, PUB), (rank, k + 1, WAIT))
    for rank, preds in enumerate(model.producers):
        for producer in preds:
            for k in range(horizon):
                add((producer, k, PUB), (rank, k, WAIT))
    for producer in range(model.n_ranks):
        for rank in consumers[producer]:
            for k in range(model.credit_lag, horizon):
                add((rank, k - model.credit_lag, WAIT), (producer, k, STAGE))
    cycle = _find_cycle(adjacency)
    if cycle is None:
        return None
    phase_text = {
        WAIT: "waits for its producers' epochs of block",
        STAGE: "stages the boundary of block",
        PUB: "publishes the epoch stamp of block",
    }
    because = tuple(
        Because(
            "token",
            f"rank {rank} {phase_text[phase]} {k}",
        )
        for rank, k, phase in cycle
    )
    return Diagnostic(
        code="E102",
        message=(
            "potential deadlock: the double-buffer slot-credit protocol "
            "admits a wait cycle (a producer parks on a credit its consumer "
            "grants only after that producer's own publish)"
        ),
        because=because,
        hint=(
            f"the credit lag ({model.credit_lag}) must stay positive and "
            f"within the slot count ({model.n_slots}) so consumers always "
            f"run one full slot rotation behind producers"
        ),
        data={
            "cycle": [[int(r), int(k), p] for r, k, p in cycle],
            "credit_lag": model.credit_lag,
            "n_slots": model.n_slots,
        },
    )


def _staging_diagnostics(model: ScheduleModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    if not (model.fabric == "multicast" and model.staging):
        return out
    if model.n_slots < model.credit_lag:
        out.append(
            Diagnostic(
                code="E103",
                message=(
                    f"staging slot aliases a live read window: block k and "
                    f"block k-{model.n_slots} share slot k % {model.n_slots}, "
                    f"but consumers are only guaranteed to have absorbed "
                    f"through block k-{model.credit_lag}"
                ),
                because=(
                    Because(
                        "model",
                        f"{model.n_slots} slot(s) cannot cover a credit lag "
                        f"of {model.credit_lag} in-flight block(s)",
                    ),
                ),
                hint=(
                    "provision at least as many slots as the credit lag "
                    "(BoundaryPool.N_SLOTS) so a staged block survives "
                    "until every consumer has absorbed it"
                ),
                data={
                    "n_slots": model.n_slots,
                    "credit_lag": model.credit_lag,
                },
            )
        )
    areas = sorted(model.slot_areas, key=lambda a: a.offset)
    for first, second in zip(areas, areas[1:]):
        if first.offset + first.elems > second.offset:
            out.append(
                Diagnostic(
                    code="E103",
                    message=(
                        f"staging slot aliases a live read window: array "
                        f"{first.array_index}'s area "
                        f"[{first.offset}, {first.offset + first.elems}) "
                        f"overlaps array {second.array_index}'s area at "
                        f"offset {second.offset}"
                    ),
                    because=(
                        Because(
                            "model",
                            f"area of array {first.array_index} spans "
                            f"{first.elems} element(s) from offset "
                            f"{first.offset}",
                        ),
                    ),
                    hint="staged halo areas must be disjoint within a slot",
                    data={
                        "arrays": [first.array_index, second.array_index],
                    },
                )
            )
    for area in model.slot_areas:
        if area.offset + area.elems > model.slot_elems:
            out.append(
                Diagnostic(
                    code="E103",
                    message=(
                        f"staging slot aliases a live read window: array "
                        f"{area.array_index}'s area runs to element "
                        f"{area.offset + area.elems} but the slot holds "
                        f"only {model.slot_elems} — the copy would spill "
                        f"into the next slot's live data"
                    ),
                    because=(
                        Because(
                            "model",
                            f"{area.depth} halo row(s) at offset "
                            f"{area.offset} need {area.elems} element(s)",
                        ),
                    ),
                    hint=(
                        "slot capacity must cover every staged array's "
                        "deepest halo"
                    ),
                    data={"array": area.array_index},
                )
            )
    return out


def _coverage_diagnostics(model: ScheduleModel) -> list[Diagnostic]:
    adjacency, _labels = _hb_edges(model)
    reach_cache: dict[int, set[int]] = {}

    def reachable(src: int, dst: int) -> bool:
        seen = reach_cache.get(src)
        if seen is None:
            seen = set()
            frontier = deque(adjacency.get(src, ()))
            while frontier:
                node = frontier.popleft()
                if node in seen:
                    continue
                seen.add(node)
                frontier.extend(adjacency.get(node, ()))
            reach_cache[src] = seen
        return dst in seen

    out: list[Diagnostic] = []
    protocol = _protocol_name(model)
    for edge in model.dep_edges:
        if reachable(edge.src, edge.dst):
            continue
        out.append(
            Diagnostic(
                code="E101",
                message=(
                    f"unsynchronized dependence: {edge.kind} dependence "
                    f"{edge.vector} on {edge.array!r} needs tile {edge.src} "
                    f"({_describe_task(model, edge.src)}) to complete before "
                    f"tile {edge.dst} ({_describe_task(model, edge.dst)}), "
                    f"but no happens-before path of the {protocol} protocol "
                    f"orders them"
                ),
                because=(
                    Because(
                        "udv",
                        f"UDV {edge.vector} projects source cells of tile "
                        f"{edge.dst} into tile {edge.src}",
                    ),
                    Because(
                        "model",
                        f"schedule {model.schedule!r} on grid "
                        f"{model.grid_dims} synchronises via "
                        f"{protocol} edges only",
                    ),
                ),
                hint=(
                    "every projected dependence edge must be released by a "
                    "token, epoch stamp, or pending-count decrement before "
                    "its reader fires"
                ),
                data={
                    "src": edge.src,
                    "dst": edge.dst,
                    "vector": list(edge.vector),
                    "array": edge.array,
                    "kind": edge.kind,
                },
            )
        )
    return out


def certify_model(model: ScheduleModel) -> list[Diagnostic]:
    """Prove the model sound, returning diagnostics for every violation.

    Order: deadlock (``E102``) first — a cyclic wait-for graph makes the
    coverage question moot — then staging safety (``E103``), then
    dependence coverage (``E101``).  An empty list is the proof.
    """
    out: list[Diagnostic] = []
    out.extend(_deadlock_diagnostics(model))
    out.extend(_staging_diagnostics(model))
    out.extend(_coverage_diagnostics(model))
    return out


def certify(compiled, **kwargs) -> list[Diagnostic]:
    """Build the schedule model for ``compiled`` and certify it.

    Accepts :func:`build_schedule_model`'s keyword arguments.  Raises the
    planner's own :class:`~repro.errors.MachineError` family when the
    configuration cannot be planned at all (the executor would refuse it
    natively; the CLI reports those as ``W110``).
    """
    return certify_model(build_schedule_model(compiled, **kwargs))


def certify_execution(compiled, **kwargs) -> list[Diagnostic] | None:
    """The ``REPRO_CERTIFY=1`` pre-flight hook.

    Called by the executor (fork and pool paths) with the resolved
    schedule, grid, block size, and fabric just before workers launch.
    Planner refusals are swallowed — the run itself is about to raise the
    native error, which is the better message.  Certification *errors*
    raise :class:`~repro.errors.CertifyError` carrying the diagnostics.
    Returns the (warning-only or empty) diagnostics otherwise, ``None``
    when the configuration could not be modelled.
    """
    try:
        diagnostics = certify(compiled, **kwargs)
    except MachineError:
        return None
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        raise CertifyError(
            "schedule certification failed (REPRO_CERTIFY=1):\n\n"
            + render_all(errors),
            diagnostics,
        )
    return diagnostics


# ---------------------------------------------------------------------------
# The mutation harness
# ---------------------------------------------------------------------------

class MutationUnsupported(ValueError):
    """The requested mutation does not apply to this schedule model."""


@dataclass(frozen=True)
class Mutation:
    """One named plan corruption and the diagnostic it must provoke."""

    name: str
    #: The sync protocol it targets: ``pipes``/``taskgraph``/``multicast``.
    protocol: str
    #: The diagnostic code :func:`certify_model` must report on the mutant.
    expected: str
    summary: str
    apply: Callable[[ScheduleModel], ScheduleModel] = field(repr=False)


#: Registry of every plan mutation, ``name -> Mutation`` (order stable).
MUTATIONS: dict[str, Mutation] = {}


def _register(name: str, protocol: str, expected: str, summary: str):
    def decorate(fn):
        MUTATIONS[name] = Mutation(name, protocol, expected, summary, fn)
        return fn

    return decorate


def _need(condition: bool, what: str) -> None:
    if not condition:
        raise MutationUnsupported(f"mutation needs {what}")


def _flags(model: ScheduleModel, code: str) -> bool:
    return any(d.code == code for d in certify_model(model))


@_register(
    "drop-token", "pipes", "E101",
    "remove a load-bearing pipe token edge",
)
def _drop_token(model: ScheduleModel) -> ScheduleModel:
    _need(model.fabric == "pipes" and model.token_edges, "a pipe-token fabric")
    for i in range(len(model.token_edges)):
        mutated = replace(
            model,
            token_edges=model.token_edges[:i] + model.token_edges[i + 1:],
        )
        if _flags(mutated, "E101"):
            return mutated
    raise MutationUnsupported(
        "mutation needs a token edge that carries a dependence"
    )


@_register(
    "token-backedge", "pipes", "E102",
    "add a token edge pointing back up the chain",
)
def _token_backedge(model: ScheduleModel) -> ScheduleModel:
    _need(model.fabric == "pipes" and model.token_edges, "a pipe-token fabric")
    upstream, downstream = model.token_edges[0]
    return replace(
        model, token_edges=model.token_edges + ((downstream, upstream),)
    )


@_register(
    "detach-rank", "pipes", "E101",
    "detach one dependence-carrying rank from all incoming tokens",
)
def _detach_rank(model: ScheduleModel) -> ScheduleModel:
    _need(model.fabric == "pipes" and model.token_edges, "a pipe-token fabric")
    seen: list[int] = []
    for _upstream, downstream in model.token_edges:
        if downstream not in seen:
            seen.append(downstream)
    for rank in seen:
        mutated = replace(
            model,
            token_edges=tuple(
                e for e in model.token_edges if e[1] != rank
            ),
        )
        if _flags(mutated, "E101"):
            return mutated
    raise MutationUnsupported(
        "mutation needs a rank whose incoming tokens carry a dependence"
    )


@_register(
    "drop-graph-edge", "taskgraph", "E101",
    "drop a dependence-carrying graph edge (and its pending count)",
)
def _drop_graph_edge(model: ScheduleModel) -> ScheduleModel:
    _need(
        model.schedule == "taskgraph" and model.graph_edges,
        "a taskgraph with edges",
    )
    dep_pairs = {(e.src, e.dst) for e in model.dep_edges}
    for i, (src, dst) in enumerate(model.graph_edges):
        if (src, dst) not in dep_pairs:
            continue
        pending = list(model.pending)
        pending[dst] -= 1
        mutated = replace(
            model,
            graph_edges=model.graph_edges[:i] + model.graph_edges[i + 1:],
            pending=tuple(pending),
        )
        if _flags(mutated, "E101"):
            return mutated
    raise MutationUnsupported(
        "mutation needs a graph edge that is the sole cover of a dependence"
    )


@_register(
    "shrink-pending", "taskgraph", "E101",
    "decrement one tile's pending count below its in-degree",
)
def _shrink_pending(model: ScheduleModel) -> ScheduleModel:
    _need(model.schedule == "taskgraph" and model.pending, "a taskgraph")
    for edge in model.dep_edges:
        if model.pending[edge.dst] < 1:
            continue
        pending = list(model.pending)
        pending[edge.dst] -= 1
        mutated = replace(model, pending=tuple(pending))
        if _flags(mutated, "E101"):
            return mutated
    raise MutationUnsupported(
        "mutation needs a tile whose early firing uncovers a dependence"
    )


@_register(
    "grow-pending", "taskgraph", "E102",
    "increment one tile's pending count past its in-degree",
)
def _grow_pending(model: ScheduleModel) -> ScheduleModel:
    _need(model.schedule == "taskgraph" and model.pending, "a taskgraph")
    pending = list(model.pending)
    pending[0] += 1
    return replace(model, pending=tuple(pending))


@_register(
    "graph-backedge", "taskgraph", "E102",
    "reverse-duplicate a graph edge, forming a two-tile cycle",
)
def _graph_backedge(model: ScheduleModel) -> ScheduleModel:
    _need(
        model.schedule == "taskgraph" and model.graph_edges,
        "a taskgraph with edges",
    )
    src, dst = model.graph_edges[0]
    pending = list(model.pending)
    pending[src] += 1
    return replace(
        model,
        graph_edges=model.graph_edges + ((dst, src),),
        pending=tuple(pending),
    )


@_register(
    "drop-producer", "multicast", "E101",
    "remove a load-bearing producer from one rank's epoch waits",
)
def _drop_producer(model: ScheduleModel) -> ScheduleModel:
    _need(
        model.fabric == "multicast" and any(model.producers),
        "a multicast fabric",
    )
    for rank, preds in enumerate(model.producers):
        for producer in preds:
            producers = list(model.producers)
            producers[rank] = tuple(p for p in preds if p != producer)
            mutated = replace(model, producers=tuple(producers))
            if _flags(mutated, "E101"):
                return mutated
    raise MutationUnsupported(
        "mutation needs a producer edge that carries a dependence"
    )


@_register(
    "producer-backedge", "multicast", "E102",
    "make a producer wait on its own consumer's epoch",
)
def _producer_backedge(model: ScheduleModel) -> ScheduleModel:
    _need(
        model.fabric == "multicast" and any(model.producers),
        "a multicast fabric",
    )
    for rank, preds in enumerate(model.producers):
        for producer in preds:
            producers = list(model.producers)
            producers[producer] = tuple(
                sorted(set(producers[producer]) | {rank})
            )
            return replace(model, producers=tuple(producers))
    raise MutationUnsupported("mutation needs a producer edge")


@_register(
    "self-producer", "multicast", "E102",
    "make a rank wait on its own epoch stamp",
)
def _self_producer(model: ScheduleModel) -> ScheduleModel:
    _need(model.fabric == "multicast", "a multicast fabric")
    _need(model.n_tasks > 0, "at least one tile")
    rank = model.owners[0]
    producers = list(model.producers)
    producers[rank] = tuple(sorted(set(producers[rank]) | {rank}))
    return replace(model, producers=tuple(producers))


@_register(
    "single-slot", "multicast", "E103",
    "shrink the boundary pool to one slot under a two-block credit lag",
)
def _single_slot(model: ScheduleModel) -> ScheduleModel:
    _need(model.staging, "double-buffered staging")
    return replace(model, n_slots=1)


@_register(
    "slot-overflow", "multicast", "E103",
    "grow one staged area past the slot capacity",
)
def _slot_overflow(model: ScheduleModel) -> ScheduleModel:
    _need(model.staging and model.slot_areas, "double-buffered staging")
    last = max(model.slot_areas, key=lambda a: a.offset)
    grown = replace(last, elems=model.slot_elems - last.offset + 1)
    areas = tuple(grown if a is last else a for a in model.slot_areas)
    return replace(model, slot_areas=areas)


@_register(
    "eager-credit", "multicast", "E102",
    "zero the slot-credit lag so staging waits on the same block's absorb",
)
def _eager_credit(model: ScheduleModel) -> ScheduleModel:
    _need(
        model.staging and any(model.producers),
        "double-buffered staging with consumers",
    )
    return replace(model, credit_lag=0)


def apply_mutation(
    model: ScheduleModel, name: str
) -> tuple[Mutation, ScheduleModel]:
    """Apply one named mutation; :class:`MutationUnsupported` when it does
    not fit this model (wrong fabric, nothing to corrupt)."""
    mutation = MUTATIONS.get(name)
    if mutation is None:
        raise MutationUnsupported(
            f"unknown mutation {name!r}; pick from {', '.join(MUTATIONS)}"
        )
    return mutation, mutation.apply(model)


def mutants(model: ScheduleModel):
    """Yield ``(mutation, mutated_model)`` for every applicable mutation."""
    for name in MUTATIONS:
        try:
            mutation, mutated = apply_mutation(model, name)
        except MutationUnsupported:
            continue
        yield mutation, mutated
