"""Tests for the Tomcatv application."""

import numpy as np
import pytest

from repro import zpl
from repro.apps import tomcatv
from repro.compiler import contract, contractible
from repro.machine import plan_wavefront
from repro.runtime import execute_loopnest, execute_vectorized


class TestBuild:
    def test_shapes(self):
        state = tomcatv.build(16)
        assert state.x.shape == (16, 16)
        assert state.interior.ranges == ((2, 14), (2, 15))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            tomcatv.build(4)

    def test_seeded_noise_reproducible(self):
        a = tomcatv.build(10, seed=3).x.to_numpy()
        b = tomcatv.build(10, seed=3).x.to_numpy()
        np.testing.assert_array_equal(a, b)


class TestSolvePhases:
    def test_forward_block_is_paper_fragment(self):
        state = tomcatv.build(12)
        compiled = tomcatv.compile_forward(state)
        assert repr(compiled.wsv) == "(-,0)"
        assert len(compiled.statements) == 4
        plan = plan_wavefront(compiled)
        assert plan.boundary_rows == 3
        assert plan.halo_rows == 1

    def test_backward_block_reversed(self):
        state = tomcatv.build(12)
        compiled = tomcatv.compile_backward(state)
        assert repr(compiled.wsv) == "(+,0)"
        assert compiled.loops.signs[0] == -1  # south->north: descending rows

    def test_solve_matches_thomas_oracle(self):
        # The forward+backward scan blocks implement, per column, exactly
        # the Thomas tridiagonal algorithm.
        n = 14
        state = tomcatv.build(n, seed=2)
        tomcatv.coefficients_phase(state)
        tomcatv.prepare_solve(state)
        interior = state.interior
        aa = state.aa.read(interior).copy()
        dd = state.dd.read(interior).copy()
        rhs_x = state.rx.read(interior).copy()
        sub = state.aa.read(interior.shift(zpl.NORTH)).copy()
        execute_vectorized(tomcatv.compile_forward(state))
        execute_vectorized(tomcatv.compile_backward(state))
        expected = tomcatv.thomas_columns(aa, dd, rhs_x, sub)
        np.testing.assert_allclose(
            state.rx.read(interior), expected, rtol=1e-12
        )

    def test_contraction_candidate(self):
        state = tomcatv.build(10)
        compiled = tomcatv.compile_forward(state)
        assert contractible(compiled, state.r)
        contracted = contract(compiled, [state.r])
        snap = state.rx.to_numpy()  # noqa: F841  (smoke: contraction runs)
        execute_vectorized(contracted)

    def test_engines_agree_on_step(self):
        n = 10
        s1 = tomcatv.build(n, seed=1)
        s2 = tomcatv.build(n, seed=1)
        tomcatv.step(s1, engine=execute_vectorized)
        tomcatv.step(s2, engine=execute_loopnest)
        np.testing.assert_allclose(s1.x.to_numpy(), s2.x.to_numpy(), rtol=1e-12)
        np.testing.assert_allclose(s1.y.to_numpy(), s2.y.to_numpy(), rtol=1e-12)


class TestIteration:
    def test_residual_decreases(self):
        state = tomcatv.build(20, distortion=0.2)
        history = tomcatv.run(state, 10)
        assert history[-1] < history[0]
        assert all(np.isfinite(h) for h in history)

    def test_boundary_untouched(self):
        state = tomcatv.build(12)
        edge_before = state.x.read(zpl.Region.of((1, 1), (1, 12))).copy()
        tomcatv.run(state, 3)
        np.testing.assert_array_equal(
            state.x.read(zpl.Region.of((1, 1), (1, 12))), edge_before
        )

    def test_mesh_stays_finite(self):
        state = tomcatv.build(16, distortion=0.3, seed=4)
        tomcatv.run(state, 15)
        assert np.all(np.isfinite(state.x.to_numpy()))
        assert np.all(np.isfinite(state.y.to_numpy()))


class TestProfile:
    def test_wavefront_fraction(self):
        # ~27% of the arithmetic; on a cached machine the unfused baseline
        # spends ~75% of its *time* there (hence the 3x whole-program win).
        prog = tomcatv.profile(257)
        assert 0.2 < prog.wavefront_fraction() < 0.4

    def test_total_work_scales(self):
        assert tomcatv.profile(128, 2).total_work() == pytest.approx(
            2 * tomcatv.profile(128, 1).total_work()
        )
