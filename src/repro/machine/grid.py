"""Processor grids: logical meshes of simulated processors."""

from __future__ import annotations

from typing import Iterator

from repro.errors import MachineError
from repro.util.validation import check_tuple_of_int


class ProcessorGrid:
    """A rank-g mesh of processors, e.g. ``ProcessorGrid((2, 2))``.

    Processors are identified by integer *ranks* in row-major order or by
    coordinate tuples; the mapping matches how regions are split across the
    grid by :class:`repro.machine.distribution.BlockMap`.
    """

    def __init__(self, dims: tuple[int, ...]):
        self.dims = check_tuple_of_int(dims, "dims")
        if not self.dims:
            raise MachineError("a processor grid needs at least one dimension")
        for extent in self.dims:
            if extent < 1:
                raise MachineError(f"grid extent must be >= 1, got {extent}")

    @property
    def size(self) -> int:
        """Total number of processors."""
        total = 1
        for extent in self.dims:
            total *= extent
        return total

    @property
    def rank(self) -> int:
        """Number of mesh dimensions."""
        return len(self.dims)

    def coords(self, proc: int) -> tuple[int, ...]:
        """Mesh coordinates of processor ``proc`` (row-major)."""
        if not 0 <= proc < self.size:
            raise MachineError(f"processor {proc} out of range (size {self.size})")
        out = []
        for extent in reversed(self.dims):
            out.append(proc % extent)
            proc //= extent
        return tuple(reversed(out))

    def proc(self, coords: tuple[int, ...]) -> int:
        """Rank of the processor at ``coords``."""
        if len(coords) != self.rank:
            raise MachineError(
                f"coords {coords} have rank {len(coords)}, grid has {self.rank}"
            )
        rank = 0
        for c, extent in zip(coords, self.dims):
            if not 0 <= c < extent:
                raise MachineError(f"coordinate {c} out of range 0..{extent - 1}")
            rank = rank * extent + c
        return rank

    def neighbor(self, proc: int, dim: int, delta: int) -> int | None:
        """Rank of the neighbour ``delta`` steps along mesh dim, or None."""
        coords = list(self.coords(proc))
        coords[dim] += delta
        if not 0 <= coords[dim] < self.dims[dim]:
            return None
        return self.proc(tuple(coords))

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.size))

    def __repr__(self) -> str:
        return f"ProcessorGrid{self.dims}"
