"""Untraced pool runs still flush live telemetry over the result channel."""

import numpy as np

from repro.compiler import compile_scan
from repro.obs.live import FLIGHT, LIVE, MONITOR
from repro.parallel import WorkerPool
from repro.runtime import execute_vectorized, run_and_capture
from tests.conftest import record_tomcatv_block


def _compiled(n=16):
    block, arrays = record_tomcatv_block(n)
    return compile_scan(block), arrays


def test_untraced_execute_feeds_registry_monitor_and_flight():
    compiled, arrays = _compiled()
    executes0 = LIVE.value("repro_pool_executes_total")
    busy0 = LIVE.value("repro_pool_worker_busy_seconds", rank="0")
    blocks0 = LIVE.value("repro_pool_worker_blocks_total", rank="0")
    samples0 = MONITOR.samples
    written0 = FLIGHT.written

    with WorkerPool(2, timeout=60.0) as pool:
        run = pool.execute(compiled, block=4)  # no tracer anywhere
        assert run.trace is None

    assert LIVE.value("repro_pool_executes_total") == executes0 + 1
    assert LIVE.value("repro_pool_worker_busy_seconds", rank="0") > busy0
    assert LIVE.value("repro_pool_worker_blocks_total", rank="0") >= blocks0 + 1
    assert LIVE.value("repro_pool_worker_elements_total", rank="1") > 0
    hist = LIVE.histogram("repro_pool_execute_seconds")
    assert hist.total >= 1
    # The monitor folded the job in and has a live unit-cost estimate.
    assert MONITOR.samples == samples0 + 1
    assert MONITOR.unit_seconds > 0.0
    # The parent-side flight recorder logged the run.
    assert FLIGHT.written > written0
    if FLIGHT.enabled:
        names = [e["name"] for e in FLIGHT.dump()["events"]]
        assert "pool_execute" in names


def test_telemetry_does_not_disturb_results():
    compiled, arrays = _compiled()
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    with WorkerPool(2, timeout=60.0) as pool:
        pooled = run_and_capture(
            lambda c: pool.execute(c, block=4), compiled, arrays
        )
    for want, got in zip(oracle, pooled):
        np.testing.assert_array_equal(got, want)


def test_repeat_executes_accumulate():
    compiled, _ = _compiled()
    executes0 = LIVE.value("repro_pool_executes_total")
    with WorkerPool(2, timeout=60.0) as pool:
        for _ in range(3):
            pool.execute(compiled, block=4)
    assert LIVE.value("repro_pool_executes_total") == executes0 + 3
