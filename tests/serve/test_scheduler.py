"""Scheduling policies and the Model-2 cost seam."""

import pytest

from repro.machine.params import CRAY_T3E
from repro.serve.scheduler import (
    Candidate,
    FIFOPolicy,
    SJFPolicy,
    estimate_cost,
    make_policy,
)


def _align_key(la, lb, local=False):
    return ("align", local, la, lb, 2.0, -1.0, 1.0)


class TestEstimateCost:
    def test_inprocess_cost_is_dp_volume(self):
        assert estimate_cost(_align_key(10, 20), items=1) == 200.0
        assert estimate_cost(_align_key(10, 20), items=4) == 800.0

    def test_cost_monotone_in_items_and_shape(self):
        small = estimate_cost(_align_key(16, 16), items=1)
        more_items = estimate_cost(_align_key(16, 16), items=8)
        bigger = estimate_cost(_align_key(64, 64), items=1)
        assert small < more_items and small < bigger

    def test_pool_mode_uses_model2(self):
        volume = estimate_cost(_align_key(64, 64), items=4)
        modeled = estimate_cost(_align_key(64, 64), items=4,
                                params=CRAY_T3E, p=4)
        assert modeled > 0
        # Model 2 predicts seconds, not element updates.
        assert modeled != volume
        # Still monotone: more work costs more predicted time.
        assert modeled < estimate_cost(_align_key(256, 256), items=4,
                                       params=CRAY_T3E, p=4)

    def test_zpl_key_geometry(self):
        key = ("zpl", "abc123", (("a", (1, 1), (8, 16)),))
        assert estimate_cost(key, items=1) == 8 * 16
        assert estimate_cost(key, items=3) == 8 * 16 * 3


class TestPolicies:
    def _candidates(self):
        return [
            Candidate(key=_align_key(64, 64), items=4, arrival=1.0,
                      cost=64 * 64 * 4),
            Candidate(key=_align_key(8, 8), items=2, arrival=2.0,
                      cost=8 * 8 * 2),
        ]

    def test_fifo_picks_oldest(self):
        old, _new = self._candidates()
        assert make_policy("fifo").select(self._candidates()).key == old.key

    def test_sjf_picks_cheapest(self):
        _old, cheap = self._candidates()
        assert make_policy("sjf").select(self._candidates()).key == cheap.key

    def test_sjf_ties_break_by_arrival(self):
        a = Candidate(key=_align_key(8, 8), items=1, arrival=5.0, cost=64)
        b = Candidate(key=_align_key(8, 8, local=True), items=1, arrival=3.0,
                      cost=64)
        assert SJFPolicy().select([a, b]) is b

    def test_make_policy(self):
        assert isinstance(make_policy("fifo"), FIFOPolicy)
        assert isinstance(make_policy("sjf"), SJFPolicy)
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("lifo")
