"""Bench: whole-program simulation (phases, collectives, wavefronts)."""

from repro.apps import tomcatv
from repro.machine import CRAY_T3E
from repro.machine.program import WavefrontSpec, optimal_spec, simulate_program
from repro.models.amdahl import PhaseKind

N = 257
P = 8


def _setup(pipelined: bool):
    profile = tomcatv.profile(N)
    rows, cols = N - 3, N - 2
    specs = {}
    for phase in profile.phases:
        if phase.kind is not PhaseKind.WAVEFRONT:
            continue
        m = 3 if phase.name == "forward-solve" else 2
        if pipelined:
            specs[phase.name] = optimal_spec(phase, CRAY_T3E, P, rows, cols, m)
        else:
            specs[phase.name] = WavefrontSpec(rows, cols, m, None)
    return profile, specs


def test_program_pipelined(bench):
    profile, specs = _setup(pipelined=True)
    result = bench(simulate_program, profile, CRAY_T3E, P, specs)
    assert result.pipelined


def test_program_naive(bench):
    profile, specs = _setup(pipelined=False)
    result = bench(simulate_program, profile, CRAY_T3E, P, specs)
    assert not result.pipelined


def test_program_many_iterations(bench):
    # Ten Tomcatv iterations end to end: phase repeats stress the DES.
    profile = tomcatv.profile(N, iterations=10)
    rows, cols = N - 3, N - 2
    specs = {
        ph.name: optimal_spec(ph, CRAY_T3E, P, rows, cols, 3)
        for ph in profile.phases
        if ph.kind is PhaseKind.WAVEFRONT
    }
    result = bench(simulate_program, profile, CRAY_T3E, P, specs)
    assert result.total_time > 0
