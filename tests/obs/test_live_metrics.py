"""Streaming metrics registry: delta flush/absorb and log histograms."""

from __future__ import annotations

import pytest

from repro.obs.live.metrics import (
    HIST_GROWTH,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper,
    worker_table,
)


class TestBuckets:
    def test_upper_bound_covers_value(self):
        for value in (1e-7, 1e-6, 3.7e-5, 1e-3, 0.25, 2.0, 60.0):
            b = bucket_index(value)
            assert bucket_upper(b) >= value * (1 - 1e-12)
            if b > 0:
                assert bucket_upper(b - 1) < value

    def test_quantile_error_bounded_by_growth(self):
        hist = Histogram()
        hist.observe(0.010)
        assert hist.quantile(0.5) <= 0.010 * HIST_GROWTH * (1 + 1e-9)


class TestFlushAbsorb:
    def test_counter_ships_delta_only(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.counter("blocks", rank="0").inc(3)
        parent.absorb(worker.flush())
        worker.counter("blocks", rank="0").inc(2)
        parent.absorb(worker.flush())
        assert parent.value("blocks", rank="0") == 5.0
        # An idle flush ships nothing for the counter.
        assert worker.flush()["counters"] == []

    def test_multiple_workers_feed_one_parent(self):
        parent = MetricsRegistry()
        for rank in range(3):
            w = MetricsRegistry()
            w.counter("blocks").inc(10)
            w.histogram("lat").observe(0.001)
            w.histogram("lat").observe(0.004)
            parent.absorb(w.flush())
        assert parent.value("blocks") == 30.0
        assert parent.histogram("lat").total == 6

    def test_histogram_sum_is_delta_not_cumulative(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.histogram("lat").observe(1.0)
        parent.absorb(worker.flush())
        worker.histogram("lat").observe(1.0)
        parent.absorb(worker.flush())
        # Cumulative-sum shipping would double-count the first second here.
        assert parent.histogram("lat").sum == pytest.approx(2.0)
        assert parent.histogram("lat").total == 2

    def test_absorb_is_relayable(self):
        """A mid-tier registry can absorb and re-flush without loss."""
        leaf, mid, root = (MetricsRegistry() for _ in range(3))
        leaf.counter("c").inc(4)
        leaf.histogram("h").observe(0.5)
        mid.absorb(leaf.flush())
        root.absorb(mid.flush())
        assert root.value("c") == 4.0
        assert root.histogram("h").total == 1
        assert root.histogram("h").sum == pytest.approx(0.5)

    def test_gauge_last_write_wins(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.gauge("depth").set(7)
        parent.absorb(worker.flush())
        worker.gauge("depth").set(2)
        parent.absorb(worker.flush())
        assert parent.value("depth") == 2.0

    def test_absorb_empty_payload(self):
        MetricsRegistry().absorb({})
        MetricsRegistry().absorb(None)


class TestRegistry:
    def test_same_labels_same_series(self):
        reg = MetricsRegistry()
        reg.counter("c", rank="1", job="x").inc()
        reg.counter("c", job="x", rank="1").inc()  # label order irrelevant
        assert reg.value("c", rank="1", job="x") == 2.0

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        with pytest.raises(TypeError):
            reg.gauge("c")

    def test_histogram_percentiles(self):
        hist = Histogram()
        for ms in range(1, 101):  # 1ms .. 100ms uniform
            hist.observe(ms / 1e3)
        pcts = hist.percentiles()
        assert pcts["p50"] == pytest.approx(0.050, rel=0.25)
        assert pcts["p99"] == pytest.approx(0.099, rel=0.25)
        assert pcts["p50"] <= pcts["p90"] <= pcts["p99"]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(2)
        reg.gauge("depth").set(1)
        reg.histogram("lat", op="x").observe(0.01)
        snap = reg.snapshot()
        assert snap["counters"][0] == {
            "name": "jobs", "labels": {}, "value": 2.0,
        }
        assert snap["histograms"][0]["labels"] == {"op": "x"}
        assert snap["histograms"][0]["count"] == 1
        assert "p99" in snap["histograms"][0]


def test_worker_table_groups_by_rank():
    reg = MetricsRegistry()
    reg.counter("repro_pool_worker_busy_seconds", rank="0").inc(1.5)
    reg.counter("repro_pool_worker_blocks_total", rank="0").inc(8)
    reg.counter("repro_pool_worker_busy_seconds", rank="1").inc(0.5)
    reg.counter("repro_pool_executes_total").inc()  # no rank: excluded
    table = worker_table(reg)
    assert set(table) == {"0", "1"}
    assert table["0"] == {"busy_seconds": 1.5, "blocks_total": 8.0}
    assert table["1"] == {"busy_seconds": 0.5}
