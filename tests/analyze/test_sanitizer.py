"""The wavefront race sanitizer on the real multiprocess backend.

Clean pipelined and naive runs (rank-1 chain and rank-2 mesh) must pass the
happens-before checks *and* stay bit-identical to the sequential engine; the
injected early-release token-protocol violation must be detected
deterministically.  Worker counts stay at two, matching the rest of the
parallel suite.

Coverage extends to every fabric and both process backends: the multicast
epoch fabric (clocks ride per-``(rank, block)`` epoch-clock rows; the
``early-publish`` injection must trip) and the persistent worker pool
(clocks ride the result channel; a sanitized run stays bit-identical and
every injection kind still trips, breaking the pool as any failed run
does).
"""

import numpy as np
import pytest

from repro import zpl
from repro.analyze.sanitizer import parse_inject
from repro.compiler import compile_scan
from repro.errors import PoolBrokenError, SanitizerError
from repro.parallel import execute
from repro.parallel.pool import WorkerPool
from repro.runtime import execute_vectorized, run_and_capture
from repro.zpl import NORTH, Region
from tests.conftest import record_tomcatv_block


def _single_stream(n=32):
    a = zpl.ZArray(Region.square(1, n), name="a")
    rng = np.random.default_rng(5)
    a.load(rng.uniform(0.2, 1.0, size=(n, n)))
    with zpl.covering(Region.of((2, n), (1, n))):
        with zpl.scan(execute=False) as block:
            a[...] = 0.9 * (a.p @ NORTH) + 0.1
    return compile_scan(block), (a,)


def _assert_sanitized_matches(compiled, arrays, **kwargs):
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    runs = []

    def engine(c):
        runs.append(execute(c, sanitize=True, **kwargs))

    got = run_and_capture(engine, compiled, arrays)
    for array, want, have in zip(arrays, oracle, got):
        np.testing.assert_array_equal(
            have, want, err_msg=f"array {array.name} diverged under sanitizer"
        )
    return runs[0]


def test_parse_inject():
    assert parse_inject(None) is None
    assert parse_inject("") is None
    assert parse_inject("early-release:1:3") == ("early-release", 1, 3)
    assert parse_inject("early-publish:0:2") == ("early-publish", 0, 2)
    with pytest.raises(SanitizerError, match="expected"):
        parse_inject("late-release:1:3")
    with pytest.raises(SanitizerError, match="integers"):
        parse_inject("early-release:one:3")


def test_clean_pipelined_rank1():
    compiled, arrays = _single_stream()
    run = _assert_sanitized_matches(
        compiled, arrays, grid=2, schedule="pipelined", block=8
    )
    assert run.n_procs == 2 and run.n_chunks > 1


def test_clean_naive_rank1():
    compiled, arrays = _single_stream()
    run = _assert_sanitized_matches(compiled, arrays, grid=2, schedule="naive")
    assert run.schedule == "naive"


def test_clean_pipelined_rank2_mesh():
    # Rank-2 processor grid: two independent chains over the tomcatv block.
    block, arrays = record_tomcatv_block(16)
    run = _assert_sanitized_matches(
        compile_scan(block), arrays, grid=(1, 2), schedule="pipelined", block=4
    )
    assert run.grid_dims == (1, 2)


def test_env_knob_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    compiled, arrays = _single_stream(24)
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    got = run_and_capture(
        lambda c: execute(c, grid=2, schedule="pipelined", block=6),
        compiled,
        arrays,
    )
    for want, have in zip(oracle, got):
        np.testing.assert_array_equal(have, want)


def test_injected_early_release_detected(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-release:0:0")
    compiled, _ = _single_stream()
    with pytest.raises(SanitizerError, match="wavefront race"):
        execute(compiled, grid=2, schedule="pipelined", block=8, sanitize=True)


def test_injected_mid_pipeline_block_detected(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-release:0:2")
    compiled, _ = _single_stream()
    with pytest.raises(SanitizerError, match="wavefront race"):
        execute(compiled, grid=2, schedule="pipelined", block=8, sanitize=True)


def test_injection_ignored_without_matching_rank(monkeypatch):
    # The fault targets a rank that never sends; the run stays clean.
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-release:7:0")
    compiled, arrays = _single_stream(24)
    _assert_sanitized_matches(
        compiled, arrays, grid=2, schedule="pipelined", block=6
    )


# ---------------------------------------------------------------------------
# Multicast fabric coverage: clocks ride the epoch-clock rows.
# ---------------------------------------------------------------------------
def test_clean_multicast_sanitized(monkeypatch):
    monkeypatch.setenv("REPRO_MULTICAST", "1")
    compiled, arrays = _single_stream()
    run = _assert_sanitized_matches(
        compiled, arrays, grid=2, schedule="pipelined", block=8
    )
    assert run.fabric == "multicast"


def test_injected_early_publish_detected(monkeypatch):
    monkeypatch.setenv("REPRO_MULTICAST", "1")
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-publish:0:0")
    compiled, _ = _single_stream()
    with pytest.raises(SanitizerError, match="wavefront race"):
        execute(compiled, grid=2, schedule="pipelined", block=8, sanitize=True)


def test_injected_mid_stream_early_publish_detected(monkeypatch):
    monkeypatch.setenv("REPRO_MULTICAST", "1")
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-publish:0:2")
    compiled, _ = _single_stream()
    with pytest.raises(SanitizerError, match="wavefront race"):
        execute(compiled, grid=2, schedule="pipelined", block=8, sanitize=True)


def test_early_publish_ignored_on_pipes(monkeypatch):
    # The fault targets the epoch fabric; a pipes run has no publishes, so
    # the run must stay clean (and bit-identical).
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-publish:0:0")
    compiled, arrays = _single_stream(24)
    _assert_sanitized_matches(
        compiled, arrays, grid=2, schedule="pipelined", block=6
    )


# ---------------------------------------------------------------------------
# Worker-pool coverage: clocks ride the result channel.
# ---------------------------------------------------------------------------
def test_pool_sanitized_pipes_matches():
    compiled, arrays = _single_stream()
    with WorkerPool(2) as pool:
        run = _assert_sanitized_matches(
            compiled, arrays, pool=pool, schedule="pipelined", block=8
        )
        assert run.fabric == "pipes"
        # A second sanitized run on the warm pool: the per-run shadow
        # segment must not leak state between requests.
        _assert_sanitized_matches(
            compiled, arrays, pool=pool, schedule="pipelined", block=8
        )


def test_pool_sanitized_multicast_matches(monkeypatch):
    monkeypatch.setenv("REPRO_MULTICAST", "1")
    compiled, arrays = _single_stream()
    with WorkerPool(2) as pool:
        run = _assert_sanitized_matches(
            compiled, arrays, pool=pool, schedule="pipelined", block=8
        )
        assert run.fabric == "multicast"
        # An unsanitized request after a sanitized one reuses the cached
        # channel without the shadow plane.
        execute(compiled, pool=pool, schedule="pipelined", block=8)


def test_pool_injected_early_release_detected(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-release:0:0")
    compiled, _ = _single_stream()
    with WorkerPool(2) as pool:
        with pytest.raises(SanitizerError, match="wavefront race"):
            execute(
                compiled, pool=pool, schedule="pipelined", block=8,
                sanitize=True,
            )
        # A detected race is a failed run: the pool breaks by contract.
        with pytest.raises(PoolBrokenError):
            execute(compiled, pool=pool, schedule="pipelined", block=8)


def test_pool_injected_early_publish_detected(monkeypatch):
    monkeypatch.setenv("REPRO_MULTICAST", "1")
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-publish:0:1")
    compiled, _ = _single_stream()
    with WorkerPool(2) as pool:
        with pytest.raises(SanitizerError, match="wavefront race"):
            execute(
                compiled, pool=pool, schedule="pipelined", block=8,
                sanitize=True,
            )


def test_pool_sanitized_taskgraph_and_early_fire(monkeypatch):
    compiled, arrays = _single_stream()
    with WorkerPool(2) as pool:
        _assert_sanitized_matches(
            compiled, arrays, pool=pool, schedule="taskgraph", block=8
        )
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-fire:0:20")
    with WorkerPool(2) as pool:
        with pytest.raises(SanitizerError, match="wavefront race"):
            execute(
                compiled, pool=pool, schedule="taskgraph", block=8,
                sanitize=True,
            )


def test_pool_env_knob_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    compiled, arrays = _single_stream(24)
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    with WorkerPool(2) as pool:
        got = run_and_capture(
            lambda c: execute(c, pool=pool, schedule="pipelined", block=6),
            compiled,
            arrays,
        )
    for want, have in zip(oracle, got):
        np.testing.assert_array_equal(have, want)
