"""Property: the multicast fabric computes exactly what the pipes do.

Random legal scan blocks — optionally masked, optionally with a
contracted temporary, with per-dimension direction signs drawn so
descending (negative-stride) traversals are covered — must leave storage
bit-identical whether the pipelined schedule synchronises over
point-to-point pipes, over the multicast epoch fabric, or over the
fabric with double-buffered boundary staging on top; all three must
match the vectorised sequential engine and (to float tolerance) the
scalar loop-nest oracle.  The dependence pool leans on diagonal and
depth-2 reads so tile fan-outs ≥ 2 — the shapes the planner actually
selects multicast for — are well represented.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import zpl
from repro.compiler import compile_scan, contract, contractible
from repro.errors import DistributionError
from repro.parallel import execute
from repro.runtime import execute_loopnest, execute_vectorized, run_and_capture

N_PROCS = 2

#: The forced first read keeps a wavefront along dim 0; the extras add the
#: diagonal/depth-2 shapes that give the fabric a tile fan-out to amortise.
FORCED = (-1, 0)
EXTRA_POOL = ((0, -1), (-1, -1), (-2, 0), (-1, -2), (-2, -1))
RO_POOL = ((-1, 0), (1, 0), (0, 1), (1, 1), (0, 0))


def _scaled(direction, signs):
    return tuple(c * s for c, s in zip(direction, signs))


@st.composite
def multicast_programs(draw):
    n = draw(st.integers(7, 11))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    signs = (draw(st.sampled_from((1, -1))), draw(st.sampled_from((1, -1))))
    feature = draw(st.sampled_from(("plain", "mask", "contract")))

    base = zpl.Region.square(1, n)
    region = zpl.Region.of((3, n - 1), (3, n - 1))
    n_targets = draw(st.integers(1, 2))
    targets = []
    for k in range(n_targets):
        arr = zpl.ZArray(base, name=f"t{k}", fluff=2)
        arr._data[...] = rng.uniform(0.5, 1.5, size=arr._data.shape)
        targets.append(arr)
    readonly = zpl.ZArray(base, name="ro", fluff=2)
    readonly._data[...] = rng.uniform(0.5, 1.5, size=readonly._data.shape)
    arrays = targets + [readonly]

    temp = None
    if feature == "contract":
        temp = zpl.ZArray(base, name="tmp", fluff=2)
        temp._data[...] = rng.uniform(0.5, 1.5, size=temp._data.shape)
        arrays.append(temp)
    mask = None
    if feature == "mask":
        mask = zpl.ZArray(base, name="m", fluff=2)
        mask._data[...] = 0.0
        mask.load((rng.uniform(size=base.shape) < 0.55).astype(float))
        arrays.append(mask)

    def one_expr(k, force_prime):
        n_terms = draw(st.integers(1, 3))
        expr = zpl.as_node(draw(st.floats(0.05, 0.5)))
        for term in range(n_terms):
            if force_prime and term == 0:
                kind = "primed-forced"
            else:
                kind = draw(
                    st.sampled_from(("primed", "readonly", "self", "temp"))
                )
            coeff = draw(st.floats(0.1, 0.45))
            if kind == "primed-forced":
                other = targets[draw(st.integers(0, n_targets - 1))]
                expr = expr + coeff * (other.p @ _scaled(FORCED, signs))
            elif kind == "primed":
                other = targets[draw(st.integers(0, n_targets - 1))]
                direction = _scaled(draw(st.sampled_from(EXTRA_POOL)), signs)
                expr = expr + coeff * (other.p @ direction)
            elif kind == "readonly":
                direction = _scaled(draw(st.sampled_from(RO_POOL)), signs)
                expr = expr + coeff * (readonly @ direction)
            elif kind == "temp" and temp is not None:
                expr = expr + coeff * temp.ref
            else:
                expr = expr + coeff * targets[k].ref
        return expr

    mask_ctx = zpl.masked(mask) if mask is not None else None
    with zpl.covering(region):
        if mask_ctx is not None:
            mask_ctx.__enter__()
        try:
            with zpl.scan(execute=False) as block:
                if temp is not None:
                    temp[...] = one_expr(0, force_prime=True)
                for k in range(n_targets):
                    targets[k][...] = one_expr(k, force_prime=(k == 0))
        finally:
            if mask_ctx is not None:
                mask_ctx.__exit__(None, None, None)

    compiled = compile_scan(block)
    if temp is not None and contractible(compiled, temp):
        compiled = contract(compiled, [temp])
    block_size = draw(st.integers(2, 6))
    return compiled, arrays, block_size


@given(multicast_programs())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_multicast_matches_all_engines(program):
    compiled, arrays, block_size = program

    oracle = run_and_capture(execute_loopnest, compiled, arrays)
    fast = run_and_capture(execute_vectorized, compiled, arrays)
    for array, o, f in zip(arrays, oracle, fast):
        if compiled.is_contracted(array):
            continue  # the oracle materialises contracted temporaries
        np.testing.assert_allclose(f, o, rtol=1e-12, atol=1e-12)

    def run_fabric(**kwargs):
        return run_and_capture(
            lambda c: execute(
                c,
                grid=N_PROCS,
                schedule="pipelined",
                block=block_size,
                timeout=60.0,
                **kwargs,
            ),
            compiled,
            arrays,
        )

    try:
        pipes = run_fabric(multicast=False)
    except DistributionError:
        return  # no legal pipelined distribution: nothing to compare
    for array, want, got in zip(arrays, fast, pipes):
        np.testing.assert_array_equal(
            got, want, err_msg=f"array {array.name}: pipes != vectorized"
        )

    for label, kwargs in (
        ("multicast", {"multicast": True, "double_buffer": False}),
        ("multicast+dbuf", {"multicast": True, "double_buffer": True}),
    ):
        fabric = run_fabric(**kwargs)
        for array, want, got in zip(arrays, fast, fabric):
            np.testing.assert_array_equal(
                got, want, err_msg=f"array {array.name}: {label} != vectorized"
            )
