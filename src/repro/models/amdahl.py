"""Whole-program composition of phase times (Amdahl-style accounting).

The paper's whole-program bars (Fig. 6/7 black bars) combine wavefront
segments with the surrounding fully parallel computation.  A
:class:`ProgramProfile` records the phases of a benchmark — each phase a
(name, kind, work) triple — and composes per-phase times produced by any
backend (analytic model, machine simulation, cache simulation) into program
totals and speedups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ModelError


class PhaseKind(enum.Enum):
    """How a phase behaves under parallel/pipelined execution."""

    PARALLEL = "parallel"  # scales as work / p (plus halo overhead)
    WAVEFRONT = "wavefront"  # pipelined or serialised, per schedule
    SERIAL = "serial"  # never parallelised (I/O, reductions, control)


@dataclass(frozen=True)
class Phase:
    """One phase of a program: ``work`` is in element-compute units."""

    name: str
    kind: PhaseKind
    work: float
    #: Invocation count (e.g. per outer iteration); times scale linearly.
    repeats: int = 1

    @property
    def total_work(self) -> float:
        return self.work * self.repeats


@dataclass
class ProgramProfile:
    """The phase structure of one benchmark program."""

    name: str
    phases: list[Phase] = field(default_factory=list)

    def add(self, name: str, kind: PhaseKind, work: float, repeats: int = 1) -> None:
        """Append a phase."""
        if work < 0:
            raise ModelError(f"phase {name!r} has negative work")
        self.phases.append(Phase(name, kind, work, repeats))

    def total_work(self) -> float:
        """Serial execution time of the whole program."""
        return sum(p.total_work for p in self.phases)

    def wavefront_fraction(self) -> float:
        """Fraction of serial time spent in wavefront phases."""
        total = self.total_work()
        if total == 0:
            raise ModelError("empty program profile")
        wave = sum(
            p.total_work for p in self.phases if p.kind is PhaseKind.WAVEFRONT
        )
        return wave / total

    def compose(self, phase_time: Callable[[Phase], float]) -> float:
        """Total program time given a per-phase timing backend.

        ``phase_time`` receives each phase and returns the time for ONE
        repeat; repeats multiply.
        """
        return sum(phase_time(p) * p.repeats for p in self.phases)

    def speedup(
        self,
        baseline_time: Callable[[Phase], float],
        improved_time: Callable[[Phase], float],
    ) -> float:
        """Program speedup of one execution strategy over another."""
        base = self.compose(baseline_time)
        new = self.compose(improved_time)
        if new <= 0:
            raise ModelError("improved execution has non-positive time")
        return base / new
