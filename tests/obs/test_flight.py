"""Ring-buffer semantics of the always-on flight recorder."""

from __future__ import annotations

import threading

import pytest

from repro.obs.live.flight import (
    FLIGHT,
    FlightRecorder,
    flight_enabled,
    format_flight_tail,
)


def test_events_arrive_in_order_under_capacity():
    rec = FlightRecorder(capacity=16, enabled=True)
    for i in range(5):
        rec.event(f"e{i}", i=i)
    dump = rec.dump()
    assert [e["name"] for e in dump["events"]] == [f"e{i}" for i in range(5)]
    assert dump["dropped"] == 0
    assert dump["written"] == 5
    assert [e["seq"] for e in dump["events"]] == list(range(5))


def test_overflow_drops_oldest():
    rec = FlightRecorder(capacity=4, enabled=True)
    for i in range(10):
        rec.event(f"e{i}")
    dump = rec.dump()
    # The ring keeps exactly the newest `capacity` events, oldest first.
    assert [e["name"] for e in dump["events"]] == ["e6", "e7", "e8", "e9"]


def test_drop_counter_is_exact():
    rec = FlightRecorder(capacity=8, enabled=True)
    for i in range(8):
        rec.event("fill")
    assert rec.dump()["dropped"] == 0
    for i in range(13):
        rec.count("spill")
    dump = rec.dump()
    assert dump["written"] == 21
    assert dump["dropped"] == 13
    assert rec.dropped == 13
    assert len(dump["events"]) == 8


def test_disabled_recorder_records_nothing():
    rec = FlightRecorder(capacity=8, enabled=False)
    rec.event("a")
    rec.span("b", 0.0, 1.0)
    rec.count("c", 3)
    dump = rec.dump()
    assert dump["events"] == []
    assert dump["written"] == 0
    assert dump["dropped"] == 0


def test_env_gate_disables(monkeypatch):
    monkeypatch.setenv("REPRO_FLIGHT", "0")
    assert not flight_enabled()
    rec = FlightRecorder(capacity=4)
    rec.event("x")
    assert rec.dump()["events"] == []
    monkeypatch.setenv("REPRO_FLIGHT", "")
    assert flight_enabled()


def test_env_capacity(monkeypatch):
    monkeypatch.setenv("REPRO_FLIGHT_CAPACITY", "3")
    rec = FlightRecorder(enabled=True)
    assert rec.capacity == 3


def test_dump_consistent_under_concurrent_writer():
    """dump() in one thread while another appends: never torn, never raises.

    Every snapshot must be a well-formed event list — strictly increasing
    unique sequence numbers, at most `capacity` entries, every record
    intact — even while a writer pushes the window forward mid-copy.
    """
    rec = FlightRecorder(capacity=64, enabled=True)
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer():
        i = 0
        while not stop.is_set():
            rec.span("blk", float(i), float(i + 1), block=i)
            i += 1

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    try:
        for _ in range(300):
            try:
                dump = rec.dump()
                seqs = [e["seq"] for e in dump["events"]]
                assert seqs == sorted(seqs)
                assert len(seqs) == len(set(seqs))
                assert len(seqs) <= rec.capacity
                assert dump["dropped"] == max(0, dump["written"] - rec.capacity)
                for e in dump["events"]:
                    assert e["kind"] == "span"
                    assert e["name"] == "blk"
                    assert "block" in e["fields"]
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
                break
    finally:
        stop.set()
        thread.join(timeout=5)
    assert not errors, errors[0]


def test_span_and_counter_payloads():
    rec = FlightRecorder(capacity=8, enabled=True)
    rec.span("block", 1.0, 1.5, block=3, elements=64)
    rec.count("tokens", 2)
    spans = rec.dump()["events"]
    assert spans[0]["fields"] == {"block": 3, "elements": 64,
                                  "start": 1.0, "end": 1.5}
    assert spans[1]["fields"]["n"] == 2


def test_configure_in_place_preserves_identity():
    rec = FlightRecorder(capacity=4, enabled=True)
    alias = rec
    rec.event("x")
    rec.configure(capacity=2, enabled=False)
    assert alias.capacity == 2 and not alias.enabled
    assert rec.dump()["events"] == []  # resize cleared the ring
    rec.configure(enabled=True)
    rec.event("y")
    assert [e["name"] for e in alias.dump()["events"]] == ["y"]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0, enabled=True)
    with pytest.raises(ValueError):
        FlightRecorder(capacity=4, enabled=True).configure(capacity=-1)


def test_format_flight_tail():
    rec = FlightRecorder(capacity=2, enabled=True)
    assert "empty" in format_flight_tail(rec.dump())
    for i in range(4):
        rec.span("block", 0.0, 0.001, block=i)
    text = format_flight_tail(rec.dump(), limit=2)
    assert "block" in text
    assert "ms" in text
    assert "2 older event(s) overwritten" in text


def test_module_recorder_exists_and_is_bounded():
    assert isinstance(FLIGHT, FlightRecorder)
    assert FLIGHT.capacity >= 1
