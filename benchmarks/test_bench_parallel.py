"""The real machine, measured: multiprocess backend vs its own prediction.

Unlike every other bench in this suite, the times here are *not* produced by
the virtual clock: :func:`repro.parallel.bench.speedup_curve` runs the
Tomcatv forward wavefront across real OS processes, verifies the results
element-identical to the sequential engine, and records the simulator's
prediction for the same measured machine parameters alongside.  The payload
is written to ``BENCH_parallel.json`` directly (this module bypasses
pytest-benchmark — the workers carry their own clocks).

With ``REPRO_TRACE=1`` each processor count also yields one traced run,
written beside the bench artifact as ``TRACE_parallel_p<p>.json`` (the
:mod:`repro.obs` schema) plus a ``.chrome.json`` Perfetto export.

Sizes are CI-safe: two process counts, two repeats, a small mesh.
"""

from repro.obs import Trace, write_chrome
from repro.parallel import speedup_curve
from repro.util.benchjson import bench_dir, read_bench, write_bench

#: Process counts measured in CI; local runs can sweep further.
PROCS = (1, 2)


def test_measured_speedup_curve_artifact():
    payload = speedup_curve(n=64, procs=PROCS, repeats=2, use_pool=True)
    results = payload.pop("results")
    traces = payload.pop("traces", None)
    path = write_bench("parallel", results, meta=payload)

    if traces:
        out_dir = bench_dir()
        for p, data in sorted(traces.items()):
            trace = Trace.from_dict(data)
            trace.save(out_dir / f"TRACE_parallel_p{p}.json")
            write_chrome(trace, out_dir / f"TRACE_parallel_p{p}.chrome.json")

    written = read_bench("parallel")
    recorded = written["results"]
    assert len(recorded) == len(PROCS)
    for record, p in zip(recorded, PROCS):
        assert record["procs"] == p
        assert record["measured_seconds"] > 0
        assert record["predicted_seconds"] > 0
        assert record["verified_identical"] is True
        assert record["pool"] is True
    machine = written["meta"]["machine"]
    assert machine["alpha_seconds"] > 0
    # both dispatch regimes are persisted: the cold (fork-per-run) costs per
    # engine, and the pooled cost Eq. (1) sees under the persistent pool.
    assert machine["dispatch_seconds_per_block"] > 0
    assert machine["dispatch_seconds_per_block_interp"] > 0
    assert machine["dispatch_seconds_per_block_pooled"] >= 0
    assert "oversubscribed" in written["meta"]
    assert written["meta"]["host"]["cpu_count"] >= 1
    assert path.name == "BENCH_parallel.json"
