"""Tests for the analytic pipelining model (Section 4)."""

import math

import pytest

from repro.errors import ModelError
from repro.machine.params import (
    CRAY_T3E,
    HYPOTHETICAL_HIGH_BETA,
    MachineParams,
)
from repro.models.pipeline_model import PipelineModel, model1, model2


SMALL = MachineParams(name="small", alpha=100.0, beta=4.0)


class TestFormulas:
    def test_compute_time(self):
        m = model2(SMALL, n=64, p=4)
        # (nb/p)(p-1) + n^2/p
        assert m.compute_time(8) == pytest.approx((64 * 8 / 4) * 3 + 64 * 64 / 4)

    def test_comm_time(self):
        m = model2(SMALL, n=64, p=4)
        # (alpha + beta*b)(n/b + p - 2)
        assert m.comm_time(8) == pytest.approx((100 + 4 * 8) * (8 + 2))

    def test_boundary_rows_multiplier(self):
        m3 = model2(SMALL, n=64, p=4, boundary_rows=3)
        assert m3.comm_time(8) == pytest.approx((100 + 4 * 3 * 8) * (8 + 2))

    def test_model1_ignores_beta(self):
        m = model1(SMALL, n=64, p=4)
        assert m.beta == 0.0
        assert m.comm_time(8) == pytest.approx(100 * (8 + 2))

    def test_serial_time(self):
        assert model2(SMALL, 64, 4).serial_time() == 4096.0

    def test_naive_time_exceeds_serial(self):
        m = model2(SMALL, 64, 4)
        assert m.naive_time() > m.serial_time()

    def test_speedup_bounded_by_p(self):
        m = model2(SMALL, n=512, p=8)
        b = m.optimal_block_size()
        assert 1.0 < m.speedup(b) < 8.0

    def test_invalid_p(self):
        with pytest.raises(ModelError):
            model2(SMALL, n=64, p=1)

    def test_invalid_b(self):
        with pytest.raises(ValueError):
            model2(SMALL, 64, 4).predicted_time(0)


class TestOptimalBlockSize:
    def test_closed_form_matches_search(self):
        for params in (SMALL, CRAY_T3E):
            for n, p in [(128, 4), (256, 8), (512, 16)]:
                m = model2(params, n, p)
                closed = m.optimal_block_size_continuous()
                searched = m.optimal_block_size()
                assert abs(searched - closed) <= 2.0

    def test_model1_closed_form(self):
        # Model1 reduces to b = sqrt(alpha p/(p-1)) ~ sqrt(alpha).
        m = model1(SMALL, n=256, p=8)
        assert m.optimal_block_size_continuous() == pytest.approx(
            math.sqrt(100 * 8 / 7)
        )

    def test_paper_approximation_close(self):
        m = model2(CRAY_T3E, n=257, p=8, boundary_rows=3)
        assert m.approximate_block_size() == pytest.approx(
            m.optimal_block_size_continuous(), rel=0.1
        )

    def test_grows_with_alpha(self):
        base = model2(SMALL, 256, 8).optimal_block_size_continuous()
        hi = model2(
            MachineParams(name="hi", alpha=400.0, beta=4.0), 256, 8
        ).optimal_block_size_continuous()
        assert hi > base

    def test_shrinks_with_beta(self):
        base = model2(SMALL, 256, 8).optimal_block_size_continuous()
        hi = model2(
            MachineParams(name="hi", alpha=100.0, beta=40.0), 256, 8
        ).optimal_block_size_continuous()
        assert hi < base

    def test_shrinks_with_p(self):
        b4 = model2(SMALL, 256, 4).optimal_block_size_continuous()
        b16 = model2(SMALL, 256, 16).optimal_block_size_continuous()
        assert b16 < b4


class TestPaperCalibration:
    """The presets reproduce the numbers the paper reports for Fig. 5."""

    def test_fig5a_model1_b39(self):
        m = model1(CRAY_T3E, n=257, p=8, boundary_rows=3)
        assert m.optimal_block_size() == pytest.approx(39, abs=1)

    def test_fig5a_model2_b23(self):
        m = model2(CRAY_T3E, n=257, p=8, boundary_rows=3)
        assert m.optimal_block_size() == pytest.approx(23, abs=1)

    def test_fig5b_model1_b20(self):
        m = model1(HYPOTHETICAL_HIGH_BETA, n=64, p=8)
        assert m.optimal_block_size() == pytest.approx(20, abs=1)

    def test_fig5b_model2_b3(self):
        m = model2(HYPOTHETICAL_HIGH_BETA, n=64, p=8)
        assert m.optimal_block_size() == pytest.approx(3, abs=1)

    def test_fig5b_model1_choice_hurts(self):
        # Running at Model1's block size on the beta-dominated machine is
        # considerably slower than at Model2's (the paper's point).
        m = model2(HYPOTHETICAL_HIGH_BETA, n=64, p=8)
        b1 = model1(HYPOTHETICAL_HIGH_BETA, n=64, p=8).optimal_block_size()
        b2 = m.optimal_block_size()
        assert m.speedup(b2) > 1.3 * m.speedup(b1)


class TestSpeedupSeries:
    def test_model_comparison_series(self):
        from repro.models import model_comparison

        s1, s2 = model_comparison(CRAY_T3E, 257, 8, range(1, 65), boundary_rows=3)
        assert s1.name == "Model1"
        assert s2.argmax() == pytest.approx(23, abs=1)
        assert s1.argmax() > s2.argmax()

    def test_speedup_vs_procs_monotone(self):
        from repro.models import pipelined_speedup_vs_procs

        # At communication-friendly problem sizes the modelled speedup keeps
        # growing with p (efficiency drops, absolute speedup rises - the
        # paper's Fig. 7 observation).
        series = pipelined_speedup_vs_procs(CRAY_T3E, 2048, [2, 4, 8, 16])
        assert series.ys == sorted(series.ys)
        assert series.ys[-1] > 2.0
