#!/usr/bin/env python
"""Quickstart: the array language, the prime operator, and pipelining.

Walks the paper's core ideas end to end:

1. ordinary array statements (regions + the ``@`` shift operator);
2. the prime operator and scan blocks (Fig. 3's two semantics);
3. what the compiler derives (WSV, dependences, loop structure);
4. a legality error the compiler catches statically;
5. the same scan block running on the simulated distributed machine,
   naive vs pipelined.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import zpl
from repro.compiler import compile_scan
from repro.errors import OverconstrainedScanError
from repro.machine import CRAY_T3E, naive_wavefront, pipelined_wavefront
from repro.models import model2

# ---------------------------------------------------------------------------
# 1. Ordinary array statements: regions factor the indices out.
# ---------------------------------------------------------------------------
n = 8
whole = zpl.Region.square(1, n)
interior = zpl.Region.square(2, n - 1)

a = zpl.zeros(whole, name="a")
b = zpl.ones(whole, name="b")

with zpl.covering(interior):
    # The paper's four-point Jacobi stencil (Section 2.1).
    a[...] = (b @ zpl.NORTH + b @ zpl.SOUTH + b @ zpl.WEST + b @ zpl.EAST) / 4.0

print("Jacobi stencil over", interior, "-> a[4,4] =", a[(4, 4)])

# ---------------------------------------------------------------------------
# 2. Prime operator: Fig. 3's two different programs.
# ---------------------------------------------------------------------------
rows = zpl.Region.of((2, n), (1, n))

plain = zpl.ones(whole, name="plain")
with zpl.covering(rows):
    plain[...] = 2.0 * (plain @ zpl.NORTH)  # array semantics: all rows = 2

primed = zpl.ones(whole, name="primed")
with zpl.covering(rows):
    with zpl.scan():
        primed[...] = 2.0 * (primed.p @ zpl.NORTH)  # wavefront: powers of 2

print("\nFig. 3(c) row maxima (unprimed):", plain.to_numpy().max(axis=1))
print("Fig. 3(f) row maxima (primed):  ", primed.to_numpy().max(axis=1))

# ---------------------------------------------------------------------------
# 3. What the compiler sees: record a scan block without executing it.
# ---------------------------------------------------------------------------
h = zpl.zeros(whole, name="h")
g = zpl.ones(whole, name="g")
with zpl.covering(interior):
    with zpl.scan(execute=False) as block:
        h[...] = zpl.maximum(h.p @ zpl.NORTH, h.p @ zpl.WEST) + g

compiled = compile_scan(block)
print("\nDP wavefront analysis:")
print("  WSV:           ", compiled.wsv)
print("  dependences:   ", list(compiled.dependences))
print("  loop structure:", compiled.loops)

# ---------------------------------------------------------------------------
# 4. Legality: primed @west with primed @east over-constrains (Example 4).
# ---------------------------------------------------------------------------
bad = zpl.ones(whole, name="bad")
with zpl.covering(interior):
    with zpl.scan(execute=False) as illegal:
        bad[...] = ((bad.p @ zpl.WEST) + (bad.p @ zpl.EAST)) / 2.0
try:
    compile_scan(illegal)
except OverconstrainedScanError as exc:
    print("\nCompiler rejected the over-constrained block:")
    print("  ", exc)

# ---------------------------------------------------------------------------
# 5. Distributed execution: naive vs pipelined on the simulated Cray T3E.
# ---------------------------------------------------------------------------
size = 129
big = zpl.from_numpy(
    np.random.default_rng(0).uniform(size=(size, size)), base=1, name="big"
)
with zpl.covering(zpl.Region.of((2, size), (1, size))):
    with zpl.scan(execute=False) as wave:
        big[...] = 0.95 * (big.p @ zpl.NORTH) + 0.05

compiled = compile_scan(wave)
p = 8
best_b = model2(CRAY_T3E, size - 1, p, cols=size).optimal_block_size()

slow = naive_wavefront(compiled, CRAY_T3E, n_procs=p, compute_values=False)
fast = pipelined_wavefront(
    compiled, CRAY_T3E, n_procs=p, block_size=best_b, compute_values=False
)
print(f"\nSimulated Cray T3E, p={p}, n={size}:")
print(f"  naive wavefront:     {slow.total_time:10.0f} element-units")
print(f"  pipelined (b={best_b:3d}):   {fast.total_time:10.0f} element-units")
print(f"  speedup due to pipelining: {slow.total_time / fast.total_time:.2f}x")
