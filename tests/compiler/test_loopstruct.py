"""Tests for loop-structure derivation and over-constraint detection."""

import pytest

from repro import zpl
from repro.compiler.loopstruct import (
    LoopStructure,
    derive_loop_structure,
    structure_exists,
)
from repro.compiler.wsv import DimClass, classify
from repro.errors import OverconstrainedScanError


def derive(vectors, rank):
    return derive_loop_structure(vectors, classify(vectors, rank), rank)


class TestFig3Structures:
    def test_anti_dependence_descends(self):
        # Fig. 3(a/b): a := 2*a@north needs the i-loop from high to low.
        loops = derive_loop_structure(
            [(-1, 0)], classify([], 2), 2
        )
        assert loops.signs[0] == -1
        assert loops.respects((-1, 0))

    def test_true_dependence_ascends(self):
        # Fig. 3(d/e): a := 2*a'@north needs the i-loop from low to high.
        loops = derive([(1, 0)], 2)
        assert loops.signs[0] == 1
        assert loops.order[0] == 0  # wavefront dim outermost
        assert loops.respects((1, 0))


class TestPaperExamples:
    def test_example1_legal(self):
        # d1 = d2 = (-1,0) -> UDVs {(1,0)}: simple, legal.
        loops = derive([(1, 0), (1, 0)], 2)
        assert loops.wavefront_dims == (0,)
        assert loops.parallel_dims == (1,)

    def test_example2_legal(self):
        # d1=(-1,0), d2=(0,-1) -> UDVs {(1,0),(0,1)}: both ascending.
        loops = derive([(1, 0), (0, 1)], 2)
        assert loops.signs == (1, 1)
        assert loops.serial_dims == (0,)
        assert loops.wavefront_dims == (1,)

    def test_example3_legal_despite_nonsimple_wsv(self):
        # d1=(-1,0), d2=(1,1) -> UDVs {(1,0),(-1,-1)}: legal, the second
        # dimension (descending) must be the outer loop.
        loops = derive([(1, 0), (-1, -1)], 2)
        assert loops.order[0] == 1
        assert loops.signs[1] == -1
        assert loops.signs[0] == 1
        for v in [(1, 0), (-1, -1)]:
            assert loops.respects(v)

    def test_example4_overconstrained(self):
        # d1=(0,-1), d2=(0,1) -> UDVs {(0,1),(0,-1)}: no loop nest exists.
        with pytest.raises(OverconstrainedScanError):
            derive([(0, 1), (0, -1)], 2)

    def test_north_south_overconstrained(self):
        # Primed @north with primed @south (Section 2.2's motivating case).
        with pytest.raises(OverconstrainedScanError):
            derive([(1, 0), (-1, 0)], 2)


class TestPreferences:
    def test_parallel_dims_innermost(self):
        loops = derive([(1, 0)], 2)
        assert loops.order == (0, 1)  # pipelined outer, parallel inner

    def test_ascending_preferred_when_unconstrained(self):
        loops = derive([], 2)
        assert loops.signs == (1, 1)

    def test_serial_outermost_when_legal(self):
        # Case (iii): UDVs {(1,0),(0,1)} — serial dim 0 can be outermost.
        loops = derive([(1, 0), (0, 1)], 2)
        assert loops.order[0] == 0

    def test_3d_structure(self):
        loops = derive([(1, 0, 0), (0, 1, 0), (0, 0, 1)], 3)
        assert loops.signs == (1, 1, 1)
        for v in [(1, 0, 0), (0, 1, 0), (0, 0, 1)]:
            assert loops.respects(v)


class TestRespects:
    def test_zero_vector_always_respected(self):
        loops = LoopStructure((0, 1), (1, 1), (DimClass.PARALLEL,) * 2)
        assert loops.respects((0, 0))

    def test_sign_flip(self):
        loops = LoopStructure((0, 1), (-1, 1), (DimClass.PARALLEL,) * 2)
        assert loops.respects((-1, 5))
        assert not loops.respects((1, 5))

    def test_order_matters(self):
        loops = LoopStructure((1, 0), (1, 1), (DimClass.PARALLEL,) * 2)
        assert loops.respects((-1, 1))  # dim 1 checked first
        assert not loops.respects((1, -1))

    def test_indices_honour_signs(self):
        loops = LoopStructure((0, 1), (-1, 1), (DimClass.PARALLEL,) * 2)
        R = zpl.Region.of((2, 4), (1, 3))
        assert list(loops.indices(R, 0)) == [4, 3, 2]
        assert list(loops.indices(R, 1)) == [1, 2, 3]


class TestStructureExists:
    def test_exists(self):
        assert structure_exists([(1, 0), (-1, -1)], 2)

    def test_not_exists(self):
        assert not structure_exists([(0, 1), (0, -1)], 2)

    def test_vacuous(self):
        assert structure_exists([], 2)

    def test_zero_vectors_ignored(self):
        assert structure_exists([(0, 0)], 2)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            derive_loop_structure([(1, 0, 0)], classify([], 2), 2)
