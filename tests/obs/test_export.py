"""Tests for the Chrome trace-event exporter (:mod:`repro.obs.export`)."""

import json

import pytest

from repro.obs.export import to_chrome, write_chrome
from repro.obs.trace import PARENT_PROC, Trace, Tracer


def _wall_trace() -> Trace:
    tracer = Tracer()
    # Deliberately large perf_counter-style epoch: export must rebase.
    base = 1_000_000.0
    tracer.add_span("prepare", "setup", base + 0.0, base + 0.1, proc=PARENT_PROC)
    tracer.add_span("compute", "compute", base + 0.2, base + 0.4, proc=0, block=0)
    tracer.add_span("recv_wait", "comm", base + 0.2, base + 0.3, proc=1, block=0)
    tracer.count("blocks_executed", proc=0)
    tracer.count("tokens_recv", proc=1)
    return Trace.from_tracer(
        tracer, clock="wall", meta={"backend": "parallel", "n_procs": 2}
    )


class TestToChrome:
    def test_thread_metadata_per_proc(self):
        doc = to_chrome(_wall_trace())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert names == {"driver", "P0", "P1"}
        # Driver sits on tid 0; workers count up from 1.
        tids = {
            e["args"]["name"]: e["tid"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert tids["driver"] == 0
        assert tids["P0"] == 1 and tids["P1"] == 2

    def test_complete_events_rebased_to_microseconds(self):
        doc = to_chrome(_wall_trace())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 3
        # Rebased: the earliest event starts at ts == 0, epoch gone.
        assert min(e["ts"] for e in spans) == pytest.approx(0.0)
        by_name = {e["name"]: e for e in spans}
        assert by_name["compute"]["ts"] == pytest.approx(0.2e6)
        assert by_name["compute"]["dur"] == pytest.approx(0.2e6)
        assert by_name["compute"]["args"] == {"block": 0}

    def test_virtual_clock_not_scaled(self):
        tracer = Tracer()
        tracer.add_span("compute", "compute", 10.0, 25.0, proc=0)
        trace = Trace.from_tracer(tracer, clock="virtual")
        (span,) = [
            e for e in to_chrome(trace)["traceEvents"] if e["ph"] == "X"
        ]
        assert span["ts"] == pytest.approx(0.0)
        assert span["dur"] == pytest.approx(15.0)

    def test_counter_samples(self):
        doc = to_chrome(_wall_trace())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert {e["name"] for e in counters} == {"blocks_executed", "tokens_recv"}
        sample = next(e for e in counters if e["name"] == "blocks_executed")
        assert sample["args"] == {"P0": 1}

    def test_meta_carried_in_other_data(self):
        doc = to_chrome(_wall_trace())
        assert doc["otherData"]["backend"] == "parallel"
        assert doc["otherData"]["clock"] == "wall"

    def test_json_serializable(self):
        json.dumps(to_chrome(_wall_trace()))


class TestWriteChrome:
    def test_writes_loadable_file(self, tmp_path):
        path = write_chrome(_wall_trace(), tmp_path / "t.chrome.json")
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


def _serve_trace() -> Trace:
    """A request flowing serve_request → serve_batch → worker blocks."""
    tracer = Tracer()
    tracer.add_span(
        "serve_request", "serve", 0.0, 1.0, proc=PARENT_PROC, id=7, kind="nw"
    )
    tracer.add_span(
        "serve_batch", "serve", 0.1, 0.9, proc=PARENT_PROC,
        batch=0, rids=[7],
    )
    tracer.add_span(
        "compute", "compute", 0.3, 0.5, proc=0, block=0, rids=[7]
    )
    tracer.add_span(
        "compute", "compute", 0.5, 0.8, proc=1, block=0, rids=[7]
    )
    # A second, unrelated request that never left the serve loop.
    tracer.add_span(
        "serve_request", "serve", 2.0, 2.1, proc=PARENT_PROC, id=8
    )
    return Trace.from_tracer(tracer, clock="wall", meta={"backend": "serve"})


class TestFlowEvents:
    def _flows(self, trace=None):
        doc = to_chrome(trace or _serve_trace())
        return [e for e in doc["traceEvents"] if e.get("cat") == "flow"]

    def test_chain_links_request_to_blocks(self):
        flows = self._flows()
        assert [e["ph"] for e in flows] == ["s", "t", "t", "f"]
        assert all(e["id"] == 7 for e in flows)
        assert all(e["name"] == "request" for e in flows)

    def test_steps_bind_to_slice_starts(self):
        flows = self._flows()
        # Start on the serve_request slice (driver thread, ts 0)...
        assert flows[0]["tid"] == PARENT_PROC - PARENT_PROC
        assert flows[0]["ts"] == pytest.approx(0.0)
        # ...finish on the last worker block, binding-enclosed.
        assert flows[-1]["tid"] == 1 - PARENT_PROC
        assert flows[-1]["ts"] == pytest.approx(0.5e6)
        assert flows[-1]["bp"] == "e"
        assert all("bp" not in e for e in flows[:-1])

    def test_unlinked_request_emits_no_flow(self):
        # Request id 8 never reached a batch or worker: no dangling arrow.
        assert all(e["id"] != 8 for e in self._flows())

    def test_trace_without_requests_has_no_flows(self):
        assert self._flows(_wall_trace()) == []

    def test_flow_events_json_serializable(self):
        json.dumps(self._flows())
