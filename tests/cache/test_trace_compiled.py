"""Gap tests: trace_compiled and the pointwise evaluation of selections."""

import numpy as np

from repro import zpl
from repro.cache import AddressSpace, trace_compiled
from repro.compiler import compile_scan
from repro.runtime import execute_loopnest
from tests.conftest import record_tomcatv_block


class TestTraceCompiled:
    def test_locality_vs_derived_structure(self):
        block, _ = record_tomcatv_block(16)
        compiled = compile_scan(block)
        space1, space2 = AddressSpace(), AddressSpace()
        locality = trace_compiled(compiled, space1, locality=True)
        derived = trace_compiled(compiled, space2, locality=False)
        assert locality.size == derived.size
        # Different loop orders produce different address sequences.
        assert not np.array_equal(locality, derived)

    def test_trace_is_deterministic(self):
        block, _ = record_tomcatv_block(12)
        compiled = compile_scan(block)
        a = trace_compiled(compiled, AddressSpace())
        b = trace_compiled(compiled, AddressSpace())
        np.testing.assert_array_equal(a, b)


class TestPointwiseSelection:
    def test_where_in_loopnest(self):
        # Exercise Where.evaluate_at via the scalar oracle.
        n = 6
        a = zpl.from_numpy(
            np.arange(float(n * n)).reshape(n, n), base=1, name="a"
        )
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = zpl.where(
                    (a.p @ zpl.NORTH) > 10.0, a.p @ zpl.NORTH, 0.0
                ) + 1.0
        execute_loopnest(compile_scan(block))
        values = a.to_numpy()
        assert np.all(np.isfinite(values))
        # Row 2 reads original row 1 (values 0..5, all <= 10): becomes 1.0.
        np.testing.assert_array_equal(values[1], np.ones(n))
