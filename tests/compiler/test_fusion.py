"""Tests for statement fusion grouping."""

import pytest

from repro import zpl
from repro.compiler.fusion import can_fuse, fuse_groups
from repro.zpl.statements import Assign


N = 6
BASE = zpl.Region.square(1, N)
R = zpl.Region.of((2, N - 1), (2, N - 1))
R2 = zpl.Region.of((1, N), (1, N))


def arrays():
    return (
        zpl.ones(BASE, name="a"),
        zpl.ones(BASE, name="b"),
        zpl.ones(BASE, name="c"),
    )


class TestCanFuse:
    def test_independent_statements_fuse(self):
        a, b, c = arrays()
        stmts = [Assign(a, b + 1.0, R), Assign(c, b * 2.0, R)]
        assert can_fuse(stmts)

    def test_different_regions_do_not_fuse(self):
        a, b, c = arrays()
        stmts = [Assign(a, b + 1.0, R), Assign(c, b * 2.0, R2)]
        assert not can_fuse(stmts)

    def test_contradictory_shifts_do_not_fuse(self):
        # Statement 1 reads new a@north (true (1,0)); statement 2 reads old
        # b@... wait: construct true+anti conflict in the same dimension:
        # S0 writes a; S1 reads a@north (true (1,0)) and writes b;
        # S0 reads b@north (anti (-1,0) w.r.t. S1's write).
        a, b, c = arrays()
        stmts = [
            Assign(a, (b @ zpl.NORTH) + 1.0, R),
            Assign(b, (a @ zpl.NORTH) * 2.0, R),
        ]
        assert not can_fuse(stmts)

    def test_same_direction_constraints_fuse(self):
        a, b, c = arrays()
        stmts = [
            Assign(a, (b @ zpl.NORTH) + 1.0, R),   # anti (-1,0) on b
            Assign(b, (a @ zpl.SOUTH) * 2.0, R),   # true (1,0)... descending
        ]
        # b read at north by S0 (anti (-1,0)); a read at south by S1 after
        # S0 wrote it (true UDV (-1,0)): both want descending dim 0 -> legal.
        assert can_fuse(stmts)

    def test_primed_statements_never_fuse_here(self):
        a, b, c = arrays()
        stmts = [Assign(a, a.p @ zpl.NORTH, R)]
        assert not can_fuse(stmts)

    def test_empty(self):
        assert not can_fuse([])


class TestFuseGroups:
    def test_tomcatv_unprimed_statements_fuse(self):
        # The four statements of Fig. 2(a)'s body (one row at a time) share a
        # region and carry only zero-offset flow: one group.
        a, b, c = arrays()
        d = zpl.ones(BASE, name="d")
        row = zpl.Region.of((3, 3), (2, N - 1))
        stmts = [
            Assign(a, b * (c @ zpl.NORTH), row),
            Assign(c, 1.0 / (d - (b @ zpl.NORTH) * a), row),
            Assign(d, d - (d @ zpl.NORTH) * a, row),
        ]
        groups = fuse_groups(stmts)
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_region_change_splits(self):
        a, b, c = arrays()
        stmts = [
            Assign(a, b + 1.0, R),
            Assign(c, b + 1.0, R2),
            Assign(b, c + 1.0, R2),
        ]
        groups = fuse_groups(stmts)
        assert [len(g) for g in groups] == [1, 2]

    def test_conflict_splits(self):
        a, b, c = arrays()
        stmts = [
            Assign(a, (b @ zpl.NORTH) + 1.0, R),
            Assign(b, (a @ zpl.NORTH) * 2.0, R),
        ]
        assert [len(g) for g in fuse_groups(stmts)] == [1, 1]

    def test_empty_list(self):
        assert fuse_groups([]) == []
