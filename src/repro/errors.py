"""Exception hierarchy for the wavefront reproduction library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type.  The compiler-facing errors mirror the statically checked
legality conditions of the paper's Section 2.2, one exception per condition:

* :class:`LegalityError` — any violation of the five static legality checks.
* :class:`UndefinedPrimeError` — condition (i): a primed array that is never
  defined in the block.
* :class:`OverconstrainedScanError` — condition (ii): the directions on primed
  references admit no loop nest (e.g. primed ``@north`` and ``@south``).
* :class:`RankMismatchError` — condition (iii): statements of differing rank in
  one scan block.
* :class:`RegionMismatchError` — condition (iv): statements covered by
  different regions in one scan block.
* :class:`ParallelPrimeError` — condition (v): a parallel operator (reduction
  or flood) with a primed operand.

:class:`UndefinedPrimeError` and :class:`ParallelPrimeError` both subclass the
historical :class:`PrimedOperandError` (which used to cover conditions (i) and
(v) jointly), so existing ``except PrimedOperandError`` code keeps working.

Legality exceptions raised by :func:`repro.compiler.legality.check_scan_block`
also carry a structured payload in ``.diagnostic`` — a
:class:`repro.analyze.diagnostics.Diagnostic` with the stable code, source
span, "because" chain, and fix-it hint that the pretty renderer consumes.  It
is ``None`` for errors raised outside the checker.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library.

    ``diagnostic`` is an optional structured payload (a
    :class:`repro.analyze.diagnostics.Diagnostic`) attached by the legality
    checker so tools can render the error with a source span and hint.
    """

    #: Structured diagnostic payload, when raised by a diagnostic-producing
    #: pass (:mod:`repro.analyze`); plain ``None`` otherwise.
    diagnostic = None


class RegionError(ReproError):
    """Malformed region: bad bounds, rank mismatch in region algebra, etc."""


class DirectionError(ReproError):
    """Malformed direction vector (zero length, non-integer offsets, ...)."""


class ArrayError(ReproError):
    """Invalid parallel-array operation (read outside storage, dtype clash)."""


class ExpressionError(ReproError):
    """Malformed expression tree (rank clash, prime outside scan, ...)."""


class LegalityError(ReproError):
    """A scan block violates one of the statically checked legality rules."""


class OverconstrainedScanError(LegalityError):
    """No loop nest can respect the dependences of this scan block."""


class RankMismatchError(LegalityError):
    """Statements of different rank may not share a scan block."""


class RegionMismatchError(LegalityError):
    """All statements in a scan block must be covered by the same region."""


class PrimedOperandError(LegalityError):
    """Primed reference is illegal here (base of the two prime conditions)."""


class UndefinedPrimeError(PrimedOperandError):
    """Condition (i): a primed array is never defined in the scan block."""


class ParallelPrimeError(PrimedOperandError):
    """Condition (v): a parallel operator reads a primed operand."""


class SanitizerError(ReproError):
    """The wavefront race sanitizer observed a happens-before violation."""


class CertifyError(ReproError):
    """The static schedule certifier rejected a schedule before execution.

    Raised by :func:`repro.analyze.certify.certify_execution` (the
    ``REPRO_CERTIFY=1`` pre-flight hook) when certification produces error
    diagnostics.  ``diagnostics`` carries the full list; ``diagnostic`` (the
    base-class slot) points at the first error so generic renderers work.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)
        self.diagnostic = next(
            (d for d in self.diagnostics if d.severity.value == "error"), None
        )


class CompilationError(ReproError):
    """Internal compilation failure that is not a user legality error."""


class MachineError(ReproError):
    """Invalid machine configuration or simulation request."""


class DistributionError(MachineError):
    """Invalid data distribution (more processors than elements, ...)."""


class CommunicationError(MachineError):
    """Protocol error in the simulated message-passing layer."""


class PoolBrokenError(MachineError):
    """A persistent worker pool lost a worker (or a run left it unusable).

    Raised by :class:`repro.parallel.pool.WorkerPool` when a run fails or a
    worker process dies: only the in-flight request(s) observe this error —
    the pool is flagged broken and callers (or
    :class:`repro.parallel.pool.PoolSupervisor`) respawn it before the next
    submission instead of poisoning every later caller.
    """


class DeadlockError(CommunicationError):
    """The discrete-event simulation reached a state with no runnable work."""


class CacheConfigError(ReproError):
    """Invalid cache geometry (non-power-of-two line size, zero ways, ...)."""


class ModelError(ReproError):
    """Invalid analytic-model parameters (negative alpha, p < 2, ...)."""
