"""Request schema, validation and the typed error surface of :mod:`repro.serve`.

Two request families share one envelope (a JSON object body):

* ``POST /v1/align`` — an alignment *scoring* request::

      {"kind": "nw" | "sw", "a": "ACGT...", "b": "AGT...",
       "match": 2.0, "mismatch": -1.0, "gap": 1.0}

  ``nw`` is the global (Needleman–Wunsch) score, ``sw`` the local
  (Smith–Waterman) score.  Requests with the same *coalescing key* —
  mode, sequence lengths and scoring parameters — can be fused into one
  rank-3 stacked kernel dispatch (:func:`repro.apps.alignment.batch_tables`).

* ``POST /v1/zpl`` — a generic compiled-scan request::

      {"source": "...zpl program...",
       "arrays": {"H": {"lo": [0, 0], "hi": [8, 8], "data": [[...]], "fluff": 1}}}

  The coalescing key is the SHA-1 of the source plus the array
  geometry, which is exactly what makes two requests share a compiled
  plan (and the pool's fingerprint-keyed caches downstream).

Validation failures raise :class:`BadRequest`; the admission controller
and backend raise the other :class:`ServeError` subclasses.  Every error
maps onto one HTTP status and a machine-readable ``code`` so clients can
branch without parsing prose.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

#: Longest accepted sequence per side.  A single pair at the cap is
#: ``MAX_SEQ_LEN**2`` DP cells — within the batch planner's element
#: budget, so even worst-case requests coalesce (capacity 1).
MAX_SEQ_LEN = 2048

#: Caps for the generic endpoint: program text and per-array volume.
MAX_ZPL_SOURCE = 64 * 1024
MAX_ZPL_ELEMENTS = 1 << 20
MAX_ZPL_ARRAYS = 8

#: Largest accepted HTTP body (the transport enforces this before JSON).
MAX_BODY_BYTES = 8 * 1024 * 1024


class ServeError(Exception):
    """Base of the typed error surface: HTTP status + stable code."""

    status = 500
    code = "internal"

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.message = message
        #: Seconds the client should back off (429 responses only).
        self.retry_after = retry_after

    def payload(self) -> dict:
        return {"error": self.code, "message": self.message}


class BadRequest(ServeError):
    """The payload is malformed; retrying it verbatim cannot succeed."""

    status = 400
    code = "bad_request"


class PayloadTooLarge(BadRequest):
    status = 413
    code = "payload_too_large"


class QueueFull(ServeError):
    """Admission control shed this request; retry after ``retry_after``."""

    status = 429
    code = "queue_full"


class RequestTimeout(ServeError):
    """The per-request deadline elapsed before a batch produced a result."""

    status = 504
    code = "timeout"


class BackendBroken(ServeError):
    """The compute backend (worker pool) is unusable for this request."""

    status = 503
    code = "pool_broken"


class ShuttingDown(ServeError):
    status = 503
    code = "shutting_down"


@dataclass(frozen=True)
class AlignRequest:
    """A validated alignment scoring request."""

    kind: str  # "nw" | "sw"
    a: str
    b: str
    match: float = 2.0
    mismatch: float = -1.0
    gap: float = 1.0

    @property
    def local(self) -> bool:
        return self.kind == "sw"

    @property
    def batch_key(self) -> tuple:
        """Requests sharing this key fuse into one stacked dispatch."""
        return (
            "align", self.local, len(self.a), len(self.b),
            self.match, self.mismatch, self.gap,
        )

    @property
    def cells(self) -> int:
        """DP matrix volume — the unit the cost model scales with."""
        return len(self.a) * len(self.b)


@dataclass(frozen=True)
class ZplRequest:
    """A validated generic program request (source + input arrays)."""

    source: str
    arrays: dict = field(hash=False)

    @property
    def batch_key(self) -> tuple:
        digest = hashlib.sha1(self.source.encode()).hexdigest()[:16]
        shapes = tuple(
            (name, tuple(spec["lo"]), tuple(spec["hi"]))
            for name, spec in sorted(self.arrays.items())
        )
        return ("zpl", digest, shapes)

    @property
    def cells(self) -> int:
        total = 0
        for spec in self.arrays.values():
            n = 1
            for lo, hi in zip(spec["lo"], spec["hi"]):
                n *= hi - lo + 1
            total += n
        return max(total, 1)


def _require(payload: dict, key: str, kind: type, what: str):
    if key not in payload:
        raise BadRequest(f"{what} is missing required field {key!r}")
    value = payload[key]
    if kind is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise BadRequest(f"field {key!r} must be a number, got {value!r}")
        value = float(value)
        if not math.isfinite(value):
            raise BadRequest(f"field {key!r} must be finite, got {value!r}")
        return value
    if not isinstance(value, kind):
        raise BadRequest(
            f"field {key!r} must be {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _check_sequence(name: str, seq: str) -> str:
    if not seq:
        raise BadRequest(f"sequence {name!r} is empty")
    if len(seq) > MAX_SEQ_LEN:
        raise PayloadTooLarge(
            f"sequence {name!r} has {len(seq)} characters (cap {MAX_SEQ_LEN})"
        )
    if not seq.isascii():
        raise BadRequest(f"sequence {name!r} must be ASCII")
    return seq


def parse_align(payload: object) -> AlignRequest:
    if not isinstance(payload, dict):
        raise BadRequest("align request body must be a JSON object")
    kind = _require(payload, "kind", str, "align request")
    if kind not in ("nw", "sw"):
        raise BadRequest(f"kind must be 'nw' or 'sw', got {kind!r}")
    a = _check_sequence("a", _require(payload, "a", str, "align request"))
    b = _check_sequence("b", _require(payload, "b", str, "align request"))
    scores = {}
    for key, default in (("match", 2.0), ("mismatch", -1.0), ("gap", 1.0)):
        scores[key] = (
            _require(payload, key, float, "align request")
            if key in payload else default
        )
    unknown = set(payload) - {"kind", "a", "b", "match", "mismatch", "gap"}
    if unknown:
        raise BadRequest(f"unknown align request field(s): {sorted(unknown)}")
    return AlignRequest(kind=kind, a=a, b=b, **scores)


def _check_array_spec(name: str, spec: object) -> dict:
    if not isinstance(spec, dict):
        raise BadRequest(f"array {name!r} spec must be an object")
    for key in ("lo", "hi"):
        if key not in spec or not isinstance(spec[key], list) or not spec[key]:
            raise BadRequest(f"array {name!r} needs a non-empty {key!r} list")
        if not all(isinstance(v, int) and not isinstance(v, bool) for v in spec[key]):
            raise BadRequest(f"array {name!r} {key!r} must be integers")
    lo, hi = spec["lo"], spec["hi"]
    if len(lo) != len(hi):
        raise BadRequest(f"array {name!r} lo/hi ranks differ ({len(lo)} vs {len(hi)})")
    elements = 1
    for l, h in zip(lo, hi):
        if h < l:
            raise BadRequest(f"array {name!r} has empty range [{l}, {h}]")
        elements *= h - l + 1
    if elements > MAX_ZPL_ELEMENTS:
        raise PayloadTooLarge(
            f"array {name!r} has {elements} elements (cap {MAX_ZPL_ELEMENTS})"
        )
    fluff = spec.get("fluff", 1)
    if not isinstance(fluff, int) or isinstance(fluff, bool) or fluff < 0:
        raise BadRequest(f"array {name!r} fluff must be a non-negative integer")
    out = {"lo": list(lo), "hi": list(hi), "fluff": fluff}
    if "data" in spec:
        out["data"] = spec["data"]  # shape-checked against lo/hi at build time
    if "fill" in spec:
        fill = spec["fill"]
        if isinstance(fill, bool) or not isinstance(fill, (int, float)):
            raise BadRequest(f"array {name!r} fill must be a number")
        out["fill"] = float(fill)
    return out


def parse_zpl(payload: object) -> ZplRequest:
    if not isinstance(payload, dict):
        raise BadRequest("zpl request body must be a JSON object")
    source = _require(payload, "source", str, "zpl request")
    if not source.strip():
        raise BadRequest("zpl source is empty")
    if len(source) > MAX_ZPL_SOURCE:
        raise PayloadTooLarge(
            f"zpl source is {len(source)} characters (cap {MAX_ZPL_SOURCE})"
        )
    arrays = _require(payload, "arrays", dict, "zpl request")
    if not arrays:
        raise BadRequest("zpl request declares no arrays")
    if len(arrays) > MAX_ZPL_ARRAYS:
        raise PayloadTooLarge(
            f"zpl request declares {len(arrays)} arrays (cap {MAX_ZPL_ARRAYS})"
        )
    checked = {}
    for name, spec in arrays.items():
        if not isinstance(name, str) or not name.isidentifier():
            raise BadRequest(f"array name {name!r} is not an identifier")
        checked[name] = _check_array_spec(name, spec)
    unknown = set(payload) - {"source", "arrays"}
    if unknown:
        raise BadRequest(f"unknown zpl request field(s): {sorted(unknown)}")
    return ZplRequest(source=source, arrays=checked)


#: Route table used by the server: path suffix -> parser.
PARSERS = {
    "/v1/align": parse_align,
    "/v1/zpl": parse_zpl,
}


def parse_request(path: str, payload: object):
    """Validate ``payload`` for ``path``; raises :class:`BadRequest`."""
    try:
        parser = PARSERS[path]
    except KeyError:
        raise BadRequest(f"no such endpoint: {path}") from None
    return parser(payload)
