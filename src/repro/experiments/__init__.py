"""The paper's experimental campaign, one module per table/figure.

============  =============================================================
module        regenerates
============  =============================================================
``fig3``      Fig. 3: prime-operator semantics (matrices + loop structures)
``examples``  Section 2.2's worked Examples 1-4 (WSV legality)
``fig4``      Fig. 4: naive vs pipelined timelines (ASCII Gantt from the DES)
``fig5a``     Fig. 5(a): Model1/Model2 vs simulated pipelining speedup
``fig5b``     Fig. 5(b): the β-dominated worst case
``fig6``      Fig. 6: uniprocessor cache speedup of scan blocks
``fig7``      Fig. 7: pipelined vs non-pipelined parallel speedup
``loc``       Section 1's SWEEP3D expressiveness claim (LoC accounting)
``suite``     conclusion's block-size dynamism study over the kernel suite
============  =============================================================

Run them all: ``python -m repro.experiments`` (add ``--quick`` for small
problem sizes); see EXPERIMENTS.md for the recorded paper-vs-measured values.
"""

from repro.experiments import (
    common,
    examples_wsv,
    fig3_semantics,
    fig4_illustration,
    fig5a_model_vs_sim,
    fig5b_model_worstcase,
    fig6_cache,
    fig7_pipeline_speedup,
    loc_table,
    table_suite,
)

__all__ = [
    "common",
    "examples_wsv",
    "fig3_semantics",
    "fig4_illustration",
    "fig5a_model_vs_sim",
    "fig5b_model_worstcase",
    "fig6_cache",
    "fig7_pipeline_speedup",
    "loc_table",
    "table_suite",
]
