"""Property-based tests for regions and block distributions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.zpl.regions import Region
from repro.machine.distribution import BlockMap
from repro.machine.grid import ProcessorGrid

ranges = st.tuples(
    st.integers(min_value=-20, max_value=20),
    st.integers(min_value=0, max_value=25),
).map(lambda t: (t[0], t[0] + t[1]))

regions2d = st.tuples(ranges, ranges).map(Region)
regions = st.lists(ranges, min_size=1, max_size=3).map(tuple).map(Region)


class TestRegionProperties:
    @given(regions)
    def test_size_matches_iteration(self, r):
        if r.size <= 2000:
            assert len(list(r)) == r.size

    @given(regions, st.lists(st.integers(-3, 3), min_size=1, max_size=3))
    def test_shift_preserves_shape_and_inverts(self, r, offsets):
        offsets = tuple(offsets[: r.rank]) + (0,) * max(0, r.rank - len(offsets))
        shifted = r.shift(offsets)
        assert shifted.shape == r.shape
        assert shifted.shift(tuple(-o for o in offsets)) == r

    @given(regions2d, regions2d)
    def test_intersect_commutative(self, a, b):
        assert a.intersect(b).is_empty() == b.intersect(a).is_empty()
        if not a.intersect(b).is_empty():
            assert a.intersect(b) == b.intersect(a)

    @given(regions2d, regions2d)
    def test_intersect_contained_in_both(self, a, b):
        inter = a.intersect(b)
        for idx in list(inter)[:50]:
            assert a.contains(idx) and b.contains(idx)

    @given(regions2d, regions2d)
    def test_bounding_covers_both(self, a, b):
        box = a.bounding(b)
        assert box.covers(a) or a.is_empty()
        assert box.covers(b) or b.is_empty()

    @given(regions2d)
    def test_self_intersection_identity(self, r):
        assert r.intersect(r) == r

    @given(regions, st.integers(1, 6))
    def test_split_partitions(self, r, pieces):
        slabs = r.split(0, pieces)
        assert len(slabs) == pieces
        assert sum(s.size for s in slabs) == r.size
        # Adjacent, ordered, disjoint along dim 0.
        non_empty = [s for s in slabs if not s.is_empty()]
        for a, b in zip(non_empty, non_empty[1:]):
            assert a.range(0)[1] < b.range(0)[0]

    @given(regions2d)
    def test_border_disjoint_from_region(self, r):
        if r.is_empty():
            return
        for d in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            strip = r.border(d)
            assert r.intersect(strip).is_empty()
            assert strip.size == r.extent(1) if d[0] != 0 else r.extent(0)


class TestBlockMapProperties:
    @given(
        st.tuples(
            st.integers(1, 30), st.integers(1, 20)
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=60)
    def test_partition_covers_and_disjoint(self, shape, procs):
        region = Region.from_shape(shape, base=1)
        bm = BlockMap(region, ProcessorGrid((procs,)), (0, None))
        total = 0
        seen_rows: set[int] = set()
        for p in range(procs):
            local = bm.local_region(p)
            total += local.size
            for row in local.indices(0):
                assert row not in seen_rows
                seen_rows.add(row)
        assert total == region.size

    @given(
        st.integers(2, 20),
        st.integers(1, 4),
        st.integers(1, 4),
    )
    @settings(max_examples=40)
    def test_owner_agrees_with_local_region_2d(self, n, p1, p2):
        region = Region.square(1, n)
        bm = BlockMap(region, ProcessorGrid((p1, p2)), (0, 1))
        for p in range(p1 * p2):
            local = bm.local_region(p)
            for idx in list(local)[:20]:
                assert bm.owner(idx) == p
