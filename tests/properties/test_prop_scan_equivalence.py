"""The crown-jewel property: every engine computes the same wavefront.

Random legal scan blocks are generated (random arrays, statement counts,
primed directions from a sign-consistent pool — simple WSVs are always
legal), then executed by the scalar loop-nest oracle, the vectorised engine,
and the distributed machine under the naive and pipelined schedules at
random processor counts and block sizes.  All storage must match bit-for-bit
(up to float associativity, which none of the engines change: they all
evaluate the same expression tree per element/slab).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import zpl
from repro.compiler import compile_scan
from repro.machine import MachineParams, naive_wavefront, pipelined_wavefront
from repro.runtime import execute_loopnest, execute_vectorized, run_and_capture

PARAMS = MachineParams(name="prop", alpha=20.0, beta=1.5)

#: Directions with non-positive components: any subset yields a simple WSV.
NEG_POOL = ((-1, 0), (0, -1), (-1, -1), (-2, 0), (0, -2), (-1, -2))
#: Small arbitrary offsets for read-only references.
ANY_POOL = ((-1, 0), (1, 0), (0, -1), (0, 1), (1, 1), (-1, 1), (0, 0))


@st.composite
def scan_programs(draw):
    """A random legal scan block plus its arrays, ready to execute."""
    n = draw(st.integers(6, 11))
    n_targets = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    base = zpl.Region.square(1, n)
    targets = []
    for k in range(n_targets):
        arr = zpl.ZArray(base, name=f"t{k}", fluff=2)
        arr._data[...] = rng.uniform(0.5, 1.5, size=arr._data.shape)
        targets.append(arr)
    readonly = zpl.ZArray(base, name="ro", fluff=2)
    readonly._data[...] = rng.uniform(0.5, 1.5, size=readonly._data.shape)

    region = zpl.Region.square(3, n - 1)
    statements = []
    for k in range(n_targets):
        # Each statement: const + sum of a few terms.  The first term of the
        # first statement is always primed so the block has a wavefront.
        n_terms = draw(st.integers(1, 3))
        expr = zpl.as_node(draw(st.floats(0.05, 0.5)))
        for term in range(n_terms):
            if k == 0 and term == 0:
                kind = "primed"
            else:
                kind = draw(st.sampled_from(("primed", "readonly", "self")))
            coeff = draw(st.floats(0.1, 0.45))
            if kind == "primed":
                other = targets[draw(st.integers(0, n_targets - 1))]
                direction = draw(st.sampled_from(NEG_POOL))
                expr = expr + coeff * (other.p @ direction)
            elif kind == "readonly":
                direction = draw(st.sampled_from(ANY_POOL))
                expr = expr + coeff * (readonly @ direction)
            else:
                expr = expr + coeff * targets[k].ref
        statements.append((targets[k], expr))

    with zpl.covering(region):
        with zpl.scan(execute=False) as block:
            for target, expr in statements:
                target[...] = expr
    procs = draw(st.integers(1, 4))
    block_size = draw(st.integers(1, 8))
    return block, targets + [readonly], procs, block_size


@given(scan_programs())
@settings(max_examples=60, deadline=None)
def test_all_engines_and_schedules_agree(program):
    block, arrays, procs, block_size = program
    compiled = compile_scan(block)

    oracle = run_and_capture(execute_loopnest, compiled, arrays)
    fast = run_and_capture(execute_vectorized, compiled, arrays)
    for o, f in zip(oracle, fast):
        np.testing.assert_allclose(f, o, rtol=1e-12, atol=1e-12)

    def run_pipelined(c):
        pipelined_wavefront(c, PARAMS, n_procs=procs, block_size=block_size)

    def run_naive(c):
        naive_wavefront(c, PARAMS, n_procs=procs)

    piped = run_and_capture(run_pipelined, compiled, arrays)
    for o, f in zip(oracle, piped):
        np.testing.assert_allclose(f, o, rtol=1e-12, atol=1e-12)

    nai = run_and_capture(run_naive, compiled, arrays)
    for o, f in zip(oracle, nai):
        np.testing.assert_allclose(f, o, rtol=1e-12, atol=1e-12)


@given(scan_programs())
@settings(max_examples=30, deadline=None)
def test_compilation_is_deterministic(program):
    block, arrays, _, _ = program
    c1 = compile_scan(block)
    c2 = compile_scan(block)
    assert c1.loops == c2.loops
    assert c1.wsv == c2.wsv


@given(scan_programs())
@settings(max_examples=30, deadline=None)
def test_simulation_time_is_deterministic(program):
    block, arrays, procs, block_size = program
    compiled = compile_scan(block)
    if procs < 2:
        return
    t1 = pipelined_wavefront(
        compiled, PARAMS, n_procs=procs, block_size=block_size, compute_values=False
    )
    t2 = pipelined_wavefront(
        compiled, PARAMS, n_procs=procs, block_size=block_size, compute_values=False
    )
    assert t1.total_time == t2.total_time
    assert t1.run.total_messages == t2.run.total_messages
