#!/usr/bin/env python
"""Irregular wavefronts: masked scan blocks on a banded domain.

Banded solvers and alignment algorithms only need the diagonal band of
their DP matrix.  Masks (ZPL's ``[R with m]``) carve that band out of the
rectangular region while the wavefront still pipelines — this example runs
a banded Smith-Waterman-style recurrence, prints the band, and verifies the
pipelined distributed execution matches.

Run:  python examples/irregular_band.py
"""

import numpy as np

from repro import zpl
from repro.compiler import compile_scan
from repro.machine import MachineParams, pipelined_wavefront
from repro.runtime import execute_vectorized, run_and_capture

n, bandwidth = 14, 3

# The band mask: |i - j| <= bandwidth, built with Index expressions.
band = zpl.zeros(zpl.Region.square(1, n), name="band")
with zpl.covering(band.region):
    band[...] = zpl.where(
        zpl.absolute(zpl.index(0) - zpl.index(1)) <= float(bandwidth), 1.0, 0.0
    )

# A banded DP wavefront: h depends on north, west and northwest neighbours,
# but only inside the band.
scores = zpl.from_numpy(
    np.random.default_rng(4).uniform(-1.0, 2.0, size=(n, n)), base=1, name="s"
)
h = zpl.zeros(zpl.Region.square(1, n), name="h")
with zpl.covering(zpl.Region.square(2, n)):
    with zpl.masked(band), zpl.scan(execute=False) as block:
        h[...] = zpl.maximum(
            (h.p @ zpl.NORTHWEST) + scores,
            zpl.maximum((h.p @ zpl.NORTH), (h.p @ zpl.WEST)) - 0.5,
        )

compiled = compile_scan(block)
print("Banded DP wavefront:", compiled.wsv, compiled.loops, "\n")
execute_vectorized(compiled)

print("DP table (— marks masked-out cells):")
values = h.to_numpy()
mask = band.to_numpy()
for i in range(n):
    row = "".join(
        f"{values[i, j]:6.1f}" if mask[i, j] else "     —" for j in range(n)
    )
    print(" ", row)

# The same masked block runs pipelined on the simulated machine.
h.fill(0.0)
expected = run_and_capture(execute_vectorized, compiled, [h, band, scores])
h.fill(0.0)
outcome = pipelined_wavefront(
    compiled, MachineParams(name="demo", alpha=30.0, beta=1.0),
    n_procs=4, block_size=3,
)
match = np.allclose(h._data, expected[0])
print(f"\npipelined on 4 processors: t={outcome.total_time:.0f}, "
      f"values match sequential: {match}")
print(f"band occupancy: {int(mask.sum())}/{n * n} cells computed")
