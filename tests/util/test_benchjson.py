"""Tests for the versioned benchmark-artifact schema (``BENCH_*.json``)."""

import json

import pytest

from repro.util.benchjson import (
    COMPATIBLE_SCHEMAS,
    SCHEMA,
    SCHEMA_VERSION,
    bench_dir,
    host_meta,
    read_bench,
    write_bench,
)


class TestWriteBench:
    def test_roundtrip_with_host_block(self, tmp_path):
        path = write_bench(
            "demo",
            [{"test": "t", "min_seconds": 0.5}],
            meta={"n": 64},
            directory=tmp_path,
        )
        assert path.name == "BENCH_demo.json"
        payload = read_bench("demo", directory=tmp_path)
        assert payload["schema"] == SCHEMA
        assert payload["schema_version"] == SCHEMA_VERSION == 2
        assert payload["meta"] == {"n": 64}
        assert payload["results"][0]["min_seconds"] == 0.5

    def test_host_block_separate_from_meta(self, tmp_path):
        write_bench("demo", [], directory=tmp_path)
        payload = read_bench("demo", directory=tmp_path)
        host = payload["host"]
        for key in ("python", "platform", "machine", "cpu_count"):
            assert key in host
        assert "python" not in payload["meta"]

    def test_host_meta_fields(self):
        meta = host_meta()
        assert meta["cpu_count"] >= 1
        assert meta["python"].count(".") == 2


class TestReadBench:
    def test_accepts_version1_artifacts(self, tmp_path):
        # A pre-versioning artifact: host fields merged into meta, no
        # schema_version key.  Must still load.
        legacy = {
            "schema": "repro-bench/1",
            "name": "old",
            "written_at": "2026-01-01T00:00:00+00:00",
            "meta": {"python": "3.11.0", "n": 8},
            "results": [],
        }
        (tmp_path / "BENCH_old.json").write_text(json.dumps(legacy))
        payload = read_bench("old", directory=tmp_path)
        assert payload["meta"]["n"] == 8
        assert "repro-bench/1" in COMPATIBLE_SCHEMAS

    def test_rejects_unknown_schema(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text(
            json.dumps({"schema": "other/9", "results": []})
        )
        with pytest.raises(ValueError, match="schema"):
            read_bench("bad", directory=tmp_path)


class TestBenchDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        assert bench_dir() == tmp_path
        write_bench("envtest", [])
        assert (tmp_path / "BENCH_envtest.json").exists()

    def test_argument_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", "/nonexistent")
        assert bench_dir(tmp_path) == tmp_path
