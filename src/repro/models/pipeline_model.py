"""The paper's analytic pipelining model (Section 4).

For a wavefront moving along the first dimension of an ``n × n`` data space,
block distributed across ``p`` processors in that dimension, with pipeline
block size ``b`` and the linear communication model ``α + β·s``:

.. math::

    T_{comp} = \\frac{nb}{p}(p-1) + \\frac{n^2}{p}
    \\qquad
    T_{comm} = (\\alpha + \\beta m b)\\left(\\frac{n}{b} + p - 2\\right)

where ``m`` is the number of boundary rows per unit of block width (1 for a
single-array wavefront, 3 for the Tomcatv fragment whose ``d``, ``rx`` and
``ry`` all flow with the wave).  Minimising the sum over ``b`` gives

.. math::

    b^* = \\sqrt{\\frac{\\alpha n}{n(p-1)/p + \\beta m (p-2)}}
        \\approx \\sqrt{\\frac{\\alpha n p}{(m p \\beta + n)(p - 1)}}

**Model1** is the constant-communication-cost special case β = 0 (after
Hiranandani et al.), for which ``b* = sqrt(αp/(p-1)) ≈ sqrt(α)``; **Model2**
is the full model (after Ohta et al.).  The paper's Fig. 5 compares the two.

All three of ``predicted_time``/``optimal_block_size``/``speedup`` take the
generalised ``m``; the paper's formulas are the ``m = 1`` instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError
from repro.machine.params import MachineParams
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class PipelineModel:
    """One configuration of the analytic model.

    Parameters
    ----------
    params:
        Machine parameters (α, β in element-compute units).
    n:
        Problem size: the wavefront sweeps ``n`` rows of width ``n``.
    p:
        Processors along the wavefront dimension.
    boundary_rows:
        The ``m`` factor: boundary elements per unit of block width.
    ignore_beta:
        Model1 when true (β treated as 0), Model2 otherwise.
    """

    params: MachineParams
    n: int
    p: int
    boundary_rows: int = 1
    ignore_beta: bool = False
    #: Width of the data space along the chunked (parallel) dimension;
    #: defaults to ``n`` (the paper's square case).
    cols: int | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        check_positive_int(self.p, "p")
        check_positive_int(self.boundary_rows, "boundary_rows")
        if self.cols is not None:
            check_positive_int(self.cols, "cols")
        if self.p < 2:
            raise ModelError("the pipeline model needs p >= 2 processors")

    @property
    def alpha(self) -> float:
        return self.params.alpha

    @property
    def beta(self) -> float:
        return 0.0 if self.ignore_beta else self.params.beta

    @property
    def width(self) -> int:
        """Extent of the chunked dimension (``cols`` or ``n``)."""
        return self.cols if self.cols is not None else self.n

    # ------------------------------------------------------------------
    # The Section 4 formulas
    # ------------------------------------------------------------------
    def compute_time(self, b: float) -> float:
        """``T_comp = (nb/p)(p-1) + n*width/p``."""
        b = check_positive(b, "b")
        n, p = self.n, self.p
        return (n * b / p) * (p - 1) + n * self.width / p

    def comm_time(self, b: float) -> float:
        """``T_comm = (α + β m b)(width/b + p - 2)``."""
        b = check_positive(b, "b")
        p = self.p
        message = self.alpha + self.beta * self.boundary_rows * b
        return message * (self.width / b + p - 2)

    def predicted_time(self, b: float) -> float:
        """Total pipelined execution time at block size ``b``."""
        return self.compute_time(b) + self.comm_time(b)

    def serial_time(self) -> float:
        """Uniprocessor time: one unit per element."""
        return float(self.n) * self.width

    def naive_time(self) -> float:
        """Non-pipelined (Fig. 4(a)) time: fully serialised along the wave,
        plus one whole-boundary message per processor boundary."""
        n, p = self.n, self.p
        message = self.alpha + self.beta * self.boundary_rows * self.width
        return n * self.width + (p - 1) * message

    def speedup(self, b: float) -> float:
        """Predicted speedup over the serial execution at block size ``b``."""
        return self.serial_time() / self.predicted_time(b)

    # ------------------------------------------------------------------
    # Optimal block size
    # ------------------------------------------------------------------
    def optimal_block_size_continuous(self) -> float:
        """The closed form from differentiating T(b) (paper Eq. (1))."""
        n, p = self.n, self.p
        denominator = n * (p - 1) / p + self.beta * self.boundary_rows * (p - 2)
        if denominator <= 0:
            raise ModelError("degenerate model: non-positive denominator")
        return math.sqrt(self.alpha * self.width / denominator)

    def optimal_block_size(self, b_max: int | None = None) -> int:
        """The best integer block size in ``1..b_max`` (exact search).

        The closed form ignores integrality and the ceiling in ``n/b``; the
        search is cheap and exact, and agrees with the closed form to within
        a unit in all sane configurations.
        """
        b_max = b_max if b_max is not None else self.width
        candidates = range(1, max(2, min(b_max, self.width) + 1))
        return min(candidates, key=self.predicted_time)

    def approximate_block_size(self) -> float:
        """The paper's approximation ``sqrt(αnp / ((mpβ + n)(p − 1)))``."""
        n, p = self.n, self.p
        return math.sqrt(
            self.alpha * n * p
            / ((self.boundary_rows * p * self.beta + n) * (p - 1))
        )


def model1(
    params: MachineParams, n: int, p: int, boundary_rows: int = 1,
    cols: int | None = None,
) -> PipelineModel:
    """Model1: constant communication cost (β ignored), after Hiranandani."""
    return PipelineModel(params, n, p, boundary_rows, ignore_beta=True, cols=cols)


def model2(
    params: MachineParams, n: int, p: int, boundary_rows: int = 1,
    cols: int | None = None,
) -> PipelineModel:
    """Model2: the full linear-cost model, after Ohta et al."""
    return PipelineModel(params, n, p, boundary_rows, ignore_beta=False, cols=cols)


def amortized_alpha(alpha_c: float, gamma: float, fanout: int) -> float:
    """The per-edge α of a multicast release: ``(α_c + γ·f) / f``.

    One collective release costs ``α_c + γ·f`` and unblocks ``f`` consumer
    tiles at once (:mod:`repro.parallel.collectives`); each edge of the
    tile DAG therefore sees the amortised share.  With ``f = 1`` this
    degenerates to the point-to-point ``α_c + γ``, so the same Eq. (1)
    covers both fabrics.
    """
    f = max(1, fanout)
    return (alpha_c + gamma * f) / f


def collective_model2(
    params: MachineParams,
    n: int,
    p: int,
    boundary_rows: int = 1,
    cols: int | None = None,
    fanout: int = 1,
    gamma: float = 0.0,
) -> PipelineModel:
    """Model2 on the multicast fabric: Eq. (1) with the amortised α.

    ``params.alpha`` is read as the collective α_c and ``gamma`` as the
    marginal per-consumer cost, both in element-compute units; the model
    then runs the unchanged Section 4 formulas on the amortised per-edge
    value.  This is how the planner predicts a multicast schedule with the
    same machinery (and residual tables) as the point-to-point tables.
    """
    from dataclasses import replace

    amortized = replace(
        params,
        name=f"{params.name} (multicast f={max(1, fanout)})",
        alpha=amortized_alpha(params.alpha, gamma, fanout),
    )
    return PipelineModel(
        amortized, n, p, boundary_rows, ignore_beta=False, cols=cols
    )
