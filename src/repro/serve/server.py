"""The asyncio HTTP/JSON front end: transport, routing, admission, compute.

Pure stdlib: :func:`asyncio.start_server` plus a small HTTP/1.1 parser
(request line, headers, ``Content-Length`` bodies, keep-alive).  The
interesting parts live below the transport:

* :class:`ComputeBackend` — maps a coalesced batch onto the runtime.
  Alignment batches become **one** rank-3 stacked kernel dispatch via
  :func:`repro.apps.alignment.batch_tables`; generic ``.zpl`` batches
  share one parse/compile and run per-request.  With ``grid`` set the
  compiled plans dispatch on a shared
  :class:`~repro.parallel.PoolSupervisor`-managed worker pool (which
  respawns dead workers between batches).
* :class:`ServeApp` — the transport-independent core: parse, admit,
  coalesce (:class:`~repro.serve.batching.Batcher`), await with a
  per-request deadline, map typed errors onto statuses, record metrics
  and ``serve_request`` spans.  Tests drive :meth:`ServeApp.handle`
  directly; the HTTP layer is a thin shell around it.

Every failure mode the serving contract names is typed end to end:
malformed payload → 400 ``bad_request``, full queue → 429 ``queue_full``
(+ ``Retry-After``), per-request deadline → 504 ``timeout``, dead worker
→ 503 ``pool_broken`` — and none of them poisons the next request.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from itertools import count

import numpy as np

from repro.apps import alignment
from repro.errors import PoolBrokenError
from repro.machine.params import CRAY_T3E, MachineParams
from repro.obs import Trace, resolve_tracer
from repro.obs.live import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    FLIGHT,
    LIVE,
    MONITOR,
    fabric_summary,
    prometheus_text,
    wants_text,
    worker_table,
)
from repro.runtime import execute_vectorized
from repro.serve.batching import Batcher, BatchResult
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    BackendBroken,
    BadRequest,
    QueueFull,
    RequestTimeout,
    ServeError,
    parse_request,
)
from repro.serve.scheduler import make_policy
from repro.zpl import ZArray
from repro.zpl.parser import parse_program
from repro.zpl.regions import Region

REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


@dataclass
class ServeConfig:
    """Knobs of one server instance (also the CLI's argument surface)."""

    host: str = "127.0.0.1"
    port: int = 8077
    window: float = 0.005  # coalescing window, seconds
    batch_max: int = 32  # largest fused dispatch
    max_queue: int = 128  # admission bound (pending requests)
    timeout: float = 30.0  # per-request deadline, seconds
    policy: str = "fifo"  # "fifo" | "sjf"
    grid: int | None = None  # worker-pool size; None = in-process compute
    model: MachineParams | None = None  # SJF cost model (pool mode)
    tracer: object = None  # explicit Tracer; None = REPRO_TRACE decides

    def describe(self) -> dict:
        return {
            "window_s": self.window,
            "batch_max": self.batch_max,
            "max_queue": self.max_queue,
            "timeout_s": self.timeout,
            "policy": self.policy,
            "grid": self.grid,
        }


class ComputeBackend:
    """Executes one coalesced batch; runs on the batcher's worker thread."""

    def __init__(
        self,
        grid: int | None = None,
        pool_timeout: float = 60.0,
        tracer=None,
    ):
        self._supervisor = None
        # The serve tracer rides into pool dispatches so per-block worker
        # spans land in the same trace as serve_request/serve_batch — the
        # end-to-end chain request-id propagation links together.
        self._tracer = tracer
        if grid:
            from repro.parallel import PoolSupervisor

            self._supervisor = PoolSupervisor(grid, timeout=pool_timeout)

    @property
    def procs(self) -> int:
        return self._supervisor.grid.size if self._supervisor else 1

    def _engine(self):
        if self._supervisor is None:
            return execute_vectorized
        supervisor = self._supervisor
        tracer = self._tracer

        def pooled(compiled):
            supervisor.submit(compiled, tracer=tracer)

        return pooled

    def __call__(self, key: tuple, requests: list) -> list:
        if key[0] == "align":
            return self._run_align(requests)
        return self._run_zpl(requests)

    def _run_align(self, requests: list) -> list:
        first = requests[0]
        tables = alignment.batch_tables(
            [(r.a, r.b) for r in requests],
            match=first.match, mismatch=first.mismatch, gap=first.gap,
            local=first.local, engine=self._engine(),
        )
        out = []
        for request, table in zip(requests, tables):
            score = (
                float(table.max()) if request.local
                else float(table[len(request.a), len(request.b)])
            )
            out.append({"kind": request.kind, "score": score})
        return out

    def _run_zpl(self, requests: list) -> list:
        engine = self._engine()
        out = []
        for request in requests:
            arrays = {}
            for name, spec in request.arrays.items():
                region = Region.of(
                    *zip(spec["lo"], spec["hi"]), name=name
                )
                arr = ZArray(region, name=name, fluff=spec["fluff"],
                             fill=spec.get("fill", 0.0))
                if "data" in spec:
                    data = np.asarray(spec["data"], dtype=np.float64)
                    if data.shape != arr.region.shape:
                        raise BadRequest(
                            f"array {name!r} data has shape {data.shape}, "
                            f"declared {arr.region.shape}"
                        )
                    arr.write(arr.region, data)
                arrays[name] = arr
            try:
                program = parse_program(
                    request.source, arrays, filename="<request>"
                )
                program.run(engine)
            except (BadRequest, PoolBrokenError):
                raise
            except Exception as exc:
                raise BadRequest(f"zpl program failed: {exc}") from exc
            out.append(
                {"arrays": {n: a.to_numpy().tolist() for n, a in arrays.items()}}
            )
        return out

    def close(self) -> None:
        if self._supervisor is not None:
            self._supervisor.close()


class ServeApp:
    """The request pipeline; owns metrics, tracer, batcher, backend."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.metrics = ServeMetrics()
        self.tracer = resolve_tracer(self.config.tracer)
        self.monitor = MONITOR
        self.backend = ComputeBackend(self.config.grid, tracer=self.tracer)
        model = self.config.model
        if model is None and self.backend.procs >= 2:
            model = CRAY_T3E
        self.batcher = Batcher(
            self.backend,
            make_policy(self.config.policy),
            window=self.config.window,
            batch_max=self.config.batch_max,
            max_queue=self.config.max_queue,
            metrics=self.metrics,
            tracer=self.tracer,
            model_params=model,
            procs=self.backend.procs,
        )
        self._ids = count(1)
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.close()
        self.backend.close()

    def trace(self) -> Trace:
        """Package the recorded spans (meta marks this as a serve trace)."""
        meta = {"backend": "serve", **self.config.describe()}
        return Trace.from_tracer(self.tracer, clock="wall", meta=meta)

    # -- telemetry documents -------------------------------------------------
    def metrics_document(self) -> dict:
        """The JSON ``/metrics`` body: serve counters + live telemetry."""
        doc = self.metrics.snapshot()
        doc["workers"] = worker_table(LIVE)
        doc["fabric"] = fabric_summary(LIVE)
        doc["model"] = self.monitor.snapshot()
        doc["flight"] = {
            "enabled": FLIGHT.enabled,
            "written": FLIGHT.written,
            "dropped": FLIGHT.dropped,
            "capacity": FLIGHT.capacity,
        }
        return doc

    def prometheus_document(self) -> str:
        """The Prometheus text-exposition ``/metrics`` body."""
        return prometheus_text(
            serve_snapshot=self.metrics.snapshot(),
            registry=LIVE,
            model=self.monitor.snapshot(),
            flight=FLIGHT,
        )

    # -- request pipeline (transport-independent) ----------------------------
    async def handle(self, method: str, path: str, payload: object,
                     accept: str = ""):
        """Route one request; returns ``(status, body, extra_headers)``.

        ``body`` is a JSON-ready dict, except for ``/metrics`` under a
        ``text/plain``/OpenMetrics ``Accept`` header, where it is the
        Prometheus exposition string (content negotiation).
        """
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "method_not_allowed"}, []
            return 200, {"ok": True, "queue_depth": self.batcher.depth}, []
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "method_not_allowed"}, []
            if wants_text(accept):
                return 200, self.prometheus_document(), [
                    ("Content-Type", PROMETHEUS_CONTENT_TYPE),
                ]
            return 200, self.metrics_document(), []
        if path not in ("/v1/align", "/v1/zpl"):
            return 404, {"error": "not_found", "message": f"no route {path}"}, []
        if method != "POST":
            return 405, {"error": "method_not_allowed"}, []
        return await self._handle_compute(path, payload)

    async def _handle_compute(self, path: str, payload: object):
        rid = next(self._ids)
        started = time.perf_counter()
        self.metrics.on_received()
        kind, status, batch_size = path.rsplit("/", 1)[-1], 200, 0
        queue_wait = compute = 0.0
        headers: list[tuple[str, str]] = []
        try:
            request = parse_request(path, payload)
            kind = getattr(request, "kind", kind)
            future = self.batcher.submit(request, rid)
            try:
                result: BatchResult = await asyncio.wait_for(
                    future, self.config.timeout
                )
            except (asyncio.TimeoutError, TimeoutError):
                raise RequestTimeout(
                    f"request {rid} missed its {self.config.timeout:g}s deadline"
                ) from None
            batch_size = result.batch_size
            queue_wait, compute = result.queue_wait, result.compute
            body = {"id": rid, "batch": batch_size, **result.value}
            self.metrics.on_completed(
                time.perf_counter() - started, queue_wait, compute
            )
        except BadRequest as exc:
            status = exc.status
            self.metrics.on_bad_request()
            body = exc.payload()
        except QueueFull as exc:
            status = exc.status  # metrics counted at the admission gate
            headers.append(("Retry-After", f"{exc.retry_after:g}"))
            body = {**exc.payload(), "retry_after": exc.retry_after}
        except RequestTimeout as exc:
            status = exc.status
            self.metrics.on_timeout()
            body = exc.payload()
        except PoolBrokenError as exc:
            status = BackendBroken.status
            self.metrics.on_failed()
            body = BackendBroken(str(exc)).payload()
        except ServeError as exc:
            status = exc.status
            self.metrics.on_failed()
            body = exc.payload()
        except Exception as exc:  # the 500 of last resort; never crash
            status = 500
            self.metrics.on_failed()
            body = {"error": "internal", "message": f"{type(exc).__name__}: {exc}"}
        finished = time.perf_counter()
        self.tracer.add_span(
            "serve_request", "serve", started, finished,
            id=rid, kind=kind, status=status, batch=batch_size,
            queue_ms=queue_wait * 1e3, compute_ms=compute * 1e3,
        )
        FLIGHT.span(
            "serve_request", started, finished,
            rid=rid, kind=kind, status=status, batch=batch_size,
        )
        return status, body, headers

    # -- HTTP/1.1 shell ------------------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3:
                    await self._respond(writer, 400, {
                        "error": "bad_request", "message": "malformed request line",
                    }, [], close=True)
                    break
                method, target, _version = parts
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = -1
                if length < 0 or length > MAX_BODY_BYTES:
                    await self._respond(writer, 413, {
                        "error": "payload_too_large",
                        "message": f"body of {length} bytes refused",
                    }, [], close=True)
                    break
                body = await reader.readexactly(length) if length else b""
                payload = None
                parse_error = None
                if body:
                    try:
                        payload = json.loads(body)
                    except ValueError as exc:
                        parse_error = f"body is not valid JSON: {exc}"
                if parse_error is not None:
                    self.metrics.on_received()
                    self.metrics.on_bad_request()
                    status, out, extra = 400, {
                        "error": "bad_request", "message": parse_error,
                    }, []
                else:
                    status, out, extra = await self.handle(
                        method, target.split("?", 1)[0], payload,
                        accept=headers.get("accept", ""),
                    )
                close = headers.get("connection", "").lower() == "close"
                await self._respond(writer, status, out, extra, close=close)
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown cancelled this connection's task
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, writer, status, body, extra, *, close=False) -> None:
        # A str body is pre-rendered (Prometheus text exposition); its
        # Content-Type arrives via ``extra``.  Everything else is JSON.
        if isinstance(body, str):
            data = body.encode()
            content_type = None
        else:
            data = json.dumps(body).encode()
            content_type = "application/json"
        head = [f"HTTP/1.1 {status} {REASONS.get(status, 'OK')}"]
        if content_type is not None and not any(
            name.lower() == "content-type" for name, _ in extra
        ):
            head.append(f"Content-Type: {content_type}")
        head.append(f"Content-Length: {len(data)}")
        head.extend(f"{name}: {value}" for name, value in extra)
        head.append(f"Connection: {'close' if close else 'keep-alive'}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + data)
        await writer.drain()


async def serve_forever(config: ServeConfig, ready=None) -> None:
    """Run a server until SIGINT/SIGTERM (the ``python -m repro.serve`` core)."""
    import signal

    app = ServeApp(config)
    await app.start()
    if ready is not None:
        ready(app)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without signal support
    try:
        await stop.wait()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        await app.stop()
