"""Machine parameter sets: the α+β communication model plus cache geometry.

All times are normalised to the cost of computing a single element of the
data space (the paper's convention in Section 4).  A machine is described by

* ``alpha`` — message startup cost;
* ``beta``  — per-element transmission cost;
* cache geometry and miss penalty (for the Fig. 6 uniprocessor study).

Presets
-------
``CRAY_T3E``
    Calibrated so the analytic models reproduce the paper's Fig. 5(a)
    report: with Tomcatv-scale ``n = 257`` and ``p = 8``, Model1 (β = 0)
    picks block size b = 39 while Model2 (with Tomcatv's three boundary
    rows per message) picks b = 23.  The β value also reflects the paper's
    observation that per-element cost matters on the T3E.  Cache: 8 KB direct-mapped
    L1 with 64-byte effective lines (the 21164's stream buffers prefetch
    sequential lines) and a large relative miss penalty (fast processor).
``SGI_POWERCHALLENGE``
    A bus-based SMP with a much slower processor: communication and cache
    misses are *relatively* cheaper, so both the parallel and the cache
    speedups are more modest (the paper's Fig. 6/7 contrast).  Cache:
    32 KB 2-way L1 with 32-byte lines (R10000-era), low relative miss
    penalty.
``HYPOTHETICAL_HIGH_BETA``
    The Fig. 5(b) worst case: β of the same order as α on a small problem
    (n = 64), where ignoring β (Model1) suggests b = 20 while the full
    model (Model2) picks b = 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_nonnegative, check_positive, check_positive_int


@dataclass(frozen=True)
class CacheGeometry:
    """A one-level cache model used by the trace-driven simulator.

    Sizes are in *elements* (the unit of the address traces); a line of
    ``line_elems`` elements is the transfer unit.
    """

    size_elems: int
    line_elems: int
    ways: int
    #: Miss penalty in units of one element-compute (normalised).
    miss_penalty: float
    #: Cost of a hit, same units (usually well below 1).
    hit_time: float = 0.0

    def __post_init__(self) -> None:
        check_positive_int(self.size_elems, "size_elems")
        check_positive_int(self.line_elems, "line_elems")
        check_positive_int(self.ways, "ways")
        check_nonnegative(self.miss_penalty, "miss_penalty")
        check_nonnegative(self.hit_time, "hit_time")
        if self.size_elems % (self.line_elems * self.ways) != 0:
            raise ValueError(
                "cache size must be a multiple of line_elems * ways "
                f"(got {self.size_elems} / {self.line_elems}*{self.ways})"
            )

    @property
    def n_sets(self) -> int:
        """Number of cache sets."""
        return self.size_elems // (self.line_elems * self.ways)


@dataclass(frozen=True)
class MachineParams:
    """One machine's communication and memory-system parameters."""

    name: str
    #: Message startup cost, in element-compute units (the paper's α).
    alpha: float
    #: Per-element transmission cost, in element-compute units (β).
    beta: float
    #: Cost of computing one element (the normalisation unit; keep at 1.0).
    compute_cost: float = 1.0
    cache: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(1024, 4, 1, miss_penalty=10.0)
    )

    def __post_init__(self) -> None:
        check_nonnegative(self.alpha, "alpha")
        check_nonnegative(self.beta, "beta")
        check_positive(self.compute_cost, "compute_cost")

    def message_cost(self, size: int) -> float:
        """The linear model: cost of transmitting ``size`` elements."""
        if size < 0:
            raise ValueError(f"negative message size {size}")
        return self.alpha + self.beta * size


#: Cray T3E calibration (see module docstring).  8 KB / 8-byte elements =
#: 1024 elements, 32-byte lines = 4 elements, direct-mapped.
CRAY_T3E = MachineParams(
    name="Cray T3E",
    alpha=1331.0,
    beta=23.4,
    cache=CacheGeometry(
        size_elems=1024, line_elems=8, ways=1, miss_penalty=11.0, hit_time=0.25
    ),
)

#: SGI PowerChallenge: slower processor, so communication and misses are
#: relatively cheap.  32 KB / 8-byte elements = 4096 elements, 128-byte
#: lines = 16 elements, 2-way.
SGI_POWERCHALLENGE = MachineParams(
    name="SGI PowerChallenge",
    alpha=420.0,
    beta=12.0,
    cache=CacheGeometry(
        size_elems=4096, line_elems=4, ways=2, miss_penalty=4.0, hit_time=0.3
    ),
)

#: The Fig. 5(b) thought experiment: startup and per-element costs of the
#: same order, on a small problem.
HYPOTHETICAL_HIGH_BETA = MachineParams(
    name="hypothetical (beta-dominated)",
    alpha=350.0,
    beta=405.0,
)

#: All presets by name, for CLI and tests.
PRESETS = {
    "t3e": CRAY_T3E,
    "powerchallenge": SGI_POWERCHALLENGE,
    "hypothetical": HYPOTHETICAL_HIGH_BETA,
}
