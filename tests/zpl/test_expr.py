"""Unit tests for expression trees: shifts, primes, ops, reductions."""

import numpy as np
import pytest

from repro import zpl
from repro.errors import ExpressionError
from repro.zpl.expr import BinOp, Const, Ref, as_node
from repro.zpl.program import eager_reader


@pytest.fixture
def grid():
    a = zpl.from_numpy(np.arange(1.0, 17.0).reshape(4, 4), base=1, name="a")
    b = zpl.full(zpl.Region.square(1, 4), 2.0, name="b")
    return a, b


def ev(expr, region):
    return np.asarray(as_node(expr).evaluate(region, eager_reader))


class TestRefs:
    def test_plain_ref(self, grid):
        a, _ = grid
        np.testing.assert_array_equal(ev(a.ref, a.region), a.to_numpy())

    def test_shift_reads_shifted_indices(self, grid):
        a, _ = grid
        inner = zpl.Region.of((2, 3), (2, 3))
        np.testing.assert_array_equal(
            ev(a @ zpl.NORTH, inner), a.read(inner.shift(zpl.NORTH))
        )

    def test_shift_accumulates(self, grid):
        a, _ = grid
        ref = (a @ zpl.NORTH) @ zpl.EAST
        assert ref.offset == zpl.NORTHEAST

    def test_at_alias(self, grid):
        a, _ = grid
        assert a.at(zpl.WEST).offset == zpl.WEST

    def test_shift_with_tuple(self, grid):
        a, _ = grid
        assert (a @ (2, -1)).offset.offsets == (2, -1)

    def test_prime_flag(self, grid):
        a, _ = grid
        assert a.p.primed
        assert (a.p @ zpl.NORTH).primed
        assert not (a @ zpl.NORTH).primed

    def test_double_prime_rejected(self, grid):
        a, _ = grid
        with pytest.raises(ExpressionError):
            a.p.p

    def test_primed_eager_read_rejected(self, grid):
        a, _ = grid
        with pytest.raises(ExpressionError, match="scan block"):
            ev(a.p @ zpl.NORTH, zpl.Region.of((2, 3), (1, 4)))

    def test_shift_rank_check(self, grid):
        a, _ = grid
        with pytest.raises(Exception):
            a @ (1, 0, 0)


class TestArithmetic:
    def test_binary_ops(self, grid):
        a, b = grid
        R = a.region
        np.testing.assert_array_equal(ev(a + b, R), a.to_numpy() + 2.0)
        np.testing.assert_array_equal(ev(a - b, R), a.to_numpy() - 2.0)
        np.testing.assert_array_equal(ev(a * b, R), a.to_numpy() * 2.0)
        np.testing.assert_array_equal(ev(a / b, R), a.to_numpy() / 2.0)
        np.testing.assert_array_equal(ev(a ** 2.0, R), a.to_numpy() ** 2)

    def test_scalar_promotion(self, grid):
        a, _ = grid
        R = a.region
        np.testing.assert_array_equal(ev(1.0 / a, R), 1.0 / a.to_numpy())
        np.testing.assert_array_equal(ev(3.0 - a, R), 3.0 - a.to_numpy())
        np.testing.assert_array_equal(ev(a + 1, R), a.to_numpy() + 1)

    def test_unary(self, grid):
        a, _ = grid
        R = a.region
        np.testing.assert_array_equal(ev(-a, R), -a.to_numpy())
        np.testing.assert_allclose(ev(zpl.sqrt(a), R), np.sqrt(a.to_numpy()))

    def test_comparisons_and_where(self, grid):
        a, _ = grid
        R = a.region
        result = ev(zpl.where(BinOp(">", a.ref, Const(8.0)), a, 0.0), R)
        expected = np.where(a.to_numpy() > 8.0, a.to_numpy(), 0.0)
        np.testing.assert_array_equal(result, expected)

    def test_maximum_minimum(self, grid):
        a, b = grid
        R = a.region
        np.testing.assert_array_equal(
            ev(zpl.maximum(a, 5.0), R), np.maximum(a.to_numpy(), 5.0)
        )
        np.testing.assert_array_equal(
            ev(zpl.minimum(a, b), R), np.minimum(a.to_numpy(), 2.0)
        )

    def test_mixed_rank_rejected(self, grid):
        a, _ = grid
        line = zpl.ones(zpl.Region.of((1, 4)))
        with pytest.raises(ExpressionError):
            (a + line).rank

    def test_unknown_operand_rejected(self):
        with pytest.raises(ExpressionError):
            as_node(object())


class TestStructure:
    def test_refs_enumeration(self, grid):
        a, b = grid
        expr = a + (b @ zpl.NORTH) * (a.p @ zpl.SOUTH)
        refs = list(expr.refs())
        assert len(refs) == 3
        assert sum(r.primed for r in refs) == 1

    def test_has_prime(self, grid):
        a, b = grid
        assert (a.p @ zpl.NORTH + b).has_prime()
        assert not (a @ zpl.NORTH + b).has_prime()

    def test_rank(self, grid):
        a, _ = grid
        assert (a + 1.0).rank == 2
        assert Const(1.0).rank is None

    def test_substitute(self, grid):
        a, b = grid
        inner = b @ zpl.NORTH
        expr = a + inner
        swapped = expr.substitute({inner: Const(0.0)})
        assert "north" not in repr(swapped)
        # Original tree untouched.
        assert "north" in repr(expr)

    def test_repr_mentions_prime(self, grid):
        a, _ = grid
        assert "a'" in repr(a.p @ zpl.NORTH)


class TestParallelOps:
    def test_full_sum(self, grid):
        a, _ = grid
        assert ev(zpl.zsum(a), a.region) == pytest.approx(a.to_numpy().sum())

    def test_partial_sum_broadcast_back(self, grid):
        a, _ = grid
        result = ev(zpl.zsum(a, dims=[0]), a.region)
        expected = np.broadcast_to(a.to_numpy().sum(axis=0, keepdims=True), (4, 4))
        np.testing.assert_array_equal(result, expected)

    def test_full_max_min(self, grid):
        a, _ = grid
        assert ev(zpl.zmax(a), a.region) == 16.0
        assert ev(zpl.zmin(a), a.region) == 1.0

    def test_flood(self, grid):
        a, _ = grid
        result = ev(zpl.flood(a, dims=[0]), a.region)
        expected = np.broadcast_to(a.to_numpy()[:1, :], (4, 4))
        np.testing.assert_array_equal(result, expected)

    def test_flood_needs_dims(self, grid):
        a, _ = grid
        with pytest.raises(ExpressionError):
            zpl.flood(a, dims=[])

    def test_parallel_ops_enumeration(self, grid):
        a, b = grid
        expr = zpl.zsum(a) + b * zpl.flood(a, dims=[1])
        assert len(list(expr.parallel_ops())) == 2

    def test_pointwise_reduction_rejected(self, grid):
        a, _ = grid
        with pytest.raises(ExpressionError):
            zpl.zsum(a).evaluate_at((1, 1), lambda *args: 0.0)
