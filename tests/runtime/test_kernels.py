"""Tests for the AOT kernel layer: engine selection, plan cache, aliasing."""

import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan, compile_statements, contract
from repro.errors import MachineError
from repro.runtime import (
    KERNEL_STATS,
    default_engine,
    execute_interpreted,
    execute_loopnest,
    execute_vectorized,
    plan_fingerprint,
    resolve_engine,
    run_and_capture,
    statement_needs_copy,
)
from repro.runtime.kernels import statement_kernel, template_for
from repro.zpl.statements import Assign
from tests.conftest import record_tomcatv_block


def kernel_vs_interp(compiled, arrays):
    """Both sequential engines from the same state; assert bit-identical."""
    interp = run_and_capture(
        lambda c: execute_vectorized(c, engine="interp"), compiled, arrays
    )
    kernel = run_and_capture(
        lambda c: execute_vectorized(c, engine="kernel"), compiled, arrays
    )
    for name, i, k in zip((a.name for a in arrays), interp, kernel):
        np.testing.assert_array_equal(k, i, err_msg=f"array {name}")
    return interp


# The legacy REPRO_KERNELS spelling warns once per process; these tests
# exercise it deliberately (test_skew_kernels.py asserts the warning).
@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestEngineSelection:
    def test_default_is_kernel(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.delenv("REPRO_SKEW", raising=False)
        assert default_engine() == "kernel"
        assert resolve_engine(None) == "kernel"

    @pytest.mark.parametrize("value", ["0", "false", "off", "interp"])
    def test_env_escape_hatch(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_KERNELS", value)
        assert default_engine() == "interp"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        assert resolve_engine("kernel") == "kernel"

    def test_unknown_engine_rejected(self):
        with pytest.raises(MachineError, match="unknown engine"):
            resolve_engine("jit")

    def test_env_off_still_correct(self, monkeypatch):
        block, arrays = record_tomcatv_block(10)
        compiled = compile_scan(block)
        default = run_and_capture(execute_vectorized, compiled, arrays)
        monkeypatch.setenv("REPRO_KERNELS", "0")
        off = run_and_capture(execute_vectorized, compiled, arrays)
        for d, o in zip(default, off):
            np.testing.assert_array_equal(o, d)


class TestEquivalence:
    def test_tomcatv_bit_identical(self):
        block, arrays = record_tomcatv_block(12)
        kernel_vs_interp(compile_scan(block), arrays)

    def test_matches_loopnest_oracle(self):
        block, arrays = record_tomcatv_block(10)
        compiled = compile_scan(block)
        oracle = run_and_capture(execute_loopnest, compiled, arrays)
        kernel = run_and_capture(
            lambda c: execute_vectorized(c, engine="kernel"), compiled, arrays
        )
        for o, k in zip(oracle, kernel):
            np.testing.assert_allclose(k, o, rtol=1e-13, atol=1e-13)

    def test_contracted_block(self):
        block, (aa, d, dd, rx, ry, r) = record_tomcatv_block(10)
        compiled = contract(compile_scan(block), [r])
        kernel_vs_interp(compiled, (aa, d, dd, rx, ry, r))

    def test_masked_scan(self):
        n = 8
        rng = np.random.default_rng(3)
        a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
        mask = zpl.zeros(zpl.Region.square(1, n), name="m")
        with zpl.covering(mask.region):
            mask[...] = zpl.where(zpl.index(0) >= zpl.index(1), 1.0, 0.0)
        with zpl.covering(zpl.Region.of((2, n), (1, n))), zpl.masked(mask):
            with zpl.scan(execute=False) as block:
                a[...] = (a.p @ zpl.NORTH) * 0.5 + 1.0
        kernel_vs_interp(compile_scan(block), [a, mask])

    def test_index_expr(self):
        n = 7
        a = zpl.zeros(zpl.Region.square(1, n), name="a")
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = (a.p @ zpl.NORTH) + zpl.index(0) * 10.0 + zpl.index(1)
        kernel_vs_interp(compile_scan(block), [a])

    def test_rank1(self):
        n = 9
        a = zpl.ones(zpl.Region.of((1, n)), name="a")
        with zpl.covering(zpl.Region.of((2, n))):
            with zpl.scan(execute=False) as block:
                a[...] = (a.p @ (-1,)) * 1.5
        kernel_vs_interp(compile_scan(block), [a])

    def test_backward_wavefront(self):
        n = 8
        rng = np.random.default_rng(5)
        a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
        with zpl.covering(zpl.Region.of((1, n - 1), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = (a.p @ zpl.SOUTH) * 0.5 + 0.25
        kernel_vs_interp(compile_scan(block), [a])

    def test_within_restriction(self):
        block, arrays = record_tomcatv_block(10)
        compiled = compile_scan(block)
        sub = compiled.region.slab(1, 3, 6)
        interp = run_and_capture(
            lambda c: execute_vectorized(c, within=sub, engine="interp"),
            compiled, arrays,
        )
        kernel = run_and_capture(
            lambda c: execute_vectorized(c, within=sub, engine="kernel"),
            compiled, arrays,
        )
        for i, k in zip(interp, kernel):
            np.testing.assert_array_equal(k, i)


class TestAliasing:
    def test_anti_dependence_still_copies(self):
        # a[R] = a@EAST is a pure shifted self-copy: the RHS evaluates to a
        # *view* of the target's storage, so storing without a copy would
        # let the assignment read its own freshly-written elements.
        n = 8
        rng = np.random.default_rng(11)
        values = rng.uniform(size=(n, n))
        R = zpl.Region.of((1, n), (1, n - 1))
        expected = values.copy()
        expected[:, : n - 1] = values[:, 1:]

        for engine in ("kernel", "interp"):
            a = zpl.from_numpy(values.copy(), base=1, name="a")
            stmt = Assign(a, a @ zpl.EAST, R)
            compiled = compile_statements([stmt])
            assert statement_needs_copy(stmt, frozenset())
            execute_vectorized(compiled, engine=engine)
            np.testing.assert_array_equal(
                a.to_numpy(), expected, err_msg=f"engine {engine}"
            )

    def test_independent_arrays_skip_copy(self):
        n = 6
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        b = zpl.zeros(zpl.Region.square(1, n), name="b")
        stmt = Assign(b, a @ zpl.NORTH, zpl.Region.of((2, n), (1, n)))
        assert not statement_needs_copy(stmt, frozenset())

    def test_non_ref_root_skips_copy(self):
        n = 6
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        stmt = Assign(a, (a @ zpl.EAST) * 1.0, zpl.Region.of((1, n), (1, n - 1)))
        # BinOp roots allocate; no copy needed even though source aliases.
        assert not statement_needs_copy(stmt, frozenset())


class TestPlanCache:
    def test_repeat_runs_hit(self):
        block, arrays = record_tomcatv_block(8)
        compiled = compile_scan(block)
        execute_vectorized(compiled)
        KERNEL_STATS.reset()
        execute_vectorized(compiled)
        snap = KERNEL_STATS.snapshot()
        assert snap["plan_hits"] == 1
        assert snap["plan_builds"] == 0

    def test_rebound_storage_invalidates(self):
        block, arrays = record_tomcatv_block(8)
        compiled = compile_scan(block)
        execute_vectorized(compiled)
        arrays[0]._data = arrays[0]._data.copy()  # rebinding, not restoring
        KERNEL_STATS.reset()
        execute_vectorized(compiled)
        snap = KERNEL_STATS.snapshot()
        assert snap["plan_invalidations"] == 1
        assert snap["plan_builds"] == 1

    def test_inplace_restore_keeps_plans(self):
        block, arrays = record_tomcatv_block(8)
        compiled = compile_scan(block)
        run_and_capture(execute_vectorized, compiled, arrays)  # restores
        KERNEL_STATS.reset()
        execute_vectorized(compiled)
        assert KERNEL_STATS.snapshot()["plan_invalidations"] == 0

    def test_distinct_regions_distinct_plans(self):
        block, arrays = record_tomcatv_block(10)
        compiled = compile_scan(block)
        execute_vectorized(compiled)
        KERNEL_STATS.reset()
        execute_vectorized(compiled, within=compiled.region.slab(1, 3, 5))
        assert KERNEL_STATS.snapshot()["plan_builds"] == 1
        template = template_for(compiled)
        assert len(template.plans) == 2


class TestFingerprint:
    def test_stable_across_pickle(self):
        block, _ = record_tomcatv_block(8)
        compiled = compile_scan(block)
        clone = pickle.loads(pickle.dumps(compiled))
        assert plan_fingerprint(clone) == plan_fingerprint(compiled)

    def test_stable_without_hoisted(self):
        block, _ = record_tomcatv_block(8)
        compiled = compile_scan(block)
        stripped = replace(compiled, hoisted=())
        assert plan_fingerprint(stripped) == plan_fingerprint(compiled)

    def test_structure_changes_digest(self):
        b1, _ = record_tomcatv_block(8)
        b2, _ = record_tomcatv_block(9)  # different region extents
        assert plan_fingerprint(compile_scan(b1)) != plan_fingerprint(
            compile_scan(b2)
        )

    def test_contraction_changes_digest(self):
        block, (aa, d, dd, rx, ry, r) = record_tomcatv_block(8)
        compiled = compile_scan(block)
        assert plan_fingerprint(contract(compiled, [r])) != plan_fingerprint(
            compiled
        )


class TestInterpFastPath:
    def test_statement_kernel_used(self):
        n = 6
        rng = np.random.default_rng(23)
        a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
        b = a.copy_like(name="b")
        R = zpl.Region.of((2, n - 1), (2, n - 1))
        stmt = Assign(b, (b @ zpl.NORTH) * 2.0, R)
        KERNEL_STATS.reset()
        execute_interpreted([stmt])
        assert KERNEL_STATS.snapshot()["plan_builds"] == 1
        # the values match the eager assignment semantics
        with zpl.covering(R):
            a[...] = (a @ zpl.NORTH) * 2.0
        np.testing.assert_array_equal(a.to_numpy(), b.to_numpy())
        # a repeat execution reuses the cached statement kernel
        execute_interpreted([stmt])
        assert KERNEL_STATS.snapshot()["plan_hits"] == 1

    def test_primed_statement_returns_none(self):
        n = 4
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        stmt = Assign(a, a.p @ zpl.NORTH, zpl.Region.of((2, n), (1, n)))
        assert statement_kernel(stmt) is None

    def test_interp_engine_skips_kernels(self, monkeypatch):
        n = 5
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        stmt = Assign(a, (a @ zpl.NORTH) + 1.0, zpl.Region.of((2, n), (1, n)))
        KERNEL_STATS.reset()
        execute_interpreted([stmt], engine="interp")
        assert KERNEL_STATS.snapshot()["plan_builds"] == 0
