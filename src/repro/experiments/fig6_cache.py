"""Fig. 6: uniprocessor speedup due to scan blocks (cache behaviour).

On one processor, scan blocks buy nothing *algorithmically* — the win is that
they let the compiler fuse the statements into one loop nest and interchange
so the storage-contiguous dimension is innermost, which the unfused Fig. 2(a)
shape (one strided pass per statement per row) cannot have.  The paper runs
Tomcatv and SIMPLE on the Cray T3E and SGI PowerChallenge and reports

* wavefront components speeding up by up to ~8.5x on the T3E and more
  modestly (up to ~4x) on the PowerChallenge (slower processor => cheaper
  relative misses);
* whole programs: ~3x for Tomcatv (wavefronts dominate the baseline's time)
  and ~7% for SIMPLE (wavefronts are a small slice).

This experiment regenerates all eight grey bars (2 components x 2 benchmarks
x 2 machines) with the trace-driven cache simulator, and both black
whole-program bars per machine by phase composition: with per-unit fused
cost as the time unit, baseline time is Σ w_i·s_i over phases (wavefront
phases pay their measured slowdown s_i; parallel phases have the same good
locality in both versions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import simple, tomcatv
from repro.cache.study import CacheStudyResult, cache_study
from repro.compiler.lowering import CompiledScan
from repro.experiments.common import PAPER_MACHINES, PAPER_N, heading
from repro.machine.params import MachineParams
from repro.models.amdahl import PhaseKind, ProgramProfile
from repro.util.tables import format_bar_chart

DESCRIPTION = "Fig. 6: uniprocessor cache speedup of scan blocks, Tomcatv & SIMPLE"


@dataclass(frozen=True)
class BenchmarkCacheResult:
    """One benchmark on one machine: two components + the whole program."""

    benchmark: str
    machine: MachineParams
    components: tuple[tuple[str, CacheStudyResult], ...]
    whole_program_speedup: float


@dataclass(frozen=True)
class Fig6Result:
    n: int
    results: tuple[BenchmarkCacheResult, ...]

    def report(self) -> str:
        sections = [heading(f"Fig. 6 — uniprocessor speedup from scan blocks (n={self.n})")]
        by_machine: dict[str, list[BenchmarkCacheResult]] = {}
        for r in self.results:
            by_machine.setdefault(r.machine.name, []).append(r)
        for machine_name, rows in by_machine.items():
            bars = []
            for r in rows:
                for label, study in r.components:
                    bars.append((f"{r.benchmark}:{label}", study.speedup))
                bars.append((f"{r.benchmark}:whole", r.whole_program_speedup))
            sections.append(format_bar_chart(machine_name, bars))
            sections.append("")
        return "\n".join(sections)

    def lookup(self, benchmark: str, machine_name: str) -> BenchmarkCacheResult:
        for r in self.results:
            if r.benchmark == benchmark and r.machine.name == machine_name:
                return r
        raise KeyError((benchmark, machine_name))


def whole_program_speedup(
    profile: ProgramProfile, component_speedups: dict[str, float]
) -> float:
    """Compose component cache speedups into the whole-program bar.

    Time unit: fused cost per unit work.  The baseline (no scan blocks) pays
    ``s_i`` per unit of wavefront work; everything else costs the same in
    both versions.
    """
    scan_time = profile.total_work()
    base_time = 0.0
    for phase in profile.phases:
        slowdown = 1.0
        if phase.kind is PhaseKind.WAVEFRONT:
            slowdown = component_speedups[phase.name]
        base_time += phase.total_work * slowdown
    return base_time / scan_time


def _tomcatv_components(n: int) -> tuple[tuple[str, CompiledScan], ...]:
    state = tomcatv.build(n)
    return (
        ("forward-solve", tomcatv.compile_forward(state)),
        ("backward-solve", tomcatv.compile_backward(state)),
    )


def _simple_components(n: int) -> tuple[tuple[str, CompiledScan], ...]:
    state = simple.build(n)
    ns_f, _, we_f, _ = simple.compile_sweeps(state)
    return (("conduction-ns", ns_f), ("conduction-we", we_f))


def run(n: int = PAPER_N, quick: bool = False) -> Fig6Result:
    """Regenerate all Fig. 6 bars on both machines."""
    if quick:
        n = min(n, 65)
    benchmarks = (
        ("tomcatv", _tomcatv_components(n), tomcatv.profile(n)),
        ("simple", _simple_components(n), simple.profile(n)),
    )
    results = []
    for machine in PAPER_MACHINES:
        for name, components, profile in benchmarks:
            studies = tuple(
                (label, cache_study(compiled, machine))
                for label, compiled in components
            )
            # Map component speedups onto the profile's wavefront phases.
            speedups: dict[str, float] = {}
            wave_phases = [
                ph.name for ph in profile.phases if ph.kind is PhaseKind.WAVEFRONT
            ]
            for phase_name, (label, study) in zip(wave_phases, studies):
                speedups[phase_name] = study.speedup
            whole = whole_program_speedup(profile, speedups)
            results.append(
                BenchmarkCacheResult(name, machine, studies, whole)
            )
    return Fig6Result(n=n, results=tuple(results))
