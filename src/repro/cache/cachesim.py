"""Trace-driven cache simulation.

Two engines behind one entry point (:func:`simulate`):

* a fully vectorised direct-mapped simulator (numpy, no Python loop) — the
  T3E's 8 KB L1 is direct-mapped, so the big Fig. 6 traces go through this;
* a set-associative LRU reference simulator for ``ways > 1`` (and as the
  oracle the vectorised path is tested against with ``ways = 1``).

Addresses are element indices; a line holds ``line_elems`` of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CacheConfigError
from repro.machine.params import CacheGeometry


@dataclass(frozen=True)
class CacheResult:
    """Counts from one trace simulation."""

    accesses: int
    misses: int

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def time(self, geometry: CacheGeometry, compute: float = 0.0) -> float:
        """Execution time: compute + hit and miss-penalty memory time."""
        return (
            compute
            + self.accesses * geometry.hit_time
            + self.misses * geometry.miss_penalty
        )

    def __repr__(self) -> str:
        return (
            f"CacheResult(accesses={self.accesses}, misses={self.misses}, "
            f"rate={self.miss_rate:.3f})"
        )


def simulate_direct_mapped(trace: np.ndarray, geometry: CacheGeometry) -> CacheResult:
    """Vectorised direct-mapped simulation.

    An access misses iff it is the first touch of its set or the previous
    access to the same set was a different line.  Grouping by set with a
    stable sort preserves program order within each set, so "previous access
    to the same set" is simply the preceding element of the sorted sequence.
    """
    if geometry.ways != 1:
        raise CacheConfigError("simulate_direct_mapped requires ways == 1")
    trace = np.asarray(trace, dtype=np.int64)
    if trace.size == 0:
        return CacheResult(0, 0)
    if trace.min() < 0:
        raise CacheConfigError("negative address in trace")
    lines = trace // geometry.line_elems
    sets = lines % geometry.n_sets
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    sorted_lines = lines[order]
    miss = np.empty(trace.size, dtype=bool)
    miss[0] = True
    miss[1:] = (sorted_sets[1:] != sorted_sets[:-1]) | (
        sorted_lines[1:] != sorted_lines[:-1]
    )
    return CacheResult(accesses=int(trace.size), misses=int(miss.sum()))


def simulate_lru(trace: np.ndarray, geometry: CacheGeometry) -> CacheResult:
    """Reference set-associative LRU simulation (Python loop; exact)."""
    trace = np.asarray(trace, dtype=np.int64)
    if trace.size and trace.min() < 0:
        raise CacheConfigError("negative address in trace")
    lines = (trace // geometry.line_elems).tolist()
    n_sets = geometry.n_sets
    ways = geometry.ways
    sets: list[list[int]] = [[] for _ in range(n_sets)]
    misses = 0
    for line in lines:
        content = sets[line % n_sets]
        try:
            content.remove(line)
        except ValueError:
            misses += 1
            if len(content) >= ways:
                content.pop(0)  # evict least recently used (front)
        content.append(line)  # most recently used at the back
    return CacheResult(accesses=int(trace.size), misses=misses)


def simulate(trace: np.ndarray, geometry: CacheGeometry) -> CacheResult:
    """Simulate a trace, picking the fastest exact engine."""
    if geometry.ways == 1:
        return simulate_direct_mapped(trace, geometry)
    return simulate_lru(trace, geometry)
