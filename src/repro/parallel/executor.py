"""The multiprocess executor: real pipelined wavefronts on the host machine.

This is the production counterpart of :mod:`repro.machine.schedules`: the
same :func:`~repro.machine.schedules.plan_wavefront` derivation, the same
:class:`~repro.machine.distribution.BlockMap` decomposition, the same naive
and pipelined schedules — but run across real OS processes against shared
memory, on the real clock.  The virtual-clock simulator predicts; this
executor measures.

Topology
--------
A rank-1 :class:`~repro.machine.grid.ProcessorGrid` distributes the wavefront
dimension: one pipeline chain (paper Fig. 4).  A rank-2 grid additionally
distributes the chunk dimension: each mesh column runs an independent chain
over its slice, which requires the chunk dimension to be fully parallel
(exactly the constraint of
:func:`~repro.machine.schedules.pipelined_wavefront_mesh`).

Block sizes
-----------
``block=None`` asks the autotuner for the host's measured α and β (cached per
process) and applies the paper's Equation (1); an explicit integer bypasses
the measurement.  ``schedule="naive"`` always uses the full local width —
whole-boundary messages, no overlap, Fig. 4(a).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
from dataclasses import dataclass

from repro.compiler.lowering import CompiledScan
from repro.errors import DistributionError, MachineError, SanitizerError
from repro.machine.distribution import BlockMap
from repro.machine.grid import ProcessorGrid
from repro.machine.schedules import WavefrontPlan, _chunk_regions, plan_wavefront
from repro.obs.trace import Trace, resolve_tracer
from repro.parallel.channels import chain_links
from repro.parallel.collectives import (
    MulticastFabric,
    MulticastSpec,
    boundary_layout,
    plan_groups,
    resolve_double_buffer,
    resolve_multicast,
)
from repro.parallel.sharedmem import BoundaryPool, SharedArrayPool
from repro.parallel.worker import WorkerTask, run_worker
from repro.zpl.regions import Region

#: Environment knob: hard cap on worker counts chosen *by default* (CI safety).
MAX_PROCS_ENV = "REPRO_PARALLEL_MAX_PROCS"

#: Environment knob: the default schedule when a caller passes ``None``.
SCHEDULE_ENV = "REPRO_SCHEDULE"

SCHEDULES = ("pipelined", "naive", "taskgraph")


def resolve_schedule(schedule: str | None) -> str:
    """An explicit schedule, else ``REPRO_SCHEDULE``, else ``pipelined``."""
    source = "schedule"
    if schedule is None:
        schedule = os.environ.get(SCHEDULE_ENV, "") or "pipelined"
        source = SCHEDULE_ENV
    if schedule not in SCHEDULES:
        raise MachineError(
            f"unknown {source} {schedule!r}; pick from {SCHEDULES}"
        )
    return schedule


@dataclass(frozen=True)
class ParallelRun:
    """Outcome of one real parallel execution (values land in the arrays)."""

    schedule: str
    grid_dims: tuple[int, ...]
    block_size: int | None
    n_chunks: int
    #: Pipeline busy time: the slowest worker's barrier-to-finish seconds.
    wall_time: float
    #: Per-processor busy times, indexed by grid rank.
    worker_times: tuple[float, ...]
    #: Parent-side overhead: sharing, pickling, process startup (seconds).
    setup_time: float
    plan: WavefrontPlan
    #: Structured event recording (:mod:`repro.obs`), when tracing was on.
    trace: Trace | None = None
    #: Scheduler outcome (:class:`repro.parallel.taskgraph.TaskgraphReport`)
    #: when ``schedule="taskgraph"``: tile/pruning/steal accounting.
    taskgraph: object | None = None
    #: The communication fabric the run synchronised on: ``"pipes"``
    #: (point-to-point tokens) or ``"multicast"`` (epoch publishes, with
    #: double-buffered boundary staging unless ``REPRO_DOUBLE_BUFFER=0``).
    fabric: str = "pipes"

    @property
    def n_procs(self) -> int:
        total = 1
        for extent in self.grid_dims:
            total *= extent
        return total

    def __repr__(self) -> str:
        return (
            f"ParallelRun({self.schedule}, grid={self.grid_dims}, "
            f"b={self.block_size}, wall={self.wall_time * 1e3:.2f}ms)"
        )


def default_grid(max_procs: int | None = None) -> ProcessorGrid:
    """A rank-1 grid sized to the host, honouring ``REPRO_PARALLEL_MAX_PROCS``."""
    cap = max_procs or int(os.environ.get(MAX_PROCS_ENV, "4"))
    return ProcessorGrid((max(1, min(cap, os.cpu_count() or 1)),))


def _as_grid(grid: ProcessorGrid | int | tuple[int, ...] | None) -> ProcessorGrid:
    if grid is None:
        return default_grid()
    if isinstance(grid, ProcessorGrid):
        return grid
    if isinstance(grid, int):
        return ProcessorGrid((grid,))
    return ProcessorGrid(tuple(grid))


def _context(start_method: str | None):
    if start_method is None:
        start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(start_method)


def _build_distribution(
    plan: WavefrontPlan, grid: ProcessorGrid
) -> BlockMap:
    region = plan.region
    w, c = plan.wavefront_dim, plan.chunk_dim
    dim_map: list[int | None] = [None] * region.rank
    dim_map[w] = 0
    if grid.rank == 2:
        if c is None:
            raise DistributionError("no chunkable dimension: cannot mesh-distribute")
        if any(d.vector[c] != 0 for d in plan.compiled.dependences):
            raise DistributionError(
                f"dimension {c} carries a dependence; a 2-D grid would couple "
                f"the pipeline chains — use a rank-1 grid"
            )
        dim_map[c] = 1
    elif grid.rank != 1:
        raise MachineError(
            f"the multiprocess backend supports rank-1 and rank-2 grids, "
            f"got rank {grid.rank}"
        )
    return BlockMap(region, grid, tuple(dim_map))


def _chains(grid: ProcessorGrid, ascending: bool) -> list[list[int]]:
    """Processor ranks grouped into pipeline chains, in wave order."""
    rows = list(range(grid.dims[0]))
    if not ascending:
        rows.reverse()
    if grid.rank == 1:
        return [[grid.proc((row,)) for row in rows]]
    return [
        [grid.proc((row, col)) for row in rows] for col in range(grid.dims[1])
    ]


def _worker_chunks(
    plan: WavefrontPlan, local: Region, block_size: int, reverse: bool
) -> tuple[Region, ...]:
    """One worker's pipeline blocks.  All workers of a chain share the same
    chunk-dimension ranges, so token ``k`` means the same columns chain-wide."""
    if plan.chunk_dim is None or local.extent(plan.chunk_dim) == 0:
        return (local,)
    return tuple(_chunk_regions(local, plan.chunk_dim, block_size, reverse))


def check_chain_legality(
    compiled: CompiledScan, plan: WavefrontPlan, n_stages: int, n_chunks: int
) -> None:
    """Refuse chain distributions the one-way boundary protocol cannot honour.

    Two shapes are sequentially legal yet race on a multi-stage chain:

    * **Upstream flow** — a dependence whose wave component opposes the
      traversal (reader in an *earlier* chain stage than the writer).
      Boundary data only travels down the chain, under every schedule, so
      the reader would consume values its downstream neighbour has not
      produced; no chunking makes this sound.
    * **Lookahead** — wave component along the traversal but chunk
      component against it (e.g. ``(1, -1)`` ascending): pipeline block
      ``k`` downstream reads columns its upstream stage only computes in
      block ``k + 1``.  Tokens and epoch stamps both release strictly in
      block order, so this races exactly when the chain is chunked;
      single-chunk (naive or full-width) runs are safe.

    Single-stage chains are always safe: no boundary ever crosses a rank.
    """
    if n_stages <= 1:
        return
    w, c = plan.wavefront_dim, plan.chunk_dim
    signs = compiled.loops.signs
    sw = 1 if signs[w] >= 0 else -1
    sc = 1 if c is None or signs[c] >= 0 else -1
    for dep in compiled.dependences:
        vw = dep.vector[w]
        vc = dep.vector[c] if c is not None else 0
        if vw * sw < 0:
            raise DistributionError(
                f"{dep.kind.value} dependence {dep.vector} on {dep.array!r} "
                f"points upstream along wavefront dimension {w}: boundary "
                f"data only flows down the chain — distribute along a "
                f"different wavefront dimension or run on one process"
            )
        if n_chunks > 1 and vw * sw > 0 and vc * sc < 0:
            raise DistributionError(
                f"{dep.kind.value} dependence {dep.vector} on {dep.array!r} "
                f"points against the chunk traversal: pipeline block k would "
                f"read columns its upstream stage only computes in block "
                f"k+1 — use schedule=\"naive\" or a block covering the full "
                f"width"
            )


def execute(
    compiled: CompiledScan,
    grid: ProcessorGrid | int | tuple[int, ...] | None = None,
    *,
    schedule: str | None = None,
    block: int | None = None,
    wavefront_dim: int | None = None,
    start_method: str | None = None,
    timeout: float = 120.0,
    tracer=None,
    pool=None,
    sanitize: bool | None = None,
    multicast: bool | str | None = None,
    double_buffer: bool | None = None,
) -> ParallelRun:
    """Run a compiled scan block across real OS processes.

    The block's arrays are updated in place, exactly as the sequential
    engines would; the returned :class:`ParallelRun` carries the measured
    wall-clock times.  ``grid`` may be a :class:`ProcessorGrid`, a process
    count, a dims tuple, or ``None`` for a host-sized default.

    ``tracer`` opts this run into :mod:`repro.obs` recording (an explicit
    :class:`~repro.obs.Tracer`, or ``None`` to honour ``REPRO_TRACE``);
    workers then ship per-block spans and counters back with their
    results, and the packaged :class:`~repro.obs.Trace` is returned on
    ``ParallelRun.trace``.

    ``pool`` (a :class:`repro.parallel.pool.WorkerPool`) delegates the run
    to persistent workers — no fork, no pickle, no segment creation after
    the pool's first sight of the block.  The pool's grid is used; passing
    a conflicting ``grid`` raises.

    ``sanitize`` opts into the wavefront race sanitizer
    (:mod:`repro.analyze.sanitizer`): tokens carry vector clocks and every
    primed read is happens-before-checked against the owning block's write.
    ``None`` honours ``REPRO_SANITIZE``.  A detected violation raises
    :class:`~repro.errors.SanitizerError`.  ``pool`` runs sanitize too —
    the shadow planes are built per run and the workers ship their final
    clocks back over the result channel.

    ``schedule`` picks ``"pipelined"`` (static rank order, blocked tokens),
    ``"naive"`` (whole-boundary messages), or ``"taskgraph"``
    (dependence-driven firing with work stealing and dead-block pruning —
    see :mod:`repro.compiler.taskdag`); ``None`` honours ``REPRO_SCHEDULE``
    and defaults to pipelined.

    ``multicast`` picks the pipelined schedule's communication fabric
    (:mod:`repro.parallel.collectives`): ``True`` forces the epoch fabric,
    ``False`` forces pipes, ``"auto"``/``None`` honours ``REPRO_MULTICAST``
    and selects the epoch fabric when the tile DAG shows fan-out ≥ 2 from
    one producer tile.  ``double_buffer`` gates the staged boundary copies
    on multicast runs (``None`` honours ``REPRO_DOUBLE_BUFFER``, default
    on).  On multicast the sanitizer's clocks ride the epoch fabric (a
    per-``(rank, block)`` clock row in the shadow segment, indexed by the
    epoch value) instead of the tokens.

    ``REPRO_CERTIFY=1`` additionally runs the static schedule certifier
    (:mod:`repro.analyze.certify`) on the resolved geometry before any
    worker forks; certification errors raise
    :class:`~repro.errors.CertifyError`.
    """
    schedule = resolve_schedule(schedule)
    if sanitize is None:
        sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
    if pool is not None:
        if grid is not None and _as_grid(grid).dims != pool.grid.dims:
            raise MachineError(
                f"grid {_as_grid(grid).dims} conflicts with the pool's "
                f"grid {pool.grid.dims}; omit grid or match the pool"
            )
        return pool.execute(
            compiled,
            schedule=schedule,
            block=block,
            wavefront_dim=wavefront_dim,
            timeout=timeout,
            tracer=tracer,
            sanitize=sanitize,
            multicast=multicast,
            double_buffer=double_buffer,
        )
    if schedule == "taskgraph":
        return _execute_taskgraph(
            compiled,
            _as_grid(grid),
            block=block,
            wavefront_dim=wavefront_dim,
            start_method=start_method,
            timeout=timeout,
            tracer=tracer,
            sanitize=sanitize,
        )
    grid = _as_grid(grid)
    plan = plan_wavefront(compiled, wavefront_dim)
    if plan.chunk_dim is None and grid.dims[0] > 1 and schedule == "pipelined":
        raise DistributionError(
            "no chunkable dimension: this block cannot be pipelined"
        )
    dist = _build_distribution(plan, grid)
    loops = compiled.loops
    ascending = loops.signs[plan.wavefront_dim] >= 0
    reverse_chunks = (
        plan.chunk_dim is not None and loops.signs[plan.chunk_dim] < 0
    )
    locals_by_rank = {rank: dist.local_region(rank) for rank in grid}
    chains = _chains(grid, ascending)

    # Fabric selection happens before block sizing: the autotuner's cost
    # model depends on whether a release costs one pipe round per edge or
    # one epoch stamp per fan-out.
    fabric = "pipes"
    groups = None
    mcast_mode = resolve_multicast(multicast)
    if (
        schedule == "pipelined"
        and mcast_mode != "off"
        and plan.chunk_dim is not None
    ):
        groups = plan_groups(compiled, plan, chains, locals_by_rank, grid.size)
        if groups is not None and (
            mcast_mode == "on" or groups.max_fanout >= 2
        ):
            fabric = "multicast"
        else:
            groups = None

    if schedule == "naive":
        block_size = None
    elif block is not None:
        if block < 1:
            raise MachineError(f"block size must be >= 1, got {block}")
        block_size = block
    else:
        from repro.parallel.autotune import tuned_block_size

        block_size = tuned_block_size(
            compiled,
            grid.dims[0],
            plan=plan,
            fabric=fabric,
            fanout=groups.max_fanout if groups is not None else 1,
        )

    if os.environ.get("REPRO_CERTIFY", "") not in ("", "0"):
        from repro.analyze.certify import certify_execution

        # Certify exactly what is about to run: the resolved schedule,
        # grid, tuned block size, and selected fabric.
        certify_execution(
            compiled,
            schedule=schedule,
            grid=grid,
            block=block_size,
            wavefront_dim=wavefront_dim,
            multicast=(fabric == "multicast"),
            double_buffer=double_buffer,
        )

    obs = resolve_tracer(tracer)
    setup_start = time.perf_counter()
    with obs.span("prepare", "setup"):
        compiled.prepare()  # hoisted temporaries: evaluated once, shared below
    with obs.span("share", "setup"):
        pool = SharedArrayPool(compiled)
    procs: list[mp.process.BaseProcess] = []
    shadow = None
    mcast_fabric = None
    bpool = None
    try:
        spawn_start = time.perf_counter()
        blob = pickle.dumps(compiled)
        ctx = _context(start_method)
        links = chain_links(ctx, chains)
        pred_by_rank: dict[int, int] = {}
        for chain in chains:
            for upstream, downstream in zip(chain, chain[1:]):
                pred_by_rank[downstream] = upstream
        mcast_spec = None
        if fabric == "multicast":
            layout = (
                boundary_layout(compiled, plan)
                if resolve_double_buffer(double_buffer)
                else None
            )
            mcast_fabric = MulticastFabric(ctx, grid.size)
            if layout is not None:
                bpool = BoundaryPool(grid.size, layout.slot_elems)
            rows_by_rank = tuple(
                None
                if locals_by_rank[rank].is_empty()
                else locals_by_rank[rank].range(plan.wavefront_dim)
                for rank in grid
            )
            mcast_spec = MulticastSpec(
                epoch_seg=mcast_fabric.name,
                n_ranks=grid.size,
                groups=groups,
                wave_dim=plan.wavefront_dim,
                wave_ascending=ascending,
                rows_by_rank=rows_by_rank,
                boundary_seg=bpool.name if bpool is not None else None,
                layout=layout if bpool is not None else None,
                chunk_dim=plan.chunk_dim,
            )
        barrier = ctx.Barrier(grid.size + 1)
        results = ctx.Queue()

        chunks_by_rank: dict[int, tuple[Region, ...]] = {}
        n_chunks = 1
        for rank in grid:
            local = locals_by_rank[rank]
            width = (
                local.extent(plan.chunk_dim)
                if plan.chunk_dim is not None
                else 1
            )
            per_block = width if block_size is None else block_size
            chunks = _worker_chunks(plan, local, max(1, per_block), reverse_chunks)
            chunks_by_rank[rank] = chunks
            n_chunks = max(n_chunks, len(chunks))
        check_chain_legality(compiled, plan, grid.dims[0], n_chunks)
        if sanitize:
            from repro.analyze.sanitizer import (
                INJECT_ENV,
                ShadowPool,
                parse_inject,
            )

            shadow = ShadowPool(
                plan,
                grid,
                chunks_by_rank,
                inject=parse_inject(os.environ.get(INJECT_ENV)),
                # Multicast clocks ride the epochs: one immutable clock row
                # per (rank, block) in the shadow segment.
                epoch_clocks=n_chunks if mcast_spec is not None else 0,
            )
        for rank in grid:
            recv, send = links[rank]
            if mcast_spec is not None:
                recv = send = None  # epochs replace the pipe tokens
            task = WorkerTask(
                rank=rank,
                compiled_blob=blob,
                specs=pool.specs,
                chunks=chunks_by_rank[rank],
                recv=recv,
                send=send,
                timeout=timeout,
                chunk_dim=plan.chunk_dim,
                boundary_rows=plan.boundary_rows,
                trace=obs.enabled,
                sanitize=shadow.spec if shadow is not None else None,
                mcast=mcast_spec,
                mcast_sems=(
                    mcast_fabric.sems if mcast_fabric is not None else None
                ),
                peer=pred_by_rank.get(rank),
            )
            proc = ctx.Process(
                target=run_worker,
                args=(task, barrier, results),
                name=f"repro-worker-{rank}",
            )
            proc.start()
            procs.append(proc)
        obs.add_span("spawn", "setup", spawn_start, time.perf_counter())

        try:
            with obs.span("barrier", "sync"):
                barrier.wait(timeout=timeout)
        except Exception as exc:
            detail = ""
            try:
                while True:
                    status, rank, payload = results.get(timeout=1.0)
                    if status == "error":
                        detail = f"\nworker {rank}:\n{payload}"
                        break
            except Exception:
                pass
            raise MachineError(f"workers failed to start: {exc}{detail}") from exc
        setup_time = time.perf_counter() - setup_start

        outcomes: dict[int, float] = {}
        for _ in range(grid.size):
            try:
                status, rank, payload = results.get(timeout=timeout)
            except Exception as exc:
                raise MachineError(
                    f"lost contact with {grid.size - len(outcomes)} worker(s) "
                    f"after {timeout:.0f}s"
                ) from exc
            if status != "ok":
                # Raise on the first failure: downstream stages are blocked
                # on tokens that will never arrive, so waiting out their
                # timeouts only delays this traceback.  The finally block
                # terminates the stragglers.
                if "SanitizerError" in str(payload):
                    raise SanitizerError(
                        f"worker {rank} detected a wavefront race:\n{payload}"
                    )
                raise MachineError(f"worker {rank} failed:\n{payload}")
            outcomes[rank] = payload["elapsed"]
            obs.absorb(payload["events"])
        for proc in procs:
            proc.join(timeout=timeout)
        with obs.span("gather", "setup"):
            pool.gather()
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        if shadow is not None:
            shadow.release()
        if mcast_fabric is not None:
            mcast_fabric.release()
        if bpool is not None:
            bpool.release()
        pool.release()

    worker_times = tuple(outcomes[rank] for rank in grid)
    trace = None
    if obs.enabled:
        region = plan.region
        trace = Trace.from_tracer(
            obs,
            clock="wall",
            meta={
                "backend": "parallel",
                "schedule": schedule,
                "grid": list(grid.dims),
                "n_procs": grid.size,
                # Stages per pipeline chain (rank-2 grids run dims[1]
                # independent chains of dims[0] stages each).
                "pipeline_procs": grid.dims[0],
                "block_size": block_size,
                "n_chunks": n_chunks,
                "rows": region.extent(plan.wavefront_dim),
                "cols": (
                    region.extent(plan.chunk_dim)
                    if plan.chunk_dim is not None
                    else 1
                ),
                "boundary_rows": plan.boundary_rows,
                "halo_rows": plan.halo_rows,
                "wavefront_dim": plan.wavefront_dim,
                "chunk_dim": plan.chunk_dim,
                "wall_time": max(worker_times),
                "setup_time": setup_time,
                "sanitize": bool(sanitize),
                "fabric": fabric,
                "fanout": groups.max_fanout if groups is not None else 1,
            },
        )
    return ParallelRun(
        schedule=schedule,
        grid_dims=grid.dims,
        block_size=block_size,
        n_chunks=n_chunks,
        wall_time=max(worker_times),
        worker_times=worker_times,
        setup_time=setup_time,
        plan=plan,
        trace=trace,
        fabric=fabric,
    )


def _execute_taskgraph(
    compiled: CompiledScan,
    grid: ProcessorGrid,
    *,
    block: int | None,
    wavefront_dim: int | None,
    start_method: str | None,
    timeout: float,
    tracer,
    sanitize: bool,
) -> ParallelRun:
    """The fork-per-run ``schedule="taskgraph"`` backend.

    Same sharing/fork/barrier/result skeleton as the pipelined path, but
    instead of a static token fabric the workers share one scheduler
    segment (:class:`repro.parallel.taskgraph.TaskgraphState`) and fire
    tiles of the pruned dependence DAG (:mod:`repro.compiler.taskdag`) as
    their predecessors complete.  ``sanitize`` swaps the pipelined shadow
    for the scheduler's enqueue-evidence + completion-stamp checks, and
    honours the ``early-fire`` injection of ``REPRO_SANITIZE_INJECT``.
    """
    from repro.compiler.taskdag import derive_taskgraph
    from repro.parallel.taskgraph import (
        TaskgraphState,
        make_locks,
        report_from_stats,
        resolve_oversub,
    )

    if grid.rank != 1:
        raise MachineError(
            "schedule=\"taskgraph\" runs on rank-1 grids: the scheduler "
            "itself spreads work along the chunk dimension"
        )
    plan = plan_wavefront(compiled, wavefront_dim)
    dist = _build_distribution(plan, grid)
    if block is not None:
        if block < 1:
            raise MachineError(f"block size must be >= 1, got {block}")
        oversub, block_size = resolve_oversub(), block
    else:
        from repro.parallel.autotune import taskgraph_tiling

        oversub, block_size = taskgraph_tiling(
            compiled, grid.dims[0], plan=plan
        )

    if os.environ.get("REPRO_CERTIFY", "") not in ("", "0"):
        from repro.analyze.certify import certify_execution

        certify_execution(
            compiled,
            schedule="taskgraph",
            grid=grid,
            block=block_size,
            wavefront_dim=wavefront_dim,
            oversub=oversub,
        )

    obs = resolve_tracer(tracer)
    setup_start = time.perf_counter()
    with obs.span("prepare", "setup"):
        compiled.prepare()
    with obs.span("taskdag", "setup"):
        graph = derive_taskgraph(
            compiled,
            plan,
            [dist.local_region(rank) for rank in grid],
            oversub,
            block_size,
        )
    inject = None
    if sanitize:
        from repro.analyze.sanitizer import INJECT_ENV, parse_inject

        inject = parse_inject(os.environ.get(INJECT_ENV))
        if inject is not None and inject[0] != "early-fire":
            inject = None  # early-release faults target the pipelined shadow
    with obs.span("share", "setup"):
        pool = SharedArrayPool(compiled)
    state = TaskgraphState(graph, grid.size, inject=inject)
    procs: list[mp.process.BaseProcess] = []
    try:
        spawn_start = time.perf_counter()
        blob = pickle.dumps(compiled)
        ctx = _context(start_method)
        locks = make_locks(ctx, grid.size)
        spec = state.spec(graph, grid.size, sanitize)
        barrier = ctx.Barrier(grid.size + 1)
        results = ctx.Queue()
        for rank in grid:
            task = WorkerTask(
                rank=rank,
                compiled_blob=blob,
                specs=pool.specs,
                chunks=(),
                recv=None,
                send=None,
                timeout=timeout,
                chunk_dim=plan.chunk_dim,
                boundary_rows=plan.boundary_rows,
                trace=obs.enabled,
                taskgraph=spec,
                tg_locks=locks,
            )
            proc = ctx.Process(
                target=run_worker,
                args=(task, barrier, results),
                name=f"repro-worker-{rank}",
            )
            proc.start()
            procs.append(proc)
        obs.add_span("spawn", "setup", spawn_start, time.perf_counter())

        try:
            with obs.span("barrier", "sync"):
                barrier.wait(timeout=timeout)
        except Exception as exc:
            detail = ""
            try:
                while True:
                    status, rank, payload = results.get(timeout=1.0)
                    if status == "error":
                        detail = f"\nworker {rank}:\n{payload}"
                        break
            except Exception:
                pass
            raise MachineError(f"workers failed to start: {exc}{detail}") from exc
        setup_time = time.perf_counter() - setup_start

        outcomes: dict[int, float] = {}
        run_stats: dict[int, dict] = {}
        for _ in range(grid.size):
            try:
                status, rank, payload = results.get(timeout=timeout)
            except Exception as exc:
                raise MachineError(
                    f"lost contact with {grid.size - len(outcomes)} worker(s) "
                    f"after {timeout:.0f}s"
                ) from exc
            if status != "ok":
                if "SanitizerError" in str(payload):
                    raise SanitizerError(
                        f"worker {rank} detected a taskgraph protocol "
                        f"violation:\n{payload}"
                    )
                raise MachineError(f"worker {rank} failed:\n{payload}")
            outcomes[rank] = payload["elapsed"]
            run_stats[rank] = payload.get("stats") or {}
            obs.absorb(payload["events"])
        for proc in procs:
            proc.join(timeout=timeout)
        with obs.span("gather", "setup"):
            pool.gather()
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        state.release()
        pool.release()

    worker_times = tuple(outcomes[rank] for rank in grid)
    report = report_from_stats(graph, run_stats)
    trace = None
    if obs.enabled:
        region = plan.region
        trace = Trace.from_tracer(
            obs,
            clock="wall",
            meta={
                "backend": "parallel",
                "schedule": "taskgraph",
                "grid": list(grid.dims),
                "n_procs": grid.size,
                "block_size": block_size,
                "oversub": oversub,
                "n_tasks": graph.n_live,
                "n_pruned": graph.n_pruned,
                "n_edges": graph.n_edges,
                "steals": report.steals,
                "rows": region.extent(plan.wavefront_dim),
                "cols": (
                    region.extent(plan.chunk_dim)
                    if plan.chunk_dim is not None
                    else 1
                ),
                "wavefront_dim": plan.wavefront_dim,
                "chunk_dim": plan.chunk_dim,
                "wall_time": max(worker_times),
                "setup_time": setup_time,
                "sanitize": bool(sanitize),
            },
        )
    return ParallelRun(
        schedule="taskgraph",
        grid_dims=grid.dims,
        block_size=block_size,
        n_chunks=graph.n_live,
        wall_time=max(worker_times),
        worker_times=worker_times,
        setup_time=setup_time,
        plan=plan,
        trace=trace,
        taskgraph=report,
    )
