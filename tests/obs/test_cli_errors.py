"""Broken trace files must fail with one clear line, not a traceback."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main


def _run(capsys, *argv) -> tuple[int, str, str]:
    rc = main(list(argv))
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


@pytest.mark.parametrize("command", ["summarize", "export", "residuals"])
class TestBrokenTraceFiles:
    def test_missing_file(self, command, tmp_path, capsys):
        path = tmp_path / "nope.json"
        rc, out, err = _run(capsys, command, str(path))
        assert rc == 1
        assert err.startswith("error: ")
        assert "not found" in err
        assert str(path) in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_empty_file(self, command, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("")
        rc, out, err = _run(capsys, command, str(path))
        assert rc == 1
        assert "empty" in err
        assert len(err.strip().splitlines()) == 1

    def test_truncated_json(self, command, tmp_path, capsys):
        path = tmp_path / "cut.json"
        path.write_text('{"schema": "repro-trace/1", "spans": [{"name": ')
        rc, out, err = _run(capsys, command, str(path))
        assert rc == 1
        assert "truncated or corrupt" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_wrong_schema(self, command, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"what": "not a trace"}))
        rc, out, err = _run(capsys, command, str(path))
        assert rc == 1
        assert "not a repro trace" in err

    def test_directory_instead_of_file(self, command, tmp_path, capsys):
        rc, out, err = _run(capsys, command, str(tmp_path))
        assert rc == 1
        assert "directory" in err


def test_error_goes_to_stderr_not_stdout(tmp_path, capsys):
    rc, out, err = _run(capsys, "summarize", str(tmp_path / "gone.json"))
    assert rc == 1
    assert out == ""
    assert err


def test_valid_trace_still_works(tmp_path, capsys):
    from repro.obs.capture import capture_simulator

    _, trace = capture_simulator(n=32, procs=2)
    path = trace.save(tmp_path / "ok.json")
    rc, out, err = _run(capsys, "summarize", str(path))
    assert rc == 0
    assert err == ""
