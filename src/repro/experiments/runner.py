"""CLI driver: regenerate any (or all) of the paper's tables and figures.

Usage::

    python -m repro.experiments            # everything, paper scale
    python -m repro.experiments --quick    # everything, small problems
    python -m repro.experiments fig5a fig7 # selected experiments
    repro-experiments --list               # what exists
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    examples_wsv,
    fig3_semantics,
    fig4_illustration,
    fig5a_model_vs_sim,
    fig5b_model_worstcase,
    fig6_cache,
    fig7_pipeline_speedup,
    loc_table,
    table_suite,
)
from repro.experiments.common import ExperimentInfo

#: Registry, in paper order.
EXPERIMENTS: tuple[ExperimentInfo, ...] = (
    ExperimentInfo("fig3", fig3_semantics.DESCRIPTION, fig3_semantics.run),
    ExperimentInfo("examples", examples_wsv.DESCRIPTION, examples_wsv.run),
    ExperimentInfo("fig4", fig4_illustration.DESCRIPTION, fig4_illustration.run),
    ExperimentInfo("fig5a", fig5a_model_vs_sim.DESCRIPTION, fig5a_model_vs_sim.run),
    ExperimentInfo("fig5b", fig5b_model_worstcase.DESCRIPTION, fig5b_model_worstcase.run),
    ExperimentInfo("fig6", fig6_cache.DESCRIPTION, fig6_cache.run),
    ExperimentInfo("fig7", fig7_pipeline_speedup.DESCRIPTION, fig7_pipeline_speedup.run),
    ExperimentInfo("loc", loc_table.DESCRIPTION, loc_table.run),
    ExperimentInfo("suite", table_suite.DESCRIPTION, table_suite.run),
)


def get(name: str) -> ExperimentInfo:
    """Look up one experiment by name."""
    for info in EXPERIMENTS:
        if info.name == name:
            return info
    raise KeyError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="experiments to run (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small problem sizes (smoke run)"
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also append every report to FILE",
    )
    args = parser.parse_args(argv)

    if args.list:
        for info in EXPERIMENTS:
            print(f"{info.name:10s} {info.description}")
        return 0

    names = args.names or [info.name for info in EXPERIMENTS]
    for name in names:
        try:
            info = get(name)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        start = time.perf_counter()
        result = info.run(quick=args.quick)
        elapsed = time.perf_counter() - start
        report = result.report()
        print(report)
        print(f"\n[{info.name} regenerated in {elapsed:.1f}s]\n")
        if args.out:
            with open(args.out, "a", encoding="utf-8") as handle:
                handle.write(report)
                handle.write(f"\n[{info.name} regenerated in {elapsed:.1f}s]\n\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
