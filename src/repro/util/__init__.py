"""Shared utilities: validation helpers, ASCII reporting, timers, artifacts."""

from repro.util.benchjson import read_bench, write_bench
from repro.util.validation import (
    check_int,
    check_positive_int,
    check_nonnegative,
    check_positive,
    check_tuple_of_int,
)
from repro.util.tables import Table, Series, format_bar_chart
from repro.util.timing import WallTimer

__all__ = [
    "check_int",
    "check_positive_int",
    "check_nonnegative",
    "check_positive",
    "check_tuple_of_int",
    "Table",
    "Series",
    "format_bar_chart",
    "WallTimer",
    "read_bench",
    "write_bench",
]
