"""Every diagnostic code fires, with span and fix-it hint where promised.

The legality codes double-check the exception parity satellite: for each of
the Section 2.2 conditions (i)-(v), ``check_scan_block`` raises exactly the
documented exception class with the same ``Diagnostic`` attached.
"""

import numpy as np
import pytest

from repro import zpl
from repro.analyze.passes import (
    explain_program,
    explain_skew,
    lint_block,
    lint_program,
    pipeline_hazard,
    redundant_primes,
)
from repro.compiler.legality import check_scan_block, legality_diagnostics
from repro.compiler.loopstruct import derive_loop_structure
from repro.errors import (
    OverconstrainedScanError,
    ParallelPrimeError,
    RankMismatchError,
    RegionMismatchError,
    UndefinedPrimeError,
)
from repro.zpl import NORTH, Region, ZArray
from repro.zpl.parser import parse_program


def env(n=16, names=("a", "b", "c"), fill=0.5):
    region = Region.square(1, n)
    return {
        name: ZArray(region, name=name, fill=fill) for name in names
    }


def lint(source, arrays=None, n=16, **constants):
    program = parse_program(
        source, arrays if arrays is not None else env(n),
        constants={"n": n, **constants}, filename="t.zpl",
    )
    return program, lint_program(program)


def codes(diagnostics):
    return [d.code for d in diagnostics]


def only(diagnostics, code):
    found = [d for d in diagnostics if d.code == code]
    assert found, f"no {code} in {codes(diagnostics)}"
    return found[0]


# --------------------------------------------------------------------------
# Legality: the five conditions, with span + hint + matching exception.
# --------------------------------------------------------------------------
def test_e001_condition_i_undefined_prime():
    program, out = lint("[2..n, 1..n] scan  a := b'@north;  end;")
    d = only(out, "E001")
    assert d.span is not None and d.hint
    assert "never defines" in d.message
    block = program.scan_blocks()[0]
    with pytest.raises(UndefinedPrimeError) as exc:
        check_scan_block(block)
    assert exc.value.diagnostic.code == "E001"


def test_e002_condition_ii_overconstrained():
    program, out = lint(
        "[2..n-1, 1..n] scan  a := a'@north + a'@south;  end;"
    )
    d = only(out, "E002")
    assert d.span is not None and d.hint
    assert any(b.kind == "udv" for b in d.because)
    # The loop-structure search raises the same code on its exception.
    block = program.scan_blocks()[0]
    from repro.compiler.udv import (
        constraint_vectors,
        extract_dependences,
        true_vectors,
    )
    from repro.compiler.wsv import classify

    deps = extract_dependences(block.statements)
    with pytest.raises(OverconstrainedScanError) as exc:
        derive_loop_structure(
            constraint_vectors(deps),
            classify(true_vectors(deps), 2),
            2,
        )
    assert exc.value.diagnostic.code == "E002"


def test_e003_condition_iii_rank_mismatch():
    arrays = env()
    arrays["v"] = ZArray(Region.of((1, 16)), name="v", fill=0.5)
    program, out = lint(
        "[2..n, 1..n] scan  a := a'@north;  [2..n] v := v@(-1);  end;",
        arrays=arrays,
    )
    d = only(out, "E003")
    assert d.span is not None and d.hint
    with pytest.raises(RankMismatchError) as exc:
        check_scan_block(program.scan_blocks()[0])
    assert exc.value.diagnostic.code == "E003"


def test_e004_condition_iv_region_mismatch():
    program, out = lint(
        "[2..n, 1..n] scan  a := a'@north;  [3..n, 1..n] b := a;  end;"
    )
    d = only(out, "E004")
    assert d.span is not None and d.hint
    with pytest.raises(RegionMismatchError) as exc:
        check_scan_block(program.scan_blocks()[0])
    assert exc.value.diagnostic.code == "E004"


def test_e005_condition_v_parallel_primed_operand():
    # Reductions have no textual syntax; record the block through the DSL.
    a = ZArray(Region.square(1, 12), name="a", fill=0.5)
    with zpl.covering(Region.of((2, 12), (1, 12))):
        with zpl.scan(execute=False) as block:
            a[...] = zpl.zsum(a.p @ NORTH)
    out = lint_block(block)
    d = only(out, "E005")
    assert d.hint
    assert "parallel operator" in d.message
    with pytest.raises(ParallelPrimeError) as exc:
        check_scan_block(block)
    assert exc.value.diagnostic.code == "E005"


def test_e006_unshifted_prime():
    _, out = lint("[2..n, 1..n] scan  a := a';  end;")
    d = only(out, "E006")
    assert d.span is not None and d.hint
    assert "without a shift" in d.message


def test_e007_written_mask():
    _, out = lint(
        "[2..n, 1..n with c] scan  c := a'@north;  a := a'@north;  end;",
        arrays=env(fill=1.0),
    )
    d = only(out, "E007")
    assert d.span is not None and d.hint


def test_e008_hoisted_op_reads_block_output():
    a = ZArray(Region.square(1, 12), name="a", fill=0.5)
    b = ZArray(Region.square(1, 12), name="b", fill=0.5)
    with zpl.covering(Region.of((2, 12), (1, 12))):
        with zpl.scan(execute=False) as block:
            a[...] = a.p @ NORTH
            b[...] = zpl.zsum(a)
    out = lint_block(block)
    d = only(out, "E008")
    assert d.hint
    assert "cannot be hoisted" in d.message


def test_e009_empty_block():
    _, out = lint("[2..n, 1..n] scan  end;")
    d = only(out, "E009")
    assert d.hint


# --------------------------------------------------------------------------
# Lints.
# --------------------------------------------------------------------------
def test_w101_unused_array():
    _, out = lint("[2..n, 1..n] scan  a := a'@north;  end;")
    unused = sorted(d.data["array"] for d in out if d.code == "W101")
    assert unused == ["b", "c"]


def test_w102_w103_unused_region_and_direction():
    _, out = lint(
        "direction diag = (-1, -1);\n"
        "region DEAD = [1..n, 1..n];\n"
        "[2..n, 1..n] scan  a := a'@north;  end;"
    )
    assert only(out, "W102").data["region"] == "DEAD"
    assert only(out, "W102").span is not None
    assert only(out, "W103").data["direction"] == "diag"


def test_w102_not_flagged_when_used():
    _, out = lint(
        "region R = [2..n, 1..n];\n[R] scan  a := a'@north;  end;"
    )
    assert "W102" not in codes(out)


def test_w104_redundant_prime():
    _, out = lint(
        "[2..n, 1..n] scan  a := a'@north;  b := a'@north;  end;"
    )
    d = only(out, "W104")
    assert d.span is not None and d.hint == "drop the prime"
    assert d.data["statement"] == 1
    # The load-bearing prime on statement 0 is not flagged.
    assert len([x for x in out if x.code == "W104"]) == 1


def test_w104_not_flagged_for_same_or_later_writer():
    # Self-prime (writer at the same statement) is load-bearing.
    _, out = lint("[2..n, 1..n] scan  a := a'@north;  end;")
    assert "W104" not in codes(out)
    # A read of b' whose writer comes later is load-bearing too; only the
    # statement-1 read of a' (all writes of a are earlier) is redundant.
    _, out = lint(
        "[2..n, 1..n] scan  a := b'@north;  b := a'@north;  end;"
    )
    flagged = [d for d in out if d.code == "W104"]
    assert [(d.data["array"], d.data["statement"]) for d in flagged] == [
        ("a", 1)
    ]


def test_w105_dead_mask():
    arrays = env(fill=0.5)
    arrays["c"].load(np.zeros((16, 16)))
    _, out = lint(
        "[2..n, 1..n with c] scan  a := a'@north;  end;", arrays=arrays
    )
    d = only(out, "W105")
    assert d.span is not None and "never assigns" in d.message


def test_w105_not_flagged_when_mask_nonzero_or_assigned():
    _, out = lint(
        "[2..n, 1..n with c] scan  a := a'@north;  end;",
        arrays=env(fill=1.0),
    )
    assert "W105" not in codes(out)
    arrays = env(fill=0.0)
    _, out = lint(
        "[1..n, 1..n] c := 1.0;\n"
        "[2..n, 1..n with c] scan  a := a'@north;  end;",
        arrays=arrays,
    )
    assert "W105" not in codes(out)


def test_w106_dead_store():
    _, out = lint("[1..n, 1..n] a := 1.0;\n[1..n, 1..n] a := 2.0;")
    d = only(out, "W106")
    assert d.span is not None and d.hint == "delete this statement"
    assert d.labels and d.labels[0].message == "overwritten here"


def test_w106_not_flagged_when_read_between():
    _, out = lint(
        "[1..n, 1..n] a := 1.0;\n"
        "[1..n, 1..n] b := a;\n"
        "[1..n, 1..n] a := 2.0;"
    )
    assert "W106" not in codes(out)


def test_w107_pipeline_hazard_small_problem():
    program, out = lint("[2..n, 1..n] scan  a := a'@north;  end;")
    d = only(out, "W107")
    assert d.span is not None and d.data["speedup"] < 1.1
    assert any(b.kind == "model" for b in d.because)


def test_w107_quiet_on_large_problem():
    n = 512
    arrays = {"a": ZArray(Region.square(1, n), name="a", fill=0.5)}
    _, out = lint(
        "[2..n, 1..n] scan  a := a'@north;  end;", arrays=arrays, n=n
    )
    assert "W107" not in codes(out)


def _masked_lint(mask_values, n=16):
    arrays = env(n)
    arrays["c"].load(mask_values)
    return lint(
        "[2..n, 1..n with c] scan  a := a'@north;  end;", arrays=arrays, n=n
    )


def test_w108_dead_fraction_recommends_taskgraph():
    # Banded mask: the corner tiles are entirely outside the band, so the
    # taskgraph pruner would skip them — the dead-fraction branch.
    n = 16
    band = np.fromfunction(
        lambda i, j: (np.abs(i - j) <= 2).astype(float), (n, n)
    )
    _, out = _masked_lint(band)
    d = only(out, "W108")
    assert d.data["branch"] == "dead-fraction"
    assert d.data["dead_fraction"] >= 0.25
    assert "taskgraph" in d.hint


def test_w108_cost_variance_recommends_taskgraph():
    # Every analysis tile has live work (no pruning win), but the density
    # gradient leaves the static pipelined shares unbalanced.
    n = 16
    grad = np.zeros((n, n))
    grad[::2, ::2] = 1.0
    grad[:8, :8] = 1.0
    _, out = _masked_lint(grad)
    d = only(out, "W108")
    assert d.data["branch"] == "cost-variance"
    assert d.data["dead_fraction"] < 0.25
    assert d.data["cost_cv"] >= 0.5


def test_w108_quiet_on_uniform_mask_and_unmasked_block():
    n = 16
    _, out = _masked_lint(np.ones((n, n)))
    assert "W108" not in codes(out)
    _, out = lint("[2..n, 1..n] scan  a := a'@north;  end;")
    assert "W108" not in codes(out)


def test_w109_forced_multicast_on_fanout_one(monkeypatch):
    # A single-stream block projects a straight chain (fan-out 1): forcing
    # the epoch fabric over it is pure overhead, and the advisor says so.
    monkeypatch.setenv("REPRO_MULTICAST", "1")
    _, out = lint("[2..n, 1..n] scan  a := a'@north;  end;")
    d = only(out, "W109")
    assert d.data["max_fanout"] < 2
    assert "REPRO_MULTICAST" in d.hint or "REPRO_MULTICAST" in d.message
    assert any(b.kind == "model" for b in d.because)


def test_w109_quiet_without_the_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_MULTICAST", raising=False)
    _, out = lint("[2..n, 1..n] scan  a := a'@north;  end;")
    assert "W109" not in codes(out)
    monkeypatch.setenv("REPRO_MULTICAST", "auto")
    _, out = lint("[2..n, 1..n] scan  a := a'@north;  end;")
    assert "W109" not in codes(out)


def test_boundary_rows_default_counts_primed_arrays():
    program, _ = lint(
        "[2..n, 1..n] scan  a := a'@north;  b := b'@north + a'@north; end;"
    )
    d = pipeline_hazard(program.scan_blocks()[0].statements)[0]
    assert d.data["boundary_rows"] == 2


# --------------------------------------------------------------------------
# Explanations.
# --------------------------------------------------------------------------
def test_i301_fusion_blocked_by_region_mismatch():
    program = parse_program(
        "[1..n, 1..n] a := b;\n[2..n, 1..n] b := 1.0;",
        env(), constants={"n": 16}, filename="t.zpl",
    )
    d = only(explain_program(program), "I301")
    assert "regions differ" in d.message and d.span is not None


def test_i302_single_stream_is_flat():
    program, _ = lint("[2..n, 1..n] scan  a := a'@north;  end;")
    d = only(explain_program(program), "I302")
    assert "only 1 looped dimension" in d.message


def test_i302_dp_recurrence_skew_eligible():
    source = (
        "[2..n, 2..n] scan\n"
        "  a := max(a'@(-1,-1) + b, max(a'@(-1,0), a'@(0,-1)) - 0.5);\n"
        "end;"
    )
    program, _ = lint(source)
    d = only(explain_program(program), "I302")
    assert "skew eligible" in d.message
    assert d.data["tau"]


def test_lint_never_mutates_arrays():
    arrays = env(fill=0.5)
    before = {name: arr.to_numpy().copy() for name, arr in arrays.items()}
    program = parse_program(
        "[1..n, 1..n] a := 1.0;\n"
        "[2..n, 1..n with c] scan  b := b'@north + a;  end;",
        arrays, constants={"n": 16},
    )
    lint_program(program)
    explain_program(program)
    for name, arr in arrays.items():
        np.testing.assert_array_equal(arr.to_numpy(), before[name])


def test_errors_suppress_block_lints():
    # A block that fails legality reports the error, not noise lints.
    _, out = lint("[2..n, 1..n] scan  a := b'@north;  end;")
    assert "E001" in codes(out)
    assert "W104" not in codes(out) and "W107" not in codes(out)
