"""Trace-context propagation and critical-path extraction.

A request id is minted once, in :mod:`repro.serve`, when a request is
admitted.  From there it must survive three hand-offs to reach the spans
that actually did the work:

1. **event loop → batcher**: the coalescing window gathers several ids
   into one batch; the batch's :class:`RequestContext` carries all of them.
2. **event loop → backend thread**: ``loop.run_in_executor`` does *not*
   propagate :mod:`contextvars` into the worker thread, so the batcher
   wraps the backend call in :func:`run_with_context` explicitly.
3. **parent → pool workers**: the pool reads :func:`current_context` at
   dispatch, stamps the ids onto the job, and workers tag every per-block
   span with them.

The result is one id visible on ``serve_request`` → ``serve_batch`` →
``dispatch`` → per-block ``compute`` spans, which is what
:func:`critical_path` walks: starting from the last block to finish, it
follows whichever dependency (the serial predecessor on the same worker,
or the upstream token producer) finished later — the chain of spans that
actually bound the request's latency.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.trace import Span, Trace


@dataclass(frozen=True)
class RequestContext:
    """The ids of the serve requests a unit of work is acting for."""

    rids: tuple[int, ...]
    batch: int | None = None

    def tags(self) -> dict:
        """Span-args form: stamp these onto every downstream span."""
        out = {"rids": list(self.rids)}
        if self.batch is not None:
            out["batch"] = self.batch
        return out


_CONTEXT: contextvars.ContextVar[RequestContext | None] = (
    contextvars.ContextVar("repro_request_context", default=None)
)


def current_context() -> RequestContext | None:
    """The request context active in this thread/task, if any."""
    return _CONTEXT.get()


@contextmanager
def request_context(ctx: RequestContext | None):
    """Bind ``ctx`` as the active request context for the ``with`` body."""
    token = _CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT.reset(token)


def run_with_context(ctx: RequestContext | None, fn: Callable, *args, **kwargs):
    """Call ``fn`` with ``ctx`` bound.

    The explicit thread hand-off: ``loop.run_in_executor`` copies the
    *submitting* context only for the callable's closure, not for the
    executor thread's ContextVar state, so the batcher routes backend
    calls through this shim.
    """
    with request_context(ctx):
        return fn(*args, **kwargs)


def current_tags() -> dict:
    """Span args for the active context, or ``{}`` when outside a request."""
    ctx = _CONTEXT.get()
    return ctx.tags() if ctx is not None else {}


# ---------------------------------------------------------------------------
# Request extraction and critical path
# ---------------------------------------------------------------------------

def span_rids(span: Span) -> tuple:
    """The request ids a span acted for (empty when untagged)."""
    rids = span.args.get("rids")
    if rids:
        return tuple(rids)
    rid = span.args.get("id")
    if rid is not None and span.name == "serve_request":
        return (rid,)
    return ()


@dataclass
class RequestSlice:
    """Every span a single request id touched, grouped by layer."""

    rid: int
    request: Span | None = None
    batches: list[Span] = field(default_factory=list)
    dispatches: list[Span] = field(default_factory=list)
    blocks: list[Span] = field(default_factory=list)

    @property
    def wall(self) -> float:
        return self.request.duration if self.request is not None else 0.0


def request_slice(trace: Trace, rid: int) -> RequestSlice:
    """Collect the spans carrying ``rid`` across serve, batch, and pool."""
    out = RequestSlice(rid=rid)
    for span in trace.spans:
        if rid not in span_rids(span):
            continue
        if span.name == "serve_request":
            out.request = span
        elif span.name == "serve_batch":
            out.batches.append(span)
        elif span.name == "dispatch":
            out.dispatches.append(span)
        elif span.name == "compute" and "block" in span.args:
            out.blocks.append(span)
    return out


def block_spans(trace: Trace, rid: int | None = None) -> list[Span]:
    """Per-block compute spans, optionally filtered to one request id."""
    out = []
    for span in trace.spans:
        if span.name != "compute" or "block" not in span.args:
            continue
        if rid is not None and rid not in span_rids(span):
            continue
        out.append(span)
    return out


def critical_path(trace: Trace, rid: int | None = None) -> list[Span]:
    """The dependency chain of block spans that bounded completion.

    Walks backwards from the last block to finish.  A block ``(p, k)``
    depends on its serial predecessor ``(p, k-1)`` on the same worker and
    on the token producer ``(p-1, k)`` upstream; the walk follows
    whichever finished later, i.e. the edge that actually gated the
    block's start.  Returns spans in execution order; the summed duration
    is a lower bound on — and never exceeds — the request wall time.
    """
    blocks = block_spans(trace, rid)
    if not blocks:
        return []
    by_key: dict[tuple, Span] = {}
    for span in blocks:
        key = (span.proc, span.args["block"])
        prior = by_key.get(key)
        if prior is None or span.end > prior.end:
            by_key[key] = span
    procs = sorted({p for p, _ in by_key})
    upstream = {p: (procs[i - 1] if i else None) for i, p in enumerate(procs)}

    cur = max(by_key.values(), key=lambda s: s.end)
    path = [cur]
    while True:
        p, k = cur.proc, cur.args["block"]
        preds = [by_key.get((p, k - 1))]
        if upstream[p] is not None:
            preds.append(by_key.get((upstream[p], k)))
        preds = [s for s in preds if s is not None and s is not cur]
        if not preds:
            break
        cur = max(preds, key=lambda s: s.end)
        path.append(cur)
    path.reverse()
    return path


def path_duration(path: list[Span]) -> float:
    """Total busy time along a critical path (gaps excluded)."""
    return sum(span.duration for span in path)
