"""Loop-structure derivation: choosing the loop nest that implements a group.

Given the unconstrained distance vectors of a fused statement group, the
compiler picks a *loop structure*: an ordering of the data-space dimensions
(outermost to innermost) and a traversal sign per dimension (+1 ascending,
-1 descending).  A structure is legal when every nonzero UDV becomes
lexicographically positive: reading its components in loop order, each
multiplied by the dimension's sign, the first nonzero component is positive.

This is the algorithm of the paper's Section 3.1 (after Lewis, Lin & Snyder):
because a UDV constrains only the *first* dimension in loop order where it is
nonzero, a candidate ordering induces a unique sign requirement per dimension,
and the ordering is legal iff no dimension receives contradictory
requirements.  The search enumerates orderings most-preferred first:

* serial dimensions outermost (they carry contradictory dependences that an
  enclosing loop must resolve — when legality allows),
* pipelined (wavefront) dimensions next,
* completely parallel dimensions innermost (they vectorise),
* ties broken left to right, ascending traversal preferred.

Over-constrained groups — e.g. primed ``@north`` with primed ``@south`` —
have no legal structure and raise :class:`OverconstrainedScanError`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.errors import OverconstrainedScanError
from repro.compiler.wsv import DimClass
from repro.zpl.regions import Region


@dataclass(frozen=True)
class LoopStructure:
    """A derived loop nest shape.

    ``order``   — dimensions outermost to innermost;
    ``signs``   — traversal per *dimension index* (+1 ascending, -1 descending);
    ``classes`` — parallelism class per dimension (see :class:`DimClass`).
    """

    order: tuple[int, ...]
    signs: tuple[int, ...]
    classes: tuple[DimClass, ...]

    @property
    def rank(self) -> int:
        return len(self.order)

    @property
    def parallel_dims(self) -> tuple[int, ...]:
        """Dimensions with no wavefront component (completely parallel)."""
        return tuple(
            k for k, c in enumerate(self.classes) if c is DimClass.PARALLEL
        )

    @property
    def wavefront_dims(self) -> tuple[int, ...]:
        """Dimensions along which the wavefront travels (pipelining pays)."""
        return tuple(
            k for k, c in enumerate(self.classes) if c is DimClass.PIPELINED
        )

    @property
    def serial_dims(self) -> tuple[int, ...]:
        """Dimensions iterated purely sequentially."""
        return tuple(k for k, c in enumerate(self.classes) if c is DimClass.SERIAL)

    def indices(self, region: Region, dim: int) -> range:
        """Iteration range for one dimension, honouring the traversal sign."""
        return region.indices(dim, reverse=self.signs[dim] < 0)

    def respects(self, vector: Sequence[int]) -> bool:
        """True when ``vector`` is lexicographically non-negative under self."""
        for dim in self.order:
            component = self.signs[dim] * vector[dim]
            if component > 0:
                return True
            if component < 0:
                return False
        return True  # the zero vector: loop-independent

    def __repr__(self) -> str:
        loops = ", ".join(
            f"dim{d}{'^' if self.signs[d] > 0 else 'v'}({self.classes[d].value})"
            for d in self.order
        )
        return f"LoopStructure[{loops}]"


def _required_signs(
    order: Sequence[int], vectors: Sequence[Sequence[int]], rank: int
) -> tuple[int, ...] | None:
    """Sign requirements induced by ``order``; None when contradictory."""
    required = [0] * rank  # 0 = unconstrained
    for v in vectors:
        for dim in order:
            if v[dim] != 0:
                need = 1 if v[dim] > 0 else -1
                if required[dim] == 0:
                    required[dim] = need
                elif required[dim] != need:
                    return None
                break
    return tuple(s if s != 0 else 1 for s in required)


def _order_preference(order: Sequence[int], classes: Sequence[DimClass]) -> tuple:
    """Sort key: serial outermost, parallel innermost, then left-to-right."""
    rank_of = {DimClass.SERIAL: 0, DimClass.PIPELINED: 1, DimClass.PARALLEL: 2}
    return (tuple(rank_of[classes[d]] for d in order), tuple(order))


def derive_loop_structure(
    vectors: Sequence[Sequence[int]],
    classes: Sequence[DimClass],
    rank: int,
) -> LoopStructure:
    """Find the most-preferred legal loop structure, or raise.

    ``vectors`` are the nonzero UDV constraints; ``classes`` the per-dimension
    parallelism classification (computed separately from the true dependences
    only — see :func:`repro.compiler.wsv.classify`).
    """
    constraints = [tuple(v) for v in vectors if any(c != 0 for c in v)]
    for v in constraints:
        if len(v) != rank:
            raise ValueError(f"UDV {v} has rank {len(v)}, expected {rank}")
    candidates = sorted(
        itertools.permutations(range(rank)),
        key=lambda order: _order_preference(order, classes),
    )
    for order in candidates:
        signs = _required_signs(order, constraints, rank)
        if signs is not None:
            return LoopStructure(tuple(order), signs, tuple(classes))
    from repro.analyze.diagnostics import Because, Diagnostic

    message = (
        f"no loop nest can respect the dependences {constraints}: the scan "
        f"block is over-constrained (e.g. primed @north with primed @south)"
    )
    exc = OverconstrainedScanError(message)
    exc.diagnostic = Diagnostic(
        "E002",
        message,
        because=tuple(
            Because("udv", f"dependence vector {v} must stay "
                    f"lexicographically positive")
            for v in constraints
        ),
        hint="remove one of the conflicting primed shifts, or split the "
        "block so each part admits a traversal order",
        data={"constraints": [list(v) for v in constraints]},
    )
    raise exc


def legal_structures(
    vectors: Sequence[Sequence[int]],
    classes: Sequence[DimClass],
    rank: int,
):
    """Yield every legal loop structure, in permutation order.

    Loop *interchange* (paper Section 5.1) is a choice among these: the cache
    study picks the legal structure whose innermost dimension is contiguous
    in storage.
    """
    constraints = [tuple(v) for v in vectors if any(c != 0 for c in v)]
    for order in itertools.permutations(range(rank)):
        signs = _required_signs(order, constraints, rank)
        if signs is not None:
            yield LoopStructure(tuple(order), signs, tuple(classes))


def structure_exists(vectors: Sequence[Sequence[int]], rank: int) -> bool:
    """Pure legality test: is any loop structure legal for these UDVs?"""
    constraints = [tuple(v) for v in vectors if any(c != 0 for c in v)]
    return any(
        _required_signs(order, constraints, rank) is not None
        for order in itertools.permutations(range(rank))
    )
