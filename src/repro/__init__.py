"""Pipelining wavefront computations — a full reproduction.

This library reproduces the system of *"Pipelining Wavefront Computations:
Experiences and Performance"* (Lewis & Snyder, IPPS 2000) as described by its
companion paper *"Language Support for Pipelining Wavefront Computations"*
(Chamberlain, Lewis & Snyder): a ZPL-style array language extended with the
**prime operator** and **scan blocks**, a compiler that derives pipelined
loop nests from unconstrained distance vectors, sequential and simulated
distributed runtimes, the α+β block-size performance models, and the paper's
complete experimental campaign (Figs. 3, 5(a), 5(b), 6 and 7).

Quick tour
----------
>>> from repro import zpl
>>> n = 6
>>> R = zpl.Region.of((2, n), (1, n))
>>> a = zpl.ones(zpl.Region.square(1, n))
>>> with zpl.covering(R), zpl.scan():
...     a[...] = 2.0 * (a.p @ zpl.NORTH)       # paper Fig. 3(d)
>>> float(a[(3, 1)])
4.0

Subpackages
-----------
``repro.zpl``        the array language (regions, directions, arrays, scan)
``repro.compiler``   UDVs, wavefront summary vectors, legality, loop structure
``repro.runtime``    sequential engines (scalar oracle, vectorised)
``repro.machine``    simulated distributed machine (naive & pipelined schedules)
``repro.parallel``   real multiprocess backend (shared memory, pipes, autotuner)
``repro.models``     analytic performance models (Model1, Model2, Amdahl)
``repro.cache``      trace-driven cache simulator (uniprocessor study)
``repro.apps``       Tomcatv, SIMPLE hydro, SWEEP3D-style sweep, Jacobi, DP
``repro.experiments`` one module per paper figure/table
"""

from repro import zpl
from repro.errors import (
    ReproError,
    LegalityError,
    OverconstrainedScanError,
    RankMismatchError,
    RegionMismatchError,
    PrimedOperandError,
)

__version__ = "1.0.0"

__all__ = [
    "zpl",
    "ReproError",
    "LegalityError",
    "OverconstrainedScanError",
    "RankMismatchError",
    "RegionMismatchError",
    "PrimedOperandError",
    "__version__",
]
