"""Benchmark-suite configuration.

Every paper figure has a ``test_bench_fig*.py`` regenerating its data under
``pytest-benchmark`` timing; ablation benches cover the design choices
DESIGN.md calls out (block size dynamism, transpose-vs-pipeline, engine
vectorisation, schedule overheads).  Sizes are chosen so the full suite runs
in about a minute: the *figures'* fidelity is asserted in tests/ — here the
benchmark clock measures the harness itself.

Besides pytest-benchmark's console tables, every module's timings are also
written as a machine-readable ``BENCH_<suite>.json`` artifact (see
:mod:`repro.util.benchjson`) at session end — ``test_bench_engines.py``
produces ``BENCH_engines.json``, and so on — so the repository's performance
trajectory can be tracked by tooling across commits.
"""

import pytest

#: Collected pytest-benchmark stats, per suite (module name sans prefix).
_RECORDS: dict[str, list[dict]] = {}


@pytest.fixture
def bench(benchmark, request):
    """A pytest-benchmark handle tuned for fast, stable runs."""
    benchmark._min_rounds = 3
    yield benchmark
    meta = getattr(benchmark, "stats", None)
    if meta is None:  # the test never ran the benchmark body
        return
    stats = meta.stats
    suite = request.module.__name__.removeprefix("test_bench_")
    _RECORDS.setdefault(suite, []).append(
        {
            "test": request.node.name,
            "min_seconds": stats.min,
            "mean_seconds": stats.mean,
            "stddev_seconds": stats.stddev,
            "rounds": stats.rounds,
        }
    )


def pytest_sessionfinish(session, exitstatus):
    """Flush one ``BENCH_<suite>.json`` per benchmarked module."""
    from repro.util.benchjson import write_bench

    for suite, records in sorted(_RECORDS.items()):
        if records:
            write_bench(suite, records)
