"""Shared-memory array storage for the multiprocess backend.

The real backend keeps every global array's storage (declared region plus
fluff) in a :mod:`multiprocessing.shared_memory` segment.  Workers receive a
pickled :class:`~repro.compiler.lowering.CompiledScan` — pickling preserves
object identity within one payload, so every ``Ref`` to the same array stays
one array in the worker — and then *rebind* each array's storage onto the
segment, so reads and writes land in the one true copy.

Because storage is global, a shifted reference that crosses a processor
boundary reads the neighbour's elements directly: messages between workers
carry only synchronisation (the pipeline tokens of
:mod:`repro.parallel.channels`), never data.  This is the natural
shared-memory realisation of the paper's message-passing schedules — the
α cost survives as per-token latency, the β cost as memory traffic.

The array enumeration order must be identical in the parent and in every
worker; :func:`collect_arrays` defines it (hoisted temporaries first, then
first occurrence across statements) and both sides traverse the *same*
pickled structure, so the order is stable by construction.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.compiler.lowering import CompiledScan
from repro.errors import MachineError
from repro.zpl.arrays import ZArray


def collect_arrays(compiled: CompiledScan) -> tuple[ZArray, ...]:
    """Every array the lowered block touches, in deterministic order.

    Order: hoisted temporaries (already evaluated by the parent), then for
    each statement its target, its mask, and its referenced arrays, each in
    first-occurrence order.  Contracted arrays are included — sharing their
    (unused) storage is cheaper than special-casing them.
    """
    seen: list[ZArray] = []

    def add(array: ZArray) -> None:
        if not any(array is a for a in seen):
            seen.append(array)

    for temp in compiled.hoisted:
        add(temp.temp)
    for stmt in compiled.statements:
        add(stmt.target)
        if stmt.mask is not None:
            add(stmt.mask)
        for ref in stmt.expr.refs():
            add(ref.array)
    return tuple(seen)


@contextmanager
def _untracked_attach():
    """Keep segment *attaches* out of the resource tracker.

    The parent owns every segment's lifetime (it unlinks them), but
    Python ≤3.12 registers attachers with the resource tracker too: the
    tracker then either warns about "leaked" segments the parent already
    cleaned up, or — if each attacher unregisters — raises KeyError when
    several workers attached the same segment.  Suppressing the spurious
    registration at the source avoids both.  (Python 3.13 exposes this as
    ``SharedMemory(..., track=False)``.)
    """
    original = resource_tracker.register

    def register(name, rtype):
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = register
    try:
        yield
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class ArraySpec:
    """Shape/dtype of one shared segment (validated on attach)."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedArrayPool:
    """Parent-side owner of the shared segments backing a compiled block.

    Usage::

        pool = SharedArrayPool(compiled)     # copies current values in
        ... run workers against pool.specs ...
        pool.gather()                        # copy results back
        pool.release()                       # close + unlink
    """

    def __init__(self, compiled: CompiledScan):
        self.arrays = collect_arrays(compiled)
        self._segments: list[shared_memory.SharedMemory] = []
        self.specs: list[ArraySpec] = []
        try:
            for array in self.arrays:
                data = array._data
                seg = shared_memory.SharedMemory(create=True, size=data.nbytes)
                self._segments.append(seg)
                self.specs.append(
                    ArraySpec(seg.name, tuple(data.shape), data.dtype.str)
                )
            self.refresh()
        except BaseException:
            self.release()
            raise

    def refresh(self) -> None:
        """Re-copy the arrays' *current* values into the existing segments.

        The persistent pool calls this between executes so a reused plan's
        workers see the parent's latest array contents without re-creating
        (or re-attaching) any segment.
        """
        for array, seg, spec in zip(self.arrays, self._segments, self.specs):
            data = array._data
            if tuple(data.shape) != spec.shape:
                raise MachineError(
                    f"array {array!r} storage shape {data.shape} changed "
                    f"since the segments were created (was {spec.shape}); "
                    "the cached plan cannot be refreshed"
                )
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)
            view[...] = data

    def gather(self) -> None:
        """Copy every segment's contents back into the original arrays."""
        for array, seg in zip(self.arrays, self._segments):
            data = array._data
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)
            data[...] = view

    def release(self) -> None:
        """Close and unlink every segment (idempotent)."""
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass
        self._segments = []


class BoundaryPool:
    """Parent-side owner of the double-buffered boundary staging segment.

    One segment holds ``n_ranks × N_SLOTS × slot_elems`` float64 elements:
    each producer rank owns two *slots* and stages block ``k``'s halo rows
    into slot ``k % 2`` while consumers still read block ``k - 1`` out of
    the other one (:class:`repro.parallel.collectives.MulticastChannel`).
    The flip is synchronised purely by the epoch fabric — this class only
    owns the memory.
    """

    N_SLOTS = 2

    def __init__(self, n_ranks: int, slot_elems: int):
        self.n_ranks = n_ranks
        self.slot_elems = slot_elems
        nbytes = max(8, n_ranks * self.N_SLOTS * slot_elems * 8)
        self.seg = shared_memory.SharedMemory(create=True, size=nbytes)
        self._view = np.ndarray(
            (n_ranks, self.N_SLOTS, slot_elems),
            dtype=np.float64,
            buffer=self.seg.buf,
        )
        self._view[...] = 0.0

    @property
    def name(self) -> str:
        return self.seg.name

    def slots(self) -> np.ndarray:
        """Parent-side view (tests and probes)."""
        return self._view

    def release(self) -> None:
        if self._view is None:
            return
        self._view = None
        try:
            self.seg.close()
            self.seg.unlink()
        except FileNotFoundError:
            pass


class AttachedArrays:
    """Worker-side view: rebind a compiled block's arrays onto the segments.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory` handles
    alive for as long as the object lives — dropping a handle invalidates
    every numpy view built on its buffer.
    """

    def __init__(self, compiled: CompiledScan, specs: list[ArraySpec]):
        arrays = collect_arrays(compiled)
        if len(arrays) != len(specs):
            raise MachineError(
                f"worker sees {len(arrays)} arrays, parent shared {len(specs)}"
            )
        self._segments: list[shared_memory.SharedMemory] = []
        try:
            for array, spec in zip(arrays, specs):
                if tuple(array._data.shape) != spec.shape:
                    raise MachineError(
                        f"array {array!r} storage shape {array._data.shape} "
                        f"!= shared spec {spec.shape}"
                    )
                with _untracked_attach():
                    seg = shared_memory.SharedMemory(name=spec.name)
                array._data = np.ndarray(
                    spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf
                )
                self._segments.append(seg)
        except BaseException:
            self.detach()
            raise

    def detach(self) -> None:
        """Close the worker's handles (the parent owns unlinking)."""
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:
                # A numpy view still points into the buffer; the mapping is
                # reclaimed at process exit anyway.
                pass
        self._segments = []
