"""The SPMD worker: one OS process per processor-grid cell.

Each worker unpickles its own copy of the compiled block (preserving array
identity within the copy), rebinds every array onto the parent's shared
segments, and then runs the classic pipelined loop: receive the token for
block ``k``, execute the block's local portion with the *same*
:func:`~repro.runtime.vectorized.execute_vectorized` the sequential engine
uses, send the token downstream.

Hoisted parallel operators were evaluated once by the parent before the
segments were filled, so the worker strips ``hoisted`` from its copy — the
temporaries' values are already in shared memory, and re-evaluating them
mid-wave would race against neighbours' stores.

When the task asks for tracing (``WorkerTask.trace``) the loop records the
:mod:`repro.obs` event schema — ``recv_wait``/``compute``/``send`` spans per
block plus blocks/tokens/elements/bytes counters — into a per-process
buffer that rides home on the existing result queue.  Untraced runs branch
on one cached boolean per event site, keeping the hot loop at its
pre-observability cost.
"""

from __future__ import annotations

import gc
import pickle
import time
import traceback
from dataclasses import dataclass, replace
from multiprocessing.connection import Connection

from repro.obs.live.flight import FLIGHT
from repro.obs.trace import NULL_TRACER, Tracer
from repro.parallel.channels import (
    recv_clocked_token,
    recv_token,
    send_clocked_token,
    send_token,
)
from repro.parallel.sharedmem import ArraySpec, AttachedArrays, collect_arrays
from repro.runtime.kernels import plan_kind, resolve_engine
from repro.runtime.vectorized import execute_vectorized
from repro.zpl.regions import Region

#: float64 storage throughout the library (boundary-traffic accounting).
ELEMENT_BYTES = 8


@dataclass
class WorkerTask:
    """Everything one worker needs, shipped through the Process arguments."""

    rank: int
    compiled_blob: bytes
    specs: list[ArraySpec]
    #: This worker's pipeline blocks, already localised and in wave order.
    chunks: tuple[Region, ...]
    recv: Connection | None
    send: Connection | None
    timeout: float
    #: The plan's chunk dimension (block widths for the trace), if any.
    chunk_dim: int | None = None
    #: Boundary elements per unit block width (the model's ``m``).
    boundary_rows: int = 0
    #: Record :mod:`repro.obs` spans and counters for this run.
    trace: bool = False
    #: Race-sanitizer spec (:class:`repro.analyze.sanitizer.SanitizerSpec`)
    #: when ``REPRO_SANITIZE=1``; kept untyped so the worker module does not
    #: import the analyzer unless shadow execution was requested.
    sanitize: object | None = None
    #: Task-graph spec (:class:`repro.parallel.taskgraph.TaskgraphSpec`)
    #: when ``schedule="taskgraph"``: the worker joins the shared scheduler
    #: instead of the token pipeline (``chunks``/``recv``/``send`` unused).
    taskgraph: object | None = None
    #: The run's ``(graph_lock, deque_locks)`` — synchronisation primitives
    #: travel by Process-argument inheritance, never over a pipe.
    tg_locks: object | None = None
    #: Multicast-fabric spec (:class:`repro.parallel.collectives.MulticastSpec`)
    #: when the planner selected the epoch fabric: the worker publishes and
    #: waits on shared-memory epochs instead of pipe tokens (``recv``/``send``
    #: unused).
    mcast: object | None = None
    #: The fabric's per-rank semaphores — like ``tg_locks``, these inherit
    #: through the Process arguments and never ride a pipe.
    mcast_sems: object | None = None
    #: Predecessor rank on the pipe fabric (timeout diagnostics only).
    peer: int | None = None


def _width(chunk: Region, chunk_dim: int | None) -> int:
    return chunk.extent(chunk_dim) if chunk_dim is not None else 1


def sanitized_pipeline_loop(
    runnable,
    chunks: tuple[Region, ...],
    recv: Connection | None,
    send: Connection | None,
    timeout: float,
    tracer,
    state,
    stats: dict | None = None,
) -> float:
    """The pipelined loop under shadow execution (``REPRO_SANITIZE=1``).

    Same recv → compute → send skeleton as :func:`pipeline_loop`, with the
    sanitizer's vector-clock protocol woven in: tokens carry clocks, every
    primed read of a block is happens-before-checked before the block runs,
    and completion stamps the shared shadow plane.  ``state`` is a
    :class:`repro.analyze.sanitizer.SanitizerState`.  The injected
    early-release fault (``REPRO_SANITIZE_INJECT``) lives here so the stock
    loop stays byte-for-byte untouched.  ``stats`` (when given) receives the
    worker's final vector clock — the pool's parent-side clock accounting
    rides the result channel on it.
    """
    inject = state.spec.inject
    tracing = tracer.enabled
    engine = resolve_engine(None)
    start = time.perf_counter()
    for k, chunk in enumerate(chunks):
        if recv is not None:
            state.join(recv_clocked_token(recv, k, timeout))
            if tracing:
                tracer.count("tokens_recv")
        state.check(chunk, k)
        released_early = (
            send is not None
            and inject is not None
            and inject[0] == "early-release"
            and inject[1] == state.rank
            and inject[2] == k
        )
        if released_early:
            # The injected protocol violation: publish block k downstream
            # before computing it.  The clock is the honest, un-advanced
            # one, so downstream's happens-before check must trip.
            send_clocked_token(send, k, state.token())
        if not chunk.is_empty():
            execute_vectorized(runnable, within=chunk, engine=engine, tracer=tracer)
            if tracing:
                tracer.count("blocks_executed")
                tracer.count("elements_computed", chunk.size)
        state.complete(chunk, k)
        if send is not None and not released_early:
            send_clocked_token(send, k, state.token())
            if tracing:
                tracer.count("tokens_sent")
    if tracing:
        tracer.count("sanitize_checks", state.checks)
        tracer.count("sanitize_cells", state.cells)
    if stats is not None:
        stats["clocks"] = list(state.token())
    return time.perf_counter() - start


def sanitized_multicast_loop(
    runnable,
    chunks: tuple[Region, ...],
    channel,
    timeout: float,
    tracer,
    state,
    stats: dict | None = None,
) -> float:
    """The multicast epoch loop under shadow execution.

    Same wait → absorb → compute → stage → publish skeleton as
    :func:`multicast_pipeline_loop`, with the sanitizer's clocks riding the
    epochs: a producer writes its clock into the shadow segment's
    per-``(rank, block)`` epoch-clock row *before* stamping the epoch, and
    a consumer joins each producer's row right after its epoch wait — the
    exact clocked-token protocol, minus the pipes.  The injected
    ``early-publish`` fault lives here: stage + publish before computing,
    with the honest, un-advanced clock row, so every consumer's
    happens-before check must trip regardless of interleaving.
    """
    inject = state.spec.inject
    tracing = tracer.enabled
    engine = resolve_engine(None)
    waits = channel.producers
    absorbed = 0
    start = time.perf_counter()
    for k, chunk in enumerate(chunks):
        if waits:
            channel.wait_block(k, timeout)
            for producer in waits:
                state.join_epoch(producer, k)
            absorbed = channel.absorb_through(k, absorbed, chunks)
            if tracing:
                tracer.count("tokens_recv", len(waits))
        state.check(chunk, k)
        published_early = (
            inject is not None
            and inject[0] == "early-publish"
            and inject[1] == state.rank
            and inject[2] == k
        )
        if published_early:
            # The injected protocol violation: stamp epoch k before
            # computing its block.  The clock row is the honest,
            # un-advanced one, so consumers' happens-before checks trip.
            state.publish_clocks(k)
            channel.stage(k, chunk, timeout)
            channel.publish(k)
        if not chunk.is_empty():
            execute_vectorized(runnable, within=chunk, engine=engine, tracer=tracer)
            if tracing:
                tracer.count("blocks_executed")
                tracer.count("elements_computed", chunk.size)
        state.complete(chunk, k)
        if not published_early:
            state.publish_clocks(k)
            channel.stage(k, chunk, timeout)
            channel.publish(k)
            if tracing and channel.consumers:
                tracer.count("tokens_sent")
    if tracing:
        tracer.count("sanitize_checks", state.checks)
        tracer.count("sanitize_cells", state.cells)
    if stats is not None:
        stats["clocks"] = list(state.token())
        stats.update(channel.stats())
    return time.perf_counter() - start


def pipeline_loop(
    runnable,
    chunks: tuple[Region, ...],
    recv: Connection | None,
    send: Connection | None,
    timeout: float,
    tracer,
    chunk_dim: int | None,
    boundary_rows: int,
    stats: dict | None = None,
    tags: dict | None = None,
    peer: int | None = None,
) -> float:
    """The classic pipelined inner loop: recv token → compute block → send.

    Shared by the fork-per-run worker (:func:`run_worker`) and the persistent
    pool worker (:mod:`repro.parallel.pool`).  Returns the busy seconds from
    the first token wait to the last send.  ``tracer`` records the standard
    per-block event schema when enabled (one cached boolean per site keeps
    the untraced loop at its pre-observability cost) and is threaded into
    :func:`execute_vectorized` so kernel-compile spans ride home too.

    Two always-on hooks sit below the tracer:

    * ``stats`` — when a dict is passed, the loop fills it with aggregate
      steady-state numbers (``busy``/``wait`` seconds, ``tokens``,
      ``blocks``, ``elements``): the incremental flush the pool ships to
      the live metrics registry and the model monitor after every job.
    * the process flight recorder — when enabled, each block lands one
      bounded ring event.  Both cost two clock reads per block (the
      "lite" path) instead of the full span schema; a fully bare loop is
      only run when tracing, stats, *and* the recorder are all off.

    ``tags`` (e.g. the serving request ids) are stamped onto every span
    and flight event, which is what makes end-to-end request tracing work.
    """
    tracing = tracer.enabled
    flight = FLIGHT if FLIGHT.enabled else None
    lite = not tracing and (stats is not None or flight is not None)
    extra = tags or {}
    # The plan family is loop-invariant: resolve it once so every compute
    # span carries its kind (skewed/flat/interp) for the phase analytics.
    kind = plan_kind(runnable) if tracing else None
    # Engine resolution reads environment knobs; loop-invariant, so pay for
    # it once per job instead of once per block.
    engine = resolve_engine(None)
    busy_s = wait_s = 0.0
    tokens = 0
    start = time.perf_counter()
    for k, chunk in enumerate(chunks):
        if recv is not None:
            if tracing or lite:
                t = time.perf_counter()
                recv_token(recv, k, timeout, peer)
                t_done = time.perf_counter()
                wait_s += t_done - t
                tokens += 1
                if tracing:
                    tracer.add_span(
                        "recv_wait", "comm", t, t_done, block=k, **extra
                    )
                    tracer.count("tokens_recv")
            else:
                recv_token(recv, k, timeout, peer)
        if not chunk.is_empty():
            if tracing:
                t = time.perf_counter()
                execute_vectorized(runnable, within=chunk, engine=engine, tracer=tracer)
                t_done = time.perf_counter()
                busy_s += t_done - t
                tracer.add_span(
                    "compute",
                    "compute",
                    t,
                    t_done,
                    block=k,
                    elements=chunk.size,
                    width=_width(chunk, chunk_dim),
                    plan=kind,
                    **extra,
                )
                tracer.count("blocks_executed")
                tracer.count("elements_computed", chunk.size)
            elif lite:
                t = time.perf_counter()
                execute_vectorized(runnable, within=chunk, engine=engine)
                t_done = time.perf_counter()
                busy_s += t_done - t
                if flight is not None:
                    flight.span(
                        "block", t, t_done,
                        block=k, elements=chunk.size, **extra,
                    )
            else:
                execute_vectorized(runnable, within=chunk, engine=engine)
        if send is not None:
            if tracing:
                t = time.perf_counter()
                send_token(send, k)
                tracer.add_span(
                    "send", "comm", t, time.perf_counter(), block=k, **extra
                )
                tracer.count("tokens_sent")
                tracer.count(
                    "bytes_moved",
                    boundary_rows * _width(chunk, chunk_dim) * ELEMENT_BYTES,
                )
            else:
                send_token(send, k)
    elapsed = time.perf_counter() - start
    if stats is not None:
        stats["elapsed"] = elapsed
        stats["busy"] = busy_s
        stats["wait"] = wait_s
        stats["tokens"] = tokens
        stats["blocks"] = sum(1 for c in chunks if not c.is_empty())
        stats["elements"] = sum(c.size for c in chunks if not c.is_empty())
    return elapsed


def multicast_pipeline_loop(
    runnable,
    chunks: tuple[Region, ...],
    channel,
    timeout: float,
    tracer,
    chunk_dim: int | None,
    boundary_rows: int,
    stats: dict | None = None,
    tags: dict | None = None,
) -> float:
    """The pipelined loop on the multicast epoch fabric.

    Same wait → compute → release skeleton as :func:`pipeline_loop`, but the
    synchronisation runs through a
    :class:`~repro.parallel.collectives.MulticastChannel`: the wait is a
    shared-memory epoch read per producer (plus the double-buffer absorb
    when staging is on), and the release is ``stage`` + one ``publish``
    stamp serving every consumer at once.  Span names are kept identical
    to the pipe loop (``recv_wait``/``compute``/``send``) so the phase
    analytics and residual tables apply unchanged.
    """
    tracing = tracer.enabled
    flight = FLIGHT if FLIGHT.enabled else None
    lite = not tracing and (stats is not None or flight is not None)
    extra = tags or {}
    kind = plan_kind(runnable) if tracing else None
    engine = resolve_engine(None)
    waits = channel.producers
    releases = channel.consumers
    busy_s = wait_s = 0.0
    tokens = 0
    absorbed = 0
    start = time.perf_counter()
    for k, chunk in enumerate(chunks):
        if waits:
            if tracing or lite:
                t = time.perf_counter()
                channel.wait_block(k, timeout)
                absorbed = channel.absorb_through(k, absorbed, chunks)
                t_done = time.perf_counter()
                wait_s += t_done - t
                tokens += len(waits)
                if tracing:
                    tracer.add_span(
                        "recv_wait", "comm", t, t_done, block=k, **extra
                    )
                    tracer.count("tokens_recv", len(waits))
            else:
                channel.wait_block(k, timeout)
                absorbed = channel.absorb_through(k, absorbed, chunks)
        if not chunk.is_empty():
            if tracing:
                t = time.perf_counter()
                execute_vectorized(runnable, within=chunk, engine=engine, tracer=tracer)
                t_done = time.perf_counter()
                busy_s += t_done - t
                tracer.add_span(
                    "compute",
                    "compute",
                    t,
                    t_done,
                    block=k,
                    elements=chunk.size,
                    width=_width(chunk, chunk_dim),
                    plan=kind,
                    **extra,
                )
                tracer.count("blocks_executed")
                tracer.count("elements_computed", chunk.size)
            elif lite:
                t = time.perf_counter()
                execute_vectorized(runnable, within=chunk, engine=engine)
                t_done = time.perf_counter()
                busy_s += t_done - t
                if flight is not None:
                    flight.span(
                        "block", t, t_done,
                        block=k, elements=chunk.size, **extra,
                    )
            else:
                execute_vectorized(runnable, within=chunk, engine=engine)
        if tracing:
            t = time.perf_counter()
            channel.stage(k, chunk, timeout)
            channel.publish(k)
            tracer.add_span(
                "send", "comm", t, time.perf_counter(), block=k, **extra
            )
            if releases:
                tracer.count("tokens_sent")
                tracer.count(
                    "bytes_moved",
                    boundary_rows * _width(chunk, chunk_dim) * ELEMENT_BYTES,
                )
        else:
            channel.stage(k, chunk, timeout)
            channel.publish(k)
    elapsed = time.perf_counter() - start
    if stats is not None:
        stats["elapsed"] = elapsed
        stats["busy"] = busy_s
        stats["wait"] = wait_s
        stats["tokens"] = tokens
        stats["blocks"] = sum(1 for c in chunks if not c.is_empty())
        stats["elements"] = sum(c.size for c in chunks if not c.is_empty())
        stats.update(channel.stats())
    return elapsed


def run_worker(task: WorkerTask, barrier, results) -> None:
    """Process entry point (top-level so every start method can import it)."""
    attached = None
    shadow = None
    tracer = Tracer(proc=task.rank) if task.trace else NULL_TRACER
    tracing = tracer.enabled
    try:
        t_entry = time.perf_counter()
        compiled = pickle.loads(task.compiled_blob)
        attached = AttachedArrays(compiled, task.specs)
        runnable = replace(compiled, hoisted=())
        if task.sanitize is not None:
            from repro.analyze.sanitizer import SanitizerState

            shadow = SanitizerState(task.sanitize, task.rank)
        if tracing:
            tracer.add_span("startup", "setup", t_entry, time.perf_counter())
        # The inherited (forked) heap is garbage-collector ballast: freeze it
        # so collector pauses inside the timed loop depend only on what the
        # loop itself allocates, not on what the parent happened to import.
        gc.freeze()
        t_barrier = time.perf_counter()
        barrier.wait(timeout=task.timeout)
        if tracing:
            tracer.add_span("barrier", "sync", t_barrier, time.perf_counter())
        stats: dict = {}
        if task.taskgraph is not None:
            from repro.parallel.taskgraph import taskgraph_loop

            elapsed = taskgraph_loop(
                runnable,
                task.taskgraph,
                task.tg_locks,
                task.rank,
                task.timeout,
                tracer,
                stats=stats,
            )
        elif task.mcast is not None:
            from repro.parallel.collectives import MulticastChannel

            channel = MulticastChannel(
                task.mcast,
                task.mcast_sems,
                task.rank,
                arrays=collect_arrays(compiled),
            )
            try:
                channel.drain()
                if shadow is not None:
                    elapsed = sanitized_multicast_loop(
                        runnable,
                        task.chunks,
                        channel,
                        task.timeout,
                        tracer,
                        shadow,
                        stats=stats,
                    )
                else:
                    elapsed = multicast_pipeline_loop(
                        runnable,
                        task.chunks,
                        channel,
                        task.timeout,
                        tracer,
                        task.chunk_dim,
                        task.boundary_rows,
                        stats=stats,
                    )
            finally:
                channel.detach()
        elif shadow is not None:
            elapsed = sanitized_pipeline_loop(
                runnable,
                task.chunks,
                task.recv,
                task.send,
                task.timeout,
                tracer,
                shadow,
            )
        else:
            elapsed = pipeline_loop(
                runnable,
                task.chunks,
                task.recv,
                task.send,
                task.timeout,
                tracer,
                task.chunk_dim,
                task.boundary_rows,
                stats=stats,
                peer=task.peer,
            )
        results.put(
            (
                "ok",
                task.rank,
                {
                    "elapsed": elapsed,
                    "events": tracer.drain(),
                    "stats": stats,
                },
            )
        )
    except BaseException:
        results.put(("error", task.rank, traceback.format_exc()))
    finally:
        if shadow is not None:
            shadow.detach()
        if attached is not None:
            attached.detach()
