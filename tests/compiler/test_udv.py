"""Tests for unconstrained distance vector extraction."""

import pytest

from repro import zpl
from repro.compiler.udv import (
    DepKind,
    extract_dependences,
    constraint_vectors,
    true_vectors,
)
from repro.zpl.statements import Assign


def _arrays(n=5, names=("a", "b", "c")):
    base = zpl.Region.square(1, n)
    return tuple(zpl.ones(base, name=nm) for nm in names)


REGION = zpl.Region.of((2, 4), (1, 5))


class TestPrimedRefs:
    def test_primed_negates_direction(self):
        # Paper Section 3.1: "the unconstrained distance vectors associated
        # with primed array references are simply negated."
        (a, _, _) = _arrays()
        stmt = Assign(a, 2.0 * (a.p @ zpl.NORTH), REGION)
        deps = extract_dependences([stmt])
        (dep,) = [d for d in deps if d.kind is DepKind.TRUE]
        assert dep.vector == (1, 0)

    def test_primed_is_true_dependence(self):
        (a, _, _) = _arrays()
        stmt = Assign(a, a.p @ zpl.SOUTHEAST, REGION)
        deps = extract_dependences([stmt])
        assert [d.kind for d in deps] == [DepKind.TRUE]
        assert deps[0].vector == (-1, -1)

    def test_primed_outside_scan_rejected_by_extractor(self):
        (a, _, _) = _arrays()
        stmt = Assign(a, a.p @ zpl.NORTH, REGION)
        with pytest.raises(ValueError):
            extract_dependences([stmt], primed_allowed=False)


class TestUnprimedRefs:
    def test_self_reference_is_anti(self):
        # Fig. 3(a): a := 2*a@north carries an anti-dependence (-1, 0).
        (a, _, _) = _arrays()
        stmt = Assign(a, 2.0 * (a @ zpl.NORTH), REGION)
        deps = extract_dependences([stmt])
        (dep,) = deps
        assert dep.kind is DepKind.ANTI
        assert dep.vector == (-1, 0)

    def test_unwritten_array_unconstrained(self):
        (a, b, _) = _arrays()
        stmt = Assign(a, b @ zpl.NORTH, REGION)
        assert extract_dependences([stmt]) == ()

    def test_read_of_earlier_write_is_true(self):
        (a, b, _) = _arrays()
        stmts = [
            Assign(a, b + 0.0, REGION),
            Assign(b, a @ zpl.NORTH, REGION),  # a written by stmt 0
        ]
        deps = extract_dependences(stmts)
        true = [d for d in deps if d.kind is DepKind.TRUE]
        assert len(true) == 1
        assert true[0].vector == (1, 0)
        assert (true[0].src, true[0].dst) == (0, 1)

    def test_read_of_later_write_is_anti(self):
        (a, b, _) = _arrays()
        stmts = [
            Assign(b, a @ zpl.EAST, REGION),  # a written by stmt 1
            Assign(a, b + 1.0, REGION),
        ]
        deps = extract_dependences(stmts)
        anti = [d for d in deps if d.kind is DepKind.ANTI]
        assert len(anti) == 1
        assert anti[0].vector == (0, 1)
        assert (anti[0].src, anti[0].dst) == (0, 1)

    def test_zero_offset_flow_is_loop_independent(self):
        (a, b, _) = _arrays()
        stmts = [
            Assign(a, b + 1.0, REGION),
            Assign(b, a + 0.0, REGION),
        ]
        deps = extract_dependences(stmts)
        assert all(d.is_loop_independent() for d in deps)
        assert constraint_vectors(deps) == ()


class TestOutputDeps:
    def test_double_write_same_array(self):
        (a, b, _) = _arrays()
        stmts = [
            Assign(a, b + 1.0, REGION),
            Assign(a, b + 2.0, REGION),
        ]
        deps = extract_dependences(stmts)
        out = [d for d in deps if d.kind is DepKind.OUTPUT]
        assert len(out) == 1
        assert out[0].vector == (0, 0)
        assert out[0].is_loop_independent()


class TestTomcatvDependences:
    def test_fragment_has_single_constraint(self):
        from tests.conftest import record_tomcatv_block

        block, _ = record_tomcatv_block(8)
        deps = extract_dependences(block.statements)
        # Three primed refs (d', rx', ry') all give the (1, 0) true UDV;
        # the unprimed reads of r are loop-independent (zero vector).
        assert set(true_vectors(deps)) == {(1, 0), (0, 0)}
        assert set(constraint_vectors(deps)) == {(1, 0)}

    def test_repr_mentions_kind_and_array(self):
        from tests.conftest import record_tomcatv_block

        block, _ = record_tomcatv_block(6)
        deps = extract_dependences(block.statements)
        text = " ".join(repr(d) for d in deps)
        assert "true" in text
        assert "d" in text
