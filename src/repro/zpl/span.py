"""Source spans: where a construct came from in textual ZPL.

The tokenizer (:func:`repro.zpl.parser.tokenize`) computes a line/column for
every token; the parser threads those positions onto the statements and
expression nodes it builds, so downstream tooling — the diagnostics engine
in :mod:`repro.analyze` above all — can point at real source instead of
printing bare object reprs.  Programs built through the embedded DSL have no
source text; their spans are simply ``None`` and every consumer must cope
(diagnostics render without a source excerpt in that case).

Spans are tiny frozen dataclasses so they pickle with the statements that
carry them (the multiprocess backend ships compiled blocks to workers) and
never participate in statement equality.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceSpan:
    """A half-open range of source text, with 1-based line/column anchors.

    ``line``/``col`` locate the first character, ``end_line``/``end_col`` the
    column *after* the last character (so ``end_col - col`` is the width for
    single-line spans — what the caret renderer underlines).
    """

    line: int
    col: int
    end_line: int
    end_col: int
    #: Byte offset of the first character in the original source (kept so
    #: tools that slice the raw text do not have to re-scan for newlines).
    offset: int = 0

    def __post_init__(self) -> None:
        if self.line < 1 or self.col < 1:
            raise ValueError(f"spans are 1-based, got {self.line}:{self.col}")

    @property
    def width(self) -> int:
        """Caret width for single-line spans (at least 1)."""
        if self.end_line != self.line:
            return 1
        return max(1, self.end_col - self.col)

    def to(self, other: "SourceSpan") -> "SourceSpan":
        """The smallest span covering ``self`` through ``other``."""
        return SourceSpan(
            self.line, self.col, other.end_line, other.end_col, self.offset
        )

    def __repr__(self) -> str:
        return f"{self.line}:{self.col}"


def span_of(node: object) -> SourceSpan | None:
    """The node's source span, if the parser recorded one (else ``None``)."""
    return getattr(node, "span", None)
