"""ASCII Gantt timelines of simulated runs (regenerates the paper's Fig. 4).

With ``trace_activity=True`` each endpoint records its busy intervals; the
renderer draws one row per processor with

* ``#`` — computing,
* ``~`` — charged communication (a blocking receive),
* ``.`` — idle (waiting for data: the serialisation Fig. 4(a) illustrates).

The naive schedule's staircase of idle time versus the pipelined schedule's
early overlap is the paper's Fig. 4 contrast, produced from the actual
discrete-event execution rather than drawn by hand.
"""

from __future__ import annotations

from repro.errors import MachineError
from repro.machine.simulator import RunResult


#: Narrowest renderable timeline (one cell still shows up at width 1).
MIN_WIDTH = 1


def _header(width: int, total_time: float) -> str:
    """The time axis, robust at any width (no negative padding)."""
    left = "t = 0"
    right = f"{total_time:.0f}"
    dots = width - len(left) - len(right) - 2
    if dots < 1:
        return f"{left} .. {right}"
    return f"{left} {'.' * dots} {right}"


def render_gantt(run: RunResult, width: int = 72, title: str | None = None) -> str:
    """Render one timeline row per processor.

    Requires the run to have been executed with activity tracing enabled.
    Any ``width >= 1`` renders: the header never underflows, and every
    positive-duration interval paints at least one cell (sub-cell
    intervals are rounded up, clamped into the timeline).
    """
    if run.total_time <= 0:
        raise MachineError("cannot render a zero-length run")
    if all(not s.activity for s in run.proc_stats):
        raise MachineError(
            "no activity recorded: run the schedule with trace_activity=True"
        )
    if width < MIN_WIDTH:
        raise MachineError(f"gantt width must be >= {MIN_WIDTH}, got {width}")
    scale = width / run.total_time
    lines = []
    if title:
        lines.append(title)
    lines.append(_header(width, run.total_time))
    for rank, stats in enumerate(run.proc_stats):
        row = ["."] * width
        for interval in stats.activity:
            if interval.duration <= 0:
                continue
            start = min(int(interval.start * scale), width - 1)
            end = max(start + 1, int(interval.end * scale))
            mark = "#" if interval.kind == "compute" else "~"
            for k in range(start, min(end, width)):
                # Communication marks never overwrite compute marks within
                # one cell (compute is the interesting signal).
                if row[k] == "." or mark == "#":
                    row[k] = mark
        lines.append(f"P{rank} |{''.join(row)}|")
    busy = run.utilization
    lines.append(f"legend: # compute   ~ communication   . idle "
                 f"(utilisation {busy:.0%})")
    return "\n".join(lines)
