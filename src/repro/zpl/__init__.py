"""The mini-ZPL array language: regions, directions, arrays, scan blocks.

This package is the substrate the paper's extension lives in.  A complete
Tomcatv wavefront fragment (paper Fig. 2(b)) reads:

>>> import numpy as np
>>> from repro import zpl
>>> n = 8
>>> R = zpl.Region.of((2, n - 2), (2, n - 1))
>>> aa, d, dd, rx, ry, r = (
...     zpl.ones(zpl.Region.square(1, n), name=nm)
...     for nm in ("aa", "d", "dd", "rx", "ry", "r")
... )
>>> dd.fill(3.0)
>>> with zpl.covering(R):
...     with zpl.scan() as block:
...         r[...] = aa * (d.p @ zpl.NORTH)
...         d[...] = 1.0 / (dd - (aa @ zpl.NORTH) * r)
...         rx[...] = rx - (rx.p @ zpl.NORTH) * r
...         ry[...] = ry - (ry.p @ zpl.NORTH) * r
"""

from repro.zpl.directions import (
    Direction,
    as_direction,
    NORTH,
    SOUTH,
    WEST,
    EAST,
    NORTHWEST,
    NORTHEAST,
    SOUTHWEST,
    SOUTHEAST,
    ABOVE,
    BELOW,
    NORTH3,
    SOUTH3,
    WEST3,
    EAST3,
    CARDINALS_2D,
    DIAGONALS_2D,
    CARDINALS_3D,
)
from repro.zpl.regions import Region
from repro.zpl.arrays import ZArray, zeros, ones, full, from_numpy
from repro.zpl.expr import (
    Node,
    Const,
    Ref,
    BinOp,
    UnOp,
    Where,
    ParallelOp,
    ReduceExpr,
    FloodExpr,
    as_node,
    sqrt,
    exp,
    log,
    sin,
    cos,
    absolute,
    floor,
    ceil,
    maximum,
    minimum,
    where,
    zsum,
    zmax,
    zmin,
    flood,
    PrefixScanExpr,
    WrapShiftExpr,
    prefix_scan,
    wrap,
    IndexExpr,
    index,
)
from repro.zpl.statements import Assign
from repro.zpl.scan import ScanBlock
from repro.zpl.parser import (
    ParseError,
    Program,
    parse_program,
    parse_scan_block,
    tokenize,
)
from repro.zpl.pretty import (
    format_direction,
    format_expr,
    format_region,
    format_scan_block,
    format_statement,
)
from repro.zpl.program import (
    covering,
    current_region,
    current_mask,
    masked,
    scan,
    statement,
    set_default_engine,
    eager_reader,
)

__all__ = [
    # directions
    "Direction",
    "as_direction",
    "NORTH",
    "SOUTH",
    "WEST",
    "EAST",
    "NORTHWEST",
    "NORTHEAST",
    "SOUTHWEST",
    "SOUTHEAST",
    "ABOVE",
    "BELOW",
    "NORTH3",
    "SOUTH3",
    "WEST3",
    "EAST3",
    "CARDINALS_2D",
    "DIAGONALS_2D",
    "CARDINALS_3D",
    # regions & arrays
    "Region",
    "ZArray",
    "zeros",
    "ones",
    "full",
    "from_numpy",
    # expressions
    "Node",
    "Const",
    "Ref",
    "BinOp",
    "UnOp",
    "Where",
    "ParallelOp",
    "ReduceExpr",
    "FloodExpr",
    "as_node",
    "sqrt",
    "exp",
    "log",
    "sin",
    "cos",
    "absolute",
    "floor",
    "ceil",
    "maximum",
    "minimum",
    "where",
    "zsum",
    "zmax",
    "zmin",
    "flood",
    "PrefixScanExpr",
    "WrapShiftExpr",
    "prefix_scan",
    "wrap",
    "IndexExpr",
    "index",
    # textual front end
    "ParseError",
    "Program",
    "parse_program",
    "parse_scan_block",
    "tokenize",
    # pretty-printing
    "format_direction",
    "format_expr",
    "format_region",
    "format_scan_block",
    "format_statement",
    # statements & scan blocks
    "Assign",
    "ScanBlock",
    "covering",
    "current_region",
    "current_mask",
    "masked",
    "scan",
    "statement",
    "set_default_engine",
    "eager_reader",
]
