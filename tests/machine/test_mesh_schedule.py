"""Tests for the 2-D mesh pipelined schedule (paper Fig. 4's 2x2 shape)."""

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan
from repro.errors import DistributionError, MachineError
from repro.machine import (
    MachineParams,
    pipelined_wavefront,
    pipelined_wavefront_mesh,
)
from repro.runtime import execute_vectorized, run_and_capture
from tests.conftest import record_tomcatv_block

SMALL = MachineParams(name="small", alpha=40.0, beta=2.0)


def single_array_block(n: int, seed: int = 5):
    rng = np.random.default_rng(seed)
    a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
    with zpl.covering(zpl.Region.of((2, n), (1, n))):
        with zpl.scan(execute=False) as block:
            a[...] = 1.05 * (a.p @ zpl.NORTH) + 0.1
    return compile_scan(block), a


class TestMeshCorrectness:
    @pytest.mark.parametrize("mesh,b", [((2, 2), 3), ((1, 4), 2), ((4, 1), 5), ((3, 2), 4)])
    def test_matches_sequential(self, mesh, b):
        n = 16
        compiled, a = single_array_block(n)
        expected = run_and_capture(execute_vectorized, compiled, [a])
        pipelined_wavefront_mesh(compiled, SMALL, mesh=mesh, block_size=b)
        np.testing.assert_allclose(a._data, expected[0], rtol=1e-13)

    def test_tomcatv_on_2x2(self):
        # The paper's Fig. 4 configuration, with real values.
        n = 12
        block, arrays = record_tomcatv_block(n)
        compiled = compile_scan(block)
        expected = run_and_capture(execute_vectorized, compiled, arrays)
        pipelined_wavefront_mesh(compiled, SMALL, mesh=(2, 2), block_size=2)
        for arr, want in zip(arrays, expected):
            np.testing.assert_allclose(arr._data, want, rtol=1e-13)

    def test_descending_wavefront(self):
        n = 12
        rng = np.random.default_rng(8)
        a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
        with zpl.covering(zpl.Region.of((1, n - 1), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = 0.5 * (a.p @ zpl.SOUTH) + 1.0
        compiled = compile_scan(block)
        expected = run_and_capture(execute_vectorized, compiled, [a])
        pipelined_wavefront_mesh(compiled, SMALL, mesh=(2, 3), block_size=2)
        np.testing.assert_allclose(a._data, expected[0], rtol=1e-13)


class TestMeshTiming:
    def test_mesh_columns_shorten_chains(self):
        # Total boundary traffic is invariant (every column of the region
        # crosses every processor boundary exactly once), but a mesh splits
        # it across independent chains: adding a second mesh column halves
        # each chain's message sizes and the makespan drops.
        compiled, _ = single_array_block(129)
        one_d = pipelined_wavefront(
            compiled, SMALL, n_procs=8, block_size=8, compute_values=False
        )
        mesh = pipelined_wavefront_mesh(
            compiled, SMALL, mesh=(8, 2), block_size=8, compute_values=False
        )
        assert mesh.run.total_elements == one_d.run.total_elements
        assert mesh.total_time < one_d.total_time

    def test_equivalent_to_1d_when_pc_is_1(self):
        compiled, _ = single_array_block(33)
        one_d = pipelined_wavefront(
            compiled, SMALL, n_procs=4, block_size=4, compute_values=False
        )
        mesh = pipelined_wavefront_mesh(
            compiled, SMALL, mesh=(4, 1), block_size=4, compute_values=False
        )
        assert mesh.total_time == pytest.approx(one_d.total_time)
        assert mesh.run.total_messages == one_d.run.total_messages


class TestMeshValidation:
    def test_dependence_along_chunk_dim_rejected(self):
        # A DP wavefront has dependences along both dims: no mesh.
        n = 10
        h = zpl.zeros(zpl.Region.square(1, n), name="h")
        with zpl.covering(zpl.Region.square(2, n)):
            with zpl.scan(execute=False) as block:
                h[...] = zpl.maximum(h.p @ zpl.NORTH, h.p @ zpl.WEST) + 1.0
        with pytest.raises(DistributionError, match="couple"):
            pipelined_wavefront_mesh(
                compile_scan(block), SMALL, mesh=(2, 2), block_size=2
            )

    def test_bad_mesh_rejected(self):
        compiled, _ = single_array_block(8)
        with pytest.raises(MachineError):
            pipelined_wavefront_mesh(compiled, SMALL, mesh=(0, 2), block_size=2)
        with pytest.raises(MachineError):
            pipelined_wavefront_mesh(compiled, SMALL, mesh=(2, 2), block_size=0)

    def test_halo_flows_on_mesh(self):
        # Tomcatv has a read-only halo (aa); the mesh must still pre-exchange
        # it along each chain and produce correct values (covered above) and
        # count the messages.
        n = 12
        block, arrays = record_tomcatv_block(n)
        compiled = compile_scan(block)
        outcome = pipelined_wavefront_mesh(
            compiled, SMALL, mesh=(2, 2), block_size=3, compute_values=False
        )
        assert outcome.run.total_messages > 0
        assert outcome.schedule == "pipelined-mesh(2, 2)"
