"""Array memory layout: column-major address assignment.

The uniprocessor study (paper Section 5.1) assumes arrays "are allocated in
column-major-order", the Fortran convention: the *first* index is contiguous
in memory.  An :class:`AddressSpace` assigns each array a base address and
exposes the affine address function the trace generator sweeps.

Addresses are in *elements* (the cache geometry is also in elements), so one
double-precision word is one address unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CacheConfigError
from repro.zpl.arrays import ZArray

#: Padding between consecutive arrays, in elements.  A prime-ish pad keeps
#: same-shaped arrays from landing on identical cache sets, mirroring how
#: real allocators/compilers stagger bases.
DEFAULT_PAD = 37


@dataclass(frozen=True)
class ArrayPlacement:
    """One array's base address and column-major strides."""

    base: int
    lo: tuple[int, ...]
    strides: tuple[int, ...]

    def address(self, index: tuple[int, ...]) -> int:
        """Element address of a global index."""
        return self.base + sum(
            (i - l) * s for i, l, s in zip(index, self.lo, self.strides)
        )


class AddressSpace:
    """Assigns column-major placements to arrays, in registration order."""

    def __init__(self, pad: int = DEFAULT_PAD):
        if pad < 0:
            raise CacheConfigError(f"pad must be >= 0, got {pad}")
        self._pad = pad
        self._next = 0
        self._placements: dict[int, ArrayPlacement] = {}

    def place(self, array: ZArray) -> ArrayPlacement:
        """Register an array (idempotent) and return its placement.

        Storage (fluff included) is laid out column-major: stride 1 along
        dimension 0, then the product of the extents of the dimensions
        before each subsequent dimension.
        """
        key = id(array)
        if key in self._placements:
            return self._placements[key]
        shape = array.storage_region.shape
        strides = [1] * len(shape)
        for k in range(1, len(shape)):
            strides[k] = strides[k - 1] * shape[k - 1]
        placement = ArrayPlacement(
            base=self._next,
            lo=array.storage_region.lo,
            strides=tuple(strides),
        )
        self._placements[key] = placement
        self._next += int(prod(shape)) + self._pad
        return placement

    def placement(self, array: ZArray) -> ArrayPlacement:
        """The placement of a registered array."""
        try:
            return self._placements[id(array)]
        except KeyError:
            raise CacheConfigError(
                f"array {array.name!r} was never placed in this address space"
            ) from None

    @property
    def footprint(self) -> int:
        """Total allocated elements (pads included)."""
        return self._next


def prod(values) -> int:
    total = 1
    for v in values:
        total *= int(v)
    return total
