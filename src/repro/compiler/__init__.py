"""The scan-block compiler: dependence analysis, legality, loop structure.

Pipeline (``compile_scan``):

1. static legality checks (Section 2.2, conditions i/iii/iv/v);
2. hoisting of parallel operators into temporaries (Section 3.2);
3. unconstrained distance vector extraction, with primed references negated
   (Section 3.1);
4. per-dimension parallelism classification from the true dependences
   (parallel / pipelined / serial — Section 2.2's three cases);
5. loop-structure derivation, which doubles as the over-constraint check
   (condition ii);
6. packaging into an engine-agnostic :class:`~repro.compiler.lowering.CompiledScan`.
"""

from repro.compiler.udv import (
    DepKind,
    Dependence,
    extract_dependences,
    true_vectors,
    constraint_vectors,
)
from repro.compiler.wsv import Sign, WSV, DimClass, f, wsv_of, wsv_of_vectors, classify
from repro.compiler.legality import check_scan_block
from repro.compiler.loopstruct import (
    LoopStructure,
    derive_loop_structure,
    structure_exists,
)
from repro.compiler.lowering import (
    CompiledScan,
    HoistedTemp,
    compile_scan,
    compile_statements,
)
from repro.compiler.fusion import can_fuse, fuse_groups
from repro.compiler.contraction import contract, contractible
from repro.compiler.skew import (
    Skew,
    derive_skew,
    derive_time_vector,
    legal_time_vector,
    looped_dims,
)

__all__ = [
    "DepKind",
    "Dependence",
    "extract_dependences",
    "true_vectors",
    "constraint_vectors",
    "Sign",
    "WSV",
    "DimClass",
    "f",
    "wsv_of",
    "wsv_of_vectors",
    "classify",
    "check_scan_block",
    "LoopStructure",
    "derive_loop_structure",
    "structure_exists",
    "CompiledScan",
    "HoistedTemp",
    "compile_scan",
    "compile_statements",
    "can_fuse",
    "fuse_groups",
    "contract",
    "contractible",
    "Skew",
    "derive_skew",
    "derive_time_vector",
    "legal_time_vector",
    "looped_dims",
]
