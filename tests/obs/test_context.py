"""Request-context propagation and critical-path extraction."""

from __future__ import annotations

import concurrent.futures

import pytest

from repro.obs.live.context import (
    RequestContext,
    block_spans,
    critical_path,
    current_context,
    current_tags,
    path_duration,
    request_context,
    request_slice,
    run_with_context,
    span_rids,
)
from repro.obs.trace import PARENT_PROC, Trace, Tracer


class TestContextPropagation:
    def test_default_is_no_context(self):
        assert current_context() is None
        assert current_tags() == {}

    def test_context_manager_binds_and_restores(self):
        ctx = RequestContext(rids=(7, 9), batch=3)
        with request_context(ctx):
            assert current_context() is ctx
            assert current_tags() == {"rids": [7, 9], "batch": 3}
        assert current_context() is None

    def test_tags_without_batch(self):
        assert RequestContext(rids=(1,)).tags() == {"rids": [1]}

    def test_run_with_context_crosses_executor_threads(self):
        """The run_in_executor hand-off: ContextVars do not follow a bare
        submit, so the explicit shim must carry them."""
        ctx = RequestContext(rids=(42,), batch=1)
        with concurrent.futures.ThreadPoolExecutor(1) as pool:
            bare = pool.submit(current_tags).result()
            shimmed = pool.submit(run_with_context, ctx, current_tags).result()
        assert bare == {}
        assert shimmed == {"rids": [42], "batch": 1}

    def test_run_with_context_passes_args_and_result(self):
        out = run_with_context(
            RequestContext(rids=(1,)), lambda a, b=0: (a + b, current_tags()),
            2, b=3,
        )
        assert out == (5, {"rids": [1]})


class TestSpanRids:
    def test_rids_tag_wins(self):
        tracer = Tracer()
        tracer.add_span("compute", "compute", 0, 1, proc=0, rids=[3, 4])
        tracer.add_span("serve_request", "serve", 0, 1, proc=PARENT_PROC, id=8)
        tracer.add_span("other", "", 0, 1, proc=0)
        trace = Trace.from_tracer(tracer, clock="wall")
        assert span_rids(trace.spans[0]) == (3, 4)
        assert span_rids(trace.spans[1]) == (8,)
        assert span_rids(trace.spans[2]) == ()


def _pipeline_trace() -> Trace:
    """A hand-built 2-worker, 3-block pipeline with known critical path.

    P0: b0 [0,1]  b1 [1,2]    b2 [2,3]
    P1:   b0 [1.2,2.2]  b1 [2.4,3.0]  b2 [3.2,4.0]
    P1's b1 starts after its serial predecessor (end 2.2) — serial edge;
    P1's b2 starts after P0's b2 (end 3.0... actually after its own b1).
    """
    tracer = Tracer()
    spans = [
        (0, 0, 0.0, 1.0), (0, 1, 1.0, 2.0), (0, 2, 2.0, 3.0),
        (1, 0, 1.2, 2.2), (1, 1, 2.4, 3.0), (1, 2, 3.2, 4.0),
    ]
    for proc, block, start, end in spans:
        tracer.add_span(
            "compute", "compute", start, end, proc=proc,
            block=block, elements=16, rids=[5],
        )
    tracer.add_span("serve_request", "serve", 0.0, 4.5, proc=PARENT_PROC, id=5)
    return Trace.from_tracer(tracer, clock="wall")


class TestCriticalPath:
    def test_empty_trace(self):
        trace = Trace.from_tracer(Tracer(), clock="wall")
        assert critical_path(trace) == []
        assert path_duration([]) == 0.0

    def test_block_spans_filter_by_rid(self):
        trace = _pipeline_trace()
        assert len(block_spans(trace)) == 6
        assert len(block_spans(trace, rid=5)) == 6
        assert block_spans(trace, rid=99) == []

    def test_path_walks_gating_edges(self):
        trace = _pipeline_trace()
        path = critical_path(trace)
        keys = [(s.proc, s.args["block"]) for s in path]
        # Last to finish: P1 b2.  Its serial predecessor P1 b1 (end 3.0)
        # gates it over upstream P0 b2 (end 3.0 — tie broken by max, same
        # span ordering); P1 b1's gate is P1 b0 (end 2.2) over P0 b1 (2.0);
        # P1 b0's gate is the upstream P0 b0 (end 1.0), which is first.
        assert keys[-1] == (1, 2)
        assert keys == [(0, 0), (1, 0), (1, 1), (1, 2)]

    def test_path_in_execution_order(self):
        path = critical_path(_pipeline_trace())
        ends = [s.end for s in path]
        assert ends == sorted(ends)

    def test_path_duration_bounded_by_wall(self):
        trace = _pipeline_trace()
        path = critical_path(trace, rid=5)
        wall = request_slice(trace, 5).wall
        assert path
        assert 0.0 < path_duration(path) <= wall

    def test_request_slice_layers(self):
        tracer = Tracer()
        tracer.add_span("serve_request", "serve", 0, 4, proc=PARENT_PROC, id=2)
        tracer.add_span("serve_batch", "serve", 0.5, 3, proc=PARENT_PROC,
                        rids=[2, 3], batch=0)
        tracer.add_span("dispatch", "setup", 0.6, 0.7, proc=PARENT_PROC,
                        rids=[2, 3])
        tracer.add_span("compute", "compute", 1, 2, proc=0, block=0, rids=[2])
        trace = Trace.from_tracer(tracer, clock="wall")
        s = request_slice(trace, 2)
        assert s.request is not None and s.wall == pytest.approx(4.0)
        assert len(s.batches) == 1
        assert len(s.dispatches) == 1
        assert len(s.blocks) == 1
        other = request_slice(trace, 3)  # batched alongside, never computed
        assert other.request is None and len(other.batches) == 1

    def test_single_worker_chain(self):
        tracer = Tracer()
        for k in range(4):
            tracer.add_span("compute", "compute", k, k + 0.9, proc=0, block=k)
        trace = Trace.from_tracer(tracer, clock="wall")
        path = critical_path(trace)
        assert [(s.proc, s.args["block"]) for s in path] == [
            (0, 0), (0, 1), (0, 2), (0, 3),
        ]
        assert path_duration(path) == pytest.approx(3.6)
