"""The wavefront benchmark suite (the paper's stated future work).

"We will also develop a benchmark suite of wavefront computations in order
to evaluate our design and implementation and investigate their properties,
such as dynamism of optimal block size."  This module is that suite: a
registry of named wavefront kernels, each exposing a compiled scan block
builder so the experiments and benchmarks can sweep them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import zpl
from repro.compiler import compile_scan
from repro.compiler.lowering import CompiledScan
from repro.zpl import EAST, NORTH, NORTHWEST, SOUTH, WEST, Region


@dataclass(frozen=True)
class SuiteEntry:
    """One suite member: a builder producing a compiled block of size n."""

    name: str
    description: str
    build: Callable[[int], CompiledScan]
    #: Boundary rows per unit block width (the model's ``m``).
    boundary_rows: int


def _seeded(n: int, name: str, seed: int = 3) -> zpl.ZArray:
    rng = np.random.default_rng(seed)
    arr = zpl.from_numpy(rng.uniform(0.2, 1.0, size=(n, n)), base=1, name=name)
    return arr


def _single_stream(n: int) -> CompiledScan:
    """One array, one direction: the minimal wavefront (Fig. 3(d))."""
    a = _seeded(n, "a")
    with zpl.covering(Region.of((2, n), (1, n))):
        with zpl.scan(name="single-stream", execute=False) as block:
            a[...] = 0.9 * (a.p @ NORTH) + 0.1
    return compile_scan(block)


def _tomcatv_fragment(n: int) -> CompiledScan:
    """The paper's Fig. 2(b) fragment (three arrays flow with the wave)."""
    aa, d, dd, rx, ry, r = (
        _seeded(n, nm, seed=7 + k)
        for k, nm in enumerate(("aa", "d", "dd", "rx", "ry", "r"))
    )
    dd.load(np.full((n, n), 4.0))
    with zpl.covering(Region.of((2, n - 2), (2, n - 1))):
        with zpl.scan(name="tomcatv-fragment", execute=False) as block:
            r[...] = aa * (d.p @ NORTH)
            d[...] = 1.0 / (dd - (aa @ NORTH) * r)
            rx[...] = rx - (rx.p @ NORTH) * r
            ry[...] = ry - (ry.p @ NORTH) * r
    return compile_scan(block)


def _dp_wavefront(n: int) -> CompiledScan:
    """Two-direction DP recurrence (Smith-Waterman shape)."""
    h = _seeded(n, "h", seed=11)
    g = _seeded(n, "g", seed=12)
    with zpl.covering(Region.square(2, n)):
        with zpl.scan(name="dp", execute=False) as block:
            h[...] = zpl.maximum(
                (h.p @ NORTHWEST) + g,
                zpl.maximum((h.p @ NORTH), (h.p @ WEST)) - 0.5,
            )
    return compile_scan(block)


def _bidirectional_solver(n: int) -> CompiledScan:
    """Forward elimination immediately at full width (heavier body)."""
    e = _seeded(n, "e", seed=13)
    c = _seeded(n, "c", seed=14)
    dinv = _seeded(n, "dinv", seed=15)
    with zpl.covering(Region.square(2, n - 1)):
        with zpl.scan(name="solver", execute=False) as block:
            dinv[...] = 1.0 / (2.5 - c * (dinv.p @ NORTH))
            e[...] = (e - c * (e.p @ NORTH)) * dinv
    return compile_scan(block)


def _gauss_seidel(n: int) -> CompiledScan:
    """The Gauss-Seidel sweep shape: primed north/west, old south/east."""
    u = _seeded(n, "u", seed=17)
    f = _seeded(n, "f", seed=18)
    with zpl.covering(Region.square(2, n - 1)):
        with zpl.scan(name="gs", execute=False) as block:
            u[...] = 0.25 * (
                (u.p @ NORTH) + (u.p @ WEST) + (u @ SOUTH) + (u @ EAST) - f
            )
    return compile_scan(block)


def _eastward(n: int) -> CompiledScan:
    """Wavefront along the second dimension (orthogonal to the others)."""
    a = _seeded(n, "a", seed=16)
    with zpl.covering(Region.of((1, n), (2, n))):
        with zpl.scan(name="eastward", execute=False) as block:
            a[...] = 0.8 * (a.p @ WEST) + 0.2
    return compile_scan(block)


SUITE: tuple[SuiteEntry, ...] = (
    SuiteEntry(
        "single-stream",
        "one array, northward wave (the paper's Fig. 3(d))",
        _single_stream,
        boundary_rows=1,
    ),
    SuiteEntry(
        "tomcatv-fragment",
        "the Fig. 2(b) tridiagonal forward elimination",
        _tomcatv_fragment,
        boundary_rows=3,
    ),
    SuiteEntry(
        "dp",
        "two-direction dynamic-programming recurrence",
        _dp_wavefront,
        boundary_rows=1,
    ),
    SuiteEntry(
        "solver",
        "two-array coupled recurrence (conduction solve shape)",
        _bidirectional_solver,
        boundary_rows=2,
    ),
    SuiteEntry(
        "gauss-seidel",
        "lexicographic relaxation: primed north/west, old south/east",
        _gauss_seidel,
        boundary_rows=1,
    ),
    SuiteEntry(
        "eastward",
        "wavefront along the second dimension",
        _eastward,
        boundary_rows=1,
    ),
)


def get(name: str) -> SuiteEntry:
    """Look up a suite member by name."""
    for entry in SUITE:
        if entry.name == name:
            return entry
    raise KeyError(f"no suite entry {name!r}; have {[e.name for e in SUITE]}")
