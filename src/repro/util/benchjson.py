"""Machine-readable benchmark artifacts (``BENCH_*.json``).

Benchmarks write one JSON file per suite so the performance trajectory of
the repository can be tracked across commits by tooling instead of by
reading pytest-benchmark's console tables.  The schema is deliberately
small::

    {
      "schema": "repro-bench/1",
      "name": "parallel",
      "written_at": "2026-08-06T12:00:00+00:00",
      "meta": {...},            # free-form context (host, sizes, params)
      "results": [...]          # list of measurement records
    }

Files land in ``$REPRO_BENCH_DIR`` when set, else the current directory —
benchmark runs start from the repository root, so artifacts appear beside
``README.md`` by default.
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = "repro-bench/1"

#: Environment override for the artifact directory.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def bench_dir(directory: str | Path | None = None) -> Path:
    """Resolve the artifact directory (arg > env > cwd)."""
    if directory is not None:
        return Path(directory)
    return Path(os.environ.get(BENCH_DIR_ENV, "."))


def host_meta() -> dict:
    """Context every artifact should carry: where was this measured."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count(),
    }


def write_bench(
    name: str,
    results: list[dict],
    meta: dict | None = None,
    directory: str | Path | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` atomically; returns the final path."""
    payload = {
        "schema": SCHEMA,
        "name": name,
        "written_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "meta": {**host_meta(), **(meta or {})},
        "results": results,
    }
    target = bench_dir(directory) / f"BENCH_{name}.json"
    tmp = target.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(target)
    return target


def read_bench(name: str, directory: str | Path | None = None) -> dict:
    """Load a previously written artifact (raises on schema mismatch)."""
    path = bench_dir(directory) / f"BENCH_{name}.json"
    payload = json.loads(path.read_text())
    if payload.get("schema") != SCHEMA:
        raise ValueError(f"{path} has schema {payload.get('schema')!r}, want {SCHEMA}")
    return payload
