"""Tests for processor grids and block distributions."""

import pytest

from repro import zpl
from repro.errors import DistributionError, MachineError
from repro.machine.distribution import BlockMap
from repro.machine.grid import ProcessorGrid


class TestGrid:
    def test_size_and_rank(self):
        g = ProcessorGrid((2, 3))
        assert g.size == 6
        assert g.rank == 2

    def test_coords_roundtrip(self):
        g = ProcessorGrid((2, 3, 4))
        for proc in g:
            assert g.proc(g.coords(proc)) == proc

    def test_row_major(self):
        g = ProcessorGrid((2, 3))
        assert g.coords(0) == (0, 0)
        assert g.coords(1) == (0, 1)
        assert g.coords(3) == (1, 0)

    def test_neighbor(self):
        g = ProcessorGrid((2, 2))
        assert g.neighbor(0, 0, 1) == 2
        assert g.neighbor(0, 1, 1) == 1
        assert g.neighbor(0, 0, -1) is None
        assert g.neighbor(3, 1, 1) is None

    def test_bad_dims(self):
        with pytest.raises(MachineError):
            ProcessorGrid(())
        with pytest.raises(MachineError):
            ProcessorGrid((0,))

    def test_out_of_range(self):
        g = ProcessorGrid((2,))
        with pytest.raises(MachineError):
            g.coords(2)
        with pytest.raises(MachineError):
            g.proc((5,))


class TestBlockMap:
    R = zpl.Region.of((1, 12), (1, 8))

    def test_1d_rows(self):
        bm = BlockMap(self.R, ProcessorGrid((4,)), (0, None))
        assert bm.local_region(0).ranges == ((1, 3), (1, 8))
        assert bm.local_region(3).ranges == ((10, 12), (1, 8))

    def test_partition_covers_disjoint(self):
        bm = BlockMap(self.R, ProcessorGrid((5,)), (0, None))
        seen = set()
        for p in range(5):
            for idx in bm.local_region(p):
                assert idx not in seen
                seen.add(idx)
        assert len(seen) == self.R.size

    def test_2d_mesh(self):
        bm = BlockMap(self.R, ProcessorGrid((2, 2)), (0, 1))
        assert bm.local_region(0).ranges == ((1, 6), (1, 4))
        assert bm.local_region(3).ranges == ((7, 12), (5, 8))

    def test_owner(self):
        bm = BlockMap(self.R, ProcessorGrid((2, 2)), (0, 1))
        assert bm.owner((1, 1)) == 0
        assert bm.owner((12, 8)) == 3
        assert bm.owner((7, 1)) == 2

    def test_owner_consistent_with_local_region(self):
        bm = BlockMap(self.R, ProcessorGrid((3, 2)), (0, 1))
        for p in bm.grid:
            for idx in bm.local_region(p):
                assert bm.owner(idx) == p

    def test_owner_outside_rejected(self):
        bm = BlockMap(self.R, ProcessorGrid((2,)), (0, None))
        with pytest.raises(DistributionError):
            bm.owner((0, 1))

    def test_neighbors_along(self):
        bm = BlockMap(self.R, ProcessorGrid((4,)), (0, None))
        assert bm.neighbors_along(1, 0) == (0, 2)
        assert bm.neighbors_along(0, 0) == (None, 1)
        assert bm.neighbors_along(1, 1) == (None, None)  # undistributed dim

    def test_unused_grid_dim_rejected(self):
        with pytest.raises(DistributionError, match="unused"):
            BlockMap(self.R, ProcessorGrid((2, 2)), (0, None))

    def test_duplicate_grid_dim_rejected(self):
        with pytest.raises(DistributionError, match="twice"):
            BlockMap(self.R, ProcessorGrid((2,)), (0, 0))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(DistributionError):
            BlockMap(self.R, ProcessorGrid((2,)), (0,))

    def test_balance(self):
        bm = BlockMap(self.R, ProcessorGrid((4,)), (0, None))
        assert bm.check_balanced() == 1.0
        bm2 = BlockMap(self.R, ProcessorGrid((5,)), (0, None))
        assert bm2.check_balanced() == pytest.approx(1.5)

    def test_more_procs_than_rows(self):
        small = zpl.Region.of((1, 2), (1, 4))
        bm = BlockMap(small, ProcessorGrid((4,)), (0, None))
        sizes = [bm.local_region(p).size for p in range(4)]
        assert sum(sizes) == small.size
        assert sizes.count(0) == 2
