"""Property: the real multiprocess backend agrees with both serial engines.

Extends the crown-jewel engine-agreement property to the machine that
actually runs on the host: randomized legal scan programs must produce
bit-identical storage on the scalar loop-nest oracle, the vectorised
sequential engine, and :func:`repro.parallel.execute` with two real OS
processes.  Two workers keep the property CI-safe; the block size is drawn
so both single-chunk and many-chunk pipelines are exercised.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import compile_scan
from repro.parallel import execute
from repro.runtime import execute_loopnest, execute_vectorized, run_and_capture
from tests.properties.test_prop_scan_equivalence import scan_programs

N_PROCS = 2


@given(scan_programs(), st.sampled_from(("pipelined", "naive")))
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_parallel_backend_matches_sequential_engines(program, schedule):
    block, arrays, _procs, block_size = program
    compiled = compile_scan(block)

    oracle = run_and_capture(execute_loopnest, compiled, arrays)
    fast = run_and_capture(execute_vectorized, compiled, arrays)
    for o, f in zip(oracle, fast):
        np.testing.assert_array_equal(f, o)

    def run_parallel(c):
        execute(
            c,
            grid=N_PROCS,
            schedule=schedule,
            block=block_size,
            timeout=60.0,
        )

    parallel = run_and_capture(run_parallel, compiled, arrays)
    for array, o, f in zip(arrays, oracle, parallel):
        np.testing.assert_array_equal(
            f, o, err_msg=f"array {array.name}: parallel != oracle ({schedule})"
        )
