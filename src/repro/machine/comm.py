"""Simulated message passing with an mpi4py-shaped endpoint API.

Messages carry *real payloads* (numpy arrays of boundary data) so distributed
schedules compute bit-identical results to the sequential engines, while the
virtual clock charges the α+β cost model.

Cost accounting follows the paper's analysis (Section 4): transmitting an
``s``-element message costs ``α + β·s``, charged to the **receiving**
processor at delivery (the blocking-receive model).  With zero wire latency
and free sends, the pipelined critical path reproduces the paper's
``T_comm = (α + β·b)(n/b + p − 2)`` exactly: p−2 charged hops until the last
processor first unblocks, then n/b receives on the last processor.  Optional
``send_overhead`` (per message, charged to the sender) and ``wire_latency``
let ablation studies explore LogP-style variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

import numpy as np

from repro.errors import CommunicationError
from repro.machine.event import Simulator, Store
from repro.machine.params import MachineParams


@dataclass(frozen=True)
class Message:
    """One in-flight message."""

    src: int
    dst: int
    tag: int
    size: int
    payload: Any
    sent_at: float


@dataclass(frozen=True)
class Activity:
    """One busy interval on a processor's timeline."""

    kind: str  # "compute" or "comm"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ProcStats:
    """Per-processor accounting, in normalised time units."""

    compute_time: float = 0.0
    comm_time: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    elements_sent: int = 0
    finish_time: float = 0.0
    #: Busy intervals in completion order (populated when the owning
    #: network has ``trace_activity`` enabled).
    activity: list[Activity] = field(default_factory=list)

    @property
    def busy_time(self) -> float:
        return self.compute_time + self.comm_time


class Endpoint:
    """One processor's communication endpoint.

    Use from inside a simulation process:

    >>> def body(ep):
    ...     yield from ep.compute(100)            # 100 element-computes
    ...     ep.send(dst=1, payload=row, size=16)  # non-blocking
    ...     msg = yield from ep.recv(src=1)       # blocking, charged α+β·s
    """

    def __init__(self, network: "Network", rank: int):
        self.network = network
        self.rank = rank
        self.stats = ProcStats()

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    # -- communication -------------------------------------------------------
    def send(self, dst: int, payload: Any = None, size: int | None = None, tag: int = 0):
        """Post a message (non-blocking unless ``send_overhead`` is set).

        Returns a generator to ``yield from`` when send overhead is nonzero;
        with the default zero overhead it may be called as a plain function.
        """
        if size is None:
            if isinstance(payload, np.ndarray):
                size = int(payload.size)
            else:
                raise CommunicationError("message size required for non-array payload")
        if dst == self.rank:
            raise CommunicationError(f"processor {dst} sending to itself")
        message = Message(self.rank, dst, tag, size, payload, self.sim.now)
        self.stats.messages_sent += 1
        self.stats.elements_sent += size
        if self.network.tracing and tag >= 0:
            tracer = self.network.tracer
            tracer.count("tokens_sent", proc=self.rank)
            tracer.count("bytes_moved", size * 8, proc=self.rank)
        self.network.deliver(message)
        overhead = self.network.send_overhead
        if overhead > 0:
            return self._charge_comm(overhead)
        return None

    def recv(self, src: int, tag: int = 0) -> Generator:
        """Blocking receive: waits for the message, charges ``α + β·size``."""
        store = self.network.mailbox(self.rank, src, tag)
        message: Message = yield store.get()
        cost = self.network.params.message_cost(message.size)
        yield self.sim.timeout(cost)
        self.stats.comm_time += cost
        self.stats.messages_received += 1
        self.stats.finish_time = self.sim.now
        if self.network.observing:
            self._record("comm", cost, block=tag, size=message.size)
        return message

    def irecv(self, src: int, tag: int = 0) -> "RecvRequest":
        """Post a nonblocking receive (mpi4py's ``Irecv`` shape).

        The mailbox slot is claimed at post time (FIFO order with blocking
        receives); complete it with ``yield from request.wait()``.
        """
        store = self.network.mailbox(self.rank, src, tag)
        return RecvRequest(self, store.get())

    def isend(
        self, dst: int, payload: Any = None, size: int | None = None, tag: int = 0
    ) -> None:
        """Nonblocking send (identical to :meth:`send` with zero overhead;
        provided for mpi4py-API symmetry)."""
        self.send(dst, payload=payload, size=size, tag=tag)

    # -- computation -------------------------------------------------------
    def compute(self, elements: float, label: int | None = None) -> Generator:
        """Model computing ``elements`` data-space elements.

        ``label`` names the pipeline block being computed; it flows into
        the structured trace (``args["block"]``) when one is attached.
        """
        cost = elements * self.network.params.compute_cost
        yield self.sim.timeout(cost)
        self.stats.compute_time += cost
        self.stats.finish_time = self.sim.now
        if self.network.observing:
            self._record("compute", cost, block=label, elements=elements)

    def _charge_comm(self, cost: float) -> Generator:
        yield self.sim.timeout(cost)
        self.stats.comm_time += cost
        self.stats.finish_time = self.sim.now
        if self.network.observing:
            self._record("comm", cost, name="send")

    def _record(
        self,
        kind: str,
        cost: float,
        name: str | None = None,
        block: int | None = None,
        **extra: float,
    ) -> None:
        if cost <= 0:
            return
        if self.network.trace_activity:
            self.stats.activity.append(
                Activity(kind, self.sim.now - cost, self.sim.now)
            )
        if self.network.tracing:
            tracer = self.network.tracer
            # Same schema as the real backend's workers: virtual-clock
            # spans named compute/recv_wait/send with per-block args,
            # plus the blocks/tokens counters.
            if block is not None and block >= 0:
                extra["block"] = block
            name = name or ("compute" if kind == "compute" else "recv_wait")
            tracer.add_span(
                name, kind, self.sim.now - cost, self.sim.now, self.rank, **extra
            )
            if name == "compute":
                tracer.count("blocks_executed", proc=self.rank)
                tracer.count(
                    "elements_computed", extra.get("elements", 0), proc=self.rank
                )
            elif name == "recv_wait" and "block" in extra:
                tracer.count("tokens_recv", proc=self.rank)


class Network:
    """The message fabric: mailboxes plus the cost configuration."""

    def __init__(
        self,
        sim: Simulator,
        params: MachineParams,
        n_procs: int,
        send_overhead: float = 0.0,
        wire_latency: float = 0.0,
        trace_activity: bool = False,
        tracer=None,
    ):
        if n_procs < 1:
            raise CommunicationError(f"need at least one processor, got {n_procs}")
        self.sim = sim
        self.params = params
        self.n_procs = n_procs
        self.send_overhead = float(send_overhead)
        self.wire_latency = float(wire_latency)
        self.trace_activity = bool(trace_activity)
        #: Optional structured-trace recorder (:class:`repro.obs.Tracer`);
        #: duck-typed so this module stays import-independent of repro.obs.
        self.tracer = tracer
        self.tracing = tracer is not None and getattr(tracer, "enabled", False)
        #: One bool the hot paths branch on: any recording at all?
        self.observing = self.trace_activity or self.tracing
        self._mailboxes: dict[tuple[int, int, int], Store] = {}
        self.endpoints = [Endpoint(self, rank) for rank in range(n_procs)]
        self.total_messages = 0
        self.total_elements = 0

    def mailbox(self, dst: int, src: int, tag: int) -> Store:
        key = (dst, src, tag)
        if key not in self._mailboxes:
            self._mailboxes[key] = self.sim.store()
        return self._mailboxes[key]

    def deliver(self, message: Message) -> None:
        """Put the message into the destination mailbox after wire latency."""
        if not 0 <= message.dst < self.n_procs:
            raise CommunicationError(f"no such processor {message.dst}")
        self.total_messages += 1
        self.total_elements += message.size
        box = self.mailbox(message.dst, message.src, message.tag)
        if self.wire_latency > 0:
            self.sim._schedule(self.wire_latency, lambda: box.put(message))
        else:
            box.put(message)


class RecvRequest:
    """A posted nonblocking receive (mpi4py's ``Irecv`` shape).

    Created by :meth:`Endpoint.irecv`; the mailbox slot is claimed at post
    time (FIFO order among requests and blocking receives), and the α+β cost
    is charged when the owner ``yield from request.wait()``s — the point at
    which the processor actually touches the data.
    """

    def __init__(self, endpoint: "Endpoint", event):
        self._endpoint = endpoint
        self._event = event

    @property
    def ready(self) -> bool:
        """True when the message has arrived (waiting would not block)."""
        return self._event.triggered

    def wait(self) -> Generator:
        """Complete the receive; returns the :class:`Message`."""
        message: Message = yield self._event
        cost = self._endpoint.network.params.message_cost(message.size)
        yield self._endpoint.sim.timeout(cost)
        self._endpoint.stats.comm_time += cost
        self._endpoint.stats.messages_received += 1
        self._endpoint.stats.finish_time = self._endpoint.sim.now
        if self._endpoint.network.observing:
            self._endpoint._record(
                "comm", cost, block=message.tag, size=message.size
            )
        return message
