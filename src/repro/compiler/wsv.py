"""Wavefront summary vectors (paper Section 2.2).

The WSV is the programmer's device for reasoning about legality and
parallelism without dependence theory.  Given the directions appearing on
primed references, each dimension is summarised by the paper's ``f``:

* ``0``  — every direction has a zero component in this dimension;
* ``+``  — components are mixed zero/positive with at least one positive;
* ``-``  — components are mixed zero/negative with at least one negative;
* ``±``  — both positive and negative components appear (over-constraining
  unless some other dimension resolves the conflict).

A WSV is *simple* when no component is ``±``; simple WSVs are always legal.
The same summary machinery classifies each dimension for parallelism
(:func:`classify`): completely **parallel**, **pipelined** (the wavefront
travels along it and pipelining extracts parallelism), or **serial**.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import DirectionError
from repro.zpl.directions import Direction


class Sign(enum.Enum):
    """One component of a wavefront summary vector."""

    ZERO = "0"
    PLUS = "+"
    MINUS = "-"
    BOTH = "±"


def f(i: int, j: int) -> Sign:
    """The paper's pairwise combinator ``f(i, j)``."""
    if i == 0 and j == 0:
        return Sign.ZERO
    if i * j < 0:
        return Sign.BOTH
    if i > 0 or j > 0:
        return Sign.PLUS
    return Sign.MINUS


def _merge(current: Sign, component: int) -> Sign:
    """Fold one more direction component into a summary sign."""
    incoming = Sign.ZERO if component == 0 else (Sign.PLUS if component > 0 else Sign.MINUS)
    if current is Sign.ZERO:
        return incoming
    if incoming is Sign.ZERO or incoming is current:
        return current
    if current is Sign.BOTH:
        return Sign.BOTH
    return Sign.BOTH


class DimClass(enum.Enum):
    """Parallelism classification of one dimension of the data space."""

    PARALLEL = "parallel"  # no wavefront component: completely parallel
    PIPELINED = "pipelined"  # wavefront travels along it; pipelining pays
    SERIAL = "serial"  # iterated sequentially by the outer loop


@dataclass(frozen=True)
class WSV:
    """A wavefront summary vector."""

    signs: tuple[Sign, ...]

    @property
    def rank(self) -> int:
        return len(self.signs)

    def is_simple(self) -> bool:
        """True when no component is ``±`` (always legal, paper Section 2.2)."""
        return Sign.BOTH not in self.signs

    def is_trivial(self) -> bool:
        """True when every component is zero (no wavefront at all)."""
        return all(s is Sign.ZERO for s in self.signs)

    def __repr__(self) -> str:
        return "(" + ",".join(s.value for s in self.signs) + ")"


def wsv_of(directions: Iterable[Direction | Sequence[int]], rank: int | None = None) -> WSV:
    """Build the WSV of a set of (primed-reference) directions.

    With an empty set, ``rank`` must be given and the all-zero WSV results.
    """
    signs: list[Sign] | None = None
    for direction in directions:
        offsets = tuple(direction)
        if signs is None:
            signs = [Sign.ZERO] * len(offsets)
        elif len(offsets) != len(signs):
            raise DirectionError(
                f"direction {offsets} has rank {len(offsets)}, expected {len(signs)}"
            )
        for k, component in enumerate(offsets):
            signs[k] = _merge(signs[k], component)
    if signs is None:
        if rank is None:
            raise DirectionError("cannot build a WSV from no directions without a rank")
        signs = [Sign.ZERO] * rank
    return WSV(tuple(signs))


def wsv_of_vectors(vectors: Iterable[Sequence[int]], rank: int) -> WSV:
    """WSV of arbitrary integer vectors (used on dependence UDVs).

    Summarising UDVs instead of raw directions flips ``+`` and ``-`` (the
    UDV of a primed direction is its negation) but preserves ``0``/``±``,
    which is all classification needs.
    """
    return wsv_of((tuple(v) for v in vectors), rank=rank)


def classify(true_udvs: Sequence[Sequence[int]], rank: int) -> tuple[DimClass, ...]:
    """Classify every dimension for parallelism (paper's three cases).

    ``true_udvs`` are the UDVs of the *true* dependences: anti and output
    dependences constrain the local loop order but never serialise the
    distributed computation (old values are buffered/communicated), so they
    play no role here.

    Case (i): some dimension has no wavefront component (``0``) — those are
    completely parallel and every ``+``/``-`` dimension is pipelined.
    Case (ii): no ``0`` but some ``±`` — the ``±`` dimensions are serialised
    and the rest are pipelined.
    Case (iii): only ``+``/``-`` — the leftmost is (arbitrarily, following the
    paper) serialised and the remaining dimensions are pipelined.
    """
    summary = wsv_of_vectors(true_udvs, rank)
    classes: list[DimClass] = []
    for s in summary.signs:
        if s is Sign.ZERO:
            classes.append(DimClass.PARALLEL)
        elif s is Sign.BOTH:
            classes.append(DimClass.SERIAL)
        else:
            classes.append(DimClass.PIPELINED)
    if DimClass.PARALLEL not in classes and DimClass.SERIAL not in classes:
        # Case (iii): fully constrained; serialise the leftmost dimension.
        classes[0] = DimClass.SERIAL
    return tuple(classes)
