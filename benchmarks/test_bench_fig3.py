"""Fig. 3 bench: compile+run the primed/unprimed statement on both engines."""

import numpy as np

from repro import zpl
from repro.compiler import compile_scan, compile_statements
from repro.runtime import execute_loopnest, execute_vectorized
from repro.zpl.statements import Assign

N = 64


def _primed_compiled():
    a = zpl.ones(zpl.Region.square(1, N), name="a")
    with zpl.covering(zpl.Region.of((2, N), (1, N))):
        with zpl.scan(execute=False) as block:
            a[...] = 2.0 * (a.p @ zpl.NORTH)
    return compile_scan(block), a


def test_fig3_primed_vectorized(bench):
    compiled, a = _primed_compiled()

    def run():
        a.fill(1.0)
        execute_vectorized(compiled)
        return a

    result = bench(run)
    assert result.get((N, 1)) == 2.0 ** (N - 1)


def test_fig3_primed_scalar_oracle(bench):
    compiled, a = _primed_compiled()

    def run():
        a.fill(1.0)
        execute_loopnest(compiled)
        return a

    result = bench(run)
    assert result.get((N, 1)) == 2.0 ** (N - 1)


def test_fig3_unprimed_array_semantics(bench):
    a = zpl.ones(zpl.Region.square(1, N), name="a")
    region = zpl.Region.of((2, N), (1, N))
    compiled = compile_statements([Assign(a, 2.0 * (a @ zpl.NORTH), region)])

    def run():
        a.fill(1.0)
        execute_vectorized(compiled)
        return a

    result = bench(run)
    assert result.get((N, 1)) == 2.0


def test_fig3_compilation_cost(bench):
    # The analysis pipeline itself: legality + UDVs + loop structure.
    a = zpl.ones(zpl.Region.square(1, N), name="a")
    with zpl.covering(zpl.Region.of((2, N), (1, N))):
        with zpl.scan(execute=False) as block:
            a[...] = 2.0 * (a.p @ zpl.NORTH)
    compiled = bench(compile_scan, block)
    assert repr(compiled.wsv) == "(-,0)"
