"""Static diagnostics for scan blocks, plus the dynamic race sanitizer.

Three layers:

* :mod:`repro.analyze.diagnostics` — :class:`Diagnostic` objects with stable
  codes, source spans, evidence chains, and a rust-style renderer.
* :mod:`repro.analyze.passes` — the lint-pass registry: the Section 2.2
  legality conditions as diagnostic-producing passes, plus unused-name,
  redundant-prime, dead-mask/dead-store, fusion/skew explanation, and the
  α+β pipeline-hazard advisor.  Linting never executes a program.
* :mod:`repro.analyze.sanitizer` — vector-clock shadow execution for the
  multiprocess backend (``REPRO_SANITIZE=1``).

Run ``python -m repro.analyze --help`` for the CLI.

This ``__init__`` stays import-light on purpose:
:mod:`repro.compiler.legality` imports the diagnostics module at check time,
so pulling the pass registry (which imports the whole compiler) in here
would create a cycle.  Submodules load lazily via ``__getattr__``.
"""

from __future__ import annotations

from repro.analyze.diagnostics import (
    CODES,
    SCHEMA,
    Because,
    Diagnostic,
    Label,
    Severity,
    make_report,
    render,
    render_all,
    validate_report,
)

__all__ = [
    "CODES",
    "SCHEMA",
    "Because",
    "Diagnostic",
    "Label",
    "Severity",
    "make_report",
    "render",
    "render_all",
    "validate_report",
    "lint_program",
    "lint_block",
    "explain_block",
    "PASSES",
    "ScheduleModel",
    "build_schedule_model",
    "certify_model",
    "certify_execution",
    "MUTATIONS",
]

_LAZY = {
    "lint_program": "repro.analyze.passes",
    "lint_block": "repro.analyze.passes",
    "explain_block": "repro.analyze.passes",
    "PASSES": "repro.analyze.passes",
    # NB: the certify *function* is not re-exported here — the submodule of
    # the same name would shadow it in the package namespace as soon as
    # anything imported ``repro.analyze.certify`` directly.  Import the
    # function from the submodule instead.
    "ScheduleModel": "repro.analyze.certify",
    "build_schedule_model": "repro.analyze.certify",
    "certify_model": "repro.analyze.certify",
    "certify_execution": "repro.analyze.certify",
    "MUTATIONS": "repro.analyze.certify",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
