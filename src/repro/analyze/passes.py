"""The lint-pass registry: static analyses over parsed programs.

Every pass is a function from a :class:`~repro.zpl.parser.Program` (or, for
block-scoped passes, a statement sequence) to a list of
:class:`~repro.analyze.diagnostics.Diagnostic`.  Passes *analyse only*: they
may parse, extract dependences, classify dimensions, and evaluate the α+β
model, but they never execute a program, never build kernel plans
(:mod:`repro.runtime.kernels` is deliberately not imported), and never write
array storage.

The registry covers three groups:

* **Legality** — the Section 2.2 conditions (``E001``–``E009``), reusing
  :func:`repro.compiler.legality.legality_diagnostics` plus the constructive
  over-constraint check (``E002``).
* **Lints** — unused declarations (``W101``–``W103``), redundant primes
  (``W104``), dead masks (``W105``), dead stores (``W106``), the α+β
  pipeline-hazard advisor (``W107``), the taskgraph-schedule advisor
  (``W108``), and the forced-multicast fan-out advisor (``W109``, only
  when ``REPRO_MULTICAST=1`` overrides the auto fabric selection).
* **Explanations** (``I301``/``I302``) — *why* fusion split a statement
  sequence, and why skewing found no legal time vector.  These are emitted
  by :func:`explain_program` (the CLI's ``explain`` command), not by plain
  linting.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.analyze.diagnostics import Because, Diagnostic, Label
from repro.compiler.fusion import can_fuse
from repro.compiler.legality import legality_diagnostics
from repro.compiler.loopstruct import derive_loop_structure, structure_exists
from repro.compiler.skew import (
    MAX_COEFF,
    MAX_SKEW_RANK,
    derive_time_vector,
    looped_dims,
)
from repro.compiler.udv import constraint_vectors, extract_dependences, true_vectors
from repro.compiler.wsv import DimClass, classify
from repro.errors import ReproError
from repro.machine.params import CRAY_T3E
from repro.models.pipeline_model import PipelineModel
from repro.zpl.parser import Program
from repro.zpl.scan import ScanBlock
from repro.zpl.span import span_of
from repro.zpl.statements import Assign

#: Advisor defaults: processors assumed along the wavefront dimension, and
#: the predicted speedup below which pipelining is flagged as unprofitable.
HAZARD_PROCS = 4
HAZARD_SPEEDUP = 1.1

#: Taskgraph-advisor (W108) defaults: the analysis tiling (splits per
#: dimension), the fully-masked tile fraction above which dead-block pruning
#: pays, and the live-cost coefficient of variation above which work
#: stealing pays.
TG_ADVISOR_SPLITS = 4
TG_DEAD_FRACTION = 0.25
TG_COST_CV = 0.5


def _block_label(block: ScanBlock, index: int) -> str:
    return block.name or f"scan#{index}"


# ---------------------------------------------------------------------------
# Legality (E001-E009)
# ---------------------------------------------------------------------------
def pass_legality(program: Program) -> list[Diagnostic]:
    """The Section 2.2 checks plus implementation checks, per scan block."""
    out: list[Diagnostic] = []
    for index, block in enumerate(program.scan_blocks()):
        found = legality_diagnostics(block)
        for diagnostic in found:
            diagnostic.data.setdefault("block", _block_label(block, index))
        out.extend(found)
        if not found:  # condition (ii): only meaningful on well-formed blocks
            out.extend(_overconstrained(block, index))
    return out


def _overconstrained(block: ScanBlock, index: int) -> list[Diagnostic]:
    """Condition (ii): the constructive loop-structure existence check."""
    deps = extract_dependences(block.statements)
    constraints = constraint_vectors(deps)
    if structure_exists(constraints, block.rank):
        return []
    primed = [
        ref
        for stmt in block.statements
        for ref in stmt.expr.refs()
        if ref.primed
    ]
    span = next((s for s in map(span_of, primed) if s), None) or span_of(
        block.statements[0]
    )
    return [
        Diagnostic(
            "E002",
            "the directions on primed references over-constrain the scan "
            "block: no loop nest can respect every dependence",
            span=span,
            because=tuple(
                Because(
                    "udv",
                    f"{d.kind.value} dependence {d.vector} on "
                    f"{d.array!r} (S{d.src} -> S{d.dst})",
                )
                for d in deps
                if not d.is_loop_independent()
            ),
            hint="remove one of the conflicting primed shifts, or split "
            "the block so each part admits a traversal order",
            data={"block": _block_label(block, index)},
        )
    ]


# ---------------------------------------------------------------------------
# Unused declarations (W101-W103)
# ---------------------------------------------------------------------------
def pass_unused(program: Program) -> list[Diagnostic]:
    """Arrays, regions and directions declared but never referenced."""
    out: list[Diagnostic] = []
    for name in sorted(set(program.arrays) - program.used_arrays):
        out.append(
            Diagnostic(
                "W101",
                f"array {name!r} is never read, written or used as a mask",
                hint=f"remove {name!r} from the environment, or use it",
                data={"array": name},
            )
        )
    for name, span in program.declared_regions.items():
        if name not in program.used_regions:
            out.append(
                Diagnostic(
                    "W102",
                    f"region {name!r} is declared but never used",
                    span=span,
                    hint=f"delete the declaration of {name!r}",
                    data={"region": name},
                )
            )
    for name, span in program.declared_directions.items():
        if name not in program.used_directions:
            out.append(
                Diagnostic(
                    "W103",
                    f"direction {name!r} is declared but never used",
                    span=span,
                    hint=f"delete the declaration of {name!r}",
                    data={"direction": name},
                )
            )
    return out


# ---------------------------------------------------------------------------
# Redundant primes (W104)
# ---------------------------------------------------------------------------
def redundant_primes(
    statements: Sequence[Assign], block: str | None = None
) -> list[Diagnostic]:
    """Primed references whose prime does not change the dependence.

    A primed reference names the wavefront (new) value of its array.  When
    every statement writing that array is lexically *earlier* than the
    reading statement, the unprimed reference extracts the identical true
    dependence (see :mod:`repro.compiler.udv`) and the engines read the same
    storage — the prime is noise.  Primes of arrays written by the same or a
    later statement are load-bearing and never flagged.
    """
    writers: dict[int, list[int]] = {}
    for j, stmt in enumerate(statements):
        writers.setdefault(id(stmt.target), []).append(j)
    out: list[Diagnostic] = []
    for j, stmt in enumerate(statements):
        for ref in stmt.expr.refs():
            if not ref.primed:
                continue
            indices = writers.get(id(ref.array))
            if not indices or max(indices) >= j:
                continue
            name = ref.array.name or "<array>"
            out.append(
                Diagnostic(
                    "W104",
                    f"statement {j}: redundant prime on {name!r} — every "
                    f"write of {name!r} is lexically earlier, so the "
                    f"unprimed reference names the same wavefront value",
                    span=span_of(ref) or span_of(stmt),
                    because=(
                        Because(
                            "udv",
                            f"primed and unprimed reads of {name!r} both "
                            f"extract a true dependence with vector "
                            f"{tuple(-c for c in ref.offset)}",
                        ),
                    ),
                    hint="drop the prime",
                    data={"statement": j, "array": name}
                    | ({"block": block} if block else {}),
                )
            )
    return out


# ---------------------------------------------------------------------------
# Dead masks (W105) and dead stores (W106)
# ---------------------------------------------------------------------------
def _assigned_arrays(program: Program) -> set[int]:
    ids: set[int] = set()
    for item in program.items:
        statements = item.statements if isinstance(item, ScanBlock) else [item]
        for stmt in statements:
            ids.add(id(stmt.target))
    return ids


def pass_dead_masks(program: Program) -> list[Diagnostic]:
    """Masks that provably reject every store.

    Flagged only when the mask array is never assigned anywhere in the
    program *and* its current storage is zero everywhere on the covering
    region — then the masked statement can never store.  Reading storage is
    not execution; nothing is written.
    """
    assigned = _assigned_arrays(program)
    out: list[Diagnostic] = []
    for item in program.items:
        statements = item.statements if isinstance(item, ScanBlock) else [item]
        for stmt in statements:
            if stmt.mask is None or id(stmt.mask) in assigned:
                continue
            if np.any(stmt.mask.read(stmt.region) != 0):
                continue
            name = stmt.mask.name or "<array>"
            out.append(
                Diagnostic(
                    "W105",
                    f"dead mask: {name!r} is zero everywhere on "
                    f"{stmt.region!r} and the program never assigns it, so "
                    f"this statement can never store",
                    span=span_of(stmt),
                    hint=f"initialise {name!r} (or drop the 'with {name}' "
                    f"clause)",
                    data={"mask": name},
                )
            )
    return out


def _item_touches(item: Assign | ScanBlock, array_id: int) -> bool:
    statements = item.statements if isinstance(item, ScanBlock) else [item]
    for stmt in statements:
        if id(stmt.target) == array_id:
            return True
        if stmt.mask is not None and id(stmt.mask) == array_id:
            return True
        if any(id(ref.array) == array_id for ref in stmt.expr.refs()):
            return True
    return False


def pass_dead_stores(program: Program) -> list[Diagnostic]:
    """Top-level assignments whose value is overwritten before any read.

    The language has no control flow, so this is also the unreachable-effect
    check: a store is dead when a later top-level statement unconditionally
    overwrites the whole covered region and nothing in between (scan blocks
    included) reads, masks on, or partially rewrites the array.
    """
    out: list[Diagnostic] = []
    items = program.items
    for i, item in enumerate(items):
        if isinstance(item, ScanBlock):
            continue
        target_id = id(item.target)
        if any(id(ref.array) == target_id for ref in item.expr.refs()):
            continue  # self-referential update: the store is observable
        for later in items[i + 1 :]:
            if (
                isinstance(later, Assign)
                and id(later.target) == target_id
                and later.mask is None
                and later.region.covers(item.region)
                and not any(
                    id(ref.array) == target_id for ref in later.expr.refs()
                )
            ):
                name = item.target.name or "<array>"
                later_span = span_of(later)
                out.append(
                    Diagnostic(
                        "W106",
                        f"dead store to {name!r}: a later statement "
                        f"overwrites all of {item.region!r} before anything "
                        f"reads it",
                        span=span_of(item),
                        labels=()
                        if later_span is None
                        else (Label(later_span, "overwritten here"),),
                        because=(
                            Because(
                                "note",
                                f"the overwriting statement covers "
                                f"{later.region!r} unmasked",
                            ),
                        ),
                        hint="delete this statement",
                        data={"array": name},
                    )
                )
                break
            if _item_touches(later, target_id):
                break
    return out


# ---------------------------------------------------------------------------
# Pipeline-hazard advisor (W107)
# ---------------------------------------------------------------------------
def pipeline_hazard(
    statements: Sequence[Assign],
    block: str | None = None,
    boundary_rows: int | None = None,
    procs: int = HAZARD_PROCS,
    params=CRAY_T3E,
) -> list[Diagnostic]:
    """Warn when the α+β model predicts pipelining is unprofitable.

    Uses the Section 4 Model2 at the block's actual extents with the
    optimal block size (Eq. (1) via exact search): when even the *best*
    pipelined schedule on ``procs`` processors is predicted slower than
    ``HAZARD_SPEEDUP`` times serial, the scan block's shape (usually: too
    small along the wavefront for the per-message startup α) makes the
    pipeline a hazard, not a win.
    """
    if not statements:
        return []
    region = statements[0].region
    deps = extract_dependences(statements)
    classes = classify(true_vectors(deps), region.rank)
    pipelined = [k for k, c in enumerate(classes) if c is DimClass.PIPELINED]
    if not pipelined:
        return []
    wave = pipelined[0]
    n = region.extent(wave)
    cols = max(
        (region.extent(k) for k in range(region.rank) if k != wave),
        default=n,
    )
    if boundary_rows is None:
        boundary_rows = max(
            1,
            len(
                {
                    id(ref.array)
                    for stmt in statements
                    for ref in stmt.expr.refs()
                    if ref.primed
                }
            ),
        )
    try:
        model = PipelineModel(
            params, n=n, p=procs, boundary_rows=boundary_rows, cols=cols
        )
        best = model.optimal_block_size()
        speedup = model.speedup(best)
    except ReproError:
        return []
    if speedup >= HAZARD_SPEEDUP:
        return []
    return [
        Diagnostic(
            "W107",
            f"pipelining this scan block is predicted unprofitable: "
            f"speedup {speedup:.2f}x over serial at p={procs} even at the "
            f"optimal block size b*={best}",
            span=span_of(statements[0]),
            because=(
                Because(
                    "model",
                    f"wavefront extent n={n}, width={cols}, "
                    f"boundary rows m={boundary_rows}",
                ),
                Because(
                    "model",
                    f"alpha={model.alpha:g}, beta={model.beta:g} "
                    f"(element-compute units): T_serial="
                    f"{model.serial_time():.0f}, "
                    f"T_pipe(b*)={model.predicted_time(best):.0f}",
                ),
            ),
            hint="grow the problem, or run the sequential engine for this "
            "block",
            data={
                "speedup": round(speedup, 4),
                "block_size": best,
                "n": n,
                "cols": cols,
                "boundary_rows": boundary_rows,
                "p": procs,
            }
            | ({"block": block} if block else {}),
        )
    ]


# ---------------------------------------------------------------------------
# Taskgraph advisor (W108)
# ---------------------------------------------------------------------------
def _advisor_masks(statements: Sequence[Assign]) -> list | None:
    """The masks that decide tile liveness, or ``None`` when the block gives
    the advisor nothing to reason about.

    Mirrors the soundness rule of
    :func:`repro.compiler.taskdag._prunable_masks` at the statement level:
    every statement must carry a mask and no mask array may be written by
    the block — otherwise plan-time mask values say nothing about run-time
    liveness and the advisor stays silent.
    """
    region = statements[0].region
    written = {id(stmt.target) for stmt in statements}
    masks = []
    for stmt in statements:
        if (
            stmt.mask is None
            or id(stmt.mask) in written
            or stmt.region.ranges != region.ranges
        ):
            return None
        masks.append(stmt.mask)
    return masks or None


def taskgraph_advisor(
    statements: Sequence[Assign],
    block: str | None = None,
    procs: int = HAZARD_PROCS,
) -> list[Diagnostic]:
    """Warn when ``schedule="taskgraph"`` is predicted to beat pipelining.

    The pipelined schedule fires every block and gives every rank the same
    static share; the task-graph schedule prunes fully-masked tiles and
    steals around load imbalance.  This advisor predicts when that matters,
    from mask values alone: it tiles the block's region
    (``TG_ADVISOR_SPLITS`` balanced slabs per dimension, the same
    wave x chunk shape the scheduler would use) and counts live elements
    per tile.

    * **Dead fraction** — the fraction of tiles where every mask is zero.
      At or above ``TG_DEAD_FRACTION`` the pruner would skip that share of
      the schedule outright (the banded-alignment case).
    * **Cost variance** — the coefficient of variation of live-element
      counts across the remaining tiles.  At or above ``TG_COST_CV`` the
      static pipelined shares are unbalanced enough that stealing pays
      (the density-gradient case).
    """
    if not statements:
        return []
    deps = extract_dependences(statements)
    region = statements[0].region
    classes = classify(true_vectors(deps), region.rank)
    if not any(c is DimClass.PIPELINED for c in classes):
        return []  # no wavefront: nothing for either schedule to pipeline
    masks = _advisor_masks(statements)
    if masks is None:
        return []

    tiles = [region]
    for dim in range(region.rank):
        splits = min(TG_ADVISOR_SPLITS, region.extent(dim))
        tiles = [
            piece
            for tile in tiles
            for piece in tile.split(dim, max(1, splits))
            if not piece.is_empty()
        ]
    costs = []
    for tile in tiles:
        live = np.zeros(tile.shape, dtype=bool)
        for mask in masks:
            live |= mask.read(tile) != 0
        costs.append(int(np.count_nonzero(live)))
    n_dead = sum(1 for cost in costs if cost == 0)
    dead_fraction = n_dead / len(costs)
    live_costs = np.array([c for c in costs if c > 0], dtype=float)
    cost_cv = (
        float(live_costs.std() / live_costs.mean()) if live_costs.size else 0.0
    )

    data = {
        "dead_fraction": round(dead_fraction, 4),
        "cost_cv": round(cost_cv, 4),
        "tiles": len(costs),
        "p": procs,
    } | ({"block": block} if block else {})
    hint = (
        'run this block with schedule="taskgraph" (or REPRO_SCHEDULE='
        "taskgraph) to prune dead tiles and steal around the imbalance"
    )
    if dead_fraction >= TG_DEAD_FRACTION:
        return [
            Diagnostic(
                "W108",
                f"{n_dead} of {len(costs)} analysis tiles are fully masked "
                f"off ({dead_fraction:.0%}): the pipelined schedule computes "
                f"them anyway, the task-graph schedule prunes them",
                span=span_of(statements[0]),
                because=(
                    Because(
                        "note",
                        f"a {TG_ADVISOR_SPLITS}-way per-dimension tiling of "
                        f"{region!r} was probed against the block's masks",
                    ),
                ),
                hint=hint,
                data=data | {"branch": "dead-fraction"},
            )
        ]
    if cost_cv >= TG_COST_CV:
        return [
            Diagnostic(
                "W108",
                f"live work is unevenly masked across the region "
                f"(per-tile cost CV {cost_cv:.2f}): static pipelined shares "
                f"will load-imbalance at p={procs}",
                span=span_of(statements[0]),
                because=(
                    Because(
                        "note",
                        f"live elements per analysis tile range "
                        f"{int(live_costs.min())}..{int(live_costs.max())} "
                        f"(mean {live_costs.mean():.0f})",
                    ),
                ),
                hint=hint,
                data=data | {"branch": "cost-variance"},
            )
        ]
    return []


def multicast_advisor(
    block: ScanBlock,
    label: str | None = None,
    procs: int = HAZARD_PROCS,
) -> list[Diagnostic]:
    """Warn when ``REPRO_MULTICAST=1`` forces the fabric onto fan-out < 2.

    The multicast fabric pays off when one producer's boundary feeds two or
    more consumers; at uniform fan-out 1 it is a straight chain wearing
    epoch-stamp overhead (staging copies, credit waits) for nothing — the
    pipe-token fabric is the cheaper identical schedule.  The auto mode
    (``REPRO_MULTICAST`` unset) already makes that call per plan; this
    advisor fires only when the env knob overrides it to ``on``, probing the
    same :func:`~repro.parallel.collectives.plan_groups` projection the
    executor runs, on a rank-1 chain of ``procs`` workers.
    """
    try:
        from repro.compiler.lowering import compile_scan
        from repro.machine.grid import ProcessorGrid
        from repro.machine.schedules import plan_wavefront
        from repro.parallel.collectives import plan_groups, resolve_multicast
        from repro.parallel.executor import _build_distribution, _chains

        if resolve_multicast(None) != "on":
            return []
        compiled = compile_scan(block)
        plan = plan_wavefront(compiled, None)
        if plan.chunk_dim is None:
            return []  # cannot pipeline at all; the fabric never engages
        w = plan.wavefront_dim
        grid = ProcessorGrid(
            (max(2, min(procs, plan.region.extent(w))),)
        )
        dist = _build_distribution(plan, grid)
        locals_by_rank = {rank: dist.local_region(rank) for rank in grid}
        ascending = compiled.loops.signs[w] >= 0
        chains = _chains(grid, ascending)
        groups = plan_groups(
            compiled, plan, chains, locals_by_rank, grid.size
        )
    except ReproError:
        return []  # the executor will explain; the advisor stays silent
    if groups is None or groups.max_fanout >= 2:
        return []
    return [
        Diagnostic(
            "W109",
            f"REPRO_MULTICAST=1 forces the multicast fabric, but every "
            f"producer in this block feeds at most one consumer "
            f"(uniform fan-out {groups.max_fanout}): the epoch fabric "
            f"adds staging and credit overhead over plain pipe tokens",
            span=span_of(block.statements[0]),
            because=(
                Because(
                    "model",
                    f"boundary projection on a {grid.dims[0]}-rank chain: "
                    f"max consumer tiles per stamp is {groups.max_fanout}, "
                    f"and the fabric only amortises at 2 or more",
                ),
            ),
            hint="unset REPRO_MULTICAST (auto mode picks pipes here), or "
            "reshape the block so a boundary feeds several ranks",
            data={
                "max_fanout": groups.max_fanout,
                "p": grid.dims[0],
            }
            | ({"block": label} if label else {}),
        )
    ]


def pass_block_lints(program: Program) -> list[Diagnostic]:
    """Block-scoped lints (W104, W107, W108, W109) over every scan block."""
    out: list[Diagnostic] = []
    for index, block in enumerate(program.scan_blocks()):
        if legality_diagnostics(block):
            continue  # errors already reported; lints would be noise
        label = _block_label(block, index)
        out.extend(redundant_primes(block.statements, block=label))
        out.extend(pipeline_hazard(block.statements, block=label))
        out.extend(taskgraph_advisor(block.statements, block=label))
        out.extend(multicast_advisor(block, label=label))
    return out


# ---------------------------------------------------------------------------
# Explanations (I301, I302)
# ---------------------------------------------------------------------------
def explain_fusion(statements: Sequence[Assign]) -> list[Diagnostic]:
    """Why adjacent top-level statements do not fuse into one loop nest."""
    out: list[Diagnostic] = []
    group: list[Assign] = []
    for j, stmt in enumerate(statements):
        if not group or can_fuse(group + [stmt]):
            group.append(stmt)
            continue
        prev = group[-1]
        if stmt.region != prev.region:
            reason = (
                f"covering regions differ: {prev.region!r} vs {stmt.region!r}"
            )
            hint = "cover both statements with the same region to fuse them"
        elif stmt.expr.has_prime():
            reason = "the statement uses a primed reference"
            hint = "primed references require a scan block, not fusion"
        else:
            deps = extract_dependences(group + [stmt], primed_allowed=False)
            vectors = [
                d for d in deps if not d.is_loop_independent()
            ]
            reason = (
                "the combined dependences admit no loop structure: "
                + "; ".join(
                    f"{d.kind.value}{d.vector} on {d.array!r}" for d in vectors
                )
            )
            hint = "reorder or split the statements so the loop nest exists"
        out.append(
            Diagnostic(
                "I301",
                f"statement {j} starts a new fusion group: {reason}",
                span=span_of(stmt),
                because=(
                    Because("note", f"previous group ends at statement {j-1}"),
                ),
                hint=hint,
                data={"statement": j},
            )
        )
        group = [stmt]
    return out


def explain_skew(
    statements: Sequence[Assign], block: str | None = None
) -> list[Diagnostic]:
    """Why hyperplane skewing is (in)eligible for a scan-block body."""
    if not statements:
        return []
    region = statements[0].region
    deps = extract_dependences(statements)
    classes = classify(true_vectors(deps), region.rank)
    try:
        loops = derive_loop_structure(
            constraint_vectors(deps), classes, region.rank
        )
    except ReproError:
        return []  # over-constrained: E002 already explains everything
    dims = looped_dims(loops)
    data = {"looped_dims": list(dims)} | ({"block": block} if block else {})
    if len(dims) < 2:
        return [
            Diagnostic(
                "I302",
                f"skew ineligible: only {len(dims)} looped dimension(s) — "
                f"the flat engines already vectorise the parallel subspace",
                span=span_of(statements[0]),
                hint="nothing to do; this is the fast case",
                data=data,
            )
        ]
    if len(dims) > MAX_SKEW_RANK:
        return [
            Diagnostic(
                "I302",
                f"skew ineligible: {len(dims)} looped dimensions exceed the "
                f"supported maximum of {MAX_SKEW_RANK}",
                span=span_of(statements[0]),
                hint="reduce the rank or accept the flat point loop",
                data=data,
            )
        ]
    skew = derive_time_vector(loops, deps)
    if skew is None:
        return [
            Diagnostic(
                "I302",
                f"skew ineligible: no legal time vector with coefficients "
                f"up to {MAX_COEFF} over dimensions {dims}",
                span=span_of(statements[0]),
                because=tuple(
                    Because(
                        "udv",
                        f"{d.kind.value} dependence {d.vector} on {d.array!r}",
                    )
                    for d in deps
                    if not d.is_loop_independent()
                ),
                hint="the block runs with the flat point loop",
                data=data,
            )
        ]
    return [
        Diagnostic(
            "I302",
            f"skew eligible: {skew!r} executes anti-diagonal hyperplanes "
            f"over dimensions {dims}",
            span=span_of(statements[0]),
            hint="the kernel engine auto-selects this plan",
            data=data | {"tau": list(skew.tau)},
        )
    ]


def explain_program(program: Program) -> list[Diagnostic]:
    """The I-series explanations for a whole program."""
    out: list[Diagnostic] = []
    top_level = [item for item in program.items if isinstance(item, Assign)]
    out.extend(explain_fusion(top_level))
    for index, block in enumerate(program.scan_blocks()):
        if legality_diagnostics(block):
            continue
        out.extend(
            explain_skew(block.statements, block=_block_label(block, index))
        )
    return out


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
#: The registry, in run order.  Keys are stable pass names (CLI ``--pass``).
PASSES: dict[str, Callable[[Program], list[Diagnostic]]] = {
    "legality": pass_legality,
    "unused": pass_unused,
    "block-lints": pass_block_lints,
    "dead-masks": pass_dead_masks,
    "dead-stores": pass_dead_stores,
}


def lint_program(
    program: Program, only: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Run the registry over a parsed program (no execution, ever).

    ``only`` restricts to a subset of pass names.  Diagnostics come back in
    pass order, errors first within equal severity left as-is (stable).
    """
    names = list(PASSES) if only is None else list(only)
    out: list[Diagnostic] = []
    for name in names:
        out.extend(PASSES[name](program))
    return out


def lint_block(block: ScanBlock, name: str | None = None) -> list[Diagnostic]:
    """Lint a single DSL-built scan block (no Program wrapper needed)."""
    label = name or block.name or "scan"
    out = legality_diagnostics(block)
    for diagnostic in out:
        diagnostic.data.setdefault("block", label)
    if out:
        return out
    out = _overconstrained(block, 0)
    if out:
        return out
    out = redundant_primes(block.statements, block=label)
    out.extend(pipeline_hazard(block.statements, block=label))
    out.extend(taskgraph_advisor(block.statements, block=label))
    out.extend(multicast_advisor(block, label=label))
    return out


def explain_block(block: ScanBlock, name: str | None = None) -> list[Diagnostic]:
    """Explanations (I302 and legality/E002, if any) for one scan block."""
    out = lint_block(block, name=name)
    if any(d.severity.value == "error" for d in out):
        return out
    out.extend(explain_skew(block.statements, block=name or block.name))
    return out
