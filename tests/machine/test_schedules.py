"""Tests for the distributed wavefront schedules.

The two load-bearing invariants:

1. every schedule produces values identical to the sequential engines;
2. with even division, the pipelined virtual time equals the paper's
   analytic ``T_comp + T_comm`` formula *exactly*.
"""

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan
from repro.errors import DistributionError
from repro.machine import (
    CRAY_T3E,
    MachineParams,
    naive_wavefront,
    parallel_schedule,
    pipelined_wavefront,
    plan_wavefront,
    transpose_wavefront,
)
from repro.models import model2
from repro.runtime import execute_vectorized, run_and_capture
from tests.conftest import record_tomcatv_block

SMALL = MachineParams(name="small", alpha=40.0, beta=2.0)


def single_array_block(n: int, seed: int = 5):
    """A one-array wavefront: a := 1.05*a'@north + 0.1 over [2..n, 1..n]."""
    rng = np.random.default_rng(seed)
    a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
    with zpl.covering(zpl.Region.of((2, n), (1, n))):
        with zpl.scan(execute=False) as block:
            a[...] = 1.05 * (a.p @ zpl.NORTH) + 0.1
    return compile_scan(block), a


class TestPlan:
    def test_tomcatv_plan(self):
        block, _ = record_tomcatv_block(10)
        plan = plan_wavefront(compile_scan(block))
        assert plan.wavefront_dim == 0
        assert plan.chunk_dim == 1
        assert plan.boundary_rows == 3  # d, rx, ry flow with the wave
        assert plan.halo_rows == 1  # aa@north is read-only halo

    def test_single_array_plan(self):
        compiled, _ = single_array_block(8)
        plan = plan_wavefront(compiled)
        assert plan.boundary_rows == 1
        assert plan.halo_rows == 0

    def test_no_wavefront_rejected(self):
        n = 6
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        b = zpl.ones(zpl.Region.square(1, n), name="b")
        with zpl.covering(zpl.Region.square(2, n - 1)):
            with zpl.scan(execute=False) as block:
                a[...] = (b @ zpl.NORTH) + 1.0
        with pytest.raises(DistributionError, match="no pipelined"):
            plan_wavefront(compile_scan(block))

    def test_bad_wavefront_dim_rejected(self):
        compiled, _ = single_array_block(8)
        with pytest.raises(DistributionError):
            plan_wavefront(compiled, wavefront_dim=1)


class TestValueCorrectness:
    @pytest.mark.parametrize("p,b", [(1, 4), (2, 3), (3, 5), (4, 1), (4, 16)])
    def test_pipelined_matches_sequential(self, p, b):
        n = 16
        compiled, a = single_array_block(n)
        expected = run_and_capture(execute_vectorized, compiled, [a])
        outcome = pipelined_wavefront(compiled, SMALL, n_procs=p, block_size=b)
        got = a._data.copy()
        np.testing.assert_allclose(got, expected[0], rtol=1e-13)
        assert outcome.n_procs == p

    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_tomcatv_pipelined_matches_sequential(self, p):
        n = 12
        block, arrays = record_tomcatv_block(n)
        compiled = compile_scan(block)
        expected = run_and_capture(execute_vectorized, compiled, arrays)
        pipelined_wavefront(compiled, SMALL, n_procs=p, block_size=3)
        for arr, want in zip(arrays, expected):
            np.testing.assert_allclose(arr._data, want, rtol=1e-13)

    def test_naive_matches_sequential(self):
        n = 12
        block, arrays = record_tomcatv_block(n)
        compiled = compile_scan(block)
        expected = run_and_capture(execute_vectorized, compiled, arrays)
        naive_wavefront(compiled, SMALL, n_procs=3)
        for arr, want in zip(arrays, expected):
            np.testing.assert_allclose(arr._data, want, rtol=1e-13)

    def test_more_procs_than_rows(self):
        n = 6  # region rows 2..6 = 5 rows < 8 procs
        compiled, a = single_array_block(n)
        expected = run_and_capture(execute_vectorized, compiled, [a])
        pipelined_wavefront(compiled, SMALL, n_procs=8, block_size=2)
        np.testing.assert_allclose(a._data, expected[0], rtol=1e-13)

    def test_descending_wavefront(self):
        n = 10
        rng = np.random.default_rng(8)
        a = zpl.from_numpy(rng.uniform(size=(n, n)), base=1, name="a")
        with zpl.covering(zpl.Region.of((1, n - 1), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = 0.5 * (a.p @ zpl.SOUTH) + 1.0
        compiled = compile_scan(block)
        expected = run_and_capture(execute_vectorized, compiled, [a])
        pipelined_wavefront(compiled, SMALL, n_procs=3, block_size=4)
        np.testing.assert_allclose(a._data, expected[0], rtol=1e-13)


class TestAnalyticAgreement:
    def test_pipelined_time_matches_formula_exactly(self):
        # n divisible by p and by b, single boundary array: the DES critical
        # path equals T_comp + T_comm of Section 4 exactly.
        n, p, b = 32, 4, 8
        compiled, _ = single_array_block(n + 1)  # region has n rows, n+1 cols
        # Use a region of exactly n x n: rows 2..n+1 (n rows), cols 1..n+1 is
        # n+1 wide; rebuild with an n-wide covering region instead.
        rng = np.random.default_rng(5)
        a = zpl.from_numpy(rng.uniform(size=(n + 1, n)), base=1, name="a")
        with zpl.covering(zpl.Region.of((2, n + 1), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = 1.01 * (a.p @ zpl.NORTH)
        compiled = compile_scan(block)
        outcome = pipelined_wavefront(
            compiled, SMALL, n_procs=p, block_size=b, compute_values=False
        )
        m = model2(SMALL, n, p, boundary_rows=1)
        assert outcome.total_time == pytest.approx(m.predicted_time(b), rel=1e-12)

    def test_naive_slower_than_pipelined(self):
        compiled, _ = single_array_block(33)
        fast = pipelined_wavefront(
            compiled, SMALL, n_procs=4, block_size=8, compute_values=False
        )
        slow = naive_wavefront(compiled, SMALL, n_procs=4, compute_values=False)
        assert slow.total_time > fast.total_time

    def test_block_size_tradeoff(self):
        # Too-small blocks pay messages, too-large blocks lose overlap:
        # the optimum is interior.
        compiled, _ = single_array_block(65)
        times = {
            b: pipelined_wavefront(
                compiled, SMALL, n_procs=4, block_size=b, compute_values=False
            ).total_time
            for b in (1, 8, 64)
        }
        assert times[8] < times[1]
        assert times[8] < times[64]

    def test_compute_values_flag_does_not_change_time(self):
        compiled, a = single_array_block(16)
        snap = a._data.copy()
        t1 = pipelined_wavefront(
            compiled, SMALL, n_procs=2, block_size=4, compute_values=True
        ).total_time
        a._data[...] = snap
        t2 = pipelined_wavefront(
            compiled, SMALL, n_procs=2, block_size=4, compute_values=False
        ).total_time
        assert t1 == t2


class TestParallelSchedule:
    def test_stencil_parallel(self):
        from repro.compiler import compile_statements
        from repro.zpl.statements import Assign

        n = 40
        b = zpl.ones(zpl.Region.square(1, n), name="b")
        a = zpl.zeros(zpl.Region.square(1, n), name="a")
        R = zpl.Region.square(2, n - 1)
        compiled = compile_statements(
            [Assign(a, (b @ zpl.NORTH + b @ zpl.SOUTH + b @ zpl.WEST + b @ zpl.EAST) / 4.0, R)]
        )
        outcome = parallel_schedule(compiled, SMALL, n_procs=4)
        assert np.all(a.read(R) == 1.0)
        # Perfect parallelism up to halo cost: far faster than serial.
        assert outcome.total_time < R.size
        assert outcome.schedule == "parallel"

    def test_wavefront_dim_rejected(self):
        compiled, _ = single_array_block(8)
        with pytest.raises(DistributionError, match="carries a wavefront"):
            parallel_schedule(compiled, SMALL, n_procs=2, dist_dim=0)


class TestTransposeSchedule:
    def test_transpose_runs_and_prices_all_to_all(self):
        compiled, a = single_array_block(24)
        outcome = transpose_wavefront(compiled, SMALL, n_procs=4)
        assert outcome.schedule == "transpose"
        # 2 all-to-all phases: each proc receives 2*(p-1) messages.
        assert outcome.run.total_messages == 2 * 4 * 3

    def test_pipelined_beats_transpose_at_high_alpha(self):
        # With large startup cost the 2(p-1) all-to-all messages per proc
        # dominate; pipelining with a good block size wins.
        expensive = MachineParams(name="hi-alpha", alpha=5000.0, beta=1.0)
        compiled, _ = single_array_block(48)
        b = model2(expensive, 47, 4).optimal_block_size()
        pipe = pipelined_wavefront(
            compiled, expensive, n_procs=4, block_size=b, compute_values=False
        )
        trans = transpose_wavefront(compiled, expensive, n_procs=4)
        assert pipe.total_time < trans.total_time


class TestStats:
    def test_message_accounting(self):
        n, p, b = 17, 4, 4
        compiled, _ = single_array_block(n)
        outcome = pipelined_wavefront(
            compiled, SMALL, n_procs=p, block_size=b, compute_values=False
        )
        # (p-1) links x ceil(cols/b) chunks, no halo for this block.
        cols = n  # region is [2..n, 1..n]: n columns
        assert outcome.run.total_messages == (p - 1) * -(-cols // b)

    def test_utilization_bounds(self):
        compiled, _ = single_array_block(16)
        outcome = pipelined_wavefront(
            compiled, SMALL, n_procs=4, block_size=4, compute_values=False
        )
        assert 0.0 < outcome.run.utilization <= 1.0

    def test_repr(self):
        compiled, _ = single_array_block(8)
        outcome = pipelined_wavefront(compiled, SMALL, 2, 2, compute_values=False)
        assert "pipelined" in repr(outcome)
