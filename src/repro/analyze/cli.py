"""``python -m repro.analyze`` — lint, explain, and race-check wavefront code.

Three commands:

``lint``
    Run the static pass registry over textual ZPL files and/or the apps
    suite.  Never executes a program and never builds kernel plans.  Exit
    status 1 when any *error* diagnostic (``E...``) was produced, 0
    otherwise (warnings and infos do not fail the lint).

``explain``
    Everything ``lint`` reports, plus the ``I301``/``I302`` explanations:
    why fusion split a statement sequence, and whether hyperplane skewing
    found a legal time vector.

``race``
    Execute suite entries on the real multiprocess backend with the
    wavefront race sanitizer enabled (shadow stamps + vector-clocked
    tokens).  Exit status 1 when a happens-before violation was detected.

``certify``
    Statically prove (:mod:`repro.analyze.certify`) that each schedule's
    sync protocol covers every projected dependence edge and is
    deadlock-free — no execution.  One report per input × schedule; exit
    status 1 when any ``E101``/``E102``/``E103`` was produced.  Planner
    refusals (a schedule the executor would not run either) appear as
    ``W110`` warnings, not errors.  ``--mutate NAME`` corrupts the model
    first (the soundness smoke: the mutant must fail certification).

Textual ZPL inputs declare their array environment in ``#!`` pragma
comments (ordinary ``#`` comments to the tokenizer), e.g.::

    #! arrays: h[1..64, 1..64], m[1..64, 1..64] = 1
    #! constants: n = 64
    direction up = (-1, 0);
    [2..n, 1..n] scan  h := h'@up * 0.5;  end;

JSON output (``--json``) is an array of per-input report objects following
the ``repro-analyze/1`` schema (see docs/analysis.md);
:func:`repro.analyze.diagnostics.validate_report` is the normative checker.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

from repro.analyze.diagnostics import (
    Diagnostic,
    Severity,
    make_report,
    render_all,
)
from repro.analyze.passes import (
    explain_program,
    explain_skew,
    lint_program,
    pipeline_hazard,
    redundant_primes,
    PASSES,
)

_ARRAY_RE = re.compile(
    r"([A-Za-z_]\w*)\s*\[([^\]]+)\]\s*(?:=\s*(-?\d+(?:\.\d+)?))?"
)
_CONST_RE = re.compile(r"([A-Za-z_]\w*)\s*=\s*(-?\d+)")


def _parse_pragmas(source: str):
    """Array/constant declarations from ``#!`` pragma lines."""
    from repro.zpl.arrays import ZArray
    from repro.zpl.regions import Region

    arrays = {}
    constants: dict[str, int] = {}
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped.startswith("#!"):
            continue
        body = stripped[2:].strip()
        if body.startswith("arrays:"):
            for match in _ARRAY_RE.finditer(body[len("arrays:"):]):
                name, ranges_text, fill = match.groups()
                ranges = []
                for part in ranges_text.split(","):
                    lo, hi = part.split("..")
                    ranges.append((int(lo), int(hi)))
                arrays[name] = ZArray(
                    Region(tuple(ranges)),
                    name=name,
                    fill=float(fill) if fill is not None else 0.0,
                )
        elif body.startswith("constants:"):
            for match in _CONST_RE.finditer(body[len("constants:"):]):
                constants[match.group(1)] = int(match.group(2))
    return arrays, constants


def _lint_file(path: str, only=None, explain: bool = False):
    """Lint one ``.zpl`` file: (diagnostics, source).  Parse errors → E000."""
    from repro.zpl.parser import ParseError, parse_program

    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    arrays, constants = _parse_pragmas(source)
    try:
        program = parse_program(source, arrays, constants, filename=path)
    except ParseError as exc:
        return [
            Diagnostic(
                "E000",
                str(exc),
                span=getattr(exc, "span", None),
                hint="fix the syntax/name error; linting needs a parse",
            )
        ], source
    diagnostics = lint_program(program, only=only)
    if explain:
        diagnostics.extend(explain_program(program))
    return diagnostics, source


def _suite_block(entry, n: int):
    """Wrap a suite entry's compiled statements back into a scan block."""
    from repro.zpl.scan import ScanBlock

    compiled = entry.build(n)
    block = ScanBlock(name=entry.name)
    for stmt in compiled.statements:
        block.append(stmt)
    return block, compiled


def _lint_suite_entry(entry, n: int, explain: bool = False):
    """Lint one suite entry (already-compiled: legality holds by build)."""
    from repro.analyze.passes import lint_block

    block, _ = _suite_block(entry, n)
    diagnostics = [
        d
        for d in lint_block(block, name=entry.name)
        if d.code != "W107"  # re-run the hazard with the entry's true m
    ]
    diagnostics.extend(
        pipeline_hazard(
            block.statements,
            block=entry.name,
            boundary_rows=entry.boundary_rows,
        )
    )
    if explain:
        diagnostics.extend(explain_skew(block.statements, block=entry.name))
    return diagnostics


def _emit(reports, as_json: bool, color: bool) -> int:
    """Print reports; return the exit status (1 iff any error diagnostic)."""
    failed = False
    if as_json:
        print(json.dumps(reports, indent=2))
        for report in reports:
            failed = failed or report["counts"]["error"] > 0
        return 1 if failed else 0
    for report in reports:
        diagnostics = report["_diagnostics"]
        source = report.get("_source")
        label = report["file"]
        if diagnostics:
            print(render_all(diagnostics, source=source, filename=label, color=color))
            print()
        counts = report["counts"]
        print(
            f"{label}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info(s)"
        )
        failed = failed or counts["error"] > 0
    return 1 if failed else 0


def _collect(args, explain: bool) -> list[dict]:
    """Build per-input reports for ``lint``/``explain``."""
    reports: list[dict] = []

    def add(label, diagnostics, source=None):
        report = make_report(diagnostics, label)
        report["_diagnostics"] = diagnostics
        report["_source"] = source
        reports.append(report)

    for path in args.paths:
        diagnostics, source = _lint_file(
            path, only=getattr(args, "passes", None) or None, explain=explain
        )
        add(path, diagnostics, source)
    if args.suite is not None:
        from repro.apps.suite import SUITE, get

        entries = SUITE if not args.suite else [get(name) for name in args.suite]
        for entry in entries:
            add(
                f"suite:{entry.name}",
                _lint_suite_entry(entry, args.n, explain=explain),
            )
    return reports


def _strip_private(reports: list[dict]) -> list[dict]:
    return [
        {k: v for k, v in report.items() if not k.startswith("_")}
        for report in reports
    ]


def cmd_lint(args, explain: bool = False) -> int:
    if not args.paths and args.suite is None:
        print("nothing to lint: give .zpl paths and/or --suite", file=sys.stderr)
        return 2
    reports = _collect(args, explain)
    if args.json:
        return _emit(_strip_private(reports), True, False)
    return _emit(reports, False, args.color)


def cmd_race(args) -> int:
    """Run suite entries under the race sanitizer on the real backend."""
    from repro.apps.suite import SUITE, get
    from repro.errors import ReproError, SanitizerError
    from repro.parallel.executor import execute

    entries = SUITE if args.suite in (None, []) else [get(s) for s in args.suite]
    grid = tuple(int(g) for g in args.grid.split("x"))
    schedules = (
        ("pipelined", "naive") if args.schedule == "both" else (args.schedule,)
    )
    runs = []
    failed = False
    for entry in entries:
        for schedule in schedules:
            compiled = entry.build(args.n)
            record = {
                "suite": entry.name,
                "schedule": schedule,
                "grid": list(grid),
                "clean": True,
            }
            try:
                result = execute(
                    compiled,
                    grid=grid,
                    schedule=schedule,
                    block=args.block,
                    sanitize=True,
                )
                record["wall_time"] = result.wall_time
                status = "clean"
            except SanitizerError as exc:
                record["clean"] = False
                record["error"] = str(exc)
                failed = True
                status = "RACE DETECTED"
            except ReproError as exc:
                record["clean"] = False
                record["error"] = str(exc)
                failed = True
                status = f"error: {exc}"
            runs.append(record)
            if not args.json:
                print(f"{entry.name:>20} [{schedule:>9}] grid={grid}: {status}")
                if not record["clean"]:
                    print(record["error"])
    if args.json:
        print(
            json.dumps(
                {"schema": "repro-analyze-race/1", "runs": runs}, indent=2
            )
        )
    return 1 if failed else 0


def _certify_inputs_from_file(path: str) -> list[tuple]:
    """Compile one ``.zpl`` file into ``(label, compiled, pre, source)``
    certify inputs — ``compiled`` is ``None`` (with ``pre`` holding the
    parse/legality diagnostic) when the front end refuses the program."""
    from repro.compiler.lowering import compile_scan
    from repro.errors import ReproError
    from repro.zpl.parser import ParseError, parse_program

    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    arrays, constants = _parse_pragmas(source)
    try:
        program = parse_program(source, arrays, constants, filename=path)
    except ParseError as exc:
        diagnostic = Diagnostic(
            "E000",
            str(exc),
            span=getattr(exc, "span", None),
            hint="fix the syntax/name error; certification needs a parse",
        )
        return [(path, None, [diagnostic], source)]
    blocks = program.scan_blocks()
    inputs: list[tuple] = []
    for index, block in enumerate(blocks):
        label = path if len(blocks) == 1 else f"{path}#{index}"
        try:
            compiled = compile_scan(block)
        except ReproError as exc:
            diagnostic = exc.diagnostic or Diagnostic(
                "E000",
                str(exc),
                hint="fix the legality error; certification needs a plan",
            )
            inputs.append((label, None, [diagnostic], source))
            continue
        inputs.append((label, compiled, [], source))
    return inputs


def cmd_certify(args) -> int:
    """Statically certify each input at each requested schedule."""
    from repro.analyze.certify import (
        MUTATIONS,
        MutationUnsupported,
        PSEUDO_SCHEDULES,
        apply_mutation,
        build_schedule_model,
        certify_model,
        schedule_kwargs,
    )
    from repro.errors import MachineError

    if not args.paths and args.suite is None:
        print(
            "nothing to certify: give .zpl paths and/or --suite",
            file=sys.stderr,
        )
        return 2
    if args.mutate is not None and args.mutate not in MUTATIONS:
        print(
            f"unknown mutation {args.mutate!r}; pick from: "
            + ", ".join(MUTATIONS),
            file=sys.stderr,
        )
        return 2
    grid = tuple(int(g) for g in args.grid.split("x"))
    schedules = (
        PSEUDO_SCHEDULES if args.schedule == "all" else (args.schedule,)
    )

    inputs: list[tuple] = []
    for path in args.paths:
        inputs.extend(_certify_inputs_from_file(path))
    if args.suite is not None:
        from repro.apps.suite import SUITE, get

        entries = SUITE if not args.suite else [get(s) for s in args.suite]
        for entry in entries:
            inputs.append((f"suite:{entry.name}", entry.build(args.n), [], None))

    reports: list[dict] = []

    def add(label, diagnostics, source):
        report = make_report(diagnostics, label)
        report["_diagnostics"] = diagnostics
        report["_source"] = source
        reports.append(report)

    for label, compiled, pre, source in inputs:
        if compiled is None:
            add(label, pre, source)
            continue
        for pseudo in schedules:
            diagnostics = list(pre)
            try:
                model = build_schedule_model(
                    compiled, grid=grid, block=args.block,
                    **schedule_kwargs(pseudo),
                )
            except MachineError as exc:
                diagnostics.append(
                    Diagnostic(
                        "W110",
                        f"schedule {pseudo!r} unavailable on grid {grid}: "
                        f"{exc}",
                        hint=(
                            "the planner refuses this configuration "
                            "natively; there is no schedule to certify"
                        ),
                    )
                )
                model = None
            if model is not None and args.mutate is not None:
                try:
                    _mutation, model = apply_mutation(model, args.mutate)
                except MutationUnsupported as exc:
                    diagnostics.append(
                        Diagnostic(
                            "W110",
                            f"mutation {args.mutate!r} does not apply at "
                            f"{pseudo!r}: {exc}",
                            hint="pick a mutation matching the protocol",
                        )
                    )
                    model = None
            if model is not None:
                diagnostics.extend(certify_model(model))
            add(f"{label}@{pseudo}", diagnostics, source)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(_strip_private(reports), handle, indent=2)
    if args.json:
        return _emit(_strip_private(reports), True, False)
    return _emit(reports, False, args.color)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="static diagnostics and race sanitizing for scan blocks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, race: bool = False):
        p.add_argument("--json", action="store_true", help="machine output")
        p.add_argument(
            "--suite",
            nargs="*",
            default=None,
            metavar="NAME",
            help="include apps-suite entries (no names: the whole suite)",
        )
        p.add_argument(
            "--n", type=int, default=64, help="suite problem size (default 64)"
        )

    lint = sub.add_parser("lint", help="run the static pass registry")
    lint.add_argument("paths", nargs="*", help=".zpl files with #! pragmas")
    lint.add_argument(
        "--pass",
        dest="passes",
        action="append",
        choices=sorted(PASSES),
        help="restrict to named passes (repeatable)",
    )
    lint.add_argument("--color", action="store_true", help="ANSI colours")
    common(lint)

    explain = sub.add_parser(
        "explain", help="lint plus fusion/skew explanations"
    )
    explain.add_argument("paths", nargs="*", help=".zpl files with #! pragmas")
    explain.add_argument("--color", action="store_true", help="ANSI colours")
    common(explain)

    race = sub.add_parser(
        "race", help="run suite entries under the wavefront race sanitizer"
    )
    common(race, race=True)
    race.add_argument(
        "--grid", default="2", help="processor grid, e.g. 2 or 2x2 (default 2)"
    )
    race.add_argument(
        "--schedule",
        choices=("pipelined", "naive", "both"),
        default="both",
        help="which schedules to check (default both)",
    )
    race.add_argument(
        "--block", type=int, default=None, help="pipeline block size"
    )

    certify = sub.add_parser(
        "certify",
        help="statically prove sync coverage and deadlock freedom",
    )
    certify.add_argument("paths", nargs="*", help=".zpl files with #! pragmas")
    common(certify)
    certify.add_argument(
        "--grid", default="2", help="processor grid, e.g. 2 or 2x2 (default 2)"
    )
    certify.add_argument(
        "--schedule",
        choices=("all", "naive", "pipelined", "multicast", "taskgraph"),
        default="all",
        help="which schedule(s) to certify (default all four)",
    )
    certify.add_argument(
        "--block", type=int, default=None, help="pipeline block size"
    )
    certify.add_argument(
        "--mutate",
        default=None,
        metavar="NAME",
        help="corrupt the model first (soundness smoke; must fail)",
    )
    certify.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the JSON reports to FILE (CERTIFY_report.json)",
    )
    certify.add_argument("--color", action="store_true", help="ANSI colours")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        args.passes = getattr(args, "passes", None)
        return cmd_lint(args)
    if args.command == "explain":
        args.passes = None
        args.color = getattr(args, "color", False)
        return cmd_lint(args, explain=True)
    if args.command == "certify":
        return cmd_certify(args)
    return cmd_race(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
