#!/usr/bin/env python
"""Tomcatv end to end: mesh relaxation plus a pipelining study of its solves.

Part 1 runs the actual benchmark (the paper's Figs. 1/2 code) sequentially
and shows the residual converging.  Part 2 takes the forward-elimination
wavefront — the exact Fig. 2(b) scan block — and sweeps block sizes on the
simulated Cray T3E, comparing the measured optimum with Model2's prediction
(the paper's Fig. 5(a) study in miniature).

Run:  python examples/tomcatv_pipelined.py
"""

from repro.apps import tomcatv
from repro.machine import CRAY_T3E, naive_wavefront, pipelined_wavefront, plan_wavefront
from repro.models import model2

# ---------------------------------------------------------------------------
# Part 1: the benchmark itself.
# ---------------------------------------------------------------------------
n = 64
state = tomcatv.build(n, distortion=0.2)
history = tomcatv.run(state, iterations=8)

print(f"Tomcatv mesh relaxation, n={n}:")
for k, residual in enumerate(history, 1):
    print(f"  iteration {k}: max residual {residual:.6f}")
print(f"  converging: {history[-1] < history[0]}")

# ---------------------------------------------------------------------------
# Part 2: pipelining the forward solve on the simulated T3E.
# ---------------------------------------------------------------------------
big = tomcatv.build(257)
tomcatv.coefficients_phase(big)
tomcatv.prepare_solve(big)
compiled = tomcatv.compile_forward(big)
plan = plan_wavefront(compiled)
print(f"\nForward solve: WSV {compiled.wsv}, wavefront dim {plan.wavefront_dim}, "
      f"{plan.boundary_rows} boundary rows/message unit")

p = 8
rows = compiled.region.extent(0)
cols = compiled.region.extent(1)
baseline = naive_wavefront(compiled, CRAY_T3E, n_procs=p, compute_values=False)
print(f"\nSimulated Cray T3E, p={p} (baseline: naive = {baseline.total_time:.0f}):")
print(f"  {'b':>4s} {'time':>10s} {'speedup':>8s}")
for b in (1, 4, 8, 16, 23, 32, 39, 64, 128):
    outcome = pipelined_wavefront(
        compiled, CRAY_T3E, n_procs=p, block_size=b, compute_values=False
    )
    print(f"  {b:4d} {outcome.total_time:10.0f} "
          f"{baseline.total_time / outcome.total_time:8.2f}x")

m2 = model2(CRAY_T3E, rows, p, boundary_rows=plan.boundary_rows, cols=cols)
print(f"\nModel2 predicts b* = {m2.optimal_block_size()} "
      f"(closed form {m2.optimal_block_size_continuous():.1f}); "
      f"the paper reports 23 for this configuration.")
