"""Array assignment statements.

A statement is the unit the compiler reasons about: a target array, an
expression tree, and the covering region.  Statements are either executed
eagerly (ordinary array-language semantics) or recorded into a scan block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExpressionError, RegionError
from repro.zpl.arrays import ZArray
from repro.zpl.expr import Node
from repro.zpl.regions import Region
from repro.zpl.span import SourceSpan


@dataclass(frozen=True)
class Assign:
    """``target[region] = expr`` — one array assignment statement.

    ``mask`` implements ZPL's ``[R with m]``: the store happens only at
    region points where the mask array is nonzero (reads are unaffected).

    ``span`` is the statement's location in textual ZPL when it came from
    the parser (``None`` for DSL-built statements); it never participates in
    equality, so identical statements from different source lines compare
    equal exactly as before.
    """

    target: ZArray
    expr: Node
    region: Region
    mask: ZArray | None = None
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.mask is not None and self.mask.rank != self.region.rank:
            raise RegionError(
                f"mask rank {self.mask.rank} != region rank {self.region.rank}"
            )
        if self.target.rank != self.region.rank:
            raise RegionError(
                f"statement region {self.region!r} has rank {self.region.rank}, "
                f"target {self.target!r} has rank {self.target.rank}"
            )
        expr_rank = self.expr.rank
        if expr_rank is not None and expr_rank != self.region.rank:
            raise ExpressionError(
                f"expression rank {expr_rank} != covering region rank "
                f"{self.region.rank}"
            )

    @property
    def rank(self) -> int:
        """Rank of the statement (depth of its implementing loop nest)."""
        return self.region.rank

    def reads(self) -> tuple:
        """All array references on the right-hand side."""
        return tuple(self.expr.refs())

    def __repr__(self) -> str:
        name = self.target.name or "<array>"
        return f"{self.region!r} {name} := {self.expr!r}"
