"""Request validation and the typed error surface."""

import pytest

from repro.serve import (
    BadRequest,
    PayloadTooLarge,
    QueueFull,
    RequestTimeout,
    ServeError,
    parse_align,
    parse_request,
    parse_zpl,
)
from repro.serve.protocol import MAX_SEQ_LEN, MAX_ZPL_ELEMENTS


class TestErrorTypes:
    def test_statuses_and_codes(self):
        assert BadRequest.status == 400 and BadRequest.code == "bad_request"
        assert QueueFull.status == 429 and QueueFull.code == "queue_full"
        assert RequestTimeout.status == 504
        assert PayloadTooLarge.status == 413
        assert issubclass(PayloadTooLarge, BadRequest)
        assert issubclass(QueueFull, ServeError)

    def test_payload_shape(self):
        err = QueueFull("full", retry_after=0.25)
        assert err.payload() == {"error": "queue_full", "message": "full"}
        assert err.retry_after == 0.25


class TestParseAlign:
    def test_valid_with_defaults(self):
        req = parse_align({"kind": "nw", "a": "ACGT", "b": "AGT"})
        assert (req.kind, req.a, req.b) == ("nw", "ACGT", "AGT")
        assert (req.match, req.mismatch, req.gap) == (2.0, -1.0, 1.0)
        assert not req.local and req.cells == 12

    def test_batch_key_coalesces_same_shape_and_params(self):
        one = parse_align({"kind": "sw", "a": "ACGT", "b": "AGTT"})
        two = parse_align({"kind": "sw", "a": "TTTT", "b": "CCCC"})
        assert one.batch_key == two.batch_key

    def test_batch_key_splits_on_shape_mode_and_scores(self):
        base = parse_align({"kind": "nw", "a": "ACGT", "b": "AGTT"})
        for other in (
            {"kind": "sw", "a": "ACGT", "b": "AGTT"},
            {"kind": "nw", "a": "ACGTA", "b": "AGTT"},
            {"kind": "nw", "a": "ACGT", "b": "AGTT", "gap": 2.0},
        ):
            assert parse_align(other).batch_key != base.batch_key

    @pytest.mark.parametrize("payload", [
        "not an object",
        {"kind": "needleman", "a": "A", "b": "C"},
        {"kind": "nw", "b": "C"},
        {"kind": "nw", "a": "", "b": "C"},
        {"kind": "nw", "a": "Aé", "b": "C"},
        {"kind": "nw", "a": "A", "b": "C", "gap": "one"},
        {"kind": "nw", "a": "A", "b": "C", "gap": float("nan")},
        {"kind": "nw", "a": "A", "b": "C", "bogus": 1},
    ])
    def test_malformed_rejected(self, payload):
        with pytest.raises(BadRequest):
            parse_align(payload)

    def test_oversized_sequence_is_413(self):
        with pytest.raises(PayloadTooLarge):
            parse_align({"kind": "nw", "a": "A" * (MAX_SEQ_LEN + 1), "b": "C"})


class TestParseZpl:
    SPEC = {"source": "[1..4, 1..4] a := a + 1.0;",
            "arrays": {"a": {"lo": [1, 1], "hi": [4, 4]}}}

    def test_valid(self):
        req = parse_zpl(self.SPEC)
        assert req.source == self.SPEC["source"]
        assert req.arrays["a"]["fluff"] == 1
        assert req.cells == 16

    def test_batch_key_tracks_source_and_geometry(self):
        base = parse_zpl(self.SPEC)
        same = parse_zpl({**self.SPEC})
        assert base.batch_key == same.batch_key
        other_source = parse_zpl({**self.SPEC,
                                  "source": "[1..4, 1..4] a := a + 2.0;"})
        assert other_source.batch_key != base.batch_key
        other_shape = parse_zpl({
            **self.SPEC, "arrays": {"a": {"lo": [1, 1], "hi": [5, 4]}},
        })
        assert other_shape.batch_key != base.batch_key

    @pytest.mark.parametrize("payload", [
        {"source": "", "arrays": {"a": {"lo": [1], "hi": [4]}}},
        {"source": "x := 1;"},
        {"source": "x := 1;", "arrays": {}},
        {"source": "x := 1;", "arrays": {"not an id!": {"lo": [1], "hi": [2]}}},
        {"source": "x := 1;", "arrays": {"a": {"lo": [1]}}},
        {"source": "x := 1;", "arrays": {"a": {"lo": [1, 1], "hi": [2]}}},
        {"source": "x := 1;", "arrays": {"a": {"lo": [3], "hi": [1]}}},
        {"source": "x := 1;", "arrays": {"a": {"lo": [1], "hi": [2],
                                               "fluff": -1}}},
    ])
    def test_malformed_rejected(self, payload):
        with pytest.raises(BadRequest):
            parse_zpl(payload)

    def test_oversized_array_is_413(self):
        side = int(MAX_ZPL_ELEMENTS ** 0.5) + 2
        with pytest.raises(PayloadTooLarge):
            parse_zpl({"source": "x := 1;",
                       "arrays": {"a": {"lo": [1, 1], "hi": [side, side]}}})


class TestParseRequest:
    def test_routes(self):
        req = parse_request("/v1/align", {"kind": "nw", "a": "A", "b": "C"})
        assert req.batch_key[0] == "align"
        with pytest.raises(BadRequest, match="no such endpoint"):
            parse_request("/v1/unknown", {})
