"""Diagnostic objects and their rust-style renderer.

Everything :mod:`repro.analyze` reports — legality violations, lints, race
reports from the dynamic sanitizer — is a :class:`Diagnostic`: a stable code
(``E003``, ``W104``, ...), a severity, an optional :class:`SourceSpan`
pointing at real ZPL text, a structured *because* chain (the offending UDV,
the WSV entry, the primed reference that led the checker to its conclusion),
and a fix-it hint.  The renderer produces output in the style of rustc::

    error[E002]: directions over-constrain the scan block
      --> fragment.zpl:4:7
       |
     4 |       b := b'@north + b'@south;
       |       ^^^^^^^^^^^^^^^^^^^^^^^^
       = because: UDV (-1, 0) from b'@north demands increasing traversal
       = because: UDV (1, 0) from b'@south demands decreasing traversal
       = help: drop one of the conflicting primed shifts, or split the block

Diagnostics never raise; they are plain data.  The legality checker attaches
them to the exceptions it raises (``exc.diagnostic``) so both worlds — code
that catches :class:`~repro.errors.LegalityError` and tools that batch-render
— see the same facts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.zpl.span import SourceSpan

#: JSON report schema identifier (bump on incompatible changes).
SCHEMA = "repro-analyze/1"


class Severity(enum.Enum):
    """How serious a diagnostic is; orders ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


#: Registry of every stable diagnostic code: ``code -> (severity, title)``.
#: Codes are append-only; never renumber (docs/analysis.md mirrors this table).
CODES: dict[str, tuple[Severity, str]] = {
    # Parse front end.
    "E000": (Severity.ERROR, "parse error"),
    # The paper's Section 2.2 legality conditions, one code per condition.
    "E001": (Severity.ERROR, "primed array never defined in scan block"),
    "E002": (Severity.ERROR, "directions over-constrain the scan block"),
    "E003": (Severity.ERROR, "statements of different rank in one scan block"),
    "E004": (Severity.ERROR, "statements cover different regions"),
    "E005": (Severity.ERROR, "parallel operator reads a primed operand"),
    # Implementation-level legality checks.
    "E006": (Severity.ERROR, "primed reference without an @-shift"),
    "E007": (Severity.ERROR, "scan block writes its own mask"),
    "E008": (Severity.ERROR, "hoisted parallel operator reads block output"),
    "E009": (Severity.ERROR, "empty scan block"),
    # Dynamic wavefront race sanitizer.
    "E100": (Severity.ERROR, "wavefront race: read before owning write"),
    # Static schedule certifier (repro.analyze.certify).
    "E101": (Severity.ERROR, "unsynchronized dependence"),
    "E102": (Severity.ERROR, "potential deadlock"),
    "E103": (Severity.ERROR, "staging slot aliases a live read window"),
    # Lints.
    "W101": (Severity.WARNING, "unused array"),
    "W102": (Severity.WARNING, "unused region"),
    "W103": (Severity.WARNING, "unused direction"),
    "W104": (Severity.WARNING, "redundant prime"),
    "W105": (Severity.WARNING, "dead mask"),
    "W106": (Severity.WARNING, "dead store"),
    "W107": (Severity.WARNING, "pipelining predicted unprofitable"),
    "W108": (Severity.WARNING, "taskgraph schedule recommended"),
    "W109": (Severity.WARNING, "multicast fabric forced on fan-out < 2"),
    "W110": (Severity.WARNING, "checker unavailable in this configuration"),
    # Explanations (requested via `repro.analyze explain`).
    "I301": (Severity.INFO, "fusion blocked"),
    "I302": (Severity.INFO, "skew ineligible"),
}


@dataclass(frozen=True)
class Because:
    """One link in a diagnostic's evidence chain.

    ``kind`` names the artifact the checker looked at (``"udv"``, ``"wsv"``,
    ``"ref"``, ``"loop"``, ``"model"``, ``"token"``, ``"note"``); ``detail``
    is the human-readable sentence.  Keeping the kind machine-readable lets
    the JSON output stay structured while the text renderer just prints the
    sentences.
    """

    kind: str
    detail: str


@dataclass(frozen=True)
class Label:
    """A secondary span annotation rendered under its own source line."""

    span: SourceSpan
    message: str


@dataclass(frozen=True)
class Diagnostic:
    """One finding: code + severity + location + evidence + hint."""

    code: str
    message: str
    span: SourceSpan | None = None
    labels: tuple[Label, ...] = ()
    because: tuple[Because, ...] = ()
    hint: str | None = None
    #: Extra context for JSON consumers (statement index, array name, ...).
    data: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> Severity:
        return CODES[self.code][0]

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def to_dict(self) -> dict:
        """JSON-ready form (see docs/analysis.md for the schema)."""
        def span_dict(span: SourceSpan) -> dict:
            return {
                "line": span.line,
                "col": span.col,
                "end_line": span.end_line,
                "end_col": span.end_col,
            }

        out: dict = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "span": span_dict(self.span) if self.span else None,
            "labels": [
                {"span": span_dict(l.span), "message": l.message}
                for l in self.labels
            ],
            "because": [
                {"kind": b.kind, "detail": b.detail} for b in self.because
            ],
            "hint": self.hint,
        }
        if self.data:
            out["data"] = dict(self.data)
        return out


def _source_lines(source: str | None) -> list[str]:
    return source.splitlines() if source else []


def render(
    diagnostic: Diagnostic,
    source: str | None = None,
    filename: str | None = None,
    color: bool = False,
) -> str:
    """Render one diagnostic in rustc style.

    Without ``source`` (programs built through the embedded DSL have none)
    the excerpt block is omitted and only the header, evidence chain, and
    hint are printed.
    """
    severity = diagnostic.severity.value
    if color:
        tint = {"error": "\x1b[31m", "warning": "\x1b[33m", "info": "\x1b[36m"}
        head = (
            f"{tint[severity]}{severity}[{diagnostic.code}]\x1b[0m: "
            f"\x1b[1m{diagnostic.message}\x1b[0m"
        )
    else:
        head = f"{severity}[{diagnostic.code}]: {diagnostic.message}"
    lines = [head]

    spans: list[tuple[SourceSpan, str]] = []
    if diagnostic.span is not None:
        spans.append((diagnostic.span, ""))
    spans.extend((label.span, label.message) for label in diagnostic.labels)

    if spans:
        anchor = spans[0][0]
        where = filename or "<zpl>"
        lines.append(f"  --> {where}:{anchor.line}:{anchor.col}")
        text = _source_lines(source)
        if text:
            gutter = max(len(str(span.line)) for span, _ in spans)
            lines.append(f"{' ' * (gutter + 1)}|")
            for span, message in spans:
                if not (1 <= span.line <= len(text)):
                    continue
                src = text[span.line - 1]
                lines.append(f"{span.line:>{gutter}} | {src}")
                caret = " " * (span.col - 1) + "^" * span.width
                tail = f" {message}" if message else ""
                lines.append(f"{' ' * (gutter + 1)}| {caret}{tail}")

    for because in diagnostic.because:
        lines.append(f"  = because: {because.detail}")
    if diagnostic.hint:
        lines.append(f"  = help: {diagnostic.hint}")
    return "\n".join(lines)


def render_all(
    diagnostics: list[Diagnostic],
    source: str | None = None,
    filename: str | None = None,
    color: bool = False,
) -> str:
    """Render many diagnostics separated by blank lines."""
    return "\n\n".join(
        render(d, source=source, filename=filename, color=color)
        for d in diagnostics
    )


def make_report(
    diagnostics: list[Diagnostic], filename: str | None = None
) -> dict:
    """The JSON report for one linted program (schema ``repro-analyze/1``)."""
    counts = {"error": 0, "warning": 0, "info": 0}
    for diagnostic in diagnostics:
        counts[diagnostic.severity.value] += 1
    return {
        "schema": SCHEMA,
        "file": filename,
        "diagnostics": [d.to_dict() for d in diagnostics],
        "counts": counts,
    }


def validate_report(report: dict) -> None:
    """Raise ``ValueError`` unless ``report`` matches ``repro-analyze/1``.

    This is the schema the CI lint step (and any downstream tooling) relies
    on; the checks are deliberately structural and exhaustive rather than
    clever, so schema drift fails loudly in tests.
    """
    def need(cond: bool, what: str) -> None:
        if not cond:
            raise ValueError(f"bad repro-analyze report: {what}")

    need(isinstance(report, dict), "not a dict")
    need(report.get("schema") == SCHEMA, f"schema != {SCHEMA!r}")
    need("file" in report, "missing 'file'")
    need(isinstance(report.get("diagnostics"), list), "missing 'diagnostics'")
    counts = report.get("counts")
    need(
        isinstance(counts, dict)
        and set(counts) == {"error", "warning", "info"}
        and all(isinstance(v, int) and v >= 0 for v in counts.values()),
        "bad 'counts'",
    )
    tally = {"error": 0, "warning": 0, "info": 0}
    for entry in report["diagnostics"]:
        need(isinstance(entry, dict), "diagnostic entry not a dict")
        code = entry.get("code")
        need(code in CODES, f"unknown code {code!r}")
        need(entry.get("severity") == CODES[code][0].value, "severity drift")
        need(isinstance(entry.get("message"), str), "missing 'message'")
        span = entry.get("span")
        if span is not None:
            need(
                isinstance(span, dict)
                and {"line", "col", "end_line", "end_col"} <= set(span),
                "bad 'span'",
            )
        need(isinstance(entry.get("labels"), list), "missing 'labels'")
        need(isinstance(entry.get("because"), list), "missing 'because'")
        for because in entry["because"]:
            need(
                isinstance(because, dict)
                and isinstance(because.get("kind"), str)
                and isinstance(because.get("detail"), str),
                "bad 'because' entry",
            )
        hint = entry.get("hint")
        need(hint is None or isinstance(hint, str), "bad 'hint'")
        tally[entry["severity"]] += 1
    need(tally == counts, "'counts' does not match diagnostics")
