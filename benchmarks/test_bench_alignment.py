"""Smith-Waterman at ~1k×1k: the skewed plans vs the interpreted point loop.

Both dimensions of the alignment DP carry dependences, so before hyperplane
skewing every engine degenerated to O(n·m) Python iterations; the skewed
kernel plans sweep O(n+m) anti-diagonals instead.  This bench regenerates
the acceptance numbers on random ~1k-base sequences (override the size with
``REPRO_BENCH_ALIGN_N`` — CI's smoke step runs a small n):

* the three sequential engines produce the *same score* (equality gate);
* the skewed engine is at least **5×** faster than the interpreted point
  loop (the acceptance gate; on a typical host the ratio is >100×);
* the flat kernel engine is reported alongside for the trajectory.

The payload is written to ``BENCH_alignment.json`` via
:mod:`repro.util.benchjson` and uploaded by CI next to the other
``BENCH_*.json`` artifacts.
"""

import os
import random

from repro.apps.alignment import build_score_block
from repro.parallel import oversubscription
from repro.runtime import KERNEL_STATS, execute_vectorized, plan_kind
from repro.runtime.interp import ArraySnapshot
from repro.util.benchjson import read_bench, write_bench
from repro.util.timing import WallTimer

#: Acceptance-criterion sequence length (~1k×1k DP table).
N = int(os.environ.get("REPRO_BENCH_ALIGN_N", "1000"))
REPEATS = 3
#: The CI gate: skewed must beat the interpreted point loop by this factor.
MIN_SPEEDUP = 5.0


def _random_sequence(rng, n):
    return "".join(rng.choice("ACGT") for _ in range(n))


def _timed(compiled, snap, repeats, engine):
    best = float("inf")
    for _ in range(repeats):
        snap.restore()
        timer = WallTimer()
        with timer:
            execute_vectorized(compiled, engine=engine)
        best = min(best, timer.elapsed)
    return best


def test_alignment_engine_artifact():
    rng = random.Random(20000614)
    a = _random_sequence(rng, N)
    b = _random_sequence(rng, N)
    compiled, h = build_score_block(a, b, local=True)
    compiled.prepare()
    snap = ArraySnapshot([h])
    host = oversubscription(1)
    assert plan_kind(compiled) == "skewed"

    # The interpreted point loop pays O(n·m) tree walks: one repeat is
    # plenty (it is the slow baseline, minutes at full size).
    interp_best = _timed(compiled, snap, 1, "interp")
    interp_score = float(h.to_numpy().max())

    flat_best = _timed(compiled, snap, 1, "flat")
    flat_score = float(h.to_numpy().max())

    KERNEL_STATS.reset()
    snap.restore()
    cold_timer = WallTimer()
    with cold_timer:
        execute_vectorized(compiled, engine="kernel")
    skewed_cold = cold_timer.elapsed
    skewed_score = float(h.to_numpy().max())
    skewed_best = _timed(compiled, snap, REPEATS, "kernel")
    kernel_stats = KERNEL_STATS.snapshot()
    snap.restore()

    results = [
        {
            "test": "smith_waterman_engines",
            "n": N,
            "table_cells": N * N,
            "interp_seconds": interp_best,
            "flat_seconds": flat_best,
            "skewed_cold_seconds": skewed_cold,
            "skewed_seconds": skewed_best,
            "skewed_speedup_vs_interp": interp_best / skewed_best,
            "skewed_speedup_vs_flat": flat_best / skewed_best,
            "score": skewed_score,
            "cells_per_second": N * N / skewed_best,
        },
    ]
    meta = {
        "benchmark": "smith-waterman",
        "n": N,
        "repeats": REPEATS,
        "min_speedup_gate": MIN_SPEEDUP,
        "host": host,
        "oversubscribed": host["oversubscribed"],
        "kernel_stats": kernel_stats,
        "hyperplanes_per_run": kernel_stats["hyperplanes"]
        // max(1, 1 + REPEATS),
    }
    path = write_bench("alignment", results, meta=meta)

    written = read_bench("alignment")
    assert path.name == "BENCH_alignment.json"
    assert written["results"][0]["skewed_seconds"] > 0

    # All engines compute the same alignment (bit-identical table maxima).
    assert skewed_score == flat_score == interp_score

    # Acceptance criterion — the CI gate.
    assert skewed_best * MIN_SPEEDUP <= interp_best, (
        f"skewed engine must be >={MIN_SPEEDUP}x faster than the "
        f"interpreted point loop on Smith-Waterman n={N}: "
        f"skewed {skewed_best:.4f}s vs interp {interp_best:.4f}s"
    )
