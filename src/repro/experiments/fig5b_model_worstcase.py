"""Fig. 5(b): the value of modelling β — a β-dominated worst case.

The paper's thought experiment: hypothetical α, β of the same order on a
small problem (no experimental data in the paper).  Model1, blind to β,
suggests block size 20; Model2 picks 3; "we can expect the speedup with a
block size of 20 versus 3 to be considerably less", and "the situation is
even worse for larger numbers of processors".

Here the machine simulator *can* provide the ground truth the paper could
not: a simulated curve runs alongside both model curves, and a processor
sweep quantifies the "worse for larger p" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import suite
from repro.experiments.common import heading
from repro.machine.params import HYPOTHETICAL_HIGH_BETA, MachineParams
from repro.machine.schedules import naive_wavefront, pipelined_wavefront
from repro.models.pipeline_model import model1, model2
from repro.util.tables import Series, Table, merge_series

DESCRIPTION = "Fig. 5(b): Model1 vs Model2 on a beta-dominated hypothetical machine"


@dataclass(frozen=True)
class Fig5bResult:
    n: int
    p: int
    model1_series: Series
    model2_series: Series
    simulated: Series
    model1_best_b: int
    model2_best_b: int
    penalty_by_procs: Table

    def report(self) -> str:
        table = merge_series(
            f"Fig. 5(b): speedup due to pipelining vs block size "
            f"(beta-dominated machine, n={self.n}, p={self.p})",
            [self.model1_series, self.model2_series, self.simulated],
        )
        ratio = self.sim_at(self.model2_best_b) / max(
            self.sim_at(self.model1_best_b), 1e-12
        )
        return "\n".join(
            [
                heading("Fig. 5(b) — ignoring beta picks a bad block size"),
                table.render(),
                "",
                f"optimal block size: Model1 b={self.model1_best_b} (paper: 20), "
                f"Model2 b={self.model2_best_b} (paper: 3)",
                f"simulated speedup at b={self.model2_best_b} is {ratio:.2f}x "
                f"the speedup at Model1's b={self.model1_best_b}",
                "",
                self.penalty_by_procs.render(),
            ]
        )

    def sim_at(self, b: int) -> float:
        nearest = min(
            range(len(self.simulated.xs)),
            key=lambda i: abs(self.simulated.xs[i] - b),
        )
        return self.simulated.ys[nearest]


def run(
    n: int = 64,
    p: int = 8,
    params: MachineParams = HYPOTHETICAL_HIGH_BETA,
    quick: bool = False,
) -> Fig5bResult:
    """Regenerate the figure (the problem is small by design)."""
    entry = suite.get("single-stream")
    compiled = entry.build(n + 1)  # region [2..n+1, 1..n+1]: n rows
    rows = compiled.region.extent(0)
    cols = compiled.region.extent(1)

    block_sizes = tuple(range(1, min(33, cols + 1)))
    baseline = naive_wavefront(
        compiled, params, n_procs=p, compute_values=False
    ).total_time

    m1 = model1(params, rows, p, cols=cols)
    m2 = model2(params, rows, p, cols=cols)
    s1 = Series("Model1", xlabel="b", ylabel="speedup")
    s2 = Series("Model2", xlabel="b", ylabel="speedup")
    sim = Series("simulated", xlabel="b", ylabel="speedup")
    for b in block_sizes:
        s1.add(b, baseline / m1.predicted_time(b))
        s2.add(b, baseline / m2.predicted_time(b))
        outcome = pipelined_wavefront(
            compiled, params, n_procs=p, block_size=b, compute_values=False
        )
        sim.add(b, baseline / outcome.total_time)

    # "The situation is even worse for larger numbers of processors":
    # time at Model1's block size relative to time at Model2's, per p.
    penalty = Table(
        "Penalty of Model1's block size vs Model2's, by processor count",
        ["p", "b1", "b2", "T(b1)/T(b2)"],
    )
    procs = (4, 8, 16) if quick else (4, 8, 16, 32)
    for procs_k in procs:
        mk1 = model1(params, rows, procs_k, cols=cols)
        mk2 = model2(params, rows, procs_k, cols=cols)
        b1k, b2k = mk1.optimal_block_size(), mk2.optimal_block_size()
        t1 = pipelined_wavefront(
            compiled, params, n_procs=procs_k, block_size=b1k, compute_values=False
        ).total_time
        t2 = pipelined_wavefront(
            compiled, params, n_procs=procs_k, block_size=b2k, compute_values=False
        ).total_time
        penalty.add_row(procs_k, b1k, b2k, t1 / t2)

    return Fig5bResult(
        n=n,
        p=p,
        model1_series=s1,
        model2_series=s2,
        simulated=sim,
        model1_best_b=m1.optimal_block_size(),
        model2_best_b=m2.optimal_block_size(),
        penalty_by_procs=penalty,
    )
