"""The multicast epoch fabric: groups, staging, flow control, channels.

Unit coverage for :mod:`repro.parallel.collectives` plus the channel-layer
error paths this PR hardened: `chain_links` layout validation, the timeout
messages (fractional seconds, peer rank), and the chain-legality guard
that turns silently-racing shapes into typed errors.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan
from repro.errors import DistributionError, MachineError
from repro.machine import ProcessorGrid
from repro.machine.schedules import WavefrontPlan, plan_wavefront
from repro.parallel import execute
from repro.parallel.channels import chain_links, recv_token
from repro.parallel.collectives import (
    MulticastChannel,
    MulticastFabric,
    MulticastGroups,
    MulticastSpec,
    boundary_layout,
    plan_groups,
    resolve_double_buffer,
    resolve_multicast,
)
from repro.parallel.executor import (
    _build_distribution,
    _chains,
    check_chain_legality,
)
from repro.runtime import execute_vectorized, run_and_capture


def _ctx():
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


def _diagonal_block(n=16, depth2=False):
    """A wavefront with a diagonal dependence: every producer tile feeds
    two consumer tiles of the next rank (fan-out 2 on the tile DAG)."""
    rng = np.random.default_rng(7)
    base = zpl.Region.square(1, n)
    region = zpl.Region.of((3, n - 1), (3, n - 1))
    a = zpl.ZArray(base, name="a", fluff=2)
    a._data[...] = rng.uniform(0.5, 1.5, size=a._data.shape)
    with zpl.covering(region):
        with zpl.scan(execute=False) as block:
            if depth2:
                a[...] = 0.3 + 0.4 * (a.p @ (-1, 0)) + 0.2 * (a.p @ (-2, 0))
            else:
                a[...] = 0.3 + 0.4 * (a.p @ (0, -1)) + 0.2 * (a.p @ (-1, -1))
    return compile_scan(block), [a]


def _groups_for(compiled, n_procs, ascending=True):
    grid = ProcessorGrid((n_procs,))
    plan = plan_wavefront(compiled)
    dist = _build_distribution(plan, grid)
    locals_by_rank = {rank: dist.local_region(rank) for rank in grid}
    chains = _chains(grid, ascending)
    return plan, plan_groups(compiled, plan, chains, locals_by_rank, grid.size)


# -- channel-layer error paths (the hardened satellites) ---------------------

def test_chain_links_rejects_duplicate_rank():
    with pytest.raises(MachineError, match="appears in two chains"):
        chain_links(_ctx(), [[0, 1], [1, 2]])


def test_chain_links_rejects_empty_chain():
    with pytest.raises(MachineError, match="empty pipeline chain"):
        chain_links(_ctx(), [[]])


def test_recv_token_timeout_names_peer_and_fractional_seconds():
    recv, _send = _ctx().Pipe(duplex=False)
    with pytest.raises(MachineError) as err:
        recv_token(recv, 3, timeout=0.05, peer=2)
    msg = str(err.value)
    assert "0.05s" in msg  # :.0f used to render this as "0s"
    assert "predecessor rank 2" in msg
    assert "block 3" in msg


def test_recv_token_timeout_without_peer():
    recv, _send = _ctx().Pipe(duplex=False)
    with pytest.raises(MachineError, match="from predecessor$"):
        recv_token(recv, 0, timeout=0.01)


# -- knob resolution ---------------------------------------------------------

def test_resolve_multicast_values(monkeypatch):
    monkeypatch.delenv("REPRO_MULTICAST", raising=False)
    assert resolve_multicast(None) == "auto"
    assert resolve_multicast(True) == "on"
    assert resolve_multicast(False) == "off"
    assert resolve_multicast("auto") == "auto"
    monkeypatch.setenv("REPRO_MULTICAST", "1")
    assert resolve_multicast(None) == "on"
    monkeypatch.setenv("REPRO_MULTICAST", "0")
    assert resolve_multicast(None) == "off"
    with pytest.raises(MachineError, match="REPRO_MULTICAST"):
        resolve_multicast("sometimes")


def test_resolve_double_buffer(monkeypatch):
    monkeypatch.delenv("REPRO_DOUBLE_BUFFER", raising=False)
    assert resolve_double_buffer(None) is True
    assert resolve_double_buffer(False) is False
    monkeypatch.setenv("REPRO_DOUBLE_BUFFER", "0")
    assert resolve_double_buffer(None) is False


# -- fan-out derivation ------------------------------------------------------

def test_plan_groups_diagonal_fanout_two():
    compiled, _ = _diagonal_block()
    _plan, groups = _groups_for(compiled, 4)
    assert groups is not None
    assert groups.producers[0] == ()
    for rank in range(1, 4):
        assert groups.producers[rank] == (rank - 1,)
    for rank in range(3):
        assert groups.consumers[rank] == (rank + 1,)
        # One stamp releases two consumer tiles: chunk k and chunk k+1.
        assert groups.fanout[rank] == 2
    assert groups.fanout[3] == 0
    assert groups.max_fanout == 2


def test_plan_groups_transitive_reduction_on_thin_slabs():
    # 5 wave rows over 4 ranks: some slabs are a single row, so a depth-2
    # dependence reaches two ranks back — but waiting on the direct
    # predecessor already implies the grandparent's epoch.
    compiled, _ = _diagonal_block(n=7, depth2=True)
    _plan, groups = _groups_for(compiled, 4)
    assert groups is not None
    for rank in range(1, 4):
        assert groups.producers[rank] == (rank - 1,)


def test_plan_groups_none_without_chunk_dim():
    # Mixed-sign dependences on the non-wave dimension leave nothing to
    # chunk along, so there is no boundary traffic to multicast.
    rng = np.random.default_rng(0)
    n = 12
    base = zpl.Region.square(1, n)
    region = zpl.Region.of((3, n - 1), (3, n - 1))
    a = zpl.ZArray(base, name="a", fluff=2)
    a._data[...] = rng.uniform(0.5, 1.5, size=a._data.shape)
    with zpl.covering(region):
        with zpl.scan(execute=False) as block:
            a[...] = 0.2 + 0.3 * (a.p @ (-1, -1)) + 0.3 * (a.p @ (-1, 1))
    compiled = compile_scan(block)
    plan = plan_wavefront(compiled)
    assert plan.chunk_dim is None
    grid = ProcessorGrid((1,))
    dist = _build_distribution(plan, grid)
    locals_by_rank = {rank: dist.local_region(rank) for rank in grid}
    groups = plan_groups(
        compiled, plan, _chains(grid, True), locals_by_rank, grid.size
    )
    assert groups is None


# -- boundary staging layout -------------------------------------------------

def test_boundary_layout_depths_and_offsets():
    compiled, _ = _diagonal_block()
    plan = plan_wavefront(compiled)
    layout = boundary_layout(compiled, plan)
    assert layout is not None
    assert layout.arrays == ((0, 1),)  # one written array, depth-1 halo
    assert layout.offsets == (0,)
    region = plan.region
    unit = region.size // region.extent(plan.wavefront_dim)
    assert layout.slot_elems == unit


def test_boundary_layout_depth_two():
    compiled, _ = _diagonal_block(depth2=True)
    plan = plan_wavefront(compiled)
    layout = boundary_layout(compiled, plan)
    assert layout.arrays == ((0, 2),)
    region = plan.region
    unit = region.size // region.extent(plan.wavefront_dim)
    assert layout.slot_elems == 2 * unit


# -- the epoch channel -------------------------------------------------------

def _fabric_pair():
    ctx = _ctx()
    groups = MulticastGroups(
        producers=((), (0,)), consumers=((1,), ()), fanout=(1, 0)
    )
    fabric = MulticastFabric(ctx, 2)
    spec = MulticastSpec(
        epoch_seg=fabric.name,
        n_ranks=2,
        groups=groups,
        wave_dim=0,
        wave_ascending=True,
        rows_by_rank=(None, None),
    )
    producer = MulticastChannel(spec, fabric.sems, 0)
    consumer = MulticastChannel(spec, fabric.sems, 1)
    return fabric, producer, consumer


def test_publish_releases_consumer_and_counts():
    fabric, producer, consumer = _fabric_pair()
    try:
        producer.publish(0)
        producer.publish(1)
        consumer.wait_block(0, timeout=1.0)
        consumer.wait_block(1, timeout=1.0)
        assert producer.releases == 2
        assert list(fabric.epochs()) == [2, 0]
        st = producer.stats()
        assert st["mcast_releases"] == 2
    finally:
        producer.detach()
        consumer.detach()
        fabric.release()


def test_wait_for_timeout_names_producer_and_epoch():
    fabric, producer, consumer = _fabric_pair()
    try:
        producer.publish(0)
        with pytest.raises(MachineError) as err:
            consumer.wait_for(0, 5, timeout=0.1)
        msg = str(err.value)
        assert "0.10s" in msg
        assert "block 5 from rank 0" in msg
        assert "sees epoch 1" in msg
    finally:
        producer.detach()
        consumer.detach()
        fabric.release()


def test_slow_consumer_blocks_buffer_reuse():
    # Epoch-flip correctness: the producer may not overwrite slot k % 2
    # until the (slow) consumer has credited block k - 1.  The front
    # buffer therefore stays stable for as long as any reader needs it.
    fabric, producer, consumer = _fabric_pair()
    try:
        assert producer.wait_credit(0, timeout=0.1) == 0.0  # slot 0 fresh
        assert producer.wait_credit(1, timeout=0.1) == 0.0  # slot 1 fresh
        with pytest.raises(MachineError) as err:
            producer.wait_credit(2, timeout=0.15)  # slot 0 still held
        assert "consumer rank(s) [1]" in str(err.value)
        consumer.credit(0, 0)  # the slow reader finally releases block 0
        producer.wait_credit(2, timeout=0.1)
        with pytest.raises(MachineError):
            producer.wait_credit(3, timeout=0.15)  # block 1 still held
        consumer.credit(0, 1)
        producer.wait_credit(3, timeout=0.1)
    finally:
        producer.detach()
        consumer.detach()
        fabric.release()


def test_drain_swallows_stale_posts_and_reset_zeroes():
    fabric, producer, consumer = _fabric_pair()
    try:
        fabric.sems[1].release()
        fabric.sems[1].release()
        consumer.drain()
        assert not fabric.sems[1].acquire(False)
        producer.publish(0)
        consumer.credit(0, 0)
        fabric.reset()
        assert list(fabric.epochs()) == [0, 0]
        assert fabric.consumed().sum() == 0
    finally:
        producer.detach()
        consumer.detach()
        fabric.release()


# -- chain legality (the guard the fabric work surfaced) ---------------------

def _anti_diagonal_block(n=7):
    rng = np.random.default_rng(0)
    base = zpl.Region.square(1, n)
    region = zpl.Region.of((3, n - 1), (3, n - 1))
    t0 = zpl.ZArray(base, name="t0", fluff=2)
    t0._data[...] = rng.uniform(0.5, 1.5, size=t0._data.shape)
    t1 = zpl.ZArray(base, name="t1", fluff=2)
    t1._data[...] = rng.uniform(0.5, 1.5, size=t1._data.shape)
    with zpl.covering(region):
        with zpl.scan(execute=False) as block:
            t0[...] = 0.5 + 0.25 * (t0.p @ (-1, 0))
            t1[...] = 0.5 + 0.25 * (t0.p @ (-1, 1))
    return compile_scan(block), [t0, t1]


def test_upstream_dependence_refused_on_chains():
    compiled, _ = _anti_diagonal_block()
    for schedule in ("pipelined", "naive"):
        with pytest.raises(DistributionError, match="points upstream"):
            execute(compiled, grid=2, schedule=schedule, block=2)


def test_upstream_dependence_runs_on_one_process():
    compiled, arrays = _anti_diagonal_block()
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    got = run_and_capture(
        lambda c: execute(c, grid=1, schedule="pipelined", block=2),
        compiled,
        arrays,
    )
    for want, have in zip(oracle, got):
        np.testing.assert_array_equal(have, want)


def test_lookahead_guard_refuses_chunked_chains_only():
    compiled, _ = _anti_diagonal_block()
    # Force the (wave, chunk) orientation where the dependence follows the
    # wave but opposes the chunk traversal: lookahead, chunked-only.
    plan = WavefrontPlan(compiled, 0, 1, 1, 0)
    with pytest.raises(DistributionError, match="against the chunk traversal"):
        check_chain_legality(compiled, plan, 2, 4)
    check_chain_legality(compiled, plan, 2, 1)  # single chunk: safe
    check_chain_legality(compiled, plan, 1, 4)  # single stage: safe


# -- fabric selection end to end ---------------------------------------------

def test_auto_selects_multicast_for_diagonal_fanout(monkeypatch):
    monkeypatch.delenv("REPRO_MULTICAST", raising=False)
    compiled, arrays = _diagonal_block()
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    runs = []

    def engine(c):
        runs.append(execute(c, grid=2, schedule="pipelined", block=3))

    got = run_and_capture(engine, compiled, arrays)
    for want, have in zip(oracle, got):
        np.testing.assert_array_equal(have, want)
    assert runs[0].fabric == "multicast"


def test_multicast_off_forces_pipes():
    compiled, arrays = _diagonal_block()
    runs = []

    def engine(c):
        runs.append(
            execute(c, grid=2, schedule="pipelined", block=3, multicast=False)
        )

    run_and_capture(engine, compiled, arrays)
    assert runs[0].fabric == "pipes"
