"""The always-on observability tax: flight recorder on vs off.

``repro.obs.live`` keeps the flight recorder enabled by default, so its
cost rides every kernel dispatch.  This bench measures that tax on the
alignment kernel path — the same skewed Smith-Waterman workload as
``test_bench_alignment.py`` — by interleaving runs with the recorder on
and off and comparing medians.  The CI gate: the always-on tier must
cost **under 5 % median overhead**, or it has no business being
always-on.  Results land in ``BENCH_obs_overhead.json``.
"""

import os
import random
import statistics

from repro.apps.alignment import build_score_block
from repro.obs.live.flight import FLIGHT
from repro.parallel import oversubscription
from repro.runtime import execute_vectorized
from repro.runtime.interp import ArraySnapshot
from repro.util.benchjson import read_bench, write_bench
from repro.util.timing import WallTimer

N = int(os.environ.get("REPRO_BENCH_OBS_N", "400"))
REPEATS = 7
#: The CI gate: median slowdown with the recorder on, as a fraction.
MAX_OVERHEAD = 0.05


def _random_sequence(rng, n):
    return "".join(rng.choice("ACGT") for _ in range(n))


def _timed_run(compiled, snap):
    snap.restore()
    timer = WallTimer()
    with timer:
        execute_vectorized(compiled, engine="kernel")
    return timer.elapsed


def test_obs_overhead_artifact():
    rng = random.Random(20000614)
    compiled, h = build_score_block(
        _random_sequence(rng, N), _random_sequence(rng, N), local=True
    )
    compiled.prepare()
    snap = ArraySnapshot([h])
    host = oversubscription(1)

    was_enabled = FLIGHT.enabled
    on_times, off_times = [], []
    try:
        # Warm the kernel plans (and the page cache) outside the clock.
        FLIGHT.enabled = True
        _timed_run(compiled, snap)
        # Interleave on/off runs so drift (thermal, cache, GC) cancels
        # instead of biasing whichever state is measured second.
        for _ in range(REPEATS):
            FLIGHT.enabled = True
            on_times.append(_timed_run(compiled, snap))
            FLIGHT.enabled = False
            off_times.append(_timed_run(compiled, snap))
    finally:
        FLIGHT.enabled = was_enabled
        snap.restore()

    median_on = statistics.median(on_times)
    median_off = statistics.median(off_times)
    overhead = (median_on - median_off) / median_off

    results = [
        {
            "test": "flight_recorder_alignment",
            "n": N,
            "table_cells": N * N,
            "repeats": REPEATS,
            "median_on_seconds": median_on,
            "median_off_seconds": median_off,
            "min_on_seconds": min(on_times),
            "min_off_seconds": min(off_times),
            "overhead_fraction": overhead,
        },
    ]
    meta = {
        "benchmark": "obs-overhead",
        "n": N,
        "repeats": REPEATS,
        "max_overhead_gate": MAX_OVERHEAD,
        "flight_capacity": FLIGHT.capacity,
        "host": host,
        "oversubscribed": host["oversubscribed"],
    }
    path = write_bench("obs_overhead", results, meta=meta)

    written = read_bench("obs_overhead")
    assert path.name == "BENCH_obs_overhead.json"
    assert written["results"][0]["median_off_seconds"] > 0

    # Acceptance criterion — the CI gate.
    assert overhead < MAX_OVERHEAD, (
        f"always-on flight recorder costs {overhead:.1%} median overhead "
        f"on the n={N} alignment kernel (gate {MAX_OVERHEAD:.0%}): "
        f"on {median_on:.4f}s vs off {median_off:.4f}s"
    )
