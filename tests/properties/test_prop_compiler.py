"""Property-based tests for WSVs, legality and loop-structure derivation."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.loopstruct import (
    LoopStructure,
    derive_loop_structure,
    structure_exists,
)
from repro.compiler.wsv import DimClass, Sign, classify, f, wsv_of
from repro.errors import OverconstrainedScanError

components = st.integers(min_value=-3, max_value=3)
vectors2 = st.tuples(components, components)
vectors3 = st.tuples(components, components, components)
vecsets2 = st.lists(vectors2, min_size=0, max_size=5)
vecsets3 = st.lists(vectors3, min_size=0, max_size=4)


def brute_force_exists(vectors, rank):
    """Oracle: exhaustive search over (order, signs)."""
    constraints = [v for v in vectors if any(c != 0 for c in v)]
    for order in itertools.permutations(range(rank)):
        for signs in itertools.product((1, -1), repeat=rank):
            structure = LoopStructure(order, signs, (DimClass.PARALLEL,) * rank)
            if all(structure.respects(v) for v in constraints):
                return True
    return False


class TestCombinatorF:
    @given(st.integers(-10, 10), st.integers(-10, 10))
    def test_symmetric(self, i, j):
        assert f(i, j) is f(j, i)

    @given(st.integers(-10, 10))
    def test_sign_of_single(self, i):
        expected = Sign.ZERO if i == 0 else (Sign.PLUS if i > 0 else Sign.MINUS)
        assert f(i, i) is expected or (i != 0 and f(i, i) is not Sign.BOTH)


class TestWSVProperties:
    @given(vecsets2)
    def test_order_insensitive(self, dirs):
        if not dirs:
            return
        assert wsv_of(dirs) == wsv_of(list(reversed(dirs)))

    @given(vecsets2)
    def test_duplicates_irrelevant(self, dirs):
        if not dirs:
            return
        assert wsv_of(dirs) == wsv_of(dirs + dirs)

    @given(vecsets2)
    def test_simple_wsv_of_negated_dirs_always_legal(self, dirs):
        # Paper: "Simple wavefront summary vectors ... are always legal."
        if not dirs:
            return
        summary = wsv_of(dirs)
        if summary.is_simple():
            udvs = [tuple(-c for c in d) for d in dirs]
            assert structure_exists(udvs, 2)

    @given(vecsets2)
    def test_negation_flips_plus_minus(self, dirs):
        if not dirs:
            return
        w = wsv_of(dirs)
        wn = wsv_of([tuple(-c for c in d) for d in dirs])
        flip = {Sign.PLUS: Sign.MINUS, Sign.MINUS: Sign.PLUS,
                Sign.ZERO: Sign.ZERO, Sign.BOTH: Sign.BOTH}
        assert tuple(flip[s] for s in w.signs) == wn.signs


class TestLoopStructureProperties:
    @given(vecsets2)
    @settings(max_examples=200)
    def test_derive_agrees_with_brute_force_rank2(self, vectors):
        classes = classify(vectors, 2)
        exists = brute_force_exists(vectors, 2)
        assert structure_exists(vectors, 2) == exists
        if exists:
            loops = derive_loop_structure(vectors, classes, 2)
            for v in vectors:
                assert loops.respects(v), (v, loops)
        else:
            try:
                derive_loop_structure(vectors, classes, 2)
                raise AssertionError("expected OverconstrainedScanError")
            except OverconstrainedScanError:
                pass

    @given(vecsets3)
    @settings(max_examples=100)
    def test_derive_agrees_with_brute_force_rank3(self, vectors):
        classes = classify(vectors, 3)
        assert structure_exists(vectors, 3) == brute_force_exists(vectors, 3)
        if structure_exists(vectors, 3):
            loops = derive_loop_structure(vectors, classes, 3)
            for v in vectors:
                assert loops.respects(v)

    @given(vecsets2)
    def test_parallel_dims_have_no_true_components(self, vectors):
        classes = classify(vectors, 2)
        for dim, cls in enumerate(classes):
            if cls is DimClass.PARALLEL:
                assert all(v[dim] == 0 for v in vectors)

    @given(vecsets2)
    def test_classification_total(self, vectors):
        classes = classify(vectors, 2)
        assert len(classes) == 2
        assert all(isinstance(c, DimClass) for c in classes)

    @given(vectors2)
    def test_single_vector_always_satisfiable(self, v):
        # One dependence can always be respected by some loop nest.
        assert structure_exists([v], 2)
