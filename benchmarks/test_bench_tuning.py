"""Bench: block-size selection strategies (cost of choosing well).

Times each selector end to end, including its probe runs — the
probes-vs-quality tradeoff the paper's conclusion proposed to study.
"""

from repro.apps import suite
from repro.machine import CRAY_T3E
from repro.models.tuning import (
    make_simulated_probe,
    select_dynamic,
    select_profiled,
    select_static,
)

N = 257
P = 8


def _compiled():
    return suite.get("tomcatv-fragment").build(N)


def test_select_static(bench):
    compiled = _compiled()
    result = bench(select_static, compiled, CRAY_T3E, P)
    assert result.probes == 0


def test_select_profiled(bench):
    compiled = _compiled()
    probe = make_simulated_probe(compiled, CRAY_T3E, P)
    result = bench(select_profiled, compiled, CRAY_T3E, P, probe=probe)
    assert result.probes == 2


def test_select_dynamic(bench):
    compiled = _compiled()
    probe = make_simulated_probe(compiled, CRAY_T3E, P)
    result = bench(select_dynamic, compiled, CRAY_T3E, P, probe=probe)
    assert result.probes <= 24
