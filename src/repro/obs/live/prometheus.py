"""Prometheus text exposition (format 0.0.4) for the live telemetry.

``GET /metrics`` on :mod:`repro.serve` is content-negotiated: clients
asking for ``text/plain`` (or OpenMetrics) get this rendering; everything
else keeps the original JSON snapshot.  The exposition stitches together
the four live sources:

* the serve loop's own :class:`repro.serve.metrics.ServeMetrics` snapshot
  (request counts, queue depth, latency quantiles, batch shape);
* the :data:`repro.obs.live.metrics.LIVE` registry (per-worker busy
  seconds, blocks, elements, tokens flushed up from the pool);
* the :data:`repro.obs.live.monitor.MONITOR` model state — the live
  α/β estimates and the drift flag (ROADMAP 5(b)'s sensor);
* the :data:`repro.obs.live.flight.FLIGHT` recorder's drop accounting.

Rendering is pure string assembly over snapshots — no locks held while
formatting, no state mutated.
"""

from __future__ import annotations

import re

from repro.obs.live.flight import FlightRecorder
from repro.obs.live.metrics import Histogram, MetricsRegistry

#: The content type Prometheus scrapers send in ``Accept`` and expect back.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def wants_text(accept: str | None) -> bool:
    """True when an ``Accept`` header asks for the text exposition."""
    if not accept:
        return False
    accept = accept.lower()
    return "text/plain" in accept or "openmetrics" in accept


def _name(name: str) -> str:
    return _NAME_BAD.sub("_", name)


def _labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_LABEL_BAD.sub("_", str(k))}="{_escape(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _num(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _metric(lines: list, name: str, kind: str, help_text: str) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def render_serve(snapshot: dict) -> list[str]:
    """Render a :meth:`repro.serve.metrics.ServeMetrics.snapshot` doc."""
    lines: list[str] = []
    requests = snapshot.get("requests", {})
    _metric(lines, "repro_serve_requests_total", "counter",
            "Requests by outcome (received/completed/failed/shed/timeout).")
    for outcome, value in sorted(requests.items()):
        lines.append(
            f"repro_serve_requests_total{_labels({'outcome': outcome})}"
            f" {_num(value)}"
        )
    queue = snapshot.get("queue", {})
    _metric(lines, "repro_serve_queue_depth", "gauge",
            "Requests currently coalescing or awaiting dispatch.")
    lines.append(f"repro_serve_queue_depth {_num(queue.get('depth', 0))}")
    _metric(lines, "repro_serve_queue_peak", "gauge",
            "High-water mark of the coalescing queue.")
    lines.append(f"repro_serve_queue_peak {_num(queue.get('peak', 0))}")
    batches = snapshot.get("batches", {})
    _metric(lines, "repro_serve_batches_total", "counter",
            "Fused dispatches issued by the coalescing scheduler.")
    lines.append(
        f"repro_serve_batches_total {_num(batches.get('dispatched', 0))}"
    )
    _metric(lines, "repro_serve_batched_items_total", "counter",
            "Requests carried by those dispatches.")
    lines.append(
        f"repro_serve_batched_items_total {_num(batches.get('items', 0))}"
    )
    latency = snapshot.get("latency_ms", {})
    if latency:
        _metric(lines, "repro_serve_latency_seconds", "summary",
                "End-to-end request latency quantiles (sliding window).")
        for key, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            if key in latency:
                lines.append(
                    f"repro_serve_latency_seconds"
                    f"{_labels({'quantile': q})} {_num(latency[key] / 1e3)}"
                )
    if "uptime_seconds" in snapshot:
        _metric(lines, "repro_serve_uptime_seconds", "gauge",
                "Seconds since the server started.")
        lines.append(
            f"repro_serve_uptime_seconds {_num(snapshot['uptime_seconds'])}"
        )
    if "throughput_rps" in snapshot:
        _metric(lines, "repro_serve_throughput_rps", "gauge",
                "Completed requests per second of uptime.")
        lines.append(
            f"repro_serve_throughput_rps {_num(snapshot['throughput_rps'])}"
        )
    return lines


def render_registry(registry: MetricsRegistry) -> list[str]:
    """Render every series of a live registry, grouped by metric name."""
    lines: list[str] = []
    seen: set[str] = set()
    for name, labels, kind, metric in registry.series():
        pname = _name(name)
        if isinstance(metric, Histogram):
            if pname not in seen:
                seen.add(pname)
                _metric(lines, pname, "summary", f"Live histogram {name}.")
            pcts = metric.percentiles()
            for key, q in (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99")):
                lines.append(
                    f"{pname}{_labels({**labels, 'quantile': q})}"
                    f" {_num(pcts[key])}"
                )
            lines.append(f"{pname}_count{_labels(labels)} {_num(metric.total)}")
            lines.append(f"{pname}_sum{_labels(labels)} {_num(metric.sum)}")
        else:
            if pname not in seen:
                seen.add(pname)
                _metric(lines, pname, kind, f"Live {kind} {name}.")
            lines.append(f"{pname}{_labels(labels)} {_num(metric.value)}")
    return lines


def render_monitor(model: dict) -> list[str]:
    """Render a :meth:`repro.obs.live.monitor.ModelMonitor.snapshot`."""
    lines: list[str] = []
    rows = (
        ("repro_model_alpha_seconds", "gauge", model.get("alpha_seconds", 0.0),
         "Live per-message latency estimate (alpha), seconds."),
        ("repro_model_beta_seconds_per_element", "gauge",
         model.get("beta_seconds_per_element", 0.0),
         "Live per-element transfer cost estimate (beta), seconds."),
        ("repro_model_alpha_units", "gauge", model.get("alpha", 0.0),
         "Alpha in element-compute units (MachineParams convention)."),
        ("repro_model_beta_units", "gauge", model.get("beta", 0.0),
         "Beta in element-compute units (MachineParams convention)."),
        ("repro_model_unit_seconds", "gauge", model.get("unit_seconds", 0.0),
         "EWMA of per-element compute cost, seconds."),
        ("repro_model_unit_ratio", "gauge", model.get("ratio", 1.0),
         "Current unit cost over the frozen baseline."),
        ("repro_model_drift", "gauge", model.get("drift", False),
         "1 when the live profile departed from the tuned model."),
        ("repro_model_drift_events_total", "counter",
         model.get("drift_events", 0), "Drift flag transitions."),
        ("repro_model_samples_total", "counter", model.get("samples", 0),
         "Jobs folded into the monitor."),
    )
    for name, kind, value, help_text in rows:
        _metric(lines, name, kind, help_text)
        lines.append(f"{name} {_num(value)}")
    return lines


def render_flight(flight: FlightRecorder) -> list[str]:
    """Render the flight recorder's drop accounting."""
    lines: list[str] = []
    rows = (
        ("repro_flight_enabled", "gauge", flight.enabled,
         "1 when the always-on flight recorder is recording."),
        ("repro_flight_events_total", "counter", flight.written,
         "Events ever recorded into the ring."),
        ("repro_flight_dropped_total", "counter", flight.dropped,
         "Events overwritten by ring overflow (exact)."),
    )
    for name, kind, value, help_text in rows:
        _metric(lines, name, kind, help_text)
        lines.append(f"{name} {_num(value)}")
    return lines


def prometheus_text(
    serve_snapshot: dict | None = None,
    registry: MetricsRegistry | None = None,
    model: dict | None = None,
    flight: FlightRecorder | None = None,
) -> str:
    """The full ``/metrics`` text body from whichever sources exist."""
    lines: list[str] = []
    if serve_snapshot:
        lines.extend(render_serve(serve_snapshot))
    if registry is not None:
        lines.extend(render_registry(registry))
    if model is not None:
        lines.extend(render_monitor(model))
    if flight is not None:
        lines.extend(render_flight(flight))
    return "\n".join(lines) + "\n"
