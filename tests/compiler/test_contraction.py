"""Tests for array contraction of promoted scalars."""

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan, contract, contractible
from repro.errors import CompilationError
from repro.runtime import execute_vectorized
from tests.conftest import record_tomcatv_block, tomcatv_fragment_oracle


class TestContractible:
    def test_tomcatv_r_is_contractible(self):
        # 'r' is the paper's canonical promoted scalar (Section 2.1).
        block, (aa, d, dd, rx, ry, r) = record_tomcatv_block(8)
        compiled = compile_scan(block)
        assert contractible(compiled, r)

    def test_primed_array_not_contractible(self):
        block, (aa, d, dd, rx, ry, r) = record_tomcatv_block(8)
        compiled = compile_scan(block)
        assert not contractible(compiled, d)   # d is read primed
        assert not contractible(compiled, rx)

    def test_unwritten_array_not_contractible(self):
        block, (aa, d, dd, rx, ry, r) = record_tomcatv_block(8)
        compiled = compile_scan(block)
        assert not contractible(compiled, aa)


class TestContract:
    def test_contracted_execution_matches_oracle(self):
        n = 10
        block, (aa, d, dd, rx, ry, r) = record_tomcatv_block(n)
        expected = tomcatv_fragment_oracle(n, aa, d, dd, rx, ry, r)
        compiled = contract(compile_scan(block), [r])
        assert compiled.is_contracted(r)
        execute_vectorized(compiled)
        # All *non-contracted* outputs must match the Fortran oracle.
        for got, want in zip((d, rx, ry), expected[1:]):
            np.testing.assert_allclose(got.to_numpy(), want, rtol=1e-12)

    def test_contract_rejects_shifted_read(self):
        block, (aa, d, dd, rx, ry, r) = record_tomcatv_block(6)
        compiled = compile_scan(block)
        with pytest.raises(CompilationError, match="not contractible"):
            contract(compiled, [d])

    def test_contract_is_idempotent(self):
        block, (aa, d, dd, rx, ry, r) = record_tomcatv_block(6)
        compiled = contract(contract(compile_scan(block), [r]), [r])
        assert compiled.contracted == (r,)

    def test_original_compiled_untouched(self):
        block, (aa, d, dd, rx, ry, r) = record_tomcatv_block(6)
        compiled = compile_scan(block)
        contracted = contract(compiled, [r])
        assert compiled.contracted == ()
        assert contracted.contracted == (r,)
