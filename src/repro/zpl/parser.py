"""A textual front end: parse the paper's ZPL syntax into the embedded DSL.

The pretty-printer (:mod:`repro.zpl.pretty`) emits the paper's notation; this
module closes the loop by parsing it back, so the Fig. 2(b) fragment runs as
written:

>>> source = '''
... direction north = (-1, 0);
... region R = [2..n-2, 2..n-1];
... [R] scan
...       r := aa * d'@north;
...       d := 1.0 / (dd - aa@north * r);
...       rx := rx - rx'@north * r;
...       ry := ry - ry'@north * r;
...     end;
... '''
... program = parse_program(source, arrays=dict(r=r, d=d, dd=dd, aa=aa,
...                                             rx=rx, ry=ry),
...                         constants=dict(n=257))
... program.run()

Grammar (recursive descent, one-token lookahead)::

    program    :=  item*
    item       :=  direction | region | statement | scanblock
    direction  :=  "direction" NAME "=" vector ";"
    region     :=  "region" NAME "=" regionlit ";"
    scanblock  :=  cover? "scan" statement* "end" ";"
    statement  :=  cover? NAME ":=" expr ";"
    cover      :=  "[" (NAME | ranges) ("with" NAME)? "]"
    regionlit  :=  "[" range ("," range)* "]"
    range      :=  intexpr ".." intexpr
    vector     :=  "(" intexpr ("," intexpr)* ")"
    expr       :=  precedence climbing over + - * / ** and unary -
    primary    :=  NUMBER | call | ref | "(" expr ")"
    call       :=  ("max"|"min"|"sqrt"|"exp"|"log"|"abs"|"where") "(" args ")"
    ref        :=  NAME "'"? ("@" (NAME | vector))?

Integer expressions in ranges/vectors support literals, named constants and
``+ - * /`` with parentheses, so the paper's ``[2..n-2, 2..n-1]`` works.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError
from repro.zpl.arrays import ZArray
from repro.zpl.directions import Direction
from repro.zpl.expr import Node, as_node, maximum, minimum, sqrt, exp, log, absolute, where
from repro.zpl.program import covering, scan
from repro.zpl.regions import Region
from repro.zpl.scan import ScanBlock
from repro.zpl.span import SourceSpan
from repro.zpl.statements import Assign


class ParseError(ReproError):
    """Syntax or name-resolution error in textual ZPL.

    Carries the error's source location (``span``, when known) so tools can
    render it like any other diagnostic.
    """

    def __init__(self, message: str, span: SourceSpan | None = None):
        super().__init__(message)
        self.span = span


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<number>\d+\.(?!\.)\d*|\.\d+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>:=|\.\.|\*\*|<=|>=|[()\[\],;@'+\-*/=<>])
    """,
    re.VERBOSE,
)

_FUNCTIONS: dict[str, Callable[..., Node]] = {
    "max": maximum,
    "min": minimum,
    "sqrt": sqrt,
    "exp": exp,
    "log": log,
    "abs": absolute,
    "where": where,
}

_KEYWORDS = {"direction", "region", "scan", "end", "with"}


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "name" | "op" | "eof"
    text: str
    position: int
    #: 1-based source location of the token's first character.
    line: int = 1
    col: int = 1

    @property
    def span(self) -> SourceSpan:
        """The token's extent as a :class:`~repro.zpl.span.SourceSpan`."""
        return SourceSpan(
            self.line, self.col, self.line, self.col + max(1, len(self.text)),
            self.position,
        )


def tokenize(source: str) -> list[Token]:
    """Split ZPL source into tokens; ``#`` starts a line comment.

    Every token carries its 1-based line and column, computed in the same
    scan that splits the text, so parse errors and downstream diagnostics
    point at real source positions.
    """
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(
                f"unexpected character {source[position]!r} at line {line}, "
                f"column {position - line_start + 1}",
                span=SourceSpan(
                    line, position - line_start + 1,
                    line, position - line_start + 2, position,
                ),
            )
        start = match.start()
        position = match.end()
        kind = match.lastgroup or "op"
        if kind == "ws":
            text = match.group()
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = start + text.rindex("\n") + 1
            continue
        tokens.append(
            Token(kind, match.group(), start, line, start - line_start + 1)
        )
    tokens.append(
        Token("eof", "", len(source), line, len(source) - line_start + 1)
    )
    return tokens


@dataclass
class Program:
    """A parsed program: declarations plus executable items.

    ``items`` holds, in source order, either :class:`Assign` statements or
    :class:`ScanBlock` groups.  ``run`` executes them with the usual
    semantics: eager array statements, compiled-and-executed scan blocks.

    The remaining fields are the static-analysis surface
    (:mod:`repro.analyze` consumes them): the original source text and file
    name for diagnostic rendering, the array/constant environment the
    program was parsed against, where explicit ``direction``/``region``
    declarations live, and which names the program actually used.
    """

    directions: dict[str, Direction] = field(default_factory=dict)
    regions: dict[str, Region] = field(default_factory=dict)
    items: list[Assign | ScanBlock] = field(default_factory=list)
    #: Original source text (diagnostic excerpts) and its display name.
    source: str | None = None
    filename: str | None = None
    #: The environment the program was parsed against.
    arrays: dict[str, ZArray] = field(default_factory=dict)
    constants: dict[str, int] = field(default_factory=dict)
    #: Source spans of *explicit* declarations (predeclared cardinals and
    #: builtins are exempt from unused-declaration lints).
    declared_directions: dict[str, SourceSpan] = field(default_factory=dict)
    declared_regions: dict[str, SourceSpan] = field(default_factory=dict)
    #: Names actually referenced somewhere in the program.
    used_directions: set[str] = field(default_factory=set)
    used_regions: set[str] = field(default_factory=set)
    used_arrays: set[str] = field(default_factory=set)

    def scan_blocks(self) -> list[ScanBlock]:
        """All scan blocks, in source order."""
        return [item for item in self.items if isinstance(item, ScanBlock)]

    def run(self, engine=None) -> None:
        """Execute every item in order."""
        from repro.runtime.vectorized import execute_vectorized
        from repro.zpl.program import execute_eager

        run_block = engine or execute_vectorized
        for item in self.items:
            if isinstance(item, ScanBlock):
                run_block(item.compile())
            else:
                execute_eager(item)


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(
        self,
        tokens: list[Token],
        arrays: dict[str, ZArray],
        constants: dict[str, int],
        source: str | None = None,
        filename: str | None = None,
    ):
        self._tokens = tokens
        self._pos = 0
        self._arrays = arrays
        self._constants = dict(constants)
        self._program = Program(
            source=source,
            filename=filename,
            arrays=dict(arrays),
            constants=dict(constants),
        )
        # The standard cardinals are predeclared (the pretty-printer emits
        # their names); explicit declarations may override them.
        from repro.zpl import directions as _dirs

        for builtin in (*_dirs.CARDINALS_2D, *_dirs.DIAGONALS_2D, *_dirs.CARDINALS_3D):
            self._program.directions[builtin.name] = builtin

    # -- token plumbing ------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    @staticmethod
    def _error(message: str, token: Token) -> ParseError:
        """A located parse error: ``message`` plus line/column and span."""
        return ParseError(
            f"{message} at line {token.line}, column {token.col}",
            span=token.span,
        )

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token.text != text:
            raise self._error(
                f"expected {text!r} but found {token.text!r}", token
            )
        return token

    def _at(self, text: str) -> bool:
        return self._peek().text == text

    # -- integer expressions (region bounds, vectors) -----------------------
    def _int_expr(self) -> int:
        value = self._int_term()
        while self._peek().text in ("+", "-"):
            op = self._next().text
            rhs = self._int_term()
            value = value + rhs if op == "+" else value - rhs
        return value

    def _int_term(self) -> int:
        value = self._int_atom()
        while self._peek().text in ("*", "/"):
            op = self._next().text
            rhs = self._int_atom()
            value = value * rhs if op == "*" else value // rhs
        return value

    def _int_atom(self) -> int:
        token = self._next()
        if token.text == "-":
            return -self._int_atom()
        if token.text == "(":
            value = self._int_expr()
            self._expect(")")
            return value
        if token.kind == "number":
            if "." in token.text:
                raise ParseError(f"expected an integer, got {token.text!r}")
            return int(token.text)
        if token.kind == "name":
            if token.text not in self._constants:
                raise self._error(f"unknown constant {token.text!r}", token)
            return int(self._constants[token.text])
        raise self._error("expected an integer", token)

    def _vector(self) -> tuple[int, ...]:
        self._expect("(")
        parts = [self._int_expr()]
        while self._at(","):
            self._next()
            parts.append(self._int_expr())
        self._expect(")")
        return tuple(parts)

    def _region_literal(self) -> Region:
        self._expect("[")
        ranges = [self._range()]
        while self._at(","):
            self._next()
            ranges.append(self._range())
        self._expect("]")
        return Region(tuple(ranges))

    def _range(self) -> tuple[int, int]:
        lo = self._int_expr()
        self._expect("..")
        hi = self._int_expr()
        return (lo, hi)

    # -- value expressions ---------------------------------------------------
    _PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2, "**": 3}

    def _expr(self, min_prec: int = 1) -> Node:
        left = self._unary()
        while True:
            op = self._peek().text
            prec = self._PRECEDENCE.get(op)
            if prec is None or prec < min_prec:
                return left
            self._next()
            # ** is right-associative; the rest left-associative.
            right = self._expr(prec if op == "**" else prec + 1)
            left = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a / b,
                "**": lambda a, b: a ** b,
            }[op](left, right)

    def _unary(self) -> Node:
        if self._at("-"):
            self._next()
            return -self._unary()
        return self._primary()

    def _primary(self) -> Node:
        token = self._next()
        if token.text == "(":
            inner = self._expr()
            self._expect(")")
            return inner
        if token.kind == "number":
            return as_node(float(token.text))
        if token.kind == "name":
            if token.text in _FUNCTIONS and self._at("("):
                return self._call(token.text)
            return self._array_ref(token)
        raise self._error(f"unexpected token {token.text!r}", token)

    def _call(self, name: str) -> Node:
        self._expect("(")
        args = [self._expr()]
        while self._at(","):
            self._next()
            args.append(self._expr())
        self._expect(")")
        try:
            return _FUNCTIONS[name](*args)
        except TypeError as exc:
            raise ParseError(f"bad arguments to {name}(): {exc}") from None

    def _array_ref(self, token: Token) -> Node:
        if token.text in self._constants:
            node = as_node(float(self._constants[token.text]))
            node.span = token.span
            return node
        if token.text not in self._arrays:
            raise self._error(f"unknown array {token.text!r}", token)
        self._program.used_arrays.add(token.text)
        ref = self._arrays[token.text].ref
        if self._at("'"):
            self._next()
            ref = ref.p
        if self._at("@"):
            self._next()
            ref = ref @ self._direction_ref()
        end = self._tokens[self._pos - 1]
        ref.span = token.span.to(end.span)
        return ref

    def _direction_ref(self) -> Direction:
        if self._at("("):
            return Direction(self._vector())
        token = self._next()
        if token.kind != "name" or token.text not in self._program.directions:
            raise self._error(f"unknown direction {token.text!r}", token)
        self._program.used_directions.add(token.text)
        return self._program.directions[token.text]

    # -- statements and items ------------------------------------------------
    def _cover(self) -> tuple[Region, ZArray | None]:
        """A covering prefix ``[R]`` or ``[R with m]`` (ZPL's masked form)."""
        self._expect("[")
        token = self._peek()
        if token.kind == "name" and token.text not in self._constants:
            self._next()
            if token.text not in self._program.regions:
                raise self._error(f"unknown region {token.text!r}", token)
            self._program.used_regions.add(token.text)
            region = self._program.regions[token.text]
        else:
            ranges = [self._range()]
            while self._at(","):
                self._next()
                ranges.append(self._range())
            region = Region(tuple(ranges))
        mask: ZArray | None = None
        if self._at("with"):
            self._next()
            mask_token = self._next()
            if mask_token.kind != "name" or mask_token.text not in self._arrays:
                raise self._error(
                    f"unknown mask array {mask_token.text!r}", mask_token
                )
            self._program.used_arrays.add(mask_token.text)
            mask = self._arrays[mask_token.text]
        self._expect("]")
        return region, mask

    def _assignment(
        self, region: Region | None, mask: ZArray | None = None
    ) -> Assign:
        token = self._next()
        if token.kind != "name" or token.text not in self._arrays:
            raise self._error(
                f"unknown assignment target {token.text!r}", token
            )
        self._program.used_arrays.add(token.text)
        target = self._arrays[token.text]
        self._expect(":=")
        expr = self._expr()
        end = self._expect(";")
        if region is None:
            raise self._error("statement has no covering region", token)
        return Assign(
            target, expr, region, mask=mask, span=token.span.to(end.span)
        )

    def _scan_block(
        self,
        region: Region | None,
        mask: ZArray | None = None,
        name: str | None = None,
    ) -> ScanBlock:
        self._expect("scan")
        block = ScanBlock(name=name)
        while not self._at("end"):
            inner_region, inner_mask = region, mask
            if self._at("["):
                inner_region, inner_mask = self._cover()
            block.append(self._assignment(inner_region, inner_mask))
        self._expect("end")
        self._expect(";")
        return block

    def parse(self) -> Program:
        """Parse the whole token stream."""
        while self._peek().kind != "eof":
            if self._at("direction"):
                self._next()
                name = self._next()
                self._expect("=")
                self._program.directions[name.text] = Direction(
                    self._vector(), name.text
                )
                self._program.declared_directions[name.text] = name.span
                self._expect(";")
            elif self._at("region"):
                self._next()
                name = self._next()
                self._expect("=")
                self._program.regions[name.text] = self._region_literal().named(
                    name.text
                )
                self._program.declared_regions[name.text] = name.span
                self._expect(";")
            else:
                region, mask = (
                    self._cover() if self._at("[") else (None, None)
                )
                if self._at("scan"):
                    self._program.items.append(self._scan_block(region, mask))
                else:
                    self._program.items.append(self._assignment(region, mask))
        return self._program


def parse_program(
    source: str,
    arrays: dict[str, ZArray],
    constants: dict[str, int] | None = None,
    filename: str | None = None,
) -> Program:
    """Parse textual ZPL against an array environment."""
    for reserved in _KEYWORDS:
        if reserved in arrays or (constants and reserved in constants):
            raise ParseError(
                f"{reserved!r} is a ZPL keyword and cannot name an array "
                f"or constant"
            )
    parser = Parser(
        tokenize(source), arrays, constants or {},
        source=source, filename=filename,
    )
    return parser.parse()


def parse_scan_block(
    source: str,
    arrays: dict[str, ZArray],
    constants: dict[str, int] | None = None,
    filename: str | None = None,
) -> ScanBlock:
    """Parse source containing exactly one scan block and return it."""
    program = parse_program(source, arrays, constants, filename=filename)
    blocks = program.scan_blocks()
    if len(blocks) != 1:
        raise ParseError(f"expected exactly one scan block, found {len(blocks)}")
    return blocks[0]
