"""Shared-segment plumbing: enumeration order, round trips, rebinding."""

import pickle

import numpy as np
import pytest

from repro.compiler import compile_scan
from repro.errors import MachineError
from repro.parallel.sharedmem import (
    ArraySpec,
    AttachedArrays,
    SharedArrayPool,
    collect_arrays,
)
from tests.conftest import record_tomcatv_block


def _compiled(n=10):
    block, arrays = record_tomcatv_block(n)
    return compile_scan(block), arrays


def test_collect_arrays_is_deterministic_and_complete():
    compiled, arrays = _compiled()
    collected = collect_arrays(compiled)
    assert collect_arrays(compiled) == collected
    # All six Tomcatv arrays participate in the fragment.
    assert {a.name for a in collected} == {a.name for a in arrays}
    # First-occurrence order: the first statement is r = aa * (d.p @ NORTH).
    assert [a.name for a in collected[:3]] == ["r", "aa", "d"]


def test_collect_survives_pickling_in_same_order():
    compiled, _ = _compiled()
    clone = pickle.loads(pickle.dumps(compiled))
    assert [a.name for a in collect_arrays(clone)] == [
        a.name for a in collect_arrays(compiled)
    ]


def test_pool_roundtrip_gathers_segment_contents():
    compiled, arrays = _compiled()
    pool = SharedArrayPool(compiled)
    try:
        clone = pickle.loads(pickle.dumps(compiled))
        attached = AttachedArrays(clone, pool.specs)
        try:
            for array in collect_arrays(clone):
                array._data[...] = 42.0
        finally:
            attached.detach()
        pool.gather()
        for array in arrays:
            np.testing.assert_array_equal(array._data, 42.0)
    finally:
        pool.release()
    assert pool._segments == []
    pool.release()  # idempotent


def test_attach_validates_shape():
    compiled, _ = _compiled()
    pool = SharedArrayPool(compiled)
    try:
        clone = pickle.loads(pickle.dumps(compiled))
        bad = [
            ArraySpec(spec.name, (1, 1), spec.dtype) for spec in pool.specs
        ]
        with pytest.raises(MachineError):
            AttachedArrays(clone, bad)
        with pytest.raises(MachineError):
            AttachedArrays(clone, pool.specs[:-1])
    finally:
        pool.release()
