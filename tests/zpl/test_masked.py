"""Tests for masked execution (ZPL's ``[R with m]``)."""

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan, contractible
from repro.errors import LegalityError, RegionError
from repro.machine import MachineParams, pipelined_wavefront
from repro.runtime import execute_loopnest, execute_vectorized, run_and_capture


def lower_triangle_mask(n: int) -> zpl.ZArray:
    m = zpl.zeros(zpl.Region.square(1, n), name="m")
    with zpl.covering(m.region):
        m[...] = zpl.where(zpl.index(0) >= zpl.index(1), 1.0, 0.0)
    return m


class TestEagerMasking:
    def test_store_only_where_mask(self):
        n = 5
        a = zpl.zeros(zpl.Region.square(1, n), name="a")
        mask = lower_triangle_mask(n)
        with zpl.covering(a.region), zpl.masked(mask):
            a[...] = 7.0
        values = a.to_numpy()
        np.testing.assert_array_equal(values, 7.0 * np.tril(np.ones((n, n))))

    def test_reads_unaffected(self):
        n = 5
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        b = zpl.zeros(zpl.Region.square(1, n), name="b")
        mask = lower_triangle_mask(n)
        with zpl.covering(zpl.Region.square(2, n - 1)), zpl.masked(mask):
            b[...] = (a @ zpl.NORTH) + (a @ zpl.EAST)  # reads cross the mask
        assert float(b[(3, 2)]) == 2.0  # masked in
        assert float(b[(2, 3)]) == 0.0  # masked out

    def test_innermost_mask_wins(self):
        n = 4
        a = zpl.zeros(zpl.Region.square(1, n), name="a")
        outer = lower_triangle_mask(n)
        inner = zpl.ZArray(zpl.Region.square(1, n), name="inner", fill=1.0)
        inner.put((1, 1), 0.0)
        with zpl.covering(a.region), zpl.masked(outer), zpl.masked(inner):
            a[...] = 5.0
        assert float(a[(1, 1)]) == 0.0  # inner mask excludes
        assert float(a[(1, 4)]) == 5.0  # outer mask ignored

    def test_non_array_rejected(self):
        with pytest.raises(RegionError):
            with zpl.masked("mask"):  # type: ignore[arg-type]
                pass

    def test_mask_cleared_on_exit(self):
        n = 4
        a = zpl.zeros(zpl.Region.square(1, n), name="a")
        with zpl.covering(a.region):
            with zpl.masked(lower_triangle_mask(n)):
                pass
            a[...] = 3.0  # unmasked again
        assert np.all(a.to_numpy() == 3.0)


class TestMaskedScanBlocks:
    def banded_wavefront(self, n, bandwidth):
        """A wavefront restricted to a diagonal band — an irregular domain."""
        mask = zpl.zeros(zpl.Region.square(1, n), name="band")
        with zpl.covering(mask.region):
            mask[...] = zpl.where(
                zpl.absolute(zpl.index(0) - zpl.index(1)) <= float(bandwidth),
                1.0,
                0.0,
            )
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.masked(mask), zpl.scan(execute=False) as block:
                a[...] = 2.0 * (a.p @ zpl.NORTH)
        return block, a, mask

    def test_masked_wavefront_engines_agree(self):
        block, a, mask = self.banded_wavefront(8, 2)
        compiled = compile_scan(block)
        oracle = run_and_capture(execute_loopnest, compiled, [a, mask])
        fast = run_and_capture(execute_vectorized, compiled, [a, mask])
        np.testing.assert_allclose(fast[0], oracle[0], rtol=1e-13)

    def test_masked_out_points_untouched(self):
        block, a, mask = self.banded_wavefront(8, 1)
        execute_vectorized(compile_scan(block))
        values = a.to_numpy()
        # Far off-band: never written, still 1.
        assert values[7, 0] == 1.0
        # On the diagonal: doubled from its northern neighbour each row.
        assert values[1, 1] == 2.0

    def test_masked_distributed_matches_sequential(self):
        params = MachineParams(name="m", alpha=20.0, beta=1.0)
        block, a, mask = self.banded_wavefront(12, 3)
        compiled = compile_scan(block)
        expected = run_and_capture(execute_vectorized, compiled, [a, mask])
        pipelined_wavefront(compiled, params, n_procs=3, block_size=4)
        np.testing.assert_allclose(a._data, expected[0], rtol=1e-13)

    def test_block_written_mask_rejected(self):
        n = 6
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.masked(a), zpl.scan(execute=False) as block:
                a[...] = 2.0 * (a.p @ zpl.NORTH)
        with pytest.raises(LegalityError, match="loop-invariant"):
            compile_scan(block)

    def test_masked_target_not_contractible(self):
        n = 6
        mask = lower_triangle_mask(n)
        r = zpl.zeros(zpl.Region.square(1, n), name="r")
        d = zpl.ones(zpl.Region.square(1, n), name="d")
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.masked(mask), zpl.scan(execute=False) as block:
                r[...] = 0.5 * (d.p @ zpl.NORTH)
                d[...] = d + r
        compiled = compile_scan(block)
        assert not contractible(compiled, r)
