"""The static schedule certifier (``repro.analyze.certify``).

Covers the three proof obligations on clean planner output — sync coverage
(E101), deadlock freedom (E102), staging safety (E103) — across all four
pseudo-schedules, the ``python -m repro.analyze certify`` command line
(exit codes, ``--mutate``, ``--out`` report files, W110 on planner-refused
configurations), and the ``REPRO_CERTIFY=1`` pre-flight hook on the real
executor.  The mutation soundness harness has its own module
(``test_mutations.py``).
"""

import json

import numpy as np
import pytest

from repro import zpl
from repro.analyze.certify import (
    MUTATIONS,
    PSEUDO_SCHEDULES,
    MutationUnsupported,
    apply_mutation,
    build_schedule_model,
    certify,
    certify_execution,
    certify_model,
    schedule_kwargs,
)
from repro.analyze.cli import main
from repro.analyze.diagnostics import validate_report
from repro.compiler import compile_scan
from repro.errors import CertifyError, MachineError
from repro.parallel import execute
from repro.zpl import NORTH, Region


def _single_stream(n=32):
    a = zpl.ZArray(Region.square(1, n), name="a")
    rng = np.random.default_rng(5)
    a.load(rng.uniform(0.2, 1.0, size=(n, n)))
    with zpl.covering(Region.of((2, n), (1, n))):
        with zpl.scan(execute=False) as block:
            a[...] = 0.9 * (a.p @ NORTH) + 0.1
    return compile_scan(block), (a,)


SOURCE = (
    "#! arrays: a[1..32, 1..32] = 0.5\n"
    "#! constants: n = 32\n"
    "[2..n, 1..n] scan  a := 0.9 * a'@north + 0.1;  end;\n"
)


@pytest.fixture
def zpl_file(tmp_path):
    path = tmp_path / "t.zpl"
    path.write_text(SOURCE)
    return str(path)


# ---------------------------------------------------------------------------
# Model construction and clean certification.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("pseudo", PSEUDO_SCHEDULES)
def test_clean_plan_certifies_at_every_schedule(pseudo):
    compiled, _ = _single_stream()
    model = build_schedule_model(
        compiled, grid=4, block=4, **schedule_kwargs(pseudo)
    )
    assert certify_model(model) == []


def test_pipelined_model_shape():
    compiled, _ = _single_stream()
    model = build_schedule_model(
        compiled, grid=4, block=8, schedule="pipelined", multicast=False
    )
    assert model.fabric == "pipes"
    assert model.grid_dims == (4,)
    assert model.n_tasks == len(model.tiles) == 16  # 4 ranks x 4 blocks
    assert model.dep_edges, "projected dependence edges must exist"
    assert model.token_edges, "the pipe protocol must have sync edges"
    assert not model.producers and not model.graph_edges


def test_multicast_model_carries_staging():
    compiled, _ = _single_stream()
    model = build_schedule_model(
        compiled, grid=4, block=8, schedule="pipelined", multicast=True
    )
    assert model.fabric == "multicast"
    assert any(model.producers), "epoch waits must replace pipe tokens"
    assert model.staging and model.n_slots >= model.credit_lag
    assert model.slot_areas and model.slot_elems > 0


def test_taskgraph_model_pending_matches_indegree():
    compiled, _ = _single_stream()
    model = build_schedule_model(
        compiled, grid=2, block=8, schedule="taskgraph", oversub=2
    )
    assert model.fabric == "graph"
    indeg = {}
    for src, dst in model.graph_edges:
        indeg[dst] = indeg.get(dst, 0) + 1
    for t in range(model.n_tasks):
        assert model.pending[t] == indeg.get(t, 0)


def test_certify_wrapper_and_execution_hook_clean():
    compiled, _ = _single_stream()
    assert certify(compiled, grid=4, schedule="pipelined") == []
    assert (
        certify_execution(compiled, grid=4, schedule="pipelined") == []
    )


def test_certify_execution_swallows_planner_refusals():
    # taskgraph on a rank-2 grid is a MachineError at run time; the
    # pre-flight hook must not preempt the executor's own message.
    compiled, _ = _single_stream()
    assert (
        certify_execution(compiled, grid=(2, 2), schedule="taskgraph")
        is None
    )


def test_schedule_kwargs_rejects_unknown():
    with pytest.raises(MachineError, match="unknown schedule"):
        schedule_kwargs("wavefront")


def test_certify_error_carries_diagnostics():
    compiled, _ = _single_stream()
    model = build_schedule_model(
        compiled, grid=4, block=4, schedule="pipelined", multicast=False
    )
    _, mutant = apply_mutation(model, "drop-token")
    diagnostics = certify_model(mutant)
    assert diagnostics
    err = CertifyError("certification failed", diagnostics)
    assert err.diagnostic is diagnostics[0]


# ---------------------------------------------------------------------------
# REPRO_CERTIFY=1: the pre-flight hook on the real backends.
# ---------------------------------------------------------------------------
def test_repro_certify_env_runs_clean(monkeypatch):
    monkeypatch.setenv("REPRO_CERTIFY", "1")
    compiled, arrays = _single_stream()
    run = execute(compiled, grid=2, schedule="pipelined", block=8)
    assert run.n_procs == 2


def test_repro_certify_env_taskgraph_clean(monkeypatch):
    monkeypatch.setenv("REPRO_CERTIFY", "1")
    compiled, arrays = _single_stream()
    run = execute(compiled, grid=2, schedule="taskgraph", block=8)
    assert run.schedule == "taskgraph"


# ---------------------------------------------------------------------------
# The command line.
# ---------------------------------------------------------------------------
def test_cli_certify_clean_exits_zero(zpl_file, capsys):
    assert main(["certify", zpl_file]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_certify_single_schedule(zpl_file, capsys):
    assert main(["certify", zpl_file, "--schedule", "multicast"]) == 0
    out = capsys.readouterr().out
    assert "multicast" in out


def test_cli_certify_mutate_exits_one(zpl_file, capsys):
    code = main(
        ["certify", zpl_file, "--schedule", "pipelined",
         "--mutate", "drop-token"]
    )
    assert code == 1
    assert "E101" in capsys.readouterr().out


def test_cli_certify_unknown_mutation_is_usage_error(zpl_file, capsys):
    assert main(["certify", zpl_file, "--mutate", "no-such"]) == 2


def test_cli_certify_mismatched_mutation_is_w110(zpl_file, capsys):
    # A pipes mutation cannot corrupt the taskgraph protocol: the CLI
    # reports "checker unavailable" instead of a false clean bill.
    code = main(
        ["certify", zpl_file, "--schedule", "taskgraph",
         "--mutate", "drop-token"]
    )
    assert code == 0
    assert "W110" in capsys.readouterr().out


def test_cli_certify_refused_config_is_w110(zpl_file, capsys):
    # taskgraph refuses rank-2 grids; the certifier reports that refusal
    # as W110 rather than certifying a schedule that cannot run.
    code = main(
        ["certify", zpl_file, "--grid", "2x2", "--schedule", "taskgraph"]
    )
    assert code == 0
    assert "W110" in capsys.readouterr().out


def test_cli_certify_out_report_validates(zpl_file, tmp_path, capsys):
    out_path = tmp_path / "CERTIFY_report.json"
    assert main(["certify", zpl_file, "--out", str(out_path)]) == 0
    reports = json.loads(out_path.read_text())
    assert len(reports) == len(PSEUDO_SCHEDULES)
    for report in reports:
        validate_report(report)
        assert report["counts"]["error"] == 0


def test_cli_certify_json_mode(zpl_file, capsys):
    assert main(["certify", zpl_file, "--json"]) == 0
    reports = json.loads(capsys.readouterr().out)
    assert len(reports) == len(PSEUDO_SCHEDULES)
    for report in reports:
        validate_report(report)
