"""The flight recorder: a bounded ring of recent events, cheap enough to
leave on always.

Where :class:`repro.obs.Tracer` is the *opt-in* full-fidelity tier
(``REPRO_TRACE=1``, unbounded buffers, every span), the flight recorder is
the *always-on* tier: a fixed-capacity ring buffer of recent span/counter
events that every process keeps regardless of tracing, so a failure can be
post-mortemed from what actually just happened.  Design constraints:

* **Bounded.**  The ring holds ``capacity`` events; an overflowing write
  overwrites the oldest.  Nothing ever grows with run length.
* **Lock-free per process.**  A write is one tuple construction, one list
  store and one integer increment under the GIL — no locks, no syscalls.
  There is one logical writer per process (the worker loop, or the serve
  event loop); :meth:`FlightRecorder.dump` tolerates racing writers from
  auxiliary threads by snapshotting slot references and re-ordering by
  sequence number.
* **Exact drop accounting.**  Every event carries a monotonically
  increasing sequence number; ``dropped`` is derived from it
  (``written - capacity``), so the overflow count is exact, not sampled.

Disable with ``REPRO_FLIGHT=0`` (the overhead bench compares the two
states); resize with ``REPRO_FLIGHT_CAPACITY``.  The module-level
:data:`FLIGHT` instance is the per-process recorder every layer shares —
workers inherit a private copy at fork, and a failed pool worker ships its
:meth:`~FlightRecorder.dump` home in the error payload so the parent can
render the last events before death (:func:`format_flight_tail`).
"""

from __future__ import annotations

import os
import time

SCHEMA = "repro-flight/1"

#: Environment kill switch: ``0``/``false``/``off`` disables the recorder.
FLIGHT_ENV = "REPRO_FLIGHT"

#: Environment override for the ring capacity (events, not bytes).
FLIGHT_CAPACITY_ENV = "REPRO_FLIGHT_CAPACITY"

DEFAULT_CAPACITY = 4096


def flight_enabled() -> bool:
    """True unless ``REPRO_FLIGHT`` explicitly disables the recorder."""
    return os.environ.get(FLIGHT_ENV, "").strip().lower() not in (
        "0", "false", "off",
    )


class FlightRecorder:
    """A bounded, per-process ring buffer of span/counter events.

    >>> rec = FlightRecorder(capacity=2, enabled=True)
    >>> rec.event("boot")
    >>> rec.span("block", 0.0, 1.5, block=0)
    >>> rec.event("overflow")          # overwrites "boot"
    >>> snap = rec.dump()
    >>> snap["dropped"], [e["name"] for e in snap["events"]]
    (1, ['block', 'overflow'])
    """

    __slots__ = ("capacity", "enabled", "_slots", "_written")

    def __init__(self, capacity: int | None = None, enabled: bool | None = None):
        if capacity is None:
            capacity = int(
                os.environ.get(FLIGHT_CAPACITY_ENV, DEFAULT_CAPACITY)
            )
        if capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = flight_enabled() if enabled is None else enabled
        self._slots: list = [None] * capacity
        self._written = 0

    # -- recording (the hot path) -------------------------------------------
    def event(self, name: str, **fields) -> None:
        """Record a point event at the current perf_counter time."""
        if not self.enabled:
            return
        seq = self._written
        self._slots[seq % self.capacity] = (
            seq, time.perf_counter(), "event", name, fields or None,
        )
        self._written = seq + 1

    def span(self, name: str, start: float, end: float, **fields) -> None:
        """Record an already-measured ``[start, end]`` interval."""
        if not self.enabled:
            return
        fields["start"] = start
        fields["end"] = end
        seq = self._written
        self._slots[seq % self.capacity] = (seq, end, "span", name, fields)
        self._written = seq + 1

    def count(self, name: str, n: float = 1, **fields) -> None:
        """Record a counter increment event."""
        if not self.enabled:
            return
        fields["n"] = n
        seq = self._written
        self._slots[seq % self.capacity] = (
            seq, time.perf_counter(), "counter", name, fields,
        )
        self._written = seq + 1

    # -- accounting ----------------------------------------------------------
    @property
    def written(self) -> int:
        """Total events ever recorded (including overwritten ones)."""
        return self._written

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow — exact, derived from sequencing."""
        return max(0, self._written - self.capacity)

    # -- snapshot ------------------------------------------------------------
    def dump(self) -> dict:
        """Snapshot the ring: recent events in order, plus drop accounting.

        Safe against a concurrently appending writer thread: the slot list
        is snapshotted by reference and re-ordered by sequence number, so
        the result is always a well-formed, strictly-ordered event list of
        at most ``capacity`` events (a racing writer may push the window
        forward mid-copy; it can never tear an individual event).
        """
        written = self._written
        taken = [e for e in list(self._slots) if e is not None]
        taken.sort(key=lambda e: e[0])
        if taken:
            written = max(written, taken[-1][0] + 1)
        events = []
        for seq, t, kind, name, fields in taken:
            record = {"seq": seq, "t": t, "kind": kind, "name": name}
            if fields:
                record["fields"] = dict(fields)
            events.append(record)
        return {
            "schema": SCHEMA,
            "capacity": self.capacity,
            "written": written,
            "dropped": max(0, written - self.capacity),
            "events": events,
        }

    def clear(self) -> None:
        """Empty the ring and reset the sequence (drop accounting restarts)."""
        self._slots = [None] * self.capacity
        self._written = 0

    def configure(
        self, capacity: int | None = None, enabled: bool | None = None
    ) -> "FlightRecorder":
        """Reconfigure *in place* (the shared instance keeps its identity)."""
        if capacity is not None:
            if capacity < 1:
                raise ValueError(
                    f"flight capacity must be >= 1, got {capacity}"
                )
            self.capacity = capacity
            self.clear()
        if enabled is not None:
            self.enabled = enabled
        return self


def format_flight_tail(dump: dict, limit: int = 8) -> str:
    """Render the last ``limit`` events of a :meth:`FlightRecorder.dump`.

    The post-mortem view: a failed worker ships its dump home in the error
    payload and the parent appends this tail to the raised message.
    """
    events = dump.get("events", [])[-limit:]
    if not events:
        return "  (flight recorder empty)"
    lines = []
    for e in events:
        fields = e.get("fields") or {}
        detail = " ".join(
            f"{k}={v!r}" for k, v in fields.items() if k not in ("start", "end")
        )
        if e["kind"] == "span":
            dur = (fields.get("end", 0.0) - fields.get("start", 0.0)) * 1e3
            detail = f"{dur:.3f} ms {detail}".strip()
        lines.append(f"  #{e['seq']:<6} {e['kind']:<7} {e['name']:<16} {detail}")
    dropped = dump.get("dropped", 0)
    if dropped:
        lines.append(f"  ({dropped} older event(s) overwritten)")
    return "\n".join(lines)


#: The per-process recorder every layer shares.  Workers inherit a private
#: copy at fork; tests and the overhead bench may toggle ``FLIGHT.enabled``.
FLIGHT = FlightRecorder()
