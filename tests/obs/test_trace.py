"""Tests for the core span/counter recorder (:mod:`repro.obs.trace`)."""

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    PARENT_PROC,
    TRACE_ENV,
    NullTracer,
    Span,
    Trace,
    Tracer,
    resolve_tracer,
    tracing_enabled,
)


class TestTracer:
    def test_span_context_manager_records(self):
        tracer = Tracer()
        with tracer.span("compute", cat="compute", proc=2, block=5):
            pass
        (span,) = tracer.spans
        assert span.name == "compute"
        assert span.cat == "compute"
        assert span.proc == 2
        assert span.args == {"block": 5}
        assert span.end >= span.start

    def test_add_span_uses_default_proc(self):
        tracer = Tracer(proc=3)
        tracer.add_span("recv_wait", "comm", 1.0, 2.0)
        assert tracer.spans[0].proc == 3
        assert tracer.spans[0].duration == pytest.approx(1.0)

    def test_parent_proc_default(self):
        tracer = Tracer()
        tracer.add_span("prepare", "setup", 0.0, 1.0)
        assert tracer.spans[0].proc == PARENT_PROC

    def test_count_accumulates_per_proc(self):
        tracer = Tracer()
        tracer.count("blocks_executed", proc=0)
        tracer.count("blocks_executed", proc=0)
        tracer.count("blocks_executed", proc=1)
        tracer.count("bytes_moved", 64, proc=0)
        assert tracer.counters[(0, "blocks_executed")] == 2
        assert tracer.counters[(1, "blocks_executed")] == 1
        assert tracer.counters[(0, "bytes_moved")] == 64

    def test_drain_detaches_and_absorb_merges(self):
        worker = Tracer(proc=1)
        worker.add_span("compute", "compute", 0.0, 1.0, block=0)
        worker.count("blocks_executed")
        payload = worker.drain()
        assert worker.spans == [] and worker.counters == {}

        parent = Tracer()
        parent.count("blocks_executed", proc=1)  # pre-existing: must sum
        parent.absorb(payload)
        assert len(parent.spans) == 1
        assert parent.spans[0].proc == 1
        assert parent.spans[0].args == {"block": 0}
        assert parent.counters[(1, "blocks_executed")] == 2

    def test_absorb_none_is_noop(self):
        parent = Tracer()
        parent.absorb(None)
        parent.absorb(NULL_TRACER.drain())
        assert parent.spans == []


class TestNullTracer:
    def test_records_nothing(self):
        null = NullTracer()
        with null.span("compute", cat="compute"):
            pass
        null.add_span("x", "y", 0.0, 1.0)
        null.count("n")
        assert null.enabled is False
        assert null.drain() is None
        assert not null.spans and not null.counters


class TestResolveTracer:
    def test_explicit_tracer_wins(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer

    def test_default_is_shared_null(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert resolve_tracer(None) is NULL_TRACER
        assert not tracing_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_env_enables(self, monkeypatch, value):
        monkeypatch.setenv(TRACE_ENV, value)
        assert tracing_enabled()
        assert isinstance(resolve_tracer(None), Tracer)

    @pytest.mark.parametrize("value", ["", "0", "false", "off", " OFF "])
    def test_env_off_values(self, monkeypatch, value):
        monkeypatch.setenv(TRACE_ENV, value)
        assert not tracing_enabled()
        assert resolve_tracer(None) is NULL_TRACER


def _sample_trace() -> Trace:
    tracer = Tracer()
    tracer.add_span("prepare", "setup", 0.0, 0.5, proc=PARENT_PROC)
    tracer.add_span("compute", "compute", 1.0, 2.0, proc=0, block=0, elements=8)
    tracer.add_span("recv_wait", "comm", 1.0, 1.5, proc=1, block=0)
    tracer.add_span("compute", "compute", 1.5, 3.0, proc=1, block=0, elements=8)
    tracer.count("blocks_executed", proc=0)
    tracer.count("blocks_executed", proc=1)
    tracer.count("bytes_moved", 128, proc=0)
    return Trace.from_tracer(
        tracer, clock="wall", meta={"backend": "test", "n_procs": 2}
    )


class TestTrace:
    def test_views(self):
        trace = _sample_trace()
        assert trace.procs() == (0, 1)
        assert len(list(trace.worker_spans())) == 3
        assert len(list(trace.worker_spans("compute"))) == 2
        assert trace.t0 == 1.0 and trace.t_end == 3.0
        assert trace.wall == pytest.approx(2.0)
        assert trace.counter_total("blocks_executed") == 2
        assert trace.counter_total("bytes_moved") == 128

    def test_empty_trace_window_raises(self):
        trace = Trace(clock="wall")
        with pytest.raises(ValueError, match="no worker spans"):
            trace.t0

    def test_dict_roundtrip(self):
        trace = _sample_trace()
        clone = Trace.from_dict(trace.to_dict())
        assert clone.clock == trace.clock
        assert clone.meta == trace.meta
        assert clone.spans == trace.spans
        assert clone.counters == trace.counters

    def test_save_load_roundtrip(self, tmp_path):
        trace = _sample_trace()
        path = trace.save(tmp_path / "trace.json")
        clone = Trace.load(path)
        assert clone.spans == trace.spans
        assert clone.counters == trace.counters

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            Trace.from_dict({"schema": "not-a-trace", "clock": "wall"})

    def test_span_duration(self):
        span = Span("s", "c", 1.0, 3.5, 0)
        assert span.duration == pytest.approx(2.5)


class TestCompilerSpans:
    def test_compile_scan_records_pass_timings(self):
        from repro.compiler import compile_scan
        from tests.conftest import record_tomcatv_block

        block, _ = record_tomcatv_block(12)
        tracer = Tracer()
        compile_scan(block, tracer=tracer)
        names = {s.name for s in tracer.spans}
        assert "compile.legality" in names
        assert "compile.loops" in names
        assert all(s.cat == "compile" for s in tracer.spans)
        assert all(s.proc == PARENT_PROC for s in tracer.spans)
