"""Tests for the block-size dynamism study over the kernel suite."""

import pytest

from repro.experiments import table_suite


@pytest.fixture(scope="module")
def result():
    return table_suite.run(quick=True)


class TestSuiteStudy:
    def test_all_pairs_present(self, result):
        from repro.apps.suite import SUITE
        from repro.machine.params import PRESETS

        assert len(result.rows) == len(SUITE) * len(PRESETS)

    def test_selectors_near_optimal(self, result):
        # The paper proposed to "investigate the quality of block size
        # selection using only static and profile information": within 10%.
        assert result.worst_penalty("static") < 1.10
        assert result.worst_penalty("profiled") < 1.10
        assert result.worst_penalty("dynamic") < 1.05

    def test_bstar_moves_with_machine(self, result):
        # Dynamism: the hypothetical beta-heavy machine wants much smaller
        # blocks than the T3E, on every kernel.
        by_kernel: dict[str, dict[str, int]] = {}
        for r in result.rows:
            by_kernel.setdefault(r.kernel, {})[r.machine] = r.exhaustive_b
        for kernel, per_machine in by_kernel.items():
            assert per_machine["hypothetical"] < per_machine["t3e"], kernel

    def test_bstar_moves_with_boundary_traffic(self, result):
        # The Tomcatv fragment ships 3 boundary rows per column: its optimum
        # sits below the single-stream kernel's on the same machine.
        best = {
            (r.kernel, r.machine): r.exhaustive_b for r in result.rows
        }
        assert best[("tomcatv-fragment", "t3e")] < best[("single-stream", "t3e")]

    def test_dynamic_probe_budget(self, result):
        assert all(r.dynamic_probes <= 24 for r in result.rows)

    def test_report_renders(self, result):
        text = result.report()
        assert "dynamism" in text
        assert "single-stream" in text
