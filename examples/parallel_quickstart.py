#!/usr/bin/env python
"""The real backend in six steps: Tomcatv's wavefront on actual processes.

The other examples pipeline wavefronts on a *simulated* machine; this one
runs the same compiled scan block across real OS processes with
``repro.parallel`` — shared-memory arrays, pipe tokens, wall clocks — and
then lets the autotuner pick the block size from the host's measured α/β.

Run:  python examples/parallel_quickstart.py
"""

import numpy as np

from repro.parallel import (
    autotune,
    collect_arrays,
    execute,
    speedup_curve,
    tomcatv_forward,
)
from repro.runtime import execute_vectorized, run_and_capture

# 1. Compile the paper's kernel: Tomcatv forward elimination (Fig. 2(b)).
n = 64
compiled = tomcatv_forward(n)
print(f"Tomcatv forward solve, n={n}: region {compiled.region}")

# 2. Run it on two real processes, pipelined with block size 8.
run = execute(compiled, grid=2, schedule="pipelined", block=8)
print(
    f"pipelined p={run.n_procs} b={run.block_size}: "
    f"{run.n_chunks} chunks, wall {run.wall_time * 1e3:.2f} ms, "
    f"workers busy {[f'{t * 1e3:.2f}' for t in run.worker_times]} ms"
)

# 3. Same storage, same answers: re-run sequentially and compare.
arrays = collect_arrays(compiled)
parallel_values = run_and_capture(
    lambda c: execute(c, grid=2, block=8), compiled, arrays
)
serial_values = run_and_capture(execute_vectorized, compiled, arrays)
identical = all(np.array_equal(p, s) for p, s in zip(parallel_values, serial_values))
print(f"bit-identical to execute_vectorized: {identical}")

# 4. Let the autotuner measure this host and pick b via Equation (1).
tuned = autotune(compiled, n_procs=2)
print(
    f"measured machine: alpha {tuned.comm.alpha_seconds * 1e6:.1f} us, "
    f"compute {tuned.compute_seconds * 1e6:.2f} us/element, "
    f"dispatch {tuned.dispatch_seconds * 1e6:.1f} us/block "
    f"-> effective alpha {tuned.effective_params.alpha:.0f} elements, "
    f"b* = {tuned.block_size}"
)
run = execute(compiled, grid=2, schedule="pipelined")  # block=None -> tuned
print(f"autotuned run: b={run.block_size}, wall {run.wall_time * 1e3:.2f} ms")

# 5. The full study: measured speedup beside the simulator's prediction.
payload = speedup_curve(n=n, procs=(1, 2), repeats=2)
print(f"\nserial baseline {payload['serial_seconds'] * 1e3:.2f} ms")
print(f"{'p':>3} {'b':>4} {'measured':>10} {'predicted':>10} {'speedup':>8}")
for row in payload["results"]:
    print(
        f"{row['procs']:3d} {row['block_size']:4d} "
        f"{row['measured_seconds'] * 1e3:8.2f}ms {row['predicted_seconds'] * 1e3:8.2f}ms "
        f"{row['measured_speedup']:7.2f}x"
    )

# 6. Watch the pipeline fill, stream, and drain: trace one run and report.
from repro.obs import Tracer, analyze_phases, format_phase_report, write_chrome

run = execute(compiled, grid=2, schedule="pipelined", block=8, tracer=Tracer())
report = analyze_phases(run.trace)
print()
print(format_phase_report(report, title="== traced parallel run =="))
path = write_chrome(run.trace, "TRACE_quickstart.chrome.json")
print(f"wrote {path} -- open in https://ui.perfetto.dev")
