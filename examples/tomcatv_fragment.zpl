# The paper's Fig. 2(b) tridiagonal forward elimination (tomcatv fragment).
#! arrays: aa[1..64, 1..64] = 0.4, d[1..64, 1..64] = 0.6, dd[1..64, 1..64] = 4
#! arrays: rx[1..64, 1..64] = 0.3, ry[1..64, 1..64] = 0.7, r[1..64, 1..64]
#! constants: n = 64
direction north = (-1, 0);
region R = [2..n-2, 2..n-1];
[R] scan
  r  := aa * d'@north;
  d  := 1.0 / (dd - aa@north * r);
  rx := rx - rx'@north * r;
  ry := ry - ry'@north * r;
end;
