"""Tests for the textual ZPL front end."""

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan
from repro.runtime import execute_vectorized, run_and_capture
from repro.zpl.parser import (
    ParseError,
    parse_program,
    parse_scan_block,
    tokenize,
)
from tests.conftest import make_tomcatv_arrays, tomcatv_fragment_oracle


class TestTokenizer:
    def test_numbers_vs_ranges(self):
        # '2..n' must tokenise as [2, .., n], not as the float '2.'.
        kinds = [(t.kind, t.text) for t in tokenize("2..n-1")][:-1]
        assert kinds == [
            ("number", "2"), ("op", ".."), ("name", "n"),
            ("op", "-"), ("number", "1"),
        ]

    def test_floats(self):
        texts = [t.text for t in tokenize("1.0 0.25 .5 2.")][:-1]
        assert texts == ["1.0", "0.25", ".5", "2."]

    def test_compound_operators(self):
        texts = [t.text for t in tokenize("a := b ** c")][:-1]
        assert ":=" in texts and "**" in texts

    def test_comments_skipped(self):
        tokens = tokenize("a # comment to end of line\nb")
        assert [t.text for t in tokens][:-1] == ["a", "b"]

    def test_bad_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a ? b")

    def test_prime_token(self):
        assert "'" in [t.text for t in tokenize("d'@north")]


@pytest.fixture
def env():
    n = 8
    base = zpl.Region.square(1, n)
    arrays = {
        name: zpl.ones(base, name=name) for name in ("a", "b", "c")
    }
    return n, arrays


class TestStatements:
    def test_simple_assignment(self, env):
        n, arrays = env
        program = parse_program(
            "[2..7, 2..7] a := b + 2.0 * c;", arrays, {"n": n}
        )
        program.run()
        assert float(arrays["a"][(3, 3)]) == 3.0
        assert float(arrays["a"][(1, 1)]) == 1.0  # outside region

    def test_named_region_and_direction(self, env):
        n, arrays = env
        source = """
        direction east = (0, 1);
        region Inner = [2..n-1, 2..n-1];
        [Inner] a := b@east + 1;
        """
        program = parse_program(source, arrays, {"n": n})
        program.run()
        assert float(arrays["a"][(2, 2)]) == 2.0
        assert program.regions["Inner"].ranges == ((2, 7), (2, 7))
        assert tuple(program.directions["east"]) == (0, 1)

    def test_inline_vector_direction(self, env):
        n, arrays = env
        program = parse_program("[2..7, 1..8] a := b@(-1, 0) * 3.0;", arrays)
        program.run()
        assert float(arrays["a"][(2, 1)]) == 3.0

    def test_operator_precedence(self, env):
        n, arrays = env
        program = parse_program("[2..2, 2..2] a := 1 + 2 * 3 ** 2;", arrays)
        program.run()
        assert float(arrays["a"][(2, 2)]) == 19.0

    def test_unary_minus_and_parens(self, env):
        n, arrays = env
        program = parse_program("[2..2, 2..2] a := -(1 + 2) * b;", arrays)
        program.run()
        assert float(arrays["a"][(2, 2)]) == -3.0

    def test_functions(self, env):
        n, arrays = env
        program = parse_program(
            "[2..2, 2..2] a := max(b * 4, sqrt(b * 9));", arrays
        )
        program.run()
        assert float(arrays["a"][(2, 2)]) == 4.0

    def test_constants_in_expressions(self, env):
        n, arrays = env
        program = parse_program("[2..2, 2..2] a := b * n;", arrays, {"n": n})
        program.run()
        assert float(arrays["a"][(2, 2)]) == float(n)

    def test_statement_without_region_rejected(self, env):
        _, arrays = env
        with pytest.raises(ParseError, match="covering region"):
            parse_program("a := b;", arrays)

    def test_unknown_array(self, env):
        _, arrays = env
        with pytest.raises(ParseError, match="unknown array"):
            parse_program("[1..2, 1..2] a := zz;", arrays)

    def test_unknown_direction(self, env):
        _, arrays = env
        with pytest.raises(ParseError, match="unknown direction"):
            parse_program("[1..2, 1..2] a := b@nowhere;", arrays)

    def test_unknown_region(self, env):
        _, arrays = env
        with pytest.raises(ParseError, match="unknown region"):
            parse_program("[R] a := b;", arrays)


class TestScanBlocks:
    def test_fig2b_verbatim_matches_fortran_oracle(self):
        n = 12
        _, aa, d, dd, rx, ry, r = make_tomcatv_arrays(n)
        expected = tomcatv_fragment_oracle(n, aa, d, dd, rx, ry, r)
        source = """
        direction north = (-1, 0);
        region R = [2..n-2, 2..n-1];
        [R] scan
              r := aa * d'@north;
              d := 1.0 / (dd - aa@north * r);
              rx := rx - rx'@north * r;
              ry := ry - ry'@north * r;
            end;
        """
        program = parse_program(
            source,
            arrays=dict(r=r, d=d, dd=dd, aa=aa, rx=rx, ry=ry),
            constants=dict(n=n),
        )
        program.run()
        for got, want in zip((r, d, rx, ry), expected):
            np.testing.assert_allclose(got.to_numpy(), want, rtol=1e-12)

    def test_parse_scan_block_returns_block(self, env):
        n, arrays = env
        block = parse_scan_block(
            """
            direction north = (-1, 0);
            [2..8, 1..8] scan
                a := 2.0 * a'@north;
            end;
            """,
            arrays,
        )
        compiled = compile_scan(block)
        assert repr(compiled.wsv) == "(-,0)"

    def test_parse_scan_block_requires_exactly_one(self, env):
        _, arrays = env
        with pytest.raises(ParseError, match="exactly one"):
            parse_scan_block("[2..3, 2..3] a := b;", arrays)

    def test_mixed_program_order(self, env):
        n, arrays = env
        source = """
        direction north = (-1, 0);
        [2..7, 1..8] a := 0.0;
        [2..8, 1..8] scan
            a := a'@north + 1.0;
        end;
        [1..1, 1..8] c := a@(1, 0);
        """
        program = parse_program(source, arrays)
        assert len(program.items) == 3
        program.run()
        # Row 1 keeps its initial 1.0, so the wavefront gives row 2 the
        # value 1 + 1 = 2; the final statement copies it into c's row 1.
        assert float(arrays["a"][(2, 1)]) == 2.0
        assert float(arrays["c"][(1, 1)]) == 2.0


class TestRoundTrip:
    @pytest.mark.parametrize("entry_name", [
        "single-stream", "tomcatv-fragment", "gauss-seidel", "eastward",
    ])
    def test_format_then_parse_preserves_semantics(self, entry_name):
        # Pretty-print a suite block, re-parse the text against the same
        # arrays, and check both compiled forms execute identically.
        from repro.apps import suite
        from repro.zpl.pretty import format_scan_block

        entry = suite.get(entry_name)
        compiled = entry.build(10)
        arrays = {
            a.name: a
            for a in (*compiled.written_arrays(), *compiled.read_arrays())
        }
        block = zpl.ScanBlock(name="reparsed")
        for stmt in compiled.statements:
            block.append(stmt)
        text = format_scan_block(block)
        reparsed = parse_scan_block(text, arrays)
        recompiled = compile_scan(reparsed)
        assert recompiled.wsv == compiled.wsv
        assert recompiled.loops == compiled.loops

        targets = list(compiled.written_arrays())
        first = run_and_capture(execute_vectorized, compiled, targets)
        second = run_and_capture(execute_vectorized, recompiled, targets)
        for a, b in zip(first, second):
            np.testing.assert_allclose(a, b, rtol=1e-13)


class TestMaskedCover:
    def test_masked_statement(self):
        n = 6
        a = zpl.zeros(zpl.Region.square(1, n), name="a")
        m = zpl.zeros(zpl.Region.square(1, n), name="m")
        with zpl.covering(m.region):
            m[...] = zpl.where(zpl.index(0) >= zpl.index(1), 1.0, 0.0)
        program = parse_program(
            "[1..6, 1..6 with m] a := 7.0;", arrays=dict(a=a, m=m)
        )
        program.run()
        np.testing.assert_array_equal(
            a.to_numpy(), 7.0 * np.tril(np.ones((n, n)))
        )

    def test_masked_scan_block(self):
        n = 6
        h = zpl.ones(zpl.Region.square(1, n), name="h")
        m = zpl.zeros(zpl.Region.square(1, n), name="m")
        with zpl.covering(m.region):
            m[...] = zpl.where(zpl.index(0) >= zpl.index(1), 1.0, 0.0)
        program = parse_program(
            """
            [2..6, 1..6 with m] scan
                h := 2.0 * h'@north;
            end;
            """,
            arrays=dict(h=h, m=m),
        )
        program.run()
        values = h.to_numpy()
        assert values[5, 0] == 32.0  # inside the band: doubled per row
        assert values[1, 5] == 1.0  # masked out: untouched

    def test_unknown_mask_rejected(self):
        a = zpl.zeros(zpl.Region.square(1, 4), name="a")
        with pytest.raises(ParseError, match="unknown mask"):
            parse_program("[1..4, 1..4 with zz] a := 1.0;", arrays=dict(a=a))


class TestKeywords:
    def test_keyword_array_name_rejected(self):
        a = zpl.zeros(zpl.Region.square(1, 3), name="scan")
        with pytest.raises(ParseError, match="keyword"):
            parse_program("[1..3, 1..3] scan := 1.0;", arrays={"scan": a})

    def test_keyword_constant_rejected(self):
        a = zpl.zeros(zpl.Region.square(1, 3), name="a")
        with pytest.raises(ParseError, match="keyword"):
            parse_program(
                "[1..3, 1..3] a := 1.0;", arrays={"a": a}, constants={"end": 3}
            )
