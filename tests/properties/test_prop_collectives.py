"""Property-based tests for collectives and whole-program simulation."""

import functools

import pytest

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, MachineParams
from repro.machine.collectives import allreduce, broadcast, reduce
from repro.machine.program import WavefrontSpec, simulate_program
from repro.models.amdahl import PhaseKind, ProgramProfile

PARAMS = MachineParams(name="prop", alpha=3.0, beta=0.5)


def run_collective(n_procs, body_factory):
    machine = Machine(PARAMS, n_procs)
    outputs = {}

    def wrap(rank):
        def body(ep):
            outputs[rank] = yield from body_factory(ep)

        return body

    for rank in range(n_procs):
        machine.spawn(wrap(rank), rank)
    machine.run()
    return outputs


class TestCollectiveProperties:
    @given(
        st.integers(1, 12),
        st.lists(st.floats(-100, 100), min_size=12, max_size=12),
        st.sampled_from(["sum", "max", "min"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_allreduce_equals_functools_reduce(self, p, values, op_name):
        ops = {
            "sum": lambda a, b: a + b,
            "max": max,
            "min": min,
        }
        op = ops[op_name]
        outputs = run_collective(
            p, lambda ep: allreduce(ep, p, values[ep.rank], op=op)
        )
        expected = functools.reduce(op, values[:p])
        for rank, got in outputs.items():
            if op_name == "sum":
                # Tree order != fold order: identical up to fp associativity.
                assert got == pytest.approx(expected, rel=1e-9, abs=1e-9)
            else:
                assert got == expected, (rank, op_name)

    @given(st.integers(1, 12), st.integers(0, 11))
    @settings(max_examples=60, deadline=None)
    def test_broadcast_from_any_root(self, p, root):
        root = root % p
        outputs = run_collective(
            p,
            lambda ep: broadcast(
                ep, p, value=("token", root) if ep.rank == root else None,
                root=root,
            ),
        )
        assert all(v == ("token", root) for v in outputs.values())

    @given(st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_reduce_message_count(self, p):
        machine = Machine(PARAMS, p)

        def factory(rank):
            def body(ep):
                yield from reduce(ep, p, 1.0, op=lambda a, b: a + b)

            return body

        for rank in range(p):
            machine.spawn(factory(rank), rank)
        result = machine.run()
        assert result.total_messages == p - 1  # a tree reduction


phase_lists = st.lists(
    st.tuples(
        st.sampled_from([PhaseKind.PARALLEL, PhaseKind.SERIAL, PhaseKind.WAVEFRONT]),
        st.floats(100.0, 5000.0),
    ),
    min_size=1,
    max_size=5,
)


class TestProgramProperties:
    @given(phase_lists, st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_program_time_bounds(self, phases, p):
        profile = ProgramProfile("prop")
        specs = {}
        for k, (kind, work) in enumerate(phases):
            name = f"ph{k}"
            profile.add(name, kind, work)
            if kind is PhaseKind.WAVEFRONT:
                specs[name] = WavefrontSpec(rows=16, cols=16, block_size=4)
        result = simulate_program(profile, PARAMS, p, specs, halo_elements=4)
        total = profile.total_work()
        # Never faster than perfect parallelism; never slower than fully
        # serial execution plus all communication ever charged.
        assert result.total_time >= total / p - 1e-9
        assert result.total_time <= total + result.run.comm_time + 1e-9

    @given(phase_lists, st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_program_deterministic(self, phases, p):
        def once():
            profile = ProgramProfile("prop")
            specs = {}
            for k, (kind, work) in enumerate(phases):
                name = f"ph{k}"
                profile.add(name, kind, work)
                if kind is PhaseKind.WAVEFRONT:
                    specs[name] = WavefrontSpec(rows=16, cols=16, block_size=4)
            return simulate_program(
                profile, PARAMS, p, specs, halo_elements=4
            ).total_time

        assert once() == once()
