"""Certifier soundness: the mutation harness.

A verifier that accepts everything is worthless.  Every registered plan
mutation corrupts one aspect of one sync protocol — dropped tokens, cyclic
waits, shrunken pending counts, aliased staging slots — and the certifier
must flag each mutant with exactly the expected diagnostic code, while the
unmutated plan stays clean.  The registry must stay at or above twelve
distinct mutations spanning all three protocols (pipes, taskgraph,
multicast), matching the acceptance bar of the certify milestone.
"""

import numpy as np
import pytest

from repro import zpl
from repro.analyze.certify import (
    MUTATIONS,
    MutationUnsupported,
    apply_mutation,
    build_schedule_model,
    certify_model,
    mutants,
    schedule_kwargs,
)
from repro.analyze.diagnostics import Severity
from repro.compiler import compile_scan
from repro.zpl import NORTH, Region

#: The pseudo-schedule whose model each protocol's mutations corrupt.
PROTOCOL_SCHEDULE = {
    "pipes": "pipelined",
    "taskgraph": "taskgraph",
    "multicast": "multicast",
}


def _single_stream(n=32):
    a = zpl.ZArray(Region.square(1, n), name="a")
    rng = np.random.default_rng(5)
    a.load(rng.uniform(0.2, 1.0, size=(n, n)))
    with zpl.covering(Region.of((2, n), (1, n))):
        with zpl.scan(execute=False) as block:
            a[...] = 0.9 * (a.p @ NORTH) + 0.1
    return compile_scan(block), (a,)


def _model_for(protocol):
    compiled, _ = _single_stream()
    return build_schedule_model(
        compiled,
        grid=4,
        block=4,
        **schedule_kwargs(PROTOCOL_SCHEDULE[protocol]),
    )


def test_registry_meets_the_acceptance_bar():
    assert len(MUTATIONS) >= 12
    protocols = {m.protocol for m in MUTATIONS.values()}
    assert protocols == {"pipes", "taskgraph", "multicast"}
    for protocol in protocols:
        count = sum(
            1 for m in MUTATIONS.values() if m.protocol == protocol
        )
        assert count >= 3, f"protocol {protocol} needs >= 3 mutations"


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_each_mutation_is_flagged_with_its_code(name):
    mutation = MUTATIONS[name]
    model = _model_for(mutation.protocol)
    assert certify_model(model) == [], "baseline must certify clean"
    _, mutant = apply_mutation(model, name)
    diagnostics = certify_model(mutant)
    codes = {d.code for d in diagnostics}
    assert mutation.expected in codes, (
        f"mutation {name!r} must provoke {mutation.expected}, got {codes}"
    )
    assert all(
        d.severity is Severity.ERROR
        for d in diagnostics
        if d.code == mutation.expected
    )


def test_unknown_mutation_is_rejected():
    model = _model_for("pipes")
    with pytest.raises(MutationUnsupported, match="unknown mutation"):
        apply_mutation(model, "no-such-mutation")


def test_protocol_mismatch_is_unsupported():
    model = _model_for("taskgraph")
    with pytest.raises(MutationUnsupported):
        apply_mutation(model, "drop-token")


def test_mutants_generator_covers_each_protocol():
    for protocol in PROTOCOL_SCHEDULE:
        model = _model_for(protocol)
        produced = list(mutants(model))
        expected = [
            name
            for name, m in MUTATIONS.items()
            if m.protocol == protocol
        ]
        assert len(produced) == len(expected)
        for mutation, mutant in produced:
            codes = {d.code for d in certify_model(mutant)}
            assert mutation.expected in codes
