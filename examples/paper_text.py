#!/usr/bin/env python
"""Run the paper's program text, verbatim.

The textual front end parses the exact notation of the paper's Fig. 2(b) and
Fig. 3 — regions, directions, the prime operator, scan blocks — so the code
printed in the paper *is* the program.  This script executes both figures
from their source text and checks the results against the paper's stated
outcomes.

Run:  python examples/paper_text.py
"""

import numpy as np

from repro import zpl

# ---------------------------------------------------------------------------
# Fig. 3: the same statement with and without the prime operator.
# ---------------------------------------------------------------------------
n = 5
a1 = zpl.ones(zpl.Region.square(1, n), name="a")
zpl.parse_program("[2..5, 1..5] a := 2 * a@north;", arrays={"a": a1}).run()

a2 = zpl.ones(zpl.Region.square(1, n), name="a")
zpl.parse_program(
    """
    [2..5, 1..5] scan
        a := 2 * a'@north;
    end;
    """,
    arrays={"a": a2},
).run()

print("Fig. 3(a) [2..n,1..n] a := 2 * a@north   ->", a2.region)
print(a1.to_numpy())
print("\nFig. 3(d) [2..n,1..n] a := 2 * a'@north  (scan block)")
print(a2.to_numpy())

# ---------------------------------------------------------------------------
# Fig. 2(b): the Tomcatv fragment, text and all.
# ---------------------------------------------------------------------------
FIG_2B = """
region R = [2..n-2, 2..n-1];
[R] scan
      r := aa * d'@north;
      d := 1.0 / (dd - aa@north * r);
      rx := rx - rx'@north * r;
      ry := ry - ry'@north * r;
    end;
"""

size = 10
rng = np.random.default_rng(1)
base = zpl.Region.square(1, size)
arrays = {}
for name in ("r", "d", "dd", "aa", "rx", "ry"):
    arr = zpl.ZArray(base, name=name)
    arr.load(rng.uniform(0.5, 1.5, size=base.shape))
    arrays[name] = arr
arrays["dd"].load(rng.uniform(3.0, 4.0, size=base.shape))

program = zpl.parse_program(FIG_2B, arrays=arrays, constants={"n": size})
(block,) = program.scan_blocks()
print("\nParsed Fig. 2(b); the pretty-printer round-trips it:\n")
print(zpl.format_scan_block(block))

compiled = block.compile()
print(f"\ncompiler analysis: WSV {compiled.wsv}, {compiled.loops}")
program.run()
print("d after the solve, row 5:", np.round(arrays["d"].to_numpy()[4], 4))
