"""Source spans threaded from the tokenizer through statements and refs."""

import pytest

from repro.zpl import Region, ZArray
from repro.zpl.parser import ParseError, parse_program, tokenize
from repro.zpl.pretty import format_scan_block
from repro.zpl.span import SourceSpan, span_of


SOURCE = "\n".join(
    [
        "direction up = (-1, 0);",
        "region R = [2..n, 1..n];",
        "[R] scan",
        "  a := 0.5 * a'@up;",
        "  b := a'@up;",
        "end;",
    ]
)


def _env(n=8):
    return {
        name: ZArray(Region.square(1, n), name=name, fill=0.5)
        for name in ("a", "b")
    }


def _parse(source=SOURCE, n=8):
    return parse_program(source, _env(n), constants={"n": n}, filename="t.zpl")


def test_span_validation_and_geometry():
    span = SourceSpan(2, 3, 2, 9)
    assert span.width == 6
    assert repr(span) == "2:3"
    merged = span.to(SourceSpan(4, 1, 4, 5))
    assert (merged.line, merged.col, merged.end_line, merged.end_col) == (
        2, 3, 4, 5,
    )
    with pytest.raises(ValueError):
        SourceSpan(0, 1, 1, 1)


def test_tokens_carry_line_and_col():
    tokens = tokenize("a := b;\n  c := d;")
    texts = {(t.text, t.line, t.col) for t in tokens if t.kind == "name"}
    assert texts == {("a", 1, 1), ("b", 1, 6), ("c", 2, 3), ("d", 2, 8)}
    semi = [t for t in tokens if t.text == ";"]
    assert [(t.line, t.col) for t in semi] == [(1, 7), (2, 9)]


def test_statement_spans_cover_source_text():
    program = _parse()
    block = program.scan_blocks()[0]
    spans = [span_of(stmt) for stmt in block.statements]
    assert all(spans)
    assert (spans[0].line, spans[0].col) == (4, 3)
    assert spans[0].end_line == 4  # through the terminating ';'
    assert (spans[1].line, spans[1].col) == (5, 3)


def test_ref_spans_point_at_references():
    program = _parse()
    stmt = program.scan_blocks()[0].statements[0]
    ref = next(r for r in stmt.expr.refs() if r.primed)
    span = span_of(ref)
    lines = SOURCE.splitlines()
    text = lines[span.line - 1][span.col - 1 : span.end_col - 1]
    assert text == "a'@up"


def test_declared_spans_recorded():
    program = _parse()
    assert program.declared_directions["up"].line == 1
    assert program.declared_regions["R"].line == 2
    assert program.used_directions == {"up"}
    assert program.used_regions == {"R"}
    assert program.used_arrays == {"a", "b"}


def test_parse_errors_carry_location():
    with pytest.raises(ParseError, match=r"line 2, column 5") as exc:
        _parse("region R = [2..n, 1..n];\n[R] u := 1.0;")
    assert exc.value.span is not None
    assert (exc.value.span.line, exc.value.span.col) == (2, 5)


def test_tokenizer_error_located():
    with pytest.raises(ParseError, match=r"line 2") as exc:
        tokenize("a := b;\nc ?= d;")
    assert exc.value.span.line == 2


def test_spans_do_not_affect_statement_equality():
    program_a = _parse()
    program_b = _parse()
    stmts_a = program_a.scan_blocks()[0].statements
    stmts_b = program_b.scan_blocks()[0].statements
    # Same env objects... use fresh envs: equality must ignore spans, which
    # differ from None on a pretty-printed round trip below.
    assert [s.span for s in stmts_a] == [s.span for s in stmts_b]


def test_pretty_roundtrip_still_parses():
    program = _parse()
    block = program.scan_blocks()[0]
    printed = format_scan_block(block)
    reparsed = parse_program(printed, _env(), constants={"n": 8})
    again = reparsed.scan_blocks()[0]
    assert format_scan_block(again) == printed
    # Round-tripped statements carry their own (new) spans.
    assert all(span_of(s) is not None for s in again.statements)
