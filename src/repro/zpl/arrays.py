"""Parallel arrays: region-allocated numpy storage with boundary "fluff".

A :class:`ZArray` is declared over a region and allocated with extra border
storage (ZPL's *fluff*) so that shifted references such as ``a @ north`` near
the region edge read well-defined boundary values.  Arrays use *global*
indices: element ``(i, j)`` of a ZArray means the same index everywhere,
regardless of how storage happens to be laid out or distributed.

Assignment statements are written with ``[]``-assignment:

* ``a[R] = expr`` — evaluate ``expr`` over region ``R`` with whole-array
  semantics (right-hand side fully evaluated before any element is stored);
* ``a[...] = expr`` — the same, covered by the ambient region established
  with :func:`repro.zpl.program.covering`;
* inside a ``scan()`` block, the statement is *recorded* instead of executed,
  forming the scan block that the compiler turns into a pipelined loop nest.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ArrayError
from repro.zpl.directions import Direction, as_direction
from repro.zpl.expr import Node, Ref, as_node
from repro.zpl.regions import Region

#: Default fluff depth on every side of every dimension.
DEFAULT_FLUFF = 1


class ZArray:
    """A parallel array declared over a region.

    Parameters
    ----------
    region:
        The declared index space of the array.
    name:
        Optional name used in diagnostics and pretty-printing.
    dtype:
        Element dtype (default ``float64``).
    fluff:
        Border depth allocated outside the declared region on each side of
        each dimension, so shifted references near the edge stay in storage.
    fill:
        Initial value of every element, border included.
    """

    __slots__ = ("_declared", "_storage_region", "_data", "name", "dtype")

    def __init__(
        self,
        region: Region,
        name: str | None = None,
        dtype: type | np.dtype = np.float64,
        fluff: int = DEFAULT_FLUFF,
        fill: float = 0.0,
    ):
        if region.is_empty():
            raise ArrayError(f"cannot declare an array over empty region {region!r}")
        if fluff < 0:
            raise ArrayError(f"fluff must be >= 0, got {fluff}")
        self._declared = region
        self._storage_region = region.expand(((fluff, fluff),) * region.rank)
        self.dtype = np.dtype(dtype)
        self._data = np.full(self._storage_region.shape, fill, dtype=self.dtype)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def region(self) -> Region:
        """The declared index space."""
        return self._declared

    @property
    def storage_region(self) -> Region:
        """The allocated index space (declared region plus fluff)."""
        return self._storage_region

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return self._declared.rank

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the declared region."""
        return self._declared.shape

    def __repr__(self) -> str:
        label = self.name or "<anonymous>"
        return f"ZArray({label}, {self._declared!r}, dtype={self.dtype})"

    # ------------------------------------------------------------------
    # Storage access
    # ------------------------------------------------------------------
    def _slices(self, region: Region) -> tuple[slice, ...]:
        if not self._storage_region.covers(region):
            raise ArrayError(
                f"region {region!r} is outside the storage of {self!r} "
                f"(storage {self._storage_region!r}); declare more fluff or "
                f"initialise the border first"
            )
        return region.to_local(self._storage_region.lo)

    def read(self, region: Region) -> np.ndarray:
        """A numpy *view* of the array over ``region`` (global indices)."""
        if region.rank != self.rank:
            raise ArrayError(
                f"read region rank {region.rank} != array rank {self.rank}"
            )
        return self._data[self._slices(region)]

    def write(self, region: Region, values: np.ndarray | float) -> None:
        """Store ``values`` over ``region`` (global indices)."""
        if region.rank != self.rank:
            raise ArrayError(
                f"write region rank {region.rank} != array rank {self.rank}"
            )
        self._data[self._slices(region)] = values

    def get(self, index: Sequence[int]) -> float:
        """Read a single element by global index."""
        offset = tuple(i - b for i, b in zip(index, self._storage_region.lo))
        for o, extent in zip(offset, self._data.shape):
            if not 0 <= o < extent:
                raise ArrayError(f"index {tuple(index)} outside storage of {self!r}")
        return self._data[offset]

    def put(self, index: Sequence[int], value: float) -> None:
        """Write a single element by global index."""
        offset = tuple(i - b for i, b in zip(index, self._storage_region.lo))
        for o, extent in zip(offset, self._data.shape):
            if not 0 <= o < extent:
                raise ArrayError(f"index {tuple(index)} outside storage of {self!r}")
        self._data[offset] = value

    def fill(self, value: float) -> None:
        """Set every element (border included) to ``value``."""
        self._data[...] = value

    def to_numpy(self) -> np.ndarray:
        """A copy of the declared region's values."""
        return self.read(self._declared).copy()

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        """Numpy interop: ``np.asarray(zarr)`` sees the declared region."""
        values = self.to_numpy()
        return values.astype(dtype) if dtype is not None else values

    def load(self, values: np.ndarray) -> None:
        """Copy ``values`` (shaped like the declared region) into the array."""
        values = np.asarray(values)
        if values.shape != self.shape:
            raise ArrayError(
                f"load shape {values.shape} != declared shape {self.shape}"
            )
        self.write(self._declared, values)

    def set_border(
        self,
        direction: Direction | tuple[int, ...],
        values: np.ndarray | float,
    ) -> None:
        """Initialise the border strip outside the declared region.

        ``direction`` selects the side (ZPL's ``[d of R]``); e.g. ``north``
        writes the row immediately above the declared region.
        """
        self.write(self._declared.border(as_direction(direction, self.rank)), values)

    def copy_like(self, name: str | None = None) -> "ZArray":
        """A new array with the same region/dtype/storage contents."""
        fluff = self._declared.lo[0] - self._storage_region.lo[0]
        clone = ZArray(self._declared, name=name or self.name, dtype=self.dtype, fluff=fluff)
        clone._data[...] = self._data
        return clone

    # ------------------------------------------------------------------
    # Expression building
    # ------------------------------------------------------------------
    @property
    def ref(self) -> Ref:
        """An unshifted, unprimed reference to this array."""
        return Ref(self)

    @property
    def p(self) -> Ref:
        """The prime operator: reference values from previous loop iterations."""
        return Ref(self, primed=True)

    @property
    def primed(self) -> Ref:
        """Alias for :attr:`p`."""
        return self.p

    def at(self, direction: Direction | tuple[int, ...]) -> Ref:
        """Shifted reference, ``a.at(north)`` == ``a @ north``."""
        return Ref(self) @ direction

    def __matmul__(self, direction: object) -> Ref:
        return Ref(self) @ direction

    # Arithmetic delegates to the expression layer.
    def __add__(self, other: object) -> Node:
        return Ref(self) + other

    def __radd__(self, other: object) -> Node:
        return as_node(other) + Ref(self)

    def __sub__(self, other: object) -> Node:
        return Ref(self) - other

    def __rsub__(self, other: object) -> Node:
        return as_node(other) - Ref(self)

    def __mul__(self, other: object) -> Node:
        return Ref(self) * other

    def __rmul__(self, other: object) -> Node:
        return as_node(other) * Ref(self)

    def __truediv__(self, other: object) -> Node:
        return Ref(self) / other

    def __rtruediv__(self, other: object) -> Node:
        return as_node(other) / Ref(self)

    def __pow__(self, other: object) -> Node:
        return Ref(self) ** as_node(other)

    def __neg__(self) -> Node:
        return -Ref(self)

    # Comparisons produce elementwise boolean expressions (for ``where``).
    def __lt__(self, other: object) -> Node:
        return Ref(self) < other

    def __le__(self, other: object) -> Node:
        return Ref(self) <= other

    def __gt__(self, other: object) -> Node:
        return Ref(self) > other

    def __ge__(self, other: object) -> Node:
        return Ref(self) >= other

    # ------------------------------------------------------------------
    # Statement syntax:  a[R] = expr  /  a[...] = expr
    # ------------------------------------------------------------------
    def __getitem__(self, key: object) -> np.ndarray | float:
        if isinstance(key, Region):
            return self.read(key)
        if key is Ellipsis:
            return self.read(self._declared)
        if isinstance(key, tuple) and all(isinstance(k, (int, np.integer)) for k in key):
            return self.get(key)
        raise ArrayError(f"cannot index ZArray with {key!r}")

    def __setitem__(self, key: object, value: object) -> None:
        from repro.zpl.program import statement  # late: avoids import cycle

        if isinstance(key, tuple) and all(isinstance(k, (int, np.integer)) for k in key):
            if isinstance(value, Node):
                raise ArrayError("cannot assign an expression to a single element")
            self.put(key, float(value))  # type: ignore[arg-type]
            return
        if isinstance(key, Region):
            region: Region | None = key
        elif key is Ellipsis:
            region = None  # resolved against the ambient covering region
        else:
            raise ArrayError(f"cannot index ZArray with {key!r}")

        if isinstance(value, (Node, int, float, np.integer, np.floating)):
            statement(self, as_node(value), region)
        elif isinstance(value, np.ndarray):
            self.write(region if region is not None else self._declared, value)
        else:
            raise ArrayError(f"cannot assign {value!r} to a ZArray region")


def zeros(region: Region, name: str | None = None, fluff: int = DEFAULT_FLUFF) -> ZArray:
    """A float array of zeros over ``region``."""
    return ZArray(region, name=name, fluff=fluff, fill=0.0)


def ones(region: Region, name: str | None = None, fluff: int = DEFAULT_FLUFF) -> ZArray:
    """A float array of ones over ``region``."""
    return ZArray(region, name=name, fluff=fluff, fill=1.0)


def full(
    region: Region,
    value: float,
    name: str | None = None,
    fluff: int = DEFAULT_FLUFF,
) -> ZArray:
    """A float array filled with ``value`` over ``region``."""
    return ZArray(region, name=name, fluff=fluff, fill=value)


def from_numpy(
    values: np.ndarray,
    base: int = 1,
    name: str | None = None,
    fluff: int = DEFAULT_FLUFF,
) -> ZArray:
    """Wrap a numpy array as a ZArray whose region starts at ``base``."""
    values = np.asarray(values, dtype=np.float64)
    region = Region.from_shape(values.shape, base=base)
    arr = ZArray(region, name=name, fluff=fluff)
    arr.load(values)
    return arr
