"""AOT kernels vs the tree-walking engine, measured on the paper's kernel.

This bench regenerates the acceptance numbers for the kernel layer on the
Tomcatv forward-elimination wavefront at the paper-scale mesh (256×256,
single process):

* engine throughput — the interpreted slab engine against the compiled
  kernel engine (cold first run, then warm minima), asserting the kernel
  path is at least **2×** faster;
* dispatch cost — the per-block cost a pipelined schedule pays, for the
  interpreted engine (the pre-kernel ~9 ms/block recorded in
  ``BENCH_parallel.json``) against a persistent :class:`WorkerPool`
  dispatch, asserting the pooled path is at least **5×** cheaper.

The payload is written to ``BENCH_kernels.json`` directly (this module
bypasses pytest-benchmark: the interesting numbers are ratios between
engines, not the harness clock).  CI runs this as a smoke step with
``REPRO_PARALLEL_MAX_PROCS=2`` and uploads the artifact.
"""

from repro.parallel import (
    measure_block_overhead,
    measure_pool_dispatch,
    oversubscription,
    tomcatv_forward,
)
from repro.parallel.sharedmem import collect_arrays
from repro.runtime import KERNEL_STATS, execute_vectorized
from repro.runtime.interp import ArraySnapshot
from repro.util.benchjson import read_bench, write_bench
from repro.util.timing import WallTimer

#: Acceptance-criterion mesh: the paper's Tomcatv size.
N = 256
REPEATS = 3


def _timed(compiled, snap, repeats, **kwargs):
    best = float("inf")
    for _ in range(repeats):
        snap.restore()
        timer = WallTimer()
        with timer:
            execute_vectorized(compiled, **kwargs)
        best = min(best, timer.elapsed)
    return best


def test_kernel_engine_artifact():
    compiled = tomcatv_forward(N)
    arrays = collect_arrays(compiled)
    compiled.prepare()
    snap = ArraySnapshot(arrays)
    host = oversubscription(1)

    # Engine throughput.  The first kernel run pays template + plan
    # compilation; warm runs hit the plan cache.
    interp_best = _timed(compiled, snap, REPEATS, engine="interp")
    KERNEL_STATS.reset()
    snap.restore()
    cold_timer = WallTimer()
    with cold_timer:
        execute_vectorized(compiled, engine="kernel")
    kernel_cold = cold_timer.elapsed
    kernel_best = _timed(compiled, snap, REPEATS, engine="kernel")
    kernel_stats = KERNEL_STATS.snapshot()

    # Dispatch cost per pipeline block: interpreted fork-per-run vs a warm
    # persistent pool (one token + one warm dispatch).
    snap.restore()
    dispatch_interp = measure_block_overhead(compiled, engine="interp")
    snap.restore()
    dispatch_kernel = measure_block_overhead(compiled, engine="kernel")
    snap.restore()
    dispatch_pooled = measure_pool_dispatch(compiled)
    snap.restore()

    results = [
        {
            "test": "engine_throughput",
            "n": N,
            "interp_seconds": interp_best,
            "kernel_cold_seconds": kernel_cold,
            "kernel_seconds": kernel_best,
            "kernel_speedup": interp_best / kernel_best,
        },
        {
            "test": "dispatch_per_block",
            "interp_seconds": dispatch_interp,
            "kernel_seconds": dispatch_kernel,
            "pooled_seconds": dispatch_pooled,
            "pooled_reduction": dispatch_interp / max(dispatch_pooled, 1e-12),
        },
    ]
    meta = {
        "benchmark": "tomcatv-forward",
        "n": N,
        "region_size": compiled.region.size,
        "repeats": REPEATS,
        "host": host,
        "oversubscribed": host["oversubscribed"],
        "kernel_stats": kernel_stats,
    }
    path = write_bench("kernels", results, meta=meta)

    written = read_bench("kernels")
    assert path.name == "BENCH_kernels.json"
    assert written["results"][0]["kernel_seconds"] > 0

    # Acceptance criteria — these are the CI gates.
    assert kernel_best * 2 <= interp_best, (
        f"kernel engine must be >=2x faster than the interpreted engine on "
        f"Tomcatv forward n={N}: kernel {kernel_best:.4f}s vs "
        f"interp {interp_best:.4f}s"
    )
    assert dispatch_pooled * 5 <= dispatch_interp, (
        f"pooled dispatch must be >=5x cheaper than the interpreted "
        f"per-block dispatch: pooled {dispatch_pooled * 1e3:.3f}ms vs "
        f"interp {dispatch_interp * 1e3:.3f}ms"
    )
