"""Directions: the offset vectors of the ZPL ``@`` (shift) operator.

A *direction* is a small integer vector used to shift the indices of the
covering region when referencing an array, exactly as in the paper's
Section 2.1: with ``north = (-1, 0)``, the reference ``b@north`` at region
index ``(i, j)`` reads ``b[i-1, j]``.

Directions are immutable and hashable; the standard 2-D cardinals
(``NORTH``, ``SOUTH``, ``WEST``, ``EAST`` and the diagonals) plus 3-D
``ABOVE``/``BELOW`` are provided as module constants.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import DirectionError
from repro.util.validation import check_tuple_of_int


class Direction:
    """An immutable integer offset vector with an optional name.

    Parameters
    ----------
    offsets:
        The per-dimension integer offsets, e.g. ``(-1, 0)`` for north.
    name:
        Optional symbolic name used in reprs and error messages.
    """

    __slots__ = ("_offsets", "_name")

    def __init__(self, offsets: Sequence[int], name: str | None = None):
        self._offsets = check_tuple_of_int(offsets, "offsets")
        if not self._offsets:
            raise DirectionError("a direction must have at least one dimension")
        self._name = name

    @property
    def offsets(self) -> tuple[int, ...]:
        """The per-dimension offsets."""
        return self._offsets

    @property
    def name(self) -> str | None:
        """The symbolic name, if any."""
        return self._name

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self._offsets)

    def is_zero(self) -> bool:
        """True when every component is zero (the identity shift)."""
        return all(o == 0 for o in self._offsets)

    def is_cardinal(self) -> bool:
        """True when exactly one component is nonzero (paper Section 2.2)."""
        return sum(1 for o in self._offsets if o != 0) == 1

    def __neg__(self) -> "Direction":
        return Direction(tuple(-o for o in self._offsets))

    def __add__(self, other: "Direction") -> "Direction":
        other = as_direction(other, rank=self.rank)
        return Direction(tuple(a + b for a, b in zip(self._offsets, other._offsets)))

    def __getitem__(self, dim: int) -> int:
        return self._offsets[dim]

    def __iter__(self) -> Iterator[int]:
        return iter(self._offsets)

    def __len__(self) -> int:
        return len(self._offsets)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Direction):
            return self._offsets == other._offsets
        if isinstance(other, tuple):
            return self._offsets == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._offsets)

    def __repr__(self) -> str:
        if self._name:
            return self._name
        return f"dir{self._offsets}"


def as_direction(value: object, rank: int | None = None) -> Direction:
    """Coerce a :class:`Direction` or integer tuple into a :class:`Direction`.

    Raises :class:`DirectionError` when ``rank`` is given and does not match.
    """
    if isinstance(value, Direction):
        direction = value
    elif isinstance(value, (tuple, list)):
        direction = Direction(value)
    else:
        raise DirectionError(f"cannot interpret {value!r} as a direction")
    if rank is not None and direction.rank != rank:
        raise DirectionError(
            f"direction {direction!r} has rank {direction.rank}, expected {rank}"
        )
    return direction


# The 2-D cardinals used throughout the paper (row, column offsets).
NORTH = Direction((-1, 0), "north")
SOUTH = Direction((1, 0), "south")
WEST = Direction((0, -1), "west")
EAST = Direction((0, 1), "east")
NORTHWEST = Direction((-1, -1), "northwest")
NORTHEAST = Direction((-1, 1), "northeast")
SOUTHWEST = Direction((1, -1), "southwest")
SOUTHEAST = Direction((1, 1), "southeast")

# 3-D cardinals (plane, row, column): used by the SWEEP3D-style application.
ABOVE = Direction((-1, 0, 0), "above")
BELOW = Direction((1, 0, 0), "below")
NORTH3 = Direction((0, -1, 0), "north3")
SOUTH3 = Direction((0, 1, 0), "south3")
WEST3 = Direction((0, 0, -1), "west3")
EAST3 = Direction((0, 0, 1), "east3")

#: All named constants, for introspection and tests.
CARDINALS_2D = (NORTH, SOUTH, WEST, EAST)
DIAGONALS_2D = (NORTHWEST, NORTHEAST, SOUTHWEST, SOUTHEAST)
CARDINALS_3D = (ABOVE, BELOW, NORTH3, SOUTH3, WEST3, EAST3)
