"""Property-based tests for the cache simulator and the analytic model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.params import CacheGeometry, MachineParams
from repro.cache.cachesim import simulate_direct_mapped, simulate_lru
from repro.models.pipeline_model import model2

traces = st.lists(st.integers(0, 4095), min_size=1, max_size=400).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


class TestCacheSimProperties:
    @given(traces)
    @settings(max_examples=100)
    def test_vectorized_matches_lru_reference(self, trace):
        geometry = CacheGeometry(size_elems=128, line_elems=4, ways=1, miss_penalty=1.0)
        fast = simulate_direct_mapped(trace, geometry)
        slow = simulate_lru(trace, geometry)
        assert fast.misses == slow.misses
        assert fast.accesses == slow.accesses

    @given(traces)
    def test_miss_bounds(self, trace):
        geometry = CacheGeometry(size_elems=64, line_elems=4, ways=1, miss_penalty=1.0)
        result = simulate_direct_mapped(trace, geometry)
        distinct_lines = len(set(int(a) // 4 for a in trace))
        assert distinct_lines <= result.misses <= trace.size

    @given(traces)
    @settings(max_examples=60)
    def test_lru_stack_property(self, trace):
        # Same sets, more ways (=> more capacity) never increases misses:
        # per-set LRU is a stack algorithm.
        small = CacheGeometry(size_elems=64, line_elems=4, ways=1, miss_penalty=1.0)
        big = CacheGeometry(size_elems=128, line_elems=4, ways=2, miss_penalty=1.0)
        assert big.n_sets == small.n_sets
        assert simulate_lru(trace, big).misses <= simulate_lru(trace, small).misses

    @given(traces)
    def test_repeating_trace_never_increases_rate(self, trace):
        geometry = CacheGeometry(size_elems=256, line_elems=4, ways=1, miss_penalty=1.0)
        once = simulate_direct_mapped(trace, geometry)
        twice = simulate_direct_mapped(np.concatenate([trace, trace]), geometry)
        assert twice.miss_rate <= once.miss_rate + 1e-12


machine_params = st.builds(
    lambda a, b: MachineParams(name="h", alpha=a, beta=b),
    st.floats(1.0, 5000.0),
    st.floats(0.0, 500.0),
)


class TestModelProperties:
    @given(machine_params, st.integers(16, 1024), st.integers(2, 32))
    @settings(max_examples=100)
    def test_discrete_optimum_is_global(self, params, n, p):
        m = model2(params, n, p)
        best = m.optimal_block_size()
        t_best = m.predicted_time(best)
        for b in range(1, min(n, 64) + 1):
            assert t_best <= m.predicted_time(b) + 1e-9

    @given(machine_params, st.integers(32, 512), st.integers(3, 16))
    @settings(max_examples=100)
    def test_continuous_optimum_brackets_discrete(self, params, n, p):
        m = model2(params, n, p)
        continuous = m.optimal_block_size_continuous()
        discrete = m.optimal_block_size()
        if 2 <= continuous <= n - 2:
            assert abs(discrete - continuous) <= max(2.0, 0.15 * continuous)

    @given(machine_params, st.integers(16, 512), st.integers(2, 16))
    def test_times_positive_and_consistent(self, params, n, p):
        m = model2(params, n, p)
        b = m.optimal_block_size()
        assert m.predicted_time(b) == pytest.approx(
            m.compute_time(b) + m.comm_time(b)
        )
        assert m.predicted_time(b) > 0
        assert m.serial_time() == n * n

    @given(st.integers(16, 256), st.integers(2, 8), st.integers(1, 4))
    @settings(max_examples=40)
    def test_des_matches_formula_under_divisibility(self, half_n, p, half_b):
        # Build divisible n, b: the DES critical path equals the formula.
        import numpy as np

        from repro import zpl
        from repro.compiler import compile_scan
        from repro.machine import pipelined_wavefront

        n = p * ((2 * half_n) // p)
        if n < 2 * p:
            return
        b = 2 * half_b
        if n % b != 0:
            return
        params = MachineParams(name="d", alpha=50.0, beta=2.0)
        a = zpl.ZArray(zpl.Region.of((1, n + 1), (1, n)), name="a")
        with zpl.covering(zpl.Region.of((2, n + 1), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = 1.01 * (a.p @ zpl.NORTH)
        compiled = compile_scan(block)
        outcome = pipelined_wavefront(
            compiled, params, n_procs=p, block_size=b, compute_values=False
        )
        m = model2(params, n, p)
        assert outcome.total_time == pytest.approx(m.predicted_time(b), rel=1e-12)
