"""Wall-clock timing helpers (for benchmarks; experiment *results* use the
deterministic virtual clock of :mod:`repro.machine`, never wall time)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class WallTimer:
    """Accumulating wall-clock timer usable as a context manager.

    >>> t = WallTimer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._start is None:
            raise RuntimeError("WallTimer exited without entering")
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time.

        Refuses to run inside an open interval: silently discarding the
        in-progress measurement would corrupt the caller's accounting.
        Exit the ``with`` block (or call ``__exit__``) first.
        """
        if self._start is not None:
            raise RuntimeError(
                "WallTimer.reset() called with an interval in progress; "
                "exit the timing context before resetting"
            )
        self.elapsed = 0.0
