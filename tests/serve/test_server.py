"""End-to-end serving contract: correctness, coalescing, shedding, recovery.

These tests drive a real :class:`~repro.serve.ServeApp` over real sockets
on an ephemeral port — the same transport the CLI serves — and assert the
contract docs/serving.md promises: right scores, fused batches, typed
errors for every failure mode, and no failure poisoning the next request.
"""

import asyncio
import time

import pytest

from repro.apps.alignment import nw_score_oracle, smith_waterman_score
from repro.errors import PoolBrokenError
from repro.obs import Tracer
from repro.serve import ServeApp, ServeConfig, ShuttingDown
from repro.serve.client import ServeClient


def _run(coro):
    return asyncio.run(coro)


async def _start(**overrides) -> ServeApp:
    values = dict(port=0, window=0.005, batch_max=16, max_queue=64,
                  timeout=15.0)
    values.update(overrides)
    app = ServeApp(ServeConfig(**values))
    await app.start()
    return app


async def _post_align(port, kind, a, b, **scores):
    async with ServeClient("127.0.0.1", port) as client:
        return await client.post(
            "/v1/align", {"kind": kind, "a": a, "b": b, **scores}
        )


class TestAlignEndpoint:
    def test_concurrent_scores_match_oracle_and_coalesce(self):
        pairs = [("GATTACA", "GCATGCU"), ("ACGTACG", "TACGTAC"),
                 ("AAAACCC", "AAACCCC"), ("CCCGGGA", "GGGCCCA")]

        async def scenario():
            app = await _start()
            try:
                responses = await asyncio.gather(*(
                    _post_align(app.port, "nw", a, b) for a, b in pairs
                ))
            finally:
                await app.stop()
            return responses, app.metrics.snapshot()

        responses, metrics = _run(scenario())
        for (status, _, body), (a, b) in zip(responses, pairs):
            assert status == 200
            assert body["score"] == pytest.approx(
                nw_score_oracle(a, b, 2.0, -1.0, 1.0)
            )
        # The same-shape burst fused: fewer dispatches than requests.
        assert metrics["batches"]["dispatched"] < len(pairs)
        assert any(body["batch"] > 1 for _, _, body in responses)
        assert metrics["requests"]["completed"] == len(pairs)

    def test_sw_and_custom_scores(self):
        async def scenario():
            app = await _start()
            try:
                sw = await _post_align(app.port, "sw", "GGTTGACTA", "TGTTACGG")
                nw = await _post_align(app.port, "nw", "ACGT", "ACG",
                                       match=3.0, gap=0.5)
            finally:
                await app.stop()
            return sw, nw

        (sw_status, _, sw_body), (nw_status, _, nw_body) = _run(scenario())
        assert sw_status == 200
        assert sw_body["score"] == pytest.approx(
            smith_waterman_score("GGTTGACTA", "TGTTACGG")
        )
        assert nw_status == 200
        assert nw_body["score"] == pytest.approx(
            nw_score_oracle("ACGT", "ACG", 3.0, -1.0, 0.5)
        )

    def test_mixed_keys_do_not_cross_batch(self):
        async def scenario():
            app = await _start()
            try:
                responses = await asyncio.gather(
                    _post_align(app.port, "nw", "ACGTACG", "TACGTAC"),
                    _post_align(app.port, "sw", "ACGTACG", "TACGTAC"),
                )
            finally:
                await app.stop()
            return responses

        (nw_s, _, nw_b), (sw_s, _, sw_b) = _run(scenario())
        assert nw_s == sw_s == 200
        # Different modes never share a fused dispatch.
        assert nw_b["batch"] == 1 and sw_b["batch"] == 1
        assert nw_b["score"] == pytest.approx(
            nw_score_oracle("ACGTACG", "TACGTAC", 2.0, -1.0, 1.0)
        )


class TestZplEndpoint:
    SOURCE = """
    direction nw = (-1, -1);
    [2..8, 2..8] scan
        h := h'@nw + 1.0;
    end;
    """

    def test_wavefront_roundtrip(self):
        async def scenario():
            app = await _start()
            try:
                async with ServeClient("127.0.0.1", app.port) as client:
                    return await client.post("/v1/zpl", {
                        "source": self.SOURCE,
                        "arrays": {"h": {"lo": [1, 1], "hi": [8, 8]}},
                    })
            finally:
                await app.stop()

        status, _, body = _run(scenario())
        assert status == 200
        h = body["arrays"]["h"]
        # The scan's new-value diagonal dependence cascades: h[i,i] = i-1.
        assert [h[i][i] for i in range(8)] == [float(max(i - 1, 0))
                                               for i in range(1, 9)]

    def test_broken_program_is_typed_400(self):
        async def scenario():
            app = await _start()
            try:
                async with ServeClient("127.0.0.1", app.port) as client:
                    bad = await client.post("/v1/zpl", {
                        "source": "[1..4] nosuch := other + 1;",
                        "arrays": {"h": {"lo": [1], "hi": [4]}},
                    })
                    good = await client.post("/v1/zpl", {
                        "source": "[1..4, 1..4] h := h + 1.0;",
                        "arrays": {"h": {"lo": [1, 1], "hi": [4, 4]}},
                    })
            finally:
                await app.stop()
            return bad, good

        (bad_status, _, bad_body), (good_status, _, _) = _run(scenario())
        assert bad_status == 400
        assert bad_body["error"] == "bad_request"
        # A failed program never poisons the next request.
        assert good_status == 200


class TestErrorContract:
    def test_http_routing_errors(self):
        async def scenario():
            app = await _start()
            try:
                async with ServeClient("127.0.0.1", app.port) as client:
                    missing = await client.get("/v1/nope")
                    wrong_method = await client.get("/v1/align")
                    not_json = await client.request("POST", "/v1/align")
                    malformed = await client.post(
                        "/v1/align", {"kind": "nope"}
                    )
                    healthy = await client.get("/healthz")
            finally:
                await app.stop()
            return missing, wrong_method, not_json, malformed, healthy

        missing, wrong_method, not_json, malformed, healthy = _run(scenario())
        assert missing[0] == 404
        assert wrong_method[0] == 405
        assert not_json[0] == 400
        assert malformed[0] == 400 and malformed[2]["error"] == "bad_request"
        assert healthy[0] == 200 and healthy[2]["ok"] is True

    def test_timeout_is_typed_504_and_recovers(self):
        async def scenario():
            app = await _start(timeout=0.1, window=0.001)
            real_backend = app.batcher.backend

            def stall(key, requests):
                time.sleep(0.4)
                return real_backend(key, requests)

            app.batcher.backend = stall
            try:
                status, _, body = await _post_align(app.port, "nw", "AC", "GT")
                app.batcher.backend = real_backend
                # Let the stalled batch drain off the compute thread, then
                # verify it poisoned nothing.
                await asyncio.sleep(0.45)
                after = await _post_align(app.port, "nw", "ACG", "GTC")
            finally:
                await app.stop()
            return (status, body), after, app.metrics.snapshot()

        (status, body), (after_status, _, _), metrics = _run(scenario())
        assert status == 504 and body["error"] == "timeout"
        assert after_status == 200  # the stalled batch did not poison us
        assert metrics["requests"]["timeouts"] == 1

    def test_overload_sheds_429_with_retry_after(self):
        async def scenario():
            app = await _start(max_queue=4, batch_max=4, window=0.001,
                               timeout=30.0)
            real_backend = app.batcher.backend

            def slow(key, requests):
                time.sleep(0.05)
                return real_backend(key, requests)

            app.batcher.backend = slow
            try:
                flood = await asyncio.gather(*(
                    _post_align(app.port, "nw", "ACGTACGT", "TACGTACG")
                    for _ in range(24)
                ))
            finally:
                await app.stop()
            return flood, app.metrics.snapshot()

        flood, metrics = _run(scenario())
        shed = [(s, h, b) for s, h, b in flood if s == 429]
        served = [(s, h, b) for s, h, b in flood if s == 200]
        assert shed, "a 6x-overloaded tiny queue must shed"
        assert served, "admitted requests still complete under overload"
        for _, headers, body in shed:
            assert float(headers["retry-after"]) > 0
            assert body["error"] == "queue_full"
            assert body["retry_after"] > 0
        assert metrics["requests"]["rejected"] == len(shed)
        # Accepted requests' latency stays bounded while shedding:
        # at most (queue bound / smallest batch) dispatches ahead of any
        # admitted request, far under the per-request deadline.
        assert metrics["latency_ms"]["p99"] < 10_000

    def test_broken_pool_is_typed_503_and_recovers(self):
        async def scenario():
            app = await _start(window=0.001)
            real_backend = app.batcher.backend

            def broken(key, requests):
                raise PoolBrokenError("pool worker(s) [1] died")

            app.batcher.backend = broken
            try:
                status, _, body = await _post_align(app.port, "nw", "AC", "GT")
                app.batcher.backend = real_backend
                after = await _post_align(app.port, "nw", "AC", "GT")
            finally:
                await app.stop()
            return (status, body), after

        (status, body), (after_status, _, after_body) = _run(scenario())
        assert status == 503 and body["error"] == "pool_broken"
        assert after_status == 200
        assert after_body["score"] == pytest.approx(
            nw_score_oracle("AC", "GT", 2.0, -1.0, 1.0)
        )


class TestLifecycleAndObservability:
    def test_clean_shutdown_rejects_new_submissions(self):
        async def scenario():
            app = await _start()
            await app.stop()
            from repro.serve import parse_align

            with pytest.raises(ShuttingDown):
                app.batcher.submit(
                    parse_align({"kind": "nw", "a": "A", "b": "C"})
                )
            return app.batcher.depth

        assert _run(scenario()) == 0

    def test_metrics_and_trace_record_the_run(self):
        async def scenario():
            app = await _start(tracer=Tracer())
            try:
                await asyncio.gather(*(
                    _post_align(app.port, "nw", "GATTACA", "GCATGCU")
                    for _ in range(3)
                ))
                async with ServeClient("127.0.0.1", app.port) as client:
                    _, _, metrics = await client.get("/metrics")
            finally:
                await app.stop()
            return metrics, app.trace()

        metrics, trace = _run(scenario())
        assert metrics["requests"]["completed"] == 3
        assert metrics["throughput_rps"] > 0
        assert metrics["latency_ms"]["p99"] >= metrics["latency_ms"]["p50"] > 0
        assert sum(metrics["batches"]["histogram"].values()) \
            == metrics["batches"]["dispatched"]
        assert trace.meta["backend"] == "serve"
        requests = [s for s in trace.spans if s.name == "serve_request"]
        batches = [s for s in trace.spans if s.name == "serve_batch"]
        assert len(requests) == 3 and batches
        assert all(s.args["status"] == 200 for s in requests)
        assert sum(b.args["items"] for b in batches) == 3
