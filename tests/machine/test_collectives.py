"""Tests for the binomial-tree collectives."""

import math

import pytest

from repro.errors import CommunicationError
from repro.machine import Machine, MachineParams
from repro.machine.collectives import allreduce, barrier, broadcast, reduce

PARAMS = MachineParams(name="coll", alpha=5.0, beta=1.0)


def run_collective(n_procs, body_factory):
    """Spawn body_factory(rank) on every rank; returns (machine, result)."""
    m = Machine(PARAMS, n_procs)
    outputs = {}

    def wrap(rank):
        def body(ep):
            outputs[rank] = yield from body_factory(ep)

        return body

    for rank in range(n_procs):
        m.spawn(wrap(rank), rank)
    result = m.run()
    return outputs, result


@pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8, 16])
class TestBroadcast:
    def test_all_ranks_get_root_value(self, p):
        outputs, _ = run_collective(
            p, lambda ep: broadcast(ep, p, value="payload" if ep.rank == 0 else None)
        )
        assert all(v == "payload" for v in outputs.values())

    def test_nonzero_root(self, p):
        root = p - 1
        outputs, _ = run_collective(
            p,
            lambda ep: broadcast(
                ep, p, value=ep.rank if ep.rank == root else None, root=root
            ),
        )
        assert all(v == root for v in outputs.values())


@pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 13])
class TestReduce:
    def test_sum_lands_on_root(self, p):
        outputs, _ = run_collective(
            p, lambda ep: reduce(ep, p, ep.rank, op=lambda a, b: a + b)
        )
        assert outputs[0] == sum(range(p))

    def test_max(self, p):
        outputs, _ = run_collective(
            p, lambda ep: reduce(ep, p, float(ep.rank * 7 % 5), op=max)
        )
        assert outputs[0] == max(float(r * 7 % 5) for r in range(p))


@pytest.mark.parametrize("p", [1, 2, 4, 6, 9, 16])
class TestAllreduce:
    def test_every_rank_gets_total(self, p):
        outputs, _ = run_collective(
            p, lambda ep: allreduce(ep, p, ep.rank + 1, op=lambda a, b: a + b)
        )
        expected = sum(range(1, p + 1))
        assert all(v == expected for v in outputs.values())


class TestCosts:
    def test_broadcast_rounds_logarithmic(self):
        p = 8
        _, result = run_collective(
            p, lambda ep: broadcast(ep, p, value=0.0, size=1)
        )
        # p-1 messages total, delivered across log2(p) charged rounds: the
        # makespan is ~log2(p) * (alpha + beta).
        assert result.total_messages == p - 1
        per_hop = PARAMS.message_cost(1)
        assert result.total_time == pytest.approx(math.log2(p) * per_hop)

    def test_barrier_synchronises(self):
        p = 4
        m = Machine(PARAMS, p)
        after = {}

        def body_factory(rank):
            def body(ep):
                yield from ep.compute(10.0 * rank)  # skewed arrival
                yield from barrier(ep, p)
                after[rank] = ep.sim.now

            return body

        for rank in range(p):
            m.spawn(body_factory(rank), rank)
        m.run()
        # Nobody leaves the barrier before the slowest rank entered it.
        assert min(after.values()) >= 30.0

    def test_bad_rank_rejected(self):
        m = Machine(PARAMS, 2)
        ep = m.endpoint(1)
        with pytest.raises(CommunicationError):
            next(broadcast(ep, 1, value=0))
