# The minimal wavefront: one array flowing northward (the paper's Fig. 3(d)).
# Pragma lines declare the array environment the linter parses against.
#! arrays: a[1..512, 1..512] = 0.5
#! constants: n = 512
[2..n, 1..n] scan
  a := 0.9 * a'@north + 0.1;
end;
