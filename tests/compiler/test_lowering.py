"""Tests for hoisting, CompiledScan packaging and compile_statements."""

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan, compile_statements
from repro.compiler.wsv import DimClass
from repro.runtime import execute_vectorized
from repro.zpl.statements import Assign
from tests.conftest import record_tomcatv_block


class TestCompileScan:
    def test_tomcatv_compiles(self):
        block, _ = record_tomcatv_block(8)
        compiled = compile_scan(block)
        assert repr(compiled.wsv) == "(-,0)"
        assert compiled.loops.wavefront_dims == (0,)
        assert compiled.loops.parallel_dims == (1,)
        assert compiled.loops.signs[0] == 1
        assert len(compiled.statements) == 4
        assert compiled.hoisted == ()

    def test_written_and_read_arrays(self):
        block, (aa, d, dd, rx, ry, r) = record_tomcatv_block(8)
        compiled = compile_scan(block)
        assert compiled.written_arrays() == (r, d, rx, ry)
        read = compiled.read_arrays()
        for arr in (aa, d, dd, rx, ry, r):
            assert any(arr is x for x in read)

    def test_block_compile_method_equivalent(self):
        block, _ = record_tomcatv_block(6)
        assert block.compile().wsv == compile_scan(block).wsv


class TestHoisting:
    def test_hoisted_temp_evaluated_at_block_entry(self):
        n = 6
        base = zpl.Region.square(1, n)
        R = zpl.Region.of((2, n), (1, n))
        a = zpl.ones(base, name="a")
        b = zpl.from_numpy(np.arange(float(n * n)).reshape(n, n), base=1, name="b")
        with zpl.covering(R):
            with zpl.scan(execute=False) as block:
                a[...] = (a.p @ zpl.NORTH) + zpl.zsum(b)
        compiled = compile_scan(block)
        assert len(compiled.hoisted) == 1
        # The reduction ranges over the covering region R, not all of b.
        total = float(b.read(R).sum())
        execute_vectorized(compiled)
        # Row 2 of a: a[1,:] (= 1.0) + sum_R(b)
        assert float(a[(2, 1)]) == pytest.approx(1.0 + total)
        # Row 3 accumulates again.
        assert float(a[(3, 1)]) == pytest.approx(1.0 + 2 * total)

    def test_flood_hoisted(self):
        n = 5
        base = zpl.Region.square(1, n)
        R = zpl.Region.of((2, n), (1, n))
        a = zpl.ones(base, name="a")
        b = zpl.from_numpy(np.arange(float(n * n)).reshape(n, n), base=1, name="b")
        with zpl.covering(R):
            with zpl.scan(execute=False) as block:
                a[...] = (a.p @ zpl.NORTH) + zpl.flood(b, dims=[0])
        compiled = compile_scan(block)
        assert len(compiled.hoisted) == 1
        execute_vectorized(compiled)
        # flood over R takes b's row 2 (the low edge of R), replicated.
        assert float(a[(2, 2)]) == pytest.approx(1.0 + float(b[(2, 2)]))

    def test_hoist_repr(self):
        block, _ = record_tomcatv_block(6)
        text = repr(compile_scan(block))
        assert "wsv=(-,0)" in text
        assert "4 stmts" in text


class TestCompileStatements:
    def test_fig3a_structure(self):
        n = 5
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        R = zpl.Region.of((2, n), (1, n))
        compiled = compile_statements([Assign(a, 2.0 * (a @ zpl.NORTH), R)])
        assert compiled.loops.signs[0] == -1  # high-to-low, Fig. 3(b)
        assert compiled.loops.classes == (DimClass.PARALLEL, DimClass.PARALLEL)

    def test_primed_rejected(self):
        n = 5
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        R = zpl.Region.of((2, n), (1, n))
        with pytest.raises(ValueError, match="scan block"):
            compile_statements([Assign(a, a.p @ zpl.NORTH, R)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compile_statements([])

    def test_mixed_regions_rejected(self):
        n = 5
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        R1 = zpl.Region.of((2, n), (1, n))
        R2 = zpl.Region.of((1, n), (1, n))
        with pytest.raises(ValueError, match="common covering region"):
            compile_statements(
                [Assign(a, a + 1.0, R1), Assign(a, a + 1.0, R2)]
            )

    def test_execution_matches_eager(self):
        n = 6
        rng = np.random.default_rng(3)
        base = zpl.Region.square(1, n)
        R = zpl.Region.of((2, n - 1), (2, n - 1))
        a = zpl.ZArray(base, name="a")
        a.load(rng.uniform(size=(n, n)))
        b = a.copy_like(name="b")
        # Eager path.
        with zpl.covering(R):
            a[...] = 2.0 * (a @ zpl.NORTH) + (a @ zpl.EAST)
        # Compiled fused-loop path.
        compiled = compile_statements(
            [Assign(b, 2.0 * (b @ zpl.NORTH) + (b @ zpl.EAST), R)]
        )
        execute_vectorized(compiled)
        np.testing.assert_allclose(a.to_numpy(), b.to_numpy(), rtol=1e-14)
