"""Ablation: transpose-based redistribution vs fully pipelined execution.

Section 2.2's summary scenario: a program with orthogonal wavefronts could
transpose between them instead of pipelining.  DESIGN.md lists this as
ablation ABL-TR; the bench measures both schedules and records the machine
regimes where each wins.
"""

from repro.apps import suite
from repro.machine import (
    CRAY_T3E,
    MachineParams,
    pipelined_wavefront,
    transpose_wavefront,
)
from repro.models import model2

N = 129
P = 8


def test_pipelined_schedule(bench):
    compiled = suite.get("single-stream").build(N)
    b = model2(CRAY_T3E, N - 1, P, cols=N).optimal_block_size()
    outcome = bench(
        pipelined_wavefront,
        compiled,
        CRAY_T3E,
        n_procs=P,
        block_size=b,
        compute_values=False,
    )
    assert outcome.total_time > 0


def test_transpose_schedule(bench):
    compiled = suite.get("single-stream").build(N)
    outcome = bench(transpose_wavefront, compiled, CRAY_T3E, n_procs=P)
    assert outcome.run.total_messages == 2 * P * (P - 1)


def test_crossover_regimes(bench):
    """Pipelining wins when startup dominates; transposes catch up when
    bandwidth is free and the all-to-all is cheap."""
    compiled = suite.get("single-stream").build(N)

    def compare():
        results = {}
        for name, params in (
            ("hi-alpha", MachineParams(name="hi-alpha", alpha=8000.0, beta=1.0)),
            ("lo-alpha", MachineParams(name="lo-alpha", alpha=5.0, beta=0.05)),
        ):
            b = model2(params, N - 1, P, cols=N).optimal_block_size()
            pipe = pipelined_wavefront(
                compiled, params, n_procs=P, block_size=b, compute_values=False
            ).total_time
            trans = transpose_wavefront(compiled, params, n_procs=P).total_time
            results[name] = (pipe, trans)
        return results

    results = bench(compare)
    hi_pipe, hi_trans = results["hi-alpha"]
    assert hi_pipe < hi_trans  # startup-dominated: pipelining wins
