"""Predicted speedup curves from the analytic models.

Convenience layer over :mod:`repro.models.pipeline_model` that produces the
series the experiments print: speedup as a function of block size (Fig. 5)
or of processor count (Fig. 7's modelled counterpart).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.machine.params import MachineParams
from repro.models.pipeline_model import PipelineModel, model1, model2
from repro.util.tables import Series


def speedup_vs_block_size(
    model: PipelineModel, block_sizes: Iterable[int], name: str | None = None
) -> Series:
    """Speedup over serial execution for each block size."""
    label = name or ("Model1" if model.ignore_beta else "Model2")
    series = Series(label, xlabel="b", ylabel="speedup")
    for b in block_sizes:
        series.add(int(b), model.speedup(int(b)))
    return series


def model_comparison(
    params: MachineParams,
    n: int,
    p: int,
    block_sizes: Sequence[int],
    boundary_rows: int = 1,
) -> tuple[Series, Series]:
    """(Model1, Model2) speedup series on a common block-size axis."""
    sizes = [int(b) for b in block_sizes]
    return (
        speedup_vs_block_size(model1(params, n, p, boundary_rows), sizes),
        speedup_vs_block_size(model2(params, n, p, boundary_rows), sizes),
    )


def pipelined_speedup_vs_procs(
    params: MachineParams,
    n: int,
    procs: Iterable[int],
    boundary_rows: int = 1,
    optimal_b: bool = True,
    fixed_b: int | None = None,
) -> Series:
    """Modelled speedup of the wavefront itself as processors grow.

    With ``optimal_b`` the block size is re-optimised per processor count
    (the paper's conclusion notes b* is a function of p).
    """
    series = Series("model: pipelined wavefront", xlabel="p", ylabel="speedup")
    for p in procs:
        p = int(p)
        if p < 2:
            series.add(p, 1.0)
            continue
        m = model2(params, n, p, boundary_rows)
        b = m.optimal_block_size() if optimal_b else int(fixed_b or 1)
        series.add(p, m.speedup(b))
    return series
